//! The static-analysis gate: the affine pre-pass must agree with the
//! dynamic profile on every shipped workload.
//!
//! * **Lint** — the post-fold DDG lint is green over the full Rodinia
//!   suite, serial and pipelined.
//! * **Prune parity** — the folded DDG after `remove_scevs()` is
//!   byte-identical with instrumentation pruning on or off.
//! * **Soundness** — every statically-proven SCEV statement is also
//!   dynamically classified `is_scev` (static ⊆ dynamic).
//! * **Coverage** — the canonical loop latches of the paper's Fig. 6
//!   kernel (I5/I8) are proven statically, and at least one Rodinia
//!   kernel reports a nonzero pruned-statement count.

mod common;

use polyprof_core::polystatic::dataflow::StaticSummary;
use polyprof_core::{profile_with, ProfileConfig};

/// Run pass 1 + pass 2 (serial) over `p`, optionally with the prune mask
/// installed, and return the folded DDG *before* SCEV removal plus the
/// interner.
fn fold(
    p: &polyir::Program,
    prune: Option<&StaticSummary>,
) -> (
    polyprof_core::polyfold::FoldedDdg,
    polyprof_core::polyiiv::context::ContextInterner,
) {
    let mut rec = polycfg::StructureRecorder::new();
    polyvm::Vm::new(p).run(&[], &mut rec).unwrap();
    let structure = polycfg::StaticStructure::analyze(p, rec);
    let mut prof = polyddg::DdgProfiler::new(p, &structure, polyfold::FoldingSink::new());
    if let Some(s) = prune {
        prof.set_prune_mask(s.prune_mask());
    }
    polyvm::Vm::new(p).run(&[], &mut prof).unwrap();
    let (sink, interner) = prof.finish();
    let ddg = sink.finalize(p, &interner);
    (ddg, interner)
}

/// DDG lint is green over the whole Rodinia suite, serial and pipelined.
#[test]
fn lint_green_over_rodinia() {
    for threads in [1usize, 4] {
        let cfg = ProfileConfig::new()
            .with_fold_threads(threads)
            .with_lint(true)
            .with_static_prune(true);
        for w in rodinia::all_rodinia() {
            let r = profile_with(&w.program, &cfg);
            let lint = r.lint.expect("lint was requested");
            assert!(
                lint.ok(),
                "{} (fold_threads={}): {} lint violations: {:?}",
                w.name,
                threads,
                lint.violations.len(),
                lint.violations
            );
            assert!(lint.checks > 0, "{}: lint ran no checks", w.name);
        }
    }
}

/// Pruning must not change the folded DDG after SCEV removal, and every
/// statically-proven statement must be dynamically `is_scev`.
#[test]
fn prune_parity_and_static_subset_dynamic() {
    let mut any_pruned = false;
    for w in rodinia::all_rodinia() {
        let summary = StaticSummary::analyze(&w.program);
        let (mut plain, interner) = fold(&w.program, None);
        let (mut pruned, _) = fold(&w.program, Some(&summary));

        // Static ⊆ dynamic: check on the unpruned graph, pre-removal.
        let mask = summary.prune_mask();
        for s in plain.stmts.values() {
            let instr = interner.stmt_info(s.stmt).instr;
            if mask.contains(instr) {
                any_pruned = true;
                assert!(
                    s.is_scev,
                    "{}: statically-proven stmt {:?} at {:?} not dynamically SCEV",
                    w.name, s.stmt, instr
                );
            }
        }

        plain.remove_scevs();
        pruned.remove_scevs();
        assert_eq!(
            common::canon(&plain),
            common::canon(&pruned),
            "{}: folded DDG differs with pruning enabled",
            w.name
        );
    }
    assert!(any_pruned, "prune mask never hit a folded statement");
}

/// The Fig. 6 kernel's loop latches (the paper's I5 `k++` and I8 `j++`)
/// must be statically proven, and the dynamic profile must agree.
#[test]
fn fig6_latches_agree_static_and_dynamic() {
    let p = rodinia::paper_examples::fig6_kernel(8, 8);
    let summary = StaticSummary::analyze(&p);
    let main = p.func_by_name("main").unwrap();
    let df = &summary.funcs[main.0 as usize];
    assert_eq!(df.counted.len(), 2, "Lj and Lk must both be counted loops");

    // Each counted loop's latch holds the IV step: find it and check the
    // static proof and, below, the dynamic classification.
    let f = p.func(main);
    let mut latch_instrs = Vec::new();
    for cl in df.counted.values() {
        let found = f.blocks.iter().enumerate().any(|(bi, b)| {
            b.instrs.iter().enumerate().any(|(ii, ins)| {
                if ins.def() == Some(cl.iv) && !matches!(ins, polyir::Instr::Move { .. }) {
                    let iref = polyir::InstrRef {
                        block: polyir::BlockRef::new(main, bi as u32),
                        idx: ii as u32,
                    };
                    if summary.is_proven_scev(iref) {
                        latch_instrs.push(iref);
                        return true;
                    }
                }
                false
            })
        });
        assert!(
            found,
            "IV step of loop at {:?} not statically proven",
            cl.header
        );
    }

    let (ddg, interner) = fold(&p, None);
    for iref in latch_instrs {
        let stmt = ddg
            .stmts
            .values()
            .find(|s| interner.stmt_info(s.stmt).instr == iref)
            .unwrap_or_else(|| panic!("latch {iref:?} never folded"));
        assert!(stmt.is_scev, "latch {iref:?} not dynamically SCEV");
    }
}

/// At least one Rodinia kernel must report a nonzero pruned-statement and
/// pruned-event count through the public `Report`.
#[test]
fn pruning_counters_are_live() {
    let cfg = ProfileConfig::new().with_static_prune(true);
    let mut max_stmts = 0usize;
    let mut max_events = 0u64;
    for w in rodinia::all_rodinia().into_iter().take(4) {
        let r = profile_with(&w.program, &cfg);
        max_stmts = max_stmts.max(r.pruned_stmts);
        max_events = max_events.max(r.pruned_events);
        assert!(r.static_scevs >= r.pruned_stmts);
    }
    assert!(max_stmts > 0, "no kernel pruned any statements");
    assert!(max_events > 0, "no kernel pruned any events");
}

/// The textual report carries the static pre-pass section with the lint
/// verdict when the knobs are on.
#[test]
fn report_renders_static_pass_section() {
    let p = rodinia::paper_examples::fig6_kernel(8, 8);
    let cfg = ProfileConfig::new().with_static_prune(true).with_lint(true);
    let r = profile_with(&p, &cfg);
    assert!(
        r.full_text.contains("static affine pre-pass"),
        "section missing"
    );
    assert!(r.full_text.contains("lint"), "lint verdict missing");
    let lint = r.lint.expect("lint requested");
    assert!(lint.ok(), "{:?}", lint.violations);
}

/// The synthetic differential fixtures also hold prune parity (cheap extra
/// coverage with very different loop shapes).
#[test]
fn prune_parity_on_synthetic_fixtures() {
    for p in [
        common::elementwise(16, 3),
        common::stencil(12, 3),
        common::deep_nest(3),
    ] {
        let summary = StaticSummary::analyze(&p);
        let (mut plain, _) = fold(&p, None);
        let (mut pruned, _) = fold(&p, Some(&summary));
        plain.remove_scevs();
        pruned.remove_scevs();
        assert_eq!(
            common::canon(&plain),
            common::canon(&pruned),
            "{}: folded DDG differs with pruning enabled",
            p.name
        );
    }
}
