//! Parity tests for the adaptive fold executor: whatever executor the
//! calibration picks — inline folding on the profiling thread or K-shard
//! pipelining — the folded DDG must be **byte-identical**. The adaptive
//! knob may only ever trade wall-clock, never output.
//!
//! The decision branch in `try_profile_with` reduces to a resolved
//! `fold_threads`, so parity is pinned two ways: (a) forcing each executor
//! the decision can select (inline, and the pipeline at K ∈ {1, 2, 8}) and
//! comparing canonical renderings, and (b) running the adaptive path
//! end-to-end against the fixed serial baseline.

mod common;

use common::{canon, elementwise, stencil};
use polyprof_core::polyfold::pipeline::{fold_program_pipelined, PipelineConfig};
use polyprof_core::polyfold::{self, adaptive, FoldOptions};
use polyprof_core::polytrace::Counter;
use polyprof_core::{profile_with, MetricsLevel, ProfileConfig};

/// Every executor the adaptive decision can pick folds the same trace to
/// the same bytes: inline (the serial sink) and the pipeline at K ∈
/// {1, 2, 8} with tiny chunks (so the batched chunk folder crosses many
/// flush boundaries).
#[test]
fn all_selectable_executors_are_byte_identical() {
    for prog in [stencil(10, 3), elementwise(12, 2)] {
        let serial = canon(&polyfold::fold_program(&prog).0);
        for k in [1usize, 2, 8] {
            let cfg = PipelineConfig {
                fold_threads: k,
                chunk_events: 64,
                ..Default::default()
            };
            let piped = canon(&fold_program_pipelined(&prog, &cfg).0);
            assert_eq!(serial.0, piped.0, "statements differ at K={k}");
            assert_eq!(serial.1, piped.1, "dependences differ at K={k}");
            assert_eq!(serial.2, piped.2, "accesses differ at K={k}");
        }
    }
}

/// End-to-end: an adaptive run reproduces the fixed serial report exactly,
/// whichever executor the calibration picked on this machine. Checked at
/// several requested shard counts so both decision outcomes are covered on
/// multi-CPU boxes.
#[test]
fn adaptive_profile_matches_serial_report() {
    let prog = stencil(9, 2);
    let base = profile_with(&prog, &ProfileConfig::new());
    for k in [1usize, 2, 8] {
        let adaptive = profile_with(
            &prog,
            &ProfileConfig::new()
                .with_adaptive(true)
                .with_fold_threads(k)
                .with_chunk_events(128),
        );
        assert_eq!(adaptive.folded_stats, base.folded_stats, "k={k}");
        assert_eq!(adaptive.scev_removed, base.scev_removed, "k={k}");
        assert_eq!(adaptive.annotated_ast, base.annotated_ast, "k={k}");
    }
}

/// The decision is observable: an adaptive run with counters on records the
/// chosen shard count (≥ 1 — even the inline decision reports itself).
#[test]
fn adaptive_decision_is_recorded() {
    let prog = elementwise(8, 1);
    let r = profile_with(
        &prog,
        &ProfileConfig::new()
            .with_adaptive(true)
            .with_metrics(MetricsLevel::Counters),
    );
    let m = r.metrics.expect("counters on");
    let shards = m.counter(Counter::AdaptiveShards);
    assert!(shards >= 1, "decision not recorded: {shards}");
    let d = adaptive::decide(2, 4096, FoldOptions::default());
    assert!(d.fold_threads >= 1);
}

/// The fast-path knob is also output-neutral end-to-end: a rational-only
/// run is byte-identical to the default fast-path run.
#[test]
fn fast_fit_off_matches_default() {
    let prog = stencil(10, 3);
    let fast = profile_with(&prog, &ProfileConfig::new());
    let slow = profile_with(&prog, &ProfileConfig::new().with_fast_fit(false));
    assert_eq!(fast.folded_stats, slow.folded_stats);
    assert_eq!(fast.scev_removed, slow.scev_removed);
    assert_eq!(fast.annotated_ast, slow.annotated_ast);
}
