//! Property-based tests (proptest) over the pipeline's core invariants:
//! polylib soundness, folding containment/exactness, IIV monotonicity,
//! shadow-memory correctness, and VM determinism.

use polyprof_core::polyfold::{LabelFold, StreamFolder};
use polyprof_core::polyir::build::ProgramBuilder;
use polyprof_core::polyir::IBinOp;
use polyprof_core::polylib::{AffineExpr, Polyhedron, Rat};
use polyprof_core::polyvm::{sinks::RecordingSink, Vm};
use proptest::prelude::*;

proptest! {
    /// Fourier–Motzkin min/max bounds contain every sampled point's value.
    #[test]
    fn polylib_extrema_bound_samples(
        lo0 in -5i64..5, ext0 in 1i64..6,
        lo1 in -5i64..5, ext1 in 1i64..6,
        c0 in -3i64..=3, c1 in -3i64..=3, cc in -10i64..=10,
    ) {
        let mut p = Polyhedron::universe(2);
        let x = AffineExpr::var(2, 0);
        let y = AffineExpr::var(2, 1);
        p.add_var_bounds(0, &AffineExpr::constant(2, lo0), &AffineExpr::constant(2, lo0 + ext0));
        p.add_var_bounds(1, &AffineExpr::constant(2, lo1), &AffineExpr::constant(2, lo1 + ext1));
        let _ = (x, y);
        let f = AffineExpr::new(vec![c0, c1], cc);
        let min = p.min_of(&f);
        let max = p.max_of(&f);
        for i in lo0..=lo0 + ext0 {
            for j in lo1..=lo1 + ext1 {
                let v = Rat::int(f.eval(&[i, j]) as i128);
                match min {
                    polyprof_core::polylib::Bound::Finite(m) => prop_assert!(m <= v),
                    _ => prop_assert!(false, "box is bounded"),
                }
                match max {
                    polyprof_core::polylib::Bound::Finite(m) => prop_assert!(m >= v),
                    _ => prop_assert!(false, "box is bounded"),
                }
            }
        }
    }

    /// Folding a rectangular nest is exact: the polyhedron contains exactly
    /// the pushed points, and affine labels are recovered verbatim.
    #[test]
    fn folding_rectangles_is_exact(
        n in 1i64..8, m in 1i64..8,
        a in -4i64..=4, b in -4i64..=4, c in -20i64..=20,
    ) {
        let mut f = StreamFolder::new(2);
        for i in 0..n {
            for j in 0..m {
                f.push(&[i, j], Some(&[a * i + b * j + c]));
            }
        }
        let r = f.finalize();
        prop_assert!(r.domain.exact);
        prop_assert_eq!(r.domain.count, (n * m) as u64);
        prop_assert_eq!(r.domain.poly.count_points(10_000), Some((n * m) as u64));
        match &r.labels {
            LabelFold::Affine(ls) => {
                for i in 0..n {
                    for j in 0..m {
                        prop_assert_eq!(
                            ls[0].eval(&[i, j]),
                            Rat::int((a * i + b * j + c) as i128)
                        );
                    }
                }
            }
            other => prop_assert!(false, "expected affine labels, got {:?}", other),
        }
    }

    /// Folding always over-approximates: every pushed point is contained in
    /// the folded polyhedron, affine or not.
    #[test]
    fn folding_contains_all_points(points in proptest::collection::vec((0i64..12, 0i64..12), 1..60)) {
        // Sort lexicographically to mimic execution order; dedup.
        let mut pts: Vec<_> = points;
        pts.sort();
        pts.dedup();
        let mut f = StreamFolder::new(2);
        for p in &pts {
            f.push(&[p.0, p.1], None);
        }
        let r = f.finalize();
        for p in &pts {
            prop_assert!(
                r.domain.poly.contains(&[p.0, p.1]),
                "point {:?} escaped the fold",
                p
            );
        }
    }

    /// VM determinism: two runs of a randomly-parameterized reduction loop
    /// produce identical event streams and results.
    #[test]
    fn vm_is_deterministic(n in 1i64..30, step in 1i64..4, init in -100i64..100) {
        let mut pb = ProgramBuilder::new("prop");
        let mut f = pb.func("main", 0);
        let acc = f.const_i(init);
        f.for_loop("L", 0i64, n, step, |f, i| {
            f.iop_to(acc, IBinOp::Add, acc, i);
        });
        f.ret(Some(acc.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let mut r1 = RecordingSink::default();
        let mut r2 = RecordingSink::default();
        let o1 = Vm::new(&p).run(&[], &mut r1).unwrap();
        let o2 = Vm::new(&p).run(&[], &mut r2).unwrap();
        prop_assert_eq!(&o1, &o2);
        prop_assert_eq!(r1.events.len(), r2.events.len());
        prop_assert_eq!(&r1.events, &r2.events);
        // and the reduction value is right
        let expected: i64 = (0..n).step_by(step as usize).sum::<i64>() + init;
        prop_assert_eq!(o1.ret.unwrap().as_i64(), expected);
    }

    /// End-to-end: profiling a random rectangular 2-D elementwise kernel
    /// always reports a fully parallel, 2-D-tilable region.
    #[test]
    fn random_elementwise_kernels_fully_parallel(n in 2i64..8, m in 2i64..8, scale in 1i64..5) {
        let mut pb = ProgramBuilder::new("prop2");
        let a = pb.array_f64(&vec![1.5; (n * m) as usize]);
        let b = pb.alloc((n * m) as u64);
        let mut f = pb.func("main", 0);
        f.for_loop("Li", 0i64, n, 1, |f, i| {
            f.for_loop("Lj", 0i64, m, 1, |f, j| {
                let row = f.mul(i, m);
                let idx = f.add(row, j);
                let v = f.load(a as i64, idx);
                let w = f.fmul(v, scale as f64);
                f.store(b as i64, idx, w);
            });
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let report = polyprof_core::profile(&p);
        let r = &report.feedback.regions[0];
        prop_assert!(r.pct_parallel > 0.99);
        prop_assert_eq!(r.tile_depth, 2);
        prop_assert!(!r.skew);
    }

    /// Shadow-memory last-writer tracking agrees with a naive reference
    /// under random address streams (via the public dependence stream: the
    /// last writer of each flow dep must be the most recent store).
    #[test]
    fn flow_deps_point_to_latest_writer(writes in proptest::collection::vec(0i64..16, 2..40)) {
        // program: store a[w] = k for each k, then load all cells
        let mut pb = ProgramBuilder::new("prop3");
        let warr = pb.array_i64(&writes);
        let a = pb.alloc(16);
        let nw = writes.len() as i64;
        let mut f = pb.func("main", 0);
        f.for_loop("Lw", 0i64, nw, 1, |f, k| {
            let addr = f.load(warr as i64, k);
            f.store(a as i64, addr, k);
        });
        f.for_loop("Lr", 0i64, 16i64, 1, |f, i| {
            f.load(a as i64, i);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, _interner, _s) = polyprof_core::polyddg::profile_collected(&p);
        // for each flow dep store→(read loop), the producer coordinate must
        // be the LAST k writing that address
        use polyprof_core::polyddg::DepKind;
        for (kind, _src, sc, _dst, dc) in &sink.deps {
            if *kind != DepKind::Flow || dc.len() != 2 {
                continue;
            }
            let cell = dc[1]; // read loop index == address
            let expected_last = writes
                .iter()
                .enumerate()
                .filter(|(_, &w)| w == cell)
                .map(|(k, _)| k as i64)
                .next_back();
            if let Some(k) = expected_last {
                prop_assert_eq!(sc[1], k, "cell {} last writer", cell);
            }
        }
    }
}
