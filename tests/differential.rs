//! Differential tests for the zero-allocation stage-2 hot path: the
//! interned-coordinate [`polyddg::DdgProfiler`] must be observationally
//! identical to the retained pre-optimization implementation in
//! [`polyddg::baseline`] — same event streams (points, accesses,
//! dependences, in order) and the same folded DDG — on randomized
//! elementwise kernels, in-place stencils, and deep (arena-spilling) nests.

mod common;

use common::{canon, deep_nest, elementwise, stencil};
use polyir::Program;
use polyprof_core::polyddg::{self, baseline};
use polyprof_core::polyfold::{FoldedDdg, FoldingSink};
use polyprof_core::{polycfg, polyvm};
use proptest::prelude::*;

/// Fold through the production (interned) profiler.
fn fold_production(prog: &Program) -> FoldedDdg {
    let mut rec = polycfg::StructureRecorder::new();
    polyvm::Vm::new(prog).run(&[], &mut rec).expect("pass 1");
    let structure = polycfg::StaticStructure::analyze(prog, rec);
    let mut prof = polyddg::DdgProfiler::new(prog, &structure, FoldingSink::new());
    polyvm::Vm::new(prog).run(&[], &mut prof).expect("pass 2");
    let (sink, interner) = prof.finish();
    sink.finalize(prog, &interner)
}

/// Fold through the retained naive profiler.
fn fold_naive(prog: &Program) -> FoldedDdg {
    let mut rec = polycfg::StructureRecorder::new();
    polyvm::Vm::new(prog).run(&[], &mut rec).expect("pass 1");
    let structure = polycfg::StaticStructure::analyze(prog, rec);
    let mut prof = baseline::NaiveDdgProfiler::new(prog, &structure, FoldingSink::new());
    polyvm::Vm::new(prog).run(&[], &mut prof).expect("pass 2");
    let (sink, interner) = prof.finish();
    sink.finalize(prog, &interner)
}

/// Byte-identical raw streams AND identical folded DDGs.
fn assert_identical(prog: &Program) -> Result<(), String> {
    let (fast, _, _) = polyddg::profile_collected(prog);
    let (slow, _, _) = baseline::profile_collected_naive(prog);
    prop_assert_eq!(&fast.points, &slow.points);
    prop_assert_eq!(&fast.accesses, &slow.accesses);
    prop_assert_eq!(&fast.deps, &slow.deps);

    let f = canon(&fold_production(prog));
    let n = canon(&fold_naive(prog));
    prop_assert_eq!(&f.0, &n.0, "folded statements differ");
    prop_assert_eq!(&f.1, &n.1, "folded dependences differ");
    prop_assert_eq!(&f.2, &n.2, "folded accesses differ");
    Ok(())
}

proptest! {
    #[test]
    fn elementwise_matches_naive(n in 4i64..12, k in -3i64..4) {
        assert_identical(&elementwise(n, k))?;
    }

    #[test]
    fn stencil_matches_naive(n in 5i64..12, t in 1i64..4) {
        assert_identical(&stencil(n, t))?;
    }

    #[test]
    fn deep_nest_matches_naive(s in 2i64..4) {
        assert_identical(&deep_nest(s))?;
    }
}
