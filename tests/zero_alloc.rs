//! Steady-state allocation test for the stage-2 hot path.
//!
//! A counting global allocator measures heap allocations during two full
//! profiling runs of the same kernel that differ only in trip count. All
//! warm-up allocations (shadow pages, folder tables, fitter refits, interner
//! entries) are identical between the runs; if the per-event path allocated
//! — the old `Box<[i64]>`-per-writer behavior — the longer run would
//! allocate tens of thousands more. The assertion gives a small fixed slack
//! for incidental growth (e.g. a `HashMap` resize crossing a threshold).

use polyir::build::ProgramBuilder;
use polyir::Program;
use polyprof_core::{polycfg, polyddg, polyfold, polyvm};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(p, l, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// In-place update kernel: every iteration emits exec events, a load, a
/// store, flow/output/anti dependences — the full per-event surface.
fn kernel(n: i64) -> Program {
    let mut pb = ProgramBuilder::new("zeroalloc");
    let a = pb.alloc(64);
    let mut f = pb.func("main", 0);
    f.for_loop("L", 0i64, n, 1, |f, i| {
        let idx = f.rem(i, 64i64);
        let v = f.load(a as i64, idx);
        let w = f.add(v, i);
        f.store(a as i64, idx, w);
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);
    pb.finish()
}

/// Full pass-1 + pass-2 profile into a folding sink; returns (events,
/// allocations) for the pass-2 portion only.
fn profile_counting(prog: &Program) -> (u64, u64) {
    let mut rec = polycfg::StructureRecorder::new();
    polyvm::Vm::new(prog).run(&[], &mut rec).expect("pass 1");
    let structure = polycfg::StaticStructure::analyze(prog, rec);
    let mut prof = polyddg::DdgProfiler::new(prog, &structure, polyfold::FoldingSink::new());
    let before = ALLOCS.load(Ordering::Relaxed);
    polyvm::Vm::new(prog).run(&[], &mut prof).expect("pass 2");
    let after = ALLOCS.load(Ordering::Relaxed);
    (prof.dyn_ops, after - before)
}

#[test]
fn steady_state_profiling_does_not_allocate_per_event() {
    let short_n = 500i64;
    let long_n = 5000i64;
    // Warm caches/allocator so one-time lazy init doesn't skew the counts.
    let _ = profile_counting(&kernel(short_n));
    let (ops_short, allocs_short) = profile_counting(&kernel(short_n));
    let (ops_long, allocs_long) = profile_counting(&kernel(long_n));
    let extra_ops = ops_long - ops_short;
    assert!(extra_ops > 20_000, "kernel too small for a meaningful test");
    let extra_allocs = allocs_long.saturating_sub(allocs_short);
    // Old behavior: ≥ 2 allocations per memory event → extra_allocs would be
    // on the order of extra_ops. Steady state allows only incidental growth.
    assert!(
        extra_allocs < 64,
        "profiling allocates in steady state: {extra_allocs} extra allocations \
         over {extra_ops} extra dynamic ops (short: {allocs_short}, long: {allocs_long})"
    );
}

/// As above, through the sharded pipeline: (events, allocations) across the
/// whole staged pass 2 — all threads share the one global allocator, so the
/// count covers every stage and shard.
fn profile_counting_pipelined(prog: &Program) -> (u64, u64) {
    use polyprof_core::polyfold::pipeline::{fold_pipelined, PipelineConfig};
    let mut rec = polycfg::StructureRecorder::new();
    polyvm::Vm::new(prog).run(&[], &mut rec).expect("pass 1");
    let structure = polycfg::StaticStructure::analyze(prog, rec);
    let cfg = PipelineConfig {
        fold_threads: 2,
        chunk_events: 1024,
        ..Default::default()
    };
    let before = ALLOCS.load(Ordering::Relaxed);
    let (ddg, _interner) = fold_pipelined(prog, &structure, &cfg);
    let after = ALLOCS.load(Ordering::Relaxed);
    (ddg.total_ops, after - before)
}

/// Inside each pipeline shard the steady state must stay allocation-free:
/// extra allocations between a short and a 10x-longer run are bounded by
/// *chunk traffic* (a few per extra chunk when the recycling pool momentarily
/// runs dry, plus channel parking), never by events. The old per-event
/// behavior would cost tens of thousands of allocations here; the bound
/// of 2048 over ~45 extra chunks (~60k extra events) is two orders of
/// magnitude below that while absorbing scheduler-dependent pool misses.
#[test]
fn pipelined_folding_allocation_bounded_by_chunks_not_events() {
    let short_n = 500i64;
    let long_n = 5000i64;
    let _ = profile_counting_pipelined(&kernel(short_n));
    let (ops_short, allocs_short) = profile_counting_pipelined(&kernel(short_n));
    let (ops_long, allocs_long) = profile_counting_pipelined(&kernel(long_n));
    let extra_ops = ops_long - ops_short;
    assert!(extra_ops > 20_000, "kernel too small for a meaningful test");
    let extra_allocs = allocs_long.saturating_sub(allocs_short);
    assert!(
        extra_allocs < 2048,
        "pipelined folding allocates per event: {extra_allocs} extra allocations \
         over {extra_ops} extra dynamic ops (short: {allocs_short}, long: {allocs_long})"
    );
}
