//! Integration tests reproducing the paper's figures exactly:
//! Fig. 2 (loop-nesting-tree, recursive-component-set), Fig. 3 (dynamic
//! IIVs for the two worked examples), Fig. 5 (schedule tree vs CCT),
//! Fig. 7 (flame graph renders).

use polyprof_core::polycfg::{
    LoopEvent, LoopEventGen, LoopForest, RecursiveComponentSet, StaticStructure, StructureRecorder,
};
use polyprof_core::polyiiv::{cct::Cct, IivTracker};
use polyprof_core::polyir::{BlockRef, FuncId, LocalBlockId};
use polyprof_core::polyvm::{EventSink, Vm};
use polyprof_core::profile;
use std::collections::BTreeSet;

/// Fig. 2a/2b: the example CFG folds into L1{B,C,D}/L2{C,D} with headers B
/// and C and back-edges (D,B), (D,C).
#[test]
fn figure2_cfg_loop_nesting_tree() {
    let blocks: BTreeSet<LocalBlockId> = (0..5).map(LocalBlockId).collect();
    let edges: BTreeSet<(LocalBlockId, LocalBlockId)> =
        [(0, 1), (1, 2), (1, 3), (2, 3), (3, 2), (3, 1), (2, 4)]
            .into_iter()
            .map(|(u, v)| (LocalBlockId(u), LocalBlockId(v)))
            .collect();
    let f = LoopForest::build(&blocks, &edges, LocalBlockId(0));
    assert_eq!(f.loops.len(), 2);
    let l1 = f.loop_of_header(LocalBlockId(1)).unwrap();
    let l2 = f.loop_of_header(LocalBlockId(2)).unwrap();
    assert_eq!(f.info(l1).depth, 1);
    assert_eq!(f.info(l2).parent, Some(l1));
    assert_eq!(
        f.info(l1).back_edges,
        vec![(LocalBlockId(3), LocalBlockId(1))]
    );
    assert_eq!(
        f.info(l2).back_edges,
        vec![(LocalBlockId(3), LocalBlockId(2))]
    );
}

/// Fig. 2c/2d: the example CG yields one component, entries {B},
/// headers {B, C}.
#[test]
fn figure2_recursive_component_set() {
    let funcs: BTreeSet<FuncId> = (0..3).map(FuncId).collect();
    let cg: BTreeSet<(FuncId, FuncId)> = [(0, 1), (1, 2), (2, 1), (2, 2)]
        .into_iter()
        .map(|(u, v)| (FuncId(u), FuncId(v)))
        .collect();
    let rcs = RecursiveComponentSet::build(&funcs, &cg, FuncId(0));
    assert_eq!(rcs.components.len(), 1);
    let c = &rcs.components[0];
    assert_eq!(c.entries.iter().map(|f| f.0).collect::<Vec<_>>(), vec![1]);
    assert_eq!(
        c.headers.iter().map(|f| f.0).collect::<Vec<_>>(),
        vec![1, 2]
    );
}

/// Collects loop-event statistics and the maximal IIV depth over a run.
struct IivProbe<'p> {
    gen: LoopEventGen<'p>,
    iiv: IivTracker,
    buf: Vec<LoopEvent>,
    max_depth: usize,
    iters_rec: usize,
}

impl EventSink for IivProbe<'_> {
    fn local_jump(&mut self, from: BlockRef, to: BlockRef) {
        self.gen.on_jump(from, to, &mut self.buf);
        self.drain();
    }
    fn call(&mut self, cs: BlockRef, callee: FuncId, entry: BlockRef) {
        self.gen.on_call(cs, callee, entry, &mut self.buf);
        self.drain();
    }
    fn ret(&mut self, from: FuncId, to: Option<BlockRef>) {
        self.gen.on_ret(from, to, &mut self.buf);
        self.drain();
    }
}

impl IivProbe<'_> {
    fn new<'p>(p: &'p polyprof_core::polyir::Program, s: &'p StaticStructure) -> IivProbe<'p> {
        let entry = p.entry.unwrap();
        IivProbe {
            gen: LoopEventGen::new(s),
            iiv: IivTracker::new(BlockRef {
                func: entry,
                block: p.func(entry).entry(),
            }),
            buf: Vec::new(),
            max_depth: 0,
            iters_rec: 0,
        }
    }
    fn drain(&mut self) {
        for ev in self.buf.drain(..).collect::<Vec<_>>() {
            if matches!(ev, LoopEvent::IterCall { .. } | LoopEvent::IterRet { .. }) {
                self.iters_rec += 1;
            }
            self.iiv.apply(&ev);
            self.max_depth = self.max_depth.max(self.iiv.depth());
        }
    }
}

/// Fig. 3 Ex. 1: a 2×2 interprocedural nest reaches IIV depth 3 (root +
/// two loops across the call).
#[test]
fn figure3_example1_iiv_depth() {
    let p = rodinia::paper_examples::fig3_example1(2, 2);
    let mut rec = StructureRecorder::new();
    Vm::new(&p).run(&[], &mut rec).unwrap();
    let s = StaticStructure::analyze(&p, rec);
    let mut probe = IivProbe::new(&p, &s);
    Vm::new(&p).run(&[], &mut probe).unwrap();
    assert_eq!(probe.max_depth, 3);
    assert_eq!(probe.iters_rec, 0, "no recursion in Ex. 1");
}

/// Fig. 3 Ex. 2: recursion depth k yields exactly k Ic + k Ir events
/// (the IV advances on calls AND returns) and the IIV depth stays at 2
/// regardless of k.
#[test]
fn figure3_example2_recursion_iv() {
    for k in [3i64, 7] {
        let p = rodinia::paper_examples::fig3_example2(k);
        let mut rec = StructureRecorder::new();
        Vm::new(&p).run(&[], &mut rec).unwrap();
        let s = StaticStructure::analyze(&p, rec);
        let mut probe = IivProbe::new(&p, &s);
        Vm::new(&p).run(&[], &mut probe).unwrap();
        assert_eq!(probe.iters_rec as i64, 2 * k, "k Ic + k Ir events");
        assert_eq!(probe.max_depth, 2, "recursion folds to one dimension");
    }
}

/// Fig. 5 table: the CCT grows with recursion depth; the folded
/// representation (statement count) does not.
#[test]
fn figure5_cct_vs_schedule_tree() {
    let deep = rodinia::paper_examples::fig3_example2(32);
    let shallow = rodinia::paper_examples::fig3_example2(4);
    let cct_depth = |p: &polyprof_core::polyir::Program| {
        let mut cct = Cct::new(p.entry.unwrap());
        Vm::new(p).run(&[], &mut cct).unwrap();
        cct.max_depth()
    };
    assert!(
        cct_depth(&deep) > cct_depth(&shallow) + 20,
        "CCT grows linearly"
    );
    let rep_deep = profile(&deep);
    let rep_shallow = profile(&shallow);
    assert_eq!(
        rep_deep.folded_stats.0, rep_shallow.folded_stats.0,
        "folded statement count is recursion-depth independent"
    );
}

/// Fig. 7: flame graphs render for backprop with both kernels visible.
#[test]
fn figure7_flamegraph_renders() {
    let report = profile(&rodinia::backprop::build().program);
    let svg = &report.flamegraph_svg;
    assert!(svg.contains("<svg") && svg.contains("</svg>"));
    assert!(svg.contains("bpnn_layerforward"));
    assert!(svg.contains("bpnn_adjust_weights"));
    assert!(
        svg.matches("<rect").count() >= 6,
        "expected a populated flame graph"
    );
}
