//! Shared fixtures for the differential suites: canonical folded-DDG
//! rendering and the randomized trace builders (elementwise / stencil /
//! deep nest) used by both the interned-vs-naive and the sharded-vs-serial
//! parity tests.

#![allow(dead_code)] // each test binary uses its own subset

use polyir::build::ProgramBuilder;
use polyir::Program;
use polyprof_core::polyfold::FoldedDdg;

/// Canonical, order-independent rendering of a folded DDG: sorted statement
/// and access rows plus the (already deterministically sorted) dependence
/// rows, including domains, label folds, and distance ranges.
pub fn canon(ddg: &FoldedDdg) -> (Vec<String>, Vec<String>, Vec<String>) {
    let mut stmts: Vec<String> = ddg
        .stmts
        .values()
        .map(|s| format!("{:?}", (s.stmt, &s.domain, &s.values, s.is_scev)))
        .collect();
    stmts.sort();
    let deps: Vec<String> = ddg
        .deps
        .iter()
        .map(|d| {
            format!(
                "{:?}",
                (d.kind, d.src, d.dst, d.class, &d.domain, &d.src_map, &d.delta)
            )
        })
        .collect();
    let mut accs: Vec<String> = ddg
        .accesses
        .values()
        .map(|a| format!("{:?}", (a.stmt, &a.domain, &a.addr, a.is_write)))
        .collect();
    accs.sort();
    (stmts, deps, accs)
}

/// c[i] = a[i]*k + b[i] with data-dependent contents.
pub fn elementwise(n: i64, k: i64) -> Program {
    let mut pb = ProgramBuilder::new("elemwise");
    let a = pb.array_i64(&(0..n).collect::<Vec<_>>());
    let b = pb.array_i64(&(0..n).map(|i| i * 3 % 7).collect::<Vec<_>>());
    let c = pb.alloc(n as u64);
    let mut f = pb.func("main", 0);
    f.for_loop("L", 0i64, n, 1, |f, i| {
        let va = f.load(a as i64, i);
        let vb = f.load(b as i64, i);
        let t = f.mul(va, k);
        let s = f.add(t, vb);
        f.store(c as i64, i, s);
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);
    pb.finish()
}

/// In-place 3-point stencil over `t` time steps: flow, anti, AND output
/// dependences, loop-carried at both levels.
pub fn stencil(n: i64, t: i64) -> Program {
    let mut pb = ProgramBuilder::new("stencil");
    let a = pb.array_i64(&(0..n).map(|i| i * i % 11).collect::<Vec<_>>());
    let mut f = pb.func("main", 0);
    f.for_loop("T", 0i64, t, 1, |f, _| {
        f.for_loop("I", 1i64, n - 1, 1, |f, i| {
            let im = f.add(i, -1i64);
            let ip = f.add(i, 1i64);
            let l = f.load(a as i64, im);
            let m = f.load(a as i64, i);
            let r = f.load(a as i64, ip);
            let s = f.add(l, m);
            let s2 = f.add(s, r);
            f.store(a as i64, i, s2);
        });
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);
    pb.finish()
}

/// A 5-deep nest (6-dimensional coordinates): deeper than the inline
/// snapshot capacity, so every writer record exercises the spill arena.
pub fn deep_nest(s: i64) -> Program {
    let mut pb = ProgramBuilder::new("deep");
    let acc = pb.alloc(1);
    let mut f = pb.func("main", 0);
    f.for_loop("L0", 0i64, s, 1, |f, _| {
        f.for_loop("L1", 0i64, s, 1, |f, _| {
            f.for_loop("L2", 0i64, s, 1, |f, _| {
                f.for_loop("L3", 0i64, 2i64, 1, |f, _| {
                    f.for_loop("L4", 0i64, 2i64, 1, |f, i| {
                        let v = f.load(acc as i64, 0i64);
                        let w = f.add(v, i);
                        f.store(acc as i64, 0i64, w);
                    });
                });
            });
        });
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);
    pb.finish()
}
