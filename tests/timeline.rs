//! Observability-layer invariants (polytrace v2): histogram algebra
//! (property-based), timeline well-formedness and counter reconciliation
//! at every shard count, shard-merge exactness, live-progress sampling,
//! and the `Off`/`Counters` perturbation-free guarantee.
//!
//! These are the tests behind CI's `timeline-gate` step (together with the
//! `trace_export` binary, which gates the on-disk Chrome JSON).

mod common;

use common::stencil;
use polyprof_core::polytrace::{Counter, HistKind, Histogram, TraceEventKind};
use polyprof_core::{profile_with, MetricsLevel, ProfileConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

fn trace_run(fold_threads: usize) -> polyprof_core::Report {
    let prog = stencil(6, 40);
    let cfg = ProfileConfig::new()
        .with_fold_threads(fold_threads)
        .with_chunk_events(64) // small chunks: many per-chunk trace records
        .with_metrics(MetricsLevel::Trace);
    profile_with(&prog, &cfg)
}

// ---------------------------------------------------------------------------
// Histogram algebra (property-based)
// ---------------------------------------------------------------------------

fn hist_of(vals: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

/// Full-spread `u64` sample vectors (the vendored proptest implements
/// `Strategy` for `u32` ranges; a splitmix-style multiply scatters those
/// across all 64 bits, hitting every histogram octave).
fn u64_vec(size: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u32..u32::MAX).prop_map(|v| (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        size,
    )
}

proptest! {
    /// Merge is associative and commutative: any merge tree over any
    /// partition of a stream equals the single-histogram result — this is
    /// what makes per-shard histograms mergeable like `merge_parts`.
    #[test]
    fn hist_merge_associative_commutative(
        a in u64_vec(0..40),
        b in u64_vec(0..40),
        c in u64_vec(0..40),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
        let mut ab_c = ha.clone();
        ab_c.merge(&hb);
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // a ⊔ b == b ⊔ a
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        // and both equal the single-stream histogram
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&ab_c, &hist_of(&all));
    }

    /// Percentiles are bounded by the recorded extrema and ordered:
    /// min ≤ p50 ≤ p90 ≤ p99 ≤ max.
    #[test]
    fn hist_percentiles_bounded_and_monotone(
        vals in u64_vec(1..200),
    ) {
        let h = hist_of(&vals);
        let lo = *vals.iter().min().unwrap();
        let hi = *vals.iter().max().unwrap();
        let (p50, p90, p99) = (h.percentile(0.50), h.percentile(0.90), h.percentile(0.99));
        prop_assert_eq!(h.min(), lo);
        prop_assert_eq!(h.max(), hi);
        prop_assert!(lo <= p50 && p50 <= p90 && p90 <= p99 && p99 <= hi,
            "min {lo} p50 {p50} p90 {p90} p99 {p99} max {hi}");
    }
}

/// Zero- and one-sample edge cases have exact, non-panicking answers.
#[test]
fn hist_zero_and_one_sample_edges() {
    let empty = Histogram::new();
    assert!(empty.is_empty());
    assert_eq!(empty.count(), 0);
    assert_eq!(empty.min(), 0);
    assert_eq!(empty.max(), 0);
    assert_eq!(empty.percentile(0.50), 0);
    assert_eq!(empty.percentile(0.99), 0);

    let one = hist_of(&[42_000_000_007]);
    assert_eq!(one.count(), 1);
    // A single sample IS every percentile, exactly (bucket width clamped
    // to the recorded min/max).
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(one.percentile(q), 42_000_000_007, "q={q}");
    }
}

/// The acceptance criterion, directly: split one event stream across K
/// "shards", record per-shard histograms, merge — identical to the single
/// histogram of the unsplit stream, for every K.
#[test]
fn shard_partitioned_histograms_merge_exactly() {
    let stream: Vec<u64> = (0u64..5000)
        .map(|i| i.wrapping_mul(2654435761) >> 13)
        .collect();
    let single = hist_of(&stream);
    for k in [1usize, 2, 4, 7] {
        let mut shards = vec![Histogram::new(); k];
        for (i, &v) in stream.iter().enumerate() {
            shards[i % k].record(v);
        }
        let mut merged = Histogram::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged, single, "k={k}");
    }
}

// ---------------------------------------------------------------------------
// Timeline well-formedness + counter reconciliation
// ---------------------------------------------------------------------------

/// At `Trace`, every K: the timeline is non-empty, drop-free, per-lane
/// begin/end events obey stack discipline (every end closes the matching
/// innermost begin), and the chunk-granular events reconcile **exactly**
/// with the polytrace counters.
#[test]
fn timeline_well_formed_and_reconciles_at_every_k() {
    for k in [1usize, 2, 4] {
        let r = trace_run(k);
        let m = r.metrics.as_ref().expect("Trace run has metrics");
        assert_eq!(m.trace_dropped, 0, "k={k}: journal overflow");
        assert!(!m.timeline.is_empty(), "k={k}: empty timeline");

        // Stack discipline per lane (events are sorted by timestamp).
        let mut stacks: HashMap<u32, Vec<&str>> = HashMap::new();
        for ev in &m.timeline {
            let stack = stacks.entry(ev.tid).or_default();
            match ev.kind {
                TraceEventKind::Begin => stack.push(ev.name),
                TraceEventKind::End => {
                    let open = stack.pop();
                    assert_eq!(
                        open,
                        Some(ev.name),
                        "k={k}: end {:?} closes {open:?} on lane {}",
                        ev.name,
                        ev.tid
                    );
                }
                TraceEventKind::Instant => {}
            }
        }
        for (tid, stack) in &stacks {
            assert!(stack.is_empty(), "k={k}: lane {tid} left open: {stack:?}");
        }

        // Timeline ↔ counters: two views of one run.
        let fold_ends = m.timeline_count("fold-chunk", TraceEventKind::End);
        assert_eq!(
            fold_ends,
            m.counter(Counter::ChunksFolded),
            "k={k}: fold-chunk spans vs chunks_folded"
        );
        let sends = m.timeline_count("chunk-send", TraceEventKind::Instant);
        assert_eq!(
            sends,
            m.counter(Counter::ChunkRecycled) + m.counter(Counter::ChunkFresh),
            "k={k}: chunk-send instants vs chunks shipped"
        );
        if k == 1 {
            assert_eq!(fold_ends + sends, 0, "serial run has no chunk events");
        } else {
            assert!(fold_ends > 0, "k={k}: no fold-chunk spans traced");
        }

        // The Chrome export exists exactly at Trace and carries the events.
        let json = r.timeline_json().expect("Trace exports a timeline");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
    }
}

/// `Trace` runs populate the latency histograms the pipeline feeds:
/// fold-chunk times and chunk-send telemetry exist at K > 1, and the
/// histogram counts agree with the chunk counters.
#[test]
fn trace_run_populates_latency_histograms() {
    let r = trace_run(3);
    let m = r.metrics.as_ref().unwrap();
    let fold = m.hist(HistKind::FoldChunkNs).expect("fold-time histogram");
    assert_eq!(fold.count(), m.counter(Counter::ChunksFolded));
    let occ = m
        .hist(HistKind::ChunkOccupancy)
        .expect("occupancy histogram");
    assert_eq!(
        occ.count(),
        m.counter(Counter::ChunkRecycled) + m.counter(Counter::ChunkFresh)
    );
    // Occupancy never exceeds the configured chunk capacity (64 above).
    assert!(occ.max() <= 64, "occupancy {} > chunk capacity", occ.max());
    assert!(
        m.hist(HistKind::QueueDepth).is_some(),
        "queue-depth histogram"
    );
}

// ---------------------------------------------------------------------------
// Live-progress sampler
// ---------------------------------------------------------------------------

/// `with_progress` arms the watcher thread: snapshots arrive in time
/// order with monotone cumulative counters, and the knob quietly lifts
/// `Off` to `Counters` so there is something to sample.
#[test]
fn progress_sampler_streams_monotone_snapshots() {
    let w = rodinia::backprop::build();
    let cfg = ProfileConfig::new().with_progress(Duration::from_micros(100));
    let r = profile_with(&w.program, &cfg);
    assert!(
        r.metrics.is_some(),
        "progress sampling implies at least Counters"
    );
    assert!(!r.progress.is_empty(), "no snapshots sampled");
    for pair in r.progress.windows(2) {
        assert!(pair[0].t_ns <= pair[1].t_ns, "snapshots out of order");
        assert!(pair[0].dyn_ops <= pair[1].dyn_ops);
        assert!(pair[0].events_folded <= pair[1].events_folded);
    }
    // Without a budget there is no pressure and no deadline to report.
    let last = r.progress.last().unwrap();
    assert!(!last.budget_pressure);
    assert_eq!(last.deadline_remaining_ns, None);
}

/// With a (generous) budget armed, the sampler surfaces its gauges.
#[test]
fn progress_sampler_reports_budget_gauges() {
    let w = rodinia::backprop::build();
    let cfg = ProfileConfig::new()
        .with_progress(Duration::from_micros(100))
        .with_memory_budget(1 << 30)
        .with_deadline(Duration::from_secs(3600));
    let r = profile_with(&w.program, &cfg);
    assert!(!r.degradation.deadline_hit);
    assert!(!r.progress.is_empty());
    let last = r.progress.last().unwrap();
    let remaining = last.deadline_remaining_ns.expect("deadline armed");
    assert!(remaining > 0 && remaining <= 3600 * 1_000_000_000);
}

// ---------------------------------------------------------------------------
// Perturbation-free lower tiers
// ---------------------------------------------------------------------------

/// `Counters` output must not grow any of the new `Timing`+/`Trace`-only
/// sections: no histograms, no VM profile, no timeline — the JSON and the
/// report text stay byte-compatible with pre-v2 output.
#[test]
fn counters_level_is_free_of_v2_sections() {
    let prog = stencil(6, 40);
    let cfg = ProfileConfig::new()
        .with_fold_threads(2)
        .with_metrics(MetricsLevel::Counters);
    let r = profile_with(&prog, &cfg);
    let m = r.metrics.as_ref().unwrap();
    assert!(m.hists.is_empty());
    assert!(m.vm_ops.is_empty());
    assert!(m.timeline.is_empty());
    assert!(r.timeline_json().is_none());
    assert!(r.progress.is_empty());
    let json = r.metrics_json().unwrap();
    for key in ["\"histograms\"", "\"vm_ops\"", "\"trace_events\""] {
        assert!(!json.contains(key), "{key} leaked into Counters JSON");
    }
    assert!(!r.full_text.contains("VM profile"));

    // Timing gains the VM profile + histograms; Trace gains the timeline.
    let t = profile_with(&prog, &cfg.clone().with_metrics(MetricsLevel::Timing));
    assert!(t.full_text.contains("VM profile"));
    assert!(t.metrics_json().unwrap().contains("\"histograms\""));
    assert!(t.timeline_json().is_none(), "Timing must not trace");
}
