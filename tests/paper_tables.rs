//! Integration tests reproducing the paper's tables: Table 1/2 (the Fig. 6
//! kernel's dependence streams and their folded form), Table 3 (backprop
//! feedback shape), Table 4 (GemsFDTD feedback shape).

use polyprof_core::polyddg::DepKind;
use polyprof_core::polyfold::fold_program;
use polyprof_core::polylib::Rat;
use polyprof_core::profile;
use rodinia::paper_examples::fig6_kernel;

/// Table 2: the three dependence relations of the Fig. 6 kernel fold into
/// exactly the paper's domains and affine maps (n1 = 42, n2 = 15).
#[test]
fn table2_folded_dependences() {
    let p = fig6_kernel(42, 15);
    let (ddg, _, _) = fold_program(&p);

    // Collect affine register-dep relations over depth-3 consumers.
    let reg_deps: Vec<_> = ddg
        .deps
        .iter()
        .filter(|d| d.kind == DepKind::Reg && d.domain.dim == 3)
        .collect();
    assert!(!reg_deps.is_empty());

    // Same-iteration relations (I1→I2, I2→I4 shape): map cj'=cj, ck'=ck on
    // the full rectangle 15×42.
    let same_iter: Vec<_> = reg_deps
        .iter()
        .filter(|d| d.class.is_none() && d.domain.exact && d.domain.count == 15 * 42)
        .collect();
    assert!(
        !same_iter.is_empty(),
        "full-rectangle intra-iteration dependences must fold exactly"
    );
    for d in &same_iter {
        let map = d.affine_src_map().expect("affine producer map");
        // cj' = cj
        assert_eq!(map[1].coeffs[1], Rat::ONE);
        assert_eq!(map[1].c, Rat::ZERO);
        // ck' = ck
        assert_eq!(map[2].coeffs[2], Rat::ONE);
        assert_eq!(map[2].c, Rat::ZERO);
    }

    // The loop-carried reduction (I4→I4 shape): domain 1 ≤ ck < 42 per cj,
    // map ck' = ck − 1.
    let carried: Vec<_> = reg_deps
        .iter()
        .filter(|d| d.class == Some(2) && d.src == d.dst && d.domain.exact)
        .collect();
    assert!(!carried.is_empty(), "the sum reduction must fold");
    for d in &carried {
        assert_eq!(d.domain.count, 15 * 41);
        assert_eq!(
            *d.domain.box_lo.last().unwrap(),
            1,
            "first iteration excluded"
        );
        let map = d.affine_src_map().expect("affine producer map");
        assert_eq!(map[2].coeffs[2], Rat::ONE);
        assert_eq!(map[2].c, -Rat::ONE);
    }
}

/// §5 SCEV example: I5 (k++) and I8 (j++) are recognized and removed.
#[test]
fn scev_i5_i8_removed() {
    let p = fig6_kernel(42, 15);
    let (mut ddg, interner, _) = fold_program(&p);
    let scevs = ddg.scev_stmts();
    // At least the two latch increments and the two header compares.
    assert!(scevs.len() >= 4, "got {}", scevs.len());
    let mut saw_latch_add = 0;
    for s in &scevs {
        if matches!(
            p.instr(interner.stmt_info(*s).instr),
            polyprof_core::polyir::Instr::IOp {
                op: polyprof_core::polyir::IBinOp::Add,
                ..
            }
        ) {
            saw_latch_add += 1;
        }
    }
    assert!(saw_latch_add >= 2, "both loop counters must be SCEVs");
    let (sr, dr) = ddg.remove_scevs();
    assert!(sr >= 4 && dr > 0);
}

/// Table 3 shape: backprop's two kernels — outer parallel, permutable 2-D
/// bands, big reuse improvement via permutation, interchange suggested.
#[test]
fn table3_backprop_shape() {
    let report = profile(&rodinia::backprop::build().program);
    assert_eq!(report.feedback.regions.len(), 2);
    for r in &report.feedback.regions {
        assert!(r.outer_parallel, "{}: outer loop parallel", r.name);
        assert_eq!(r.tile_depth, 2, "{}: fully permutable 2-D nest", r.name);
        assert!(!r.skew);
        assert!(
            r.pct_preuse > r.pct_reuse,
            "{}: permutation must improve stride-0/1 ({} → {})",
            r.name,
            r.pct_reuse,
            r.pct_preuse
        );
        assert!(r.suggestions.iter().any(|s| s.contains("interchange")));
    }
    // L_adjust (elementwise) is the bigger region in ops, like the paper's
    // 46% vs 14%.
    assert!(report.feedback.regions[0].ops > report.feedback.regions[1].ops);
}

/// Table 4 shape: GemsFDTD updates are fully parallel, tilable ≥ 3-D
/// without skew, and ~100% of region ops are tilable.
#[test]
fn table4_gemsfdtd_shape() {
    let report = profile(&rodinia::gemsfdtd::build().program);
    let r = &report.feedback.regions[0];
    assert!(r.tile_depth >= 3);
    assert!(!r.skew);
    assert!(r.pct_parallel > 0.9);
    assert!(r.pct_tilops > 0.9);
    assert!(r.suggestions.iter().any(|s| s.contains("tile")));
}

/// Table 2 textual rendering sanity (the bench binary's core path).
#[test]
fn table2_display_format() {
    let p = fig6_kernel(8, 4);
    let (ddg, _, _) = fold_program(&p);
    let any_affine = ddg
        .deps
        .iter()
        .find(|d| d.kind == DepKind::Reg && d.affine_src_map().is_some())
        .expect("affine dep");
    let s = polyprof_core::polyfold::display_dep(
        any_affine,
        &["c0", "cj", "ck"],
        &["c0'", "cj'", "ck'"],
    );
    assert!(s.contains(">= 0"));
    assert!(s.contains("="));
}
