//! Strict IR verifier over every shipped workload, plus targeted negative
//! cases for each class of violation `Program::validate` reports.

mod common;

use polyir::build::ProgramBuilder;
use polyir::{Block, Function, Instr, LocalBlockId, Operand, Program, Reg, Terminator};

/// Every Rodinia workload (Table 5 rows), the GemsFDTD kernels, and the
/// paper's worked examples must pass the strict verifier.
#[test]
fn rodinia_suite_verifies() {
    for w in rodinia::all_rodinia() {
        let errs = w.program.validate();
        assert!(errs.is_empty(), "{}: {:?}", w.name, errs);
    }
    let g = rodinia::gemsfdtd::build();
    assert!(
        g.program.validate().is_empty(),
        "{:?}",
        g.program.validate()
    );
    for (name, p) in [
        (
            "fig3_example1",
            rodinia::paper_examples::fig3_example1(6, 4),
        ),
        ("fig3_example2", rodinia::paper_examples::fig3_example2(3)),
        ("fig6_kernel", rodinia::paper_examples::fig6_kernel(8, 8)),
    ] {
        let errs = p.validate();
        assert!(errs.is_empty(), "{name}: {errs:?}");
    }
}

/// The synthetic differential fixtures must verify too.
#[test]
fn synthetic_fixtures_verify() {
    for (name, p) in [
        ("elementwise", common::elementwise(16, 3)),
        ("stencil", common::stencil(12, 3)),
        ("deep_nest", common::deep_nest(3)),
    ] {
        let errs = p.validate();
        assert!(errs.is_empty(), "{name}: {errs:?}");
    }
}

/// Minimal valid single-function program used as a mutation base.
fn tiny() -> Program {
    let mut pb = ProgramBuilder::new("tiny");
    let mut f = pb.func("main", 0);
    let x = f.const_i(1);
    let y = f.add(x, 2i64);
    f.ret(Some(y.into()));
    let fid = f.finish();
    pb.set_entry(fid);
    let p = pb.finish();
    assert!(p.validate().is_empty());
    p
}

fn has_err(p: &Program, needle: &str) -> bool {
    p.validate().iter().any(|e| e.contains(needle))
}

#[test]
fn detects_use_before_assignment() {
    let mut p = tiny();
    // Overwrite `x = const 1` with `x = add r9, r9` where r9 is never written
    // (frame has room: bump n_regs).
    p.funcs[0].n_regs += 8;
    let r9 = Reg(p.funcs[0].n_regs - 1);
    p.funcs[0].blocks[0].instrs[0] = Instr::IOp {
        dst: Reg(0),
        op: polyir::IBinOp::Add,
        a: Operand::Reg(r9),
        b: Operand::Reg(r9),
    };
    assert!(has_err(&p, "read before assignment"));
}

#[test]
fn assignment_on_one_branch_only_is_flagged() {
    // entry: br c, then, join ; then: t = 1 ; join: ret t
    // t is assigned on only one path into join.
    let f = Function {
        name: "onepath".into(),
        n_params: 1, // r0 = c
        n_regs: 2,
        blocks: vec![
            Block {
                name: "entry".into(),
                instrs: vec![],
                term: Terminator::Br {
                    cond: Operand::Reg(Reg(0)),
                    then_: LocalBlockId(1),
                    else_: LocalBlockId(2),
                },
                src_line: 0,
            },
            Block {
                name: "then".into(),
                instrs: vec![Instr::Const {
                    dst: Reg(1),
                    value: polyir::Value::I64(1),
                }],
                term: Terminator::Jump(LocalBlockId(2)),
                src_line: 0,
            },
            Block {
                name: "join".into(),
                instrs: vec![],
                term: Terminator::Ret(Some(Operand::Reg(Reg(1)))),
                src_line: 0,
            },
        ],
        src_file: String::new(),
    };
    let p = Program {
        funcs: vec![f],
        entry: Some(polyir::FuncId(0)),
        data: vec![],
        name: "onepath".into(),
    };
    assert!(has_err(&p, "read before assignment"));
}

#[test]
fn unreachable_blocks_are_not_flagged() {
    let mut p = tiny();
    // Dead block reading an unassigned register: must NOT trip the verifier.
    p.funcs[0].n_regs += 1;
    let dead = Reg(p.funcs[0].n_regs - 1);
    p.funcs[0].blocks.push(Block {
        name: "dead".into(),
        instrs: vec![],
        term: Terminator::Ret(Some(Operand::Reg(dead))),
        src_line: 0,
    });
    assert!(!has_err(&p, "read before assignment"));
}

#[test]
fn detects_float_branch_condition() {
    let mut p = tiny();
    p.funcs[0].blocks[0].term = Terminator::Br {
        cond: Operand::ImmF(1.0),
        then_: LocalBlockId(0),
        else_: LocalBlockId(0),
    };
    assert!(has_err(&p, "float immediate"));
}

#[test]
fn detects_mixed_return_arity() {
    let mut p = tiny();
    p.funcs[0].blocks.push(Block {
        name: "void".into(),
        instrs: vec![],
        term: Terminator::Ret(None),
        src_line: 0,
    });
    // Block 0 keeps its `Ret(Some)`: both arities now coexist (the arity
    // scan is structural, reachability does not excuse it).
    assert!(has_err(&p, "mixes value and void returns"));
}

#[test]
fn detects_value_call_to_void_callee() {
    let mut pb = ProgramBuilder::new("voidcall");
    let mut v = pb.func("sink", 0);
    v.ret(None);
    let vid = v.finish();
    let mut f = pb.func("main", 0);
    let r = f.call(vid, &[]);
    f.ret(Some(r.into()));
    let fid = f.finish();
    pb.set_entry(fid);
    let p = pb.finish();
    assert!(has_err(&p, "only returns void"));
}

#[test]
fn detects_out_of_range_register_and_block() {
    let mut p = tiny();
    p.funcs[0].blocks[0].term = Terminator::Jump(LocalBlockId(99));
    assert!(has_err(&p, "missing block"));
    let mut p = tiny();
    p.funcs[0].blocks[0].instrs[0] = Instr::Const {
        dst: Reg(1000),
        value: polyir::Value::I64(0),
    };
    assert!(has_err(&p, "out of range"));
}
