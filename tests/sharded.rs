//! Differential tests for the sharded folding pipeline: a pipelined run —
//! event generation, shadow resolution, and K folding shards on separate
//! threads — must produce *byte-identical* folded DDGs and reports to the
//! retained serial path, for every shard count, on randomized elementwise,
//! stencil, and deep-nest (arena-spilling) traces.
//!
//! Why this must hold: every folding key (statement id; `(kind, src, dst,
//! class)` for dependences, routed by consumer id) lives wholly in one
//! shard, the single-producer FIFO channels preserve the serial event order
//! per shard, and the merge sorts dependences by their full — unique — key.
//! So per-key folder state is identical and merge order is irrelevant.

mod common;

use common::{canon, deep_nest, elementwise, stencil};
use polyir::Program;
use polyprof_core::polyfold::pipeline::{fold_program_pipelined, PipelineConfig};
use polyprof_core::polyfold::{self, FoldedDdg};
use polyprof_core::{profile_with, ProfileConfig};
use proptest::prelude::*;

fn fold_serial(prog: &Program) -> FoldedDdg {
    polyfold::fold_program(prog).0
}

fn fold_sharded(prog: &Program, k: usize, chunk_events: usize) -> FoldedDdg {
    let cfg = PipelineConfig {
        fold_threads: k,
        chunk_events,
        ..Default::default()
    };
    fold_program_pipelined(prog, &cfg).0
}

/// Canonical renderings must match byte-for-byte at K ∈ {1, 2, 8}. Chunks
/// are kept tiny so every trace crosses many flush boundaries.
fn assert_parity(prog: &Program) -> Result<(), String> {
    let serial = canon(&fold_serial(prog));
    for k in [1usize, 2, 8] {
        let sharded = canon(&fold_sharded(prog, k, 64));
        prop_assert_eq!(&serial.0, &sharded.0, "folded statements differ at K={}", k);
        prop_assert_eq!(
            &serial.1,
            &sharded.1,
            "folded dependences differ at K={}",
            k
        );
        prop_assert_eq!(&serial.2, &sharded.2, "folded accesses differ at K={}", k);
    }
    Ok(())
}

proptest! {
    #[test]
    fn elementwise_sharded_parity(n in 4i64..12, k in -3i64..4) {
        assert_parity(&elementwise(n, k))?;
    }

    #[test]
    fn stencil_sharded_parity(n in 5i64..12, t in 1i64..4) {
        assert_parity(&stencil(n, t))?;
    }

    #[test]
    fn deep_nest_sharded_parity(s in 2i64..4) {
        assert_parity(&deep_nest(s))?;
    }
}

/// End-to-end report parity on a real workload: `profile_with` at 4 folding
/// threads must reproduce the serial report — folded stats, SCEV removal,
/// every table metric, and the annotated AST. (`full_text` is excluded for
/// the same reason as in `profile_all_matches_serial`: hash-map iteration
/// order varies between map *instances* even for identical contents.)
#[test]
fn report_matches_serial_on_rodinia() {
    let workloads = [rodinia::backprop::build(), rodinia::pathfinder::build()];
    for w in &workloads {
        let serial = profile_with(&w.program, &ProfileConfig::new());
        let piped = profile_with(
            &w.program,
            &ProfileConfig::new()
                .with_fold_threads(4)
                .with_chunk_events(256),
        );
        assert_eq!(piped.folded_stats, serial.folded_stats);
        assert_eq!(piped.scev_removed, serial.scev_removed);
        assert_eq!(piped.feedback.pct_aff, serial.feedback.pct_aff);
        assert_eq!(piped.feedback.regions.len(), serial.feedback.regions.len());
        for (p, s) in piped.feedback.regions.iter().zip(&serial.feedback.regions) {
            assert_eq!(p.pct_parallel, s.pct_parallel);
            assert_eq!(p.pct_simd, s.pct_simd);
        }
        assert_eq!(piped.annotated_ast, serial.annotated_ast);
    }
}

/// The carried-class split (union-of-relations folding) must survive
/// sharding with non-default options too.
#[test]
fn sharded_parity_without_class_split() {
    let prog = stencil(10, 3);
    let options = polyfold::FoldOptions {
        split_classes: false,
        ..Default::default()
    };
    let serial = {
        let mut rec = polyprof_core::polycfg::StructureRecorder::new();
        polyprof_core::polyvm::Vm::new(&prog)
            .run(&[], &mut rec)
            .expect("pass 1");
        let structure = polyprof_core::polycfg::StaticStructure::analyze(&prog, rec);
        let mut prof = polyprof_core::polyddg::DdgProfiler::new(
            &prog,
            &structure,
            polyfold::FoldingSink::with_options(options),
        );
        polyprof_core::polyvm::Vm::new(&prog)
            .run(&[], &mut prof)
            .expect("pass 2");
        let (sink, interner) = prof.finish();
        sink.finalize(&prog, &interner)
    };
    let cfg = PipelineConfig {
        fold_threads: 3,
        chunk_events: 32,
        options,
        ..Default::default()
    };
    let (sharded, _, _) = fold_program_pipelined(&prog, &cfg);
    assert_eq!(canon(&serial), canon(&sharded));
}
