//! Record→replay gate: a `.ptrace` recording captured during a live fold
//! must re-fold *byte-identically* (via `FoldedDdg::canonical_text`) to the
//! live result at every shard count, and every corruption of the file —
//! truncation, bad magic, a format-version bump, a flipped payload byte, a
//! tampered header count — must surface as a structured `PolyProfError`,
//! never a panic.
//!
//! Why identity holds: a recording carries the fully-resolved folding
//! stream in serial order; replay routes it through the same
//! folding-key-sharded channels as the live pipeline, so per-key folder
//! state is identical and the merge is order-independent.

mod common;

use common::{deep_nest, elementwise, stencil};
use polyprof_core::polyfold::pipeline::{
    fold_pipelined_supervised, PipelineConfig, ResilienceConfig,
};
use polyprof_core::polyfold::{self, replay::fold_recording, FoldOptions, FoldedDdg};
use polyprof_core::polyrec::{FORMAT_VERSION, HDR_EVENTS_OFF, HDR_VERSION_OFF, MAGIC};
use polyprof_core::polyresist::PolyProfError;
use polyprof_core::{polycfg, polyir::Program, polyvm};
use polyprof_core::{profile_with, try_profile_with, ProfileConfig};
use proptest::prelude::*;
use rodinia::paper_examples::fig6_kernel;
use std::fs;
use std::path::{Path, PathBuf};

/// Unique scratch path per (process, test) so parallel test threads never
/// collide; callers clean up with `fs::remove_file` at the end.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("polyrec_{}_{}.ptrace", std::process::id(), name))
}

/// Live pipelined fold that also records to `path`, returning the live DDG.
/// Tiny chunks so every trace crosses many frame boundaries.
fn record_live(prog: &Program, path: &Path, fold_threads: usize) -> FoldedDdg {
    let mut rec = polycfg::StructureRecorder::new();
    polyvm::Vm::new(prog).run(&[], &mut rec).expect("pass 1");
    let structure = polycfg::StaticStructure::analyze(prog, rec);
    let cfg = PipelineConfig {
        fold_threads,
        chunk_events: 64,
        ..Default::default()
    };
    let (ddg, _, _, deg) = fold_pipelined_supervised(
        prog,
        &structure,
        &cfg,
        None,
        None,
        Some(path),
        &ResilienceConfig::default(),
    )
    .expect("recording fold must complete");
    assert!(
        !deg.is_degraded(),
        "recording a healthy run must not degrade: {deg:?}"
    );
    ddg
}

/// The headline invariant: replaying a recording reproduces the live fold
/// byte-for-byte at K ∈ {1, 2, 8}, for elementwise, stencil, deep-nest
/// (arena-spilling), and the paper's Fig. 6 kernel.
#[test]
fn replay_is_byte_identical_at_every_k() {
    let progs = [
        ("elem", elementwise(8, 3)),
        ("stencil", stencil(10, 3)),
        ("deep", deep_nest(2)),
        ("fig6", fig6_kernel(8, 4)),
    ];
    for (name, prog) in &progs {
        let path = scratch(&format!("identity_{name}"));
        let live = record_live(prog, &path, 4).canonical_text();
        for k in [1usize, 2, 8] {
            let (replayed, _) = fold_recording(&path, prog, k, FoldOptions::default(), None)
                .expect("replay must succeed");
            assert_eq!(
                live,
                replayed.canonical_text(),
                "{name}: replayed fold at K={k} diverged from the live fold"
            );
        }
        fs::remove_file(&path).ok();
    }
}

/// The serial (fold_threads = 1) executor records through the same format;
/// its recording replays byte-identically too, and matches the recording
/// taken by the pipelined executor event-for-event after folding.
#[test]
fn serial_recording_matches_pipelined_recording() {
    let prog = stencil(9, 2);
    let serial_path = scratch("serial_rec");
    let piped_path = scratch("piped_rec");

    // Serial executor with a recorder tap, driven through the public API.
    let report = try_profile_with(&prog, &ProfileConfig::new().with_record_to(&serial_path))
        .expect("serial record run");
    let live_serial = polyfold::fold_program(&prog).0.canonical_text();

    let piped = record_live(&prog, &piped_path, 4).canonical_text();
    assert_eq!(live_serial, piped, "serial and pipelined live folds differ");

    for (label, path) in [("serial", &serial_path), ("pipelined", &piped_path)] {
        for k in [1usize, 2, 8] {
            let (ddg, _) = fold_recording(path, &prog, k, FoldOptions::default(), None)
                .expect("replay must succeed");
            assert_eq!(
                live_serial,
                ddg.canonical_text(),
                "{label} recording diverged at K={k}"
            );
        }
    }
    // The tap must not perturb the run it observed: the recorded run's
    // report matches an untapped run of the same config byte-for-byte.
    let untapped = try_profile_with(&prog, &ProfileConfig::new()).expect("untapped run");
    assert_eq!(report.folded_stats, untapped.folded_stats);
    assert_eq!(report.annotated_ast, untapped.annotated_ast);
    fs::remove_file(&serial_path).ok();
    fs::remove_file(&piped_path).ok();
}

/// `replay_from` through the public driver: the replayed report reproduces
/// the live report's folded statistics and annotated AST without a pass-2
/// VM run.
#[test]
fn profile_replay_from_matches_live_report() {
    let prog = fig6_kernel(8, 4);
    let path = scratch("profile_replay");
    let live =
        try_profile_with(&prog, &ProfileConfig::new().with_record_to(&path)).expect("record run");
    for k in [1usize, 8] {
        let replayed = try_profile_with(
            &prog,
            &ProfileConfig::new()
                .with_fold_threads(k)
                .with_replay_from(&path),
        )
        .expect("replay run");
        assert_eq!(live.folded_stats, replayed.folded_stats);
        assert_eq!(live.scev_removed, replayed.scev_removed);
        assert_eq!(live.annotated_ast, replayed.annotated_ast);
    }
    fs::remove_file(&path).ok();
}

/// Replaying against a different program is a structured error naming the
/// hash mismatch — never a silently wrong DDG.
#[test]
fn program_hash_mismatch_is_a_hard_error() {
    let prog = stencil(9, 2);
    let other = elementwise(8, 3);
    let path = scratch("hash_mismatch");
    record_live(&prog, &path, 2);
    let err = fold_recording(&path, &other, 1, FoldOptions::default(), None)
        .expect_err("wrong program must be rejected");
    match &err {
        PolyProfError::Recording { detail, .. } => {
            assert!(detail.contains("program hash mismatch"), "got: {detail}");
        }
        other => panic!("expected Recording error, got {other}"),
    }
    fs::remove_file(&path).ok();
}

/// A future format version (a bumped u32 at `HDR_VERSION_OFF`) is a hard,
/// structured error at open time — old readers must never misparse new
/// streams.
#[test]
fn format_version_bump_is_a_hard_error() {
    let prog = elementwise(6, 2);
    let path = scratch("version_bump");
    record_live(&prog, &path, 2);
    let mut bytes = fs::read(&path).unwrap();
    let off = HDR_VERSION_OFF as usize;
    bytes[off..off + 4].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    let err = fold_recording(&path, &prog, 1, FoldOptions::default(), None)
        .expect_err("future version must be rejected");
    assert!(
        matches!(err, PolyProfError::Recording { .. }),
        "expected structured Recording error, got {err}"
    );
    fs::remove_file(&path).ok();
}

/// A corrupted magic prefix is rejected before anything else is parsed.
#[test]
fn bad_magic_is_a_hard_error() {
    let prog = elementwise(6, 2);
    let path = scratch("bad_magic");
    record_live(&prog, &path, 2);
    let mut bytes = fs::read(&path).unwrap();
    bytes[0] ^= 0xFF;
    assert_ne!(&bytes[..8], &MAGIC[..]);
    fs::write(&path, &bytes).unwrap();
    let err = fold_recording(&path, &prog, 1, FoldOptions::default(), None)
        .expect_err("bad magic must be rejected");
    assert!(matches!(err, PolyProfError::Recording { .. }));
    fs::remove_file(&path).ok();
}

/// Flipping a byte inside the first frame's payload trips the per-frame
/// FNV checksum (or a payload bounds guard) — a structured decode error,
/// not a silently different DDG.
#[test]
fn payload_byte_flip_is_detected() {
    let prog = stencil(9, 2);
    let path = scratch("byte_flip");
    record_live(&prog, &path, 2);
    let mut bytes = fs::read(&path).unwrap();
    // Header is 44 bytes + name; the first frame starts right after it:
    // tag(1) + len(4) + payload. Flip a byte 6 into the frame (inside the
    // payload for any non-empty frame).
    let name_len = u32::from_le_bytes(bytes[40..44].try_into().unwrap()) as usize;
    let frame0 = 44 + name_len;
    bytes[frame0 + 6] ^= 0xFF;
    fs::write(&path, &bytes).unwrap();
    let err = fold_recording(&path, &prog, 1, FoldOptions::default(), None)
        .expect_err("checksum mismatch must be detected");
    assert!(matches!(err, PolyProfError::Recording { .. }));
    fs::remove_file(&path).ok();
}

/// Tampering with the header's total-event count makes the three-way
/// (stream / footer / header) count check fail at finish.
#[test]
fn header_count_tamper_is_detected() {
    let prog = elementwise(8, 3);
    let path = scratch("count_tamper");
    record_live(&prog, &path, 2);
    let mut bytes = fs::read(&path).unwrap();
    let off = HDR_EVENTS_OFF as usize;
    let n = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    bytes[off..off + 8].copy_from_slice(&(n + 1).to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    let err = fold_recording(&path, &prog, 1, FoldOptions::default(), None)
        .expect_err("count disagreement must be detected");
    assert!(matches!(err, PolyProfError::Recording { .. }));
    fs::remove_file(&path).ok();
}

proptest! {
    /// Truncating a recording at *any* point — mid-header, mid-name,
    /// mid-frame, mid-footer, before the end magic — yields a structured
    /// error (no panic, no partial DDG accepted), at serial and sharded
    /// replay alike. The footer's end magic plus the three-way count check
    /// make every strict prefix detectable.
    #[test]
    fn any_truncation_is_a_structured_error(seed in 0i64..1_000_000, k in 0usize..2) {
        let k = [1usize, 4][k];
        let prog = elementwise(7, 2);
        let path = scratch(&format!("trunc_{seed}_{k}"));
        record_live(&prog, &path, 2);
        let bytes = fs::read(&path).unwrap();
        let cut = (seed as usize) % bytes.len();
        fs::write(&path, &bytes[..cut]).unwrap();
        let res = fold_recording(&path, &prog, k, FoldOptions::default(), None);
        fs::remove_file(&path).ok();
        prop_assert!(
            matches!(res, Err(PolyProfError::Recording { .. })),
            "truncation at {} of {} bytes must be a structured error",
            cut,
            bytes.len()
        );
    }
}

/// `record_to` on a replay run is ignored (there is no VM stream to tap):
/// the replay still succeeds and no file appears.
#[test]
fn record_to_is_ignored_during_replay() {
    let prog = elementwise(6, 2);
    let src = scratch("replay_src");
    let ghost = scratch("replay_ghost");
    record_live(&prog, &src, 2);
    let report = profile_with(
        &prog,
        &ProfileConfig::new()
            .with_replay_from(&src)
            .with_record_to(&ghost),
    );
    assert!(report.folded_stats.2 > 0);
    assert!(!ghost.exists(), "replay must not write a new recording");
    fs::remove_file(&src).ok();
}
