//! Differential proptests for the integer fast-path fit verifier: an
//! `OnlineAffineFitter` with the `i64` fast path enabled must be
//! **sample-for-sample equivalent** to the pure-rational reference fitter —
//! same classification (`Affine` / `Range`), same recovered function, same
//! range — on every input stream, including streams engineered to overflow
//! the checked `i64` dot product and force the rational fallback.
//!
//! Why this must hold: the fast path only ever evaluates the *same* affine
//! candidate with exact integer arithmetic. An in-range `i64` result equals
//! the rational evaluation by construction; an overflow is answered by
//! re-evaluating rationally. So no sample can be classified differently —
//! these tests pin that argument against regressions.

use polyprof_core::polyfold::{FitResult, OnlineAffineFitter};
use proptest::prelude::*;

/// Feed the identical stream to both fitters and return both verdicts.
fn run_both(dim: usize, samples: &[(Vec<i64>, i64)]) -> (FitResult, FitResult) {
    let mut fast = OnlineAffineFitter::with_fast(dim, true);
    let mut slow = OnlineAffineFitter::with_fast(dim, false);
    for (x, v) in samples {
        fast.push(x, *v);
        slow.push(x, *v);
    }
    (fast.result(), slow.result())
}

proptest! {
    /// Exact affine streams: both fitters recover the same function.
    #[test]
    fn affine_streams_agree(
        a in -50i64..=50, b in -50i64..=50, c in -1000i64..=1000,
        n in 2i64..10, m in 2i64..10,
    ) {
        let samples: Vec<(Vec<i64>, i64)> = (0..n)
            .flat_map(|i| (0..m).map(move |j| (vec![i, j], a * i + b * j + c)))
            .collect();
        let (fast, slow) = run_both(2, &samples);
        prop_assert_eq!(&fast, &slow);
        prop_assert!(matches!(fast, FitResult::Affine(_)), "{:?}", fast);
    }

    /// Streams with one corrupted sample at a random position: both fitters
    /// see the contradiction at the same sample and refit — or degrade —
    /// identically.
    #[test]
    fn corrupted_streams_agree(
        a in -20i64..=20, c in -100i64..=100,
        n in 3usize..40,
        corrupt_at in 0usize..40, bump in 1i64..=17,
    ) {
        let samples: Vec<(Vec<i64>, i64)> = (0..n as i64)
            .map(|i| {
                let noise = if i as usize == corrupt_at % n { bump } else { 0 };
                (vec![i], a * i + c + noise)
            })
            .collect();
        let (fast, slow) = run_both(1, &samples);
        prop_assert_eq!(fast, slow);
    }

    /// Arbitrary (generally non-affine) value streams: both fitters degrade
    /// to the identical `Range`.
    #[test]
    fn random_streams_agree(values in proptest::collection::vec(-1_000_000i64..1_000_000, 1..80)) {
        let samples: Vec<(Vec<i64>, i64)> =
            values.iter().enumerate().map(|(i, &v)| (vec![i as i64], v)).collect();
        let (fast, slow) = run_both(1, &samples);
        prop_assert_eq!(fast, slow);
    }

    /// Forced-overflow streams: a huge slope makes the checked `i64` dot
    /// product overflow on later samples, so the fast path *must* fall back
    /// to rational evaluation — and still agree with the reference, both on
    /// streams that stay affine and on streams that break.
    #[test]
    fn overflow_streams_agree(
        shift in 2u32..6, n in 3i64..12, break_it in 0u8..2,
    ) {
        let big = i64::MAX >> shift; // slope big enough that big * x overflows
        let samples: Vec<(Vec<i64>, i64)> = (0..n)
            .map(|i| {
                let v = big.wrapping_mul(i); // wrapped == true affine only while in range
                let v = if break_it == 1 && i == n - 1 { v ^ 1 } else { v };
                (vec![i], v)
            })
            .collect();
        let (fast, slow) = run_both(1, &samples);
        prop_assert_eq!(fast, slow);
    }

    /// Mixed-magnitude 2-D streams around the overflow boundary: every
    /// checked product sits near `i64::MAX`, exercising both fast-path
    /// verification and the overflow fallback within one stream.
    #[test]
    fn boundary_streams_agree(
        sa in 1u32..8, sb in 1u32..8, n in 2i64..8, m in 2i64..8,
    ) {
        let a = i64::MAX >> sa;
        let b = i64::MAX >> sb;
        let samples: Vec<(Vec<i64>, i64)> = (0..n)
            .flat_map(|i| {
                (0..m).map(move |j| {
                    (vec![i, j], a.wrapping_mul(i).wrapping_add(b.wrapping_mul(j)))
                })
            })
            .collect();
        let (fast, slow) = run_both(2, &samples);
        prop_assert_eq!(fast, slow);
    }
}
