//! Full-pipeline integration over every Table 5 workload (Experiment I) and
//! the static-baseline comparison (Experiment II).

use polyprof_core::polystatic;
use polyprof_core::profile;

/// Every Rodinia workload survives the whole pipeline and produces sane,
/// internally-consistent metrics.
#[test]
fn experiment1_all_rodinia_profile() {
    for w in rodinia::all_rodinia() {
        let report = profile(&w.program);
        let fb = &report.feedback;
        assert!(!fb.regions.is_empty(), "{}: no regions", w.name);
        assert!(fb.total_ops > 0 && fb.src_ops <= fb.total_ops, "{}", w.name);
        assert!((0.0..=1.0).contains(&fb.pct_aff), "{}: %Aff", w.name);
        let (stmts, _deps, ops) = report.folded_stats;
        assert!(
            (stmts as u64) < ops,
            "{}: folding must compact ({} stmts, {} ops)",
            w.name,
            stmts,
            ops
        );
        for r in &fb.regions {
            assert!((0.0..=1.0).contains(&r.pct_parallel), "{}: %||", w.name);
            assert!((0.0..=1.0).contains(&r.pct_simd), "{}: %simd", w.name);
            assert!(
                r.pct_simd <= r.pct_parallel + 1e-9,
                "{}: simd ⊆ parallel",
                w.name
            );
            assert!((0.0..=1.0 + 1e-9).contains(&r.pct_reuse), "{}", w.name);
            assert!(
                r.pct_preuse + 1e-9 >= r.pct_reuse,
                "{}: permutation can only improve reuse",
                w.name
            );
            assert!(r.tile_depth <= fb.ld_bin, "{}: tile ≤ depth", w.name);
        }
        // Loop depth discovered dynamically matches the workload's design
        // (binary depth, which may differ from ld-src as in the paper).
        assert!(
            fb.ld_bin >= 1,
            "{}: at least one loop must be discovered",
            w.name
        );
    }
}

/// Experiment II: the static baseline fails on every benchmark the paper
/// reports a failure for, with an overlapping reason set.
#[test]
fn experiment2_static_baseline_fails_like_polly() {
    for w in rodinia::all_rodinia() {
        let rep = polystatic::analyze_program(&w.program);
        if w.paper.polly_reasons == "-" {
            continue;
        }
        assert!(
            !rep.all_modeled(),
            "{}: Polly failed in the paper ({}) but the baseline modeled it",
            w.name,
            w.paper.polly_reasons
        );
        // Reason overlap: at least one paper code must be reproduced.
        let measured = rep.summary();
        let overlap = w.paper.polly_reasons.chars().any(|c| measured.contains(c));
        assert!(
            overlap,
            "{}: no overlap between paper reasons {} and measured {}",
            w.name, w.paper.polly_reasons, measured
        );
    }
}

/// The dynamic/static contrast (the paper's core claim): for every
/// benchmark where Polly fails, Poly-Prof still produces a structured
/// transformation result (a region with a tile band or parallel loops).
#[test]
fn dynamic_succeeds_where_static_fails() {
    for w in rodinia::all_rodinia() {
        if w.paper.polly_reasons == "-" {
            continue;
        }
        let report = profile(&w.program);
        let r = &report.feedback.regions[0];
        let found_something =
            r.tile_depth >= 1 || r.pct_parallel > 0.0 || !r.suggestions.is_empty();
        assert!(found_something, "{}: no structured feedback at all", w.name);
    }
}

/// The folding scalability claim (§6): statement counts after folding are
/// in the "few hundreds" even for the most irregular workloads.
#[test]
fn folding_keeps_statement_counts_small() {
    for w in rodinia::all_rodinia() {
        let report = profile(&w.program);
        let (stmts, deps, _) = report.folded_stats;
        assert!(
            stmts < 500,
            "{}: {} statements exceed the scalability envelope",
            w.name,
            stmts
        );
        assert!(deps < 4000, "{}: {} deps", w.name, deps);
    }
}

/// GemsFDTD (Table 4 substrate) also completes the pipeline.
#[test]
fn gemsfdtd_profiles() {
    let report = profile(&rodinia::gemsfdtd::build().program);
    assert!(report.feedback.regions[0].pct_parallel > 0.9);
}
