//! Metrics-consistency invariants for the self-profiling telemetry layer
//! (`polytrace`): the counters harvested from the hot paths must agree with
//! each other and with the run's observable outputs, at every shard count,
//! and the whole layer must vanish at `MetricsLevel::Off`.
//!
//! These are the tests behind CI's `metrics-gate` step.

mod common;

use common::stencil;
use polyprof_core::polytrace::Counter;
use polyprof_core::{profile_with, MetricsLevel, ProfileConfig, RunMetrics};

fn run(fold_threads: usize, level: MetricsLevel) -> RunMetrics {
    let prog = stencil(6, 40);
    let cfg = ProfileConfig::new()
        .with_fold_threads(fold_threads)
        .with_chunk_events(64) // small chunks: exercise flush/recycle paths
        .with_metrics(level);
    profile_with(&prog, &cfg)
        .metrics
        .expect("metrics requested")
}

/// Every event the router ships lands in exactly one folding shard and
/// produces exactly one fold call: routed == per-shard sum == folded, at
/// every K. (K = 1 still pipelines here — `profile_with` would take the
/// serial path, so the one-shard case drives the pipeline directly.)
#[test]
fn routed_events_equal_folded_events_at_every_k() {
    use polyprof_core::polyfold::pipeline::{fold_pipelined_traced, PipelineConfig};
    use polyprof_core::polytrace::Collector;
    use std::sync::Arc;

    let one_shard = {
        let prog = stencil(6, 40);
        let mut rec = polyprof_core::polycfg::StructureRecorder::new();
        polyprof_core::polyvm::Vm::new(&prog)
            .run(&[], &mut rec)
            .unwrap();
        let structure = polyprof_core::polycfg::StaticStructure::analyze(&prog, rec);
        let col = Arc::new(Collector::new(MetricsLevel::Counters));
        let pcfg = PipelineConfig {
            fold_threads: 1,
            chunk_events: 64,
            ..Default::default()
        };
        let _ = fold_pipelined_traced(&prog, &structure, &pcfg, Some(&col));
        col.snapshot(0)
    };
    for (k, m) in [
        (1usize, one_shard),
        (2, run(2, MetricsLevel::Counters)),
        (4, run(4, MetricsLevel::Counters)),
    ] {
        let routed = m.counter(Counter::EventsRouted);
        let folded = m.counter(Counter::EventsFolded);
        let per_shard: u64 = m.shard_events.iter().sum();
        assert!(routed > 0, "k={k}: no events routed");
        assert_eq!(routed, per_shard, "k={k}: routed vs shard sum");
        assert_eq!(per_shard, folded, "k={k}: shard sum vs folded");
        assert_eq!(m.shard_events.len(), k, "k={k}: every shard registered");
    }
}

/// The resolver turns every pre-profiled memory event into exactly one
/// shadow resolution; the shadow MRU sees exactly one lookup per memory
/// event (hits + misses == total lookups).
#[test]
fn shadow_mru_accounts_for_every_memory_event() {
    for k in [2usize, 4] {
        let m = run(k, MetricsLevel::Counters);
        let mem = m.counter(Counter::MemEvents);
        assert!(mem > 0);
        assert_eq!(m.counter(Counter::EventsResolved), mem, "k={k}");
        assert_eq!(
            m.counter(Counter::ShadowMruHit) + m.counter(Counter::ShadowMruMiss),
            mem,
            "k={k}: shadow MRU lookups"
        );
    }
}

/// The context cache is consulted once per context-path lookup, and the
/// pipelined path folds whole chunks: every pipelined run reports a nonzero
/// batched-chunk tally (the serial path replays events directly and reports
/// zero).
#[test]
fn cache_and_chunk_counters_cover_the_run() {
    for k in [1usize, 4] {
        let m = run(k, MetricsLevel::Counters);
        assert!(
            m.counter(Counter::CtxCacheHit) + m.counter(Counter::CtxCacheMiss) > 0,
            "k={k}: context cache untouched"
        );
        if k > 1 {
            assert!(
                m.counter(Counter::ChunksFolded) > 0,
                "k={k}: pipelined run folded no chunks batched"
            );
        } else {
            assert_eq!(
                m.counter(Counter::ChunksFolded),
                0,
                "serial run has no chunks"
            );
        }
    }
}

/// Counters are deterministic facts about the trace, not about threading:
/// the serial path and every pipeline width agree on the fold-side tallies.
#[test]
fn counters_agree_between_serial_and_pipelined() {
    let serial = run(1, MetricsLevel::Counters);
    for k in [2usize, 4] {
        let piped = run(k, MetricsLevel::Counters);
        for c in [
            Counter::DynOps,
            Counter::MemEvents,
            Counter::EventsFolded,
            Counter::DepsFolded,
            Counter::RetiredStmts,
            Counter::RetiredDeps,
            Counter::OverapproxStmts,
        ] {
            assert_eq!(
                serial.counter(c),
                piped.counter(c),
                "k={k}: {} diverged",
                c.name()
            );
        }
    }
}

/// At `Timing` on a Rodinia workload, the sequential stage spans cover the
/// run: their sum lands within 10% of the measured wall time (the paper-
/// style "where did the time go" accounting must not leak whole stages).
#[test]
fn stage_times_sum_to_wall_time_on_rodinia() {
    let w = rodinia::backprop::build();
    let cfg = ProfileConfig::new().with_metrics(MetricsLevel::Timing);
    let m = profile_with(&w.program, &cfg).metrics.unwrap();
    assert!(m.total_ns > 0);
    let seq = m.sequential_ns();
    assert!(seq > 0, "no stage timed anything");
    assert!(
        seq <= m.total_ns,
        "stage sum {seq} exceeds wall {}",
        m.total_ns
    );
    assert!(
        seq as f64 >= 0.90 * m.total_ns as f64,
        "stages cover only {seq} of {} ns wall",
        m.total_ns
    );
}

/// `Counters` must not read clocks: all span slots stay zero, while the
/// same tallies as `Timing` are still collected.
#[test]
fn counters_level_collects_tallies_but_no_clocks() {
    let m = run(2, MetricsLevel::Counters);
    assert_eq!(m.sequential_ns(), 0);
    assert!(m.pipe_ns.iter().all(|&ns| ns == 0));
    assert!(m.counter(Counter::SendStallNs) == 0);
    assert!(m.counter(Counter::RecvStallNs) == 0);
    assert!(m.counter(Counter::EventsFolded) > 0);

    let t = run(2, MetricsLevel::Timing);
    assert_eq!(
        m.counter(Counter::EventsFolded),
        t.counter(Counter::EventsFolded)
    );
}

/// `Off` produces no metrics object at all — the same gate as
/// tests/zero_alloc.rs, asserted at the API level.
#[test]
fn off_level_produces_no_metrics() {
    let prog = stencil(4, 24);
    let r = profile_with(&prog, &ProfileConfig::new());
    assert!(r.metrics.is_none());
    assert!(r.metrics_json().is_none());
    assert!(r.self_flamegraph_svg("self").is_none());
}

/// The JSON snapshot and the self flame graph render from the same
/// `RunMetrics` and carry the headline facts.
#[test]
fn metrics_render_as_json_and_svg() {
    let w = rodinia::backprop::build();
    let cfg = ProfileConfig::new()
        .with_fold_threads(2)
        .with_metrics(MetricsLevel::Timing);
    let r = profile_with(&w.program, &cfg);
    let json = r.metrics_json().unwrap();
    for key in [
        "\"level\"",
        "\"total_ns\"",
        "\"stages_ns\"",
        "\"pipeline_ns\"",
        "\"shard_events\"",
        "\"shard_balance\"",
        "\"counters\"",
        "\"events_folded\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    let svg = r.self_flamegraph_svg("self-profile").unwrap();
    assert!(svg.contains("<svg") && svg.contains("</svg>"));
    assert!(svg.contains("profile"), "profile stage box missing");
    assert!(svg.contains("fold-shard"), "shard boxes missing");
    // The human table prints without panicking and names the stages.
    let table = r.metrics.as_ref().unwrap().to_string();
    assert!(table.contains("profile") && table.contains("events_folded"));
}
