//! Resilience gate: every injectable fault class must yield a *completed*
//! report with its losses recorded in `Report::degradation`, never a hang,
//! deadlock, or caller-visible panic. Budgeted runs must degrade to sound
//! over-approximations (folded deps ⊇ exact serial deps), and an armed but
//! never-firing fault plan must not perturb a single folded byte.
//!
//! The CI `resilience-gate` step runs this suite plus a
//! `POLYPROF_FAULT_PLAN` seed matrix through the bench harness; the
//! environment knob itself is exercised there (mutating the process
//! environment here would race the other test threads).

mod common;

use common::{canon, stencil};
use polyprof_core::polyfold::pipeline::{
    fold_pipelined_supervised, fold_program_pipelined, PipelineConfig, ResilienceConfig,
};
use polyprof_core::polyfold::{self, FoldedDdg, FoldingSink};
use polyprof_core::polyresist::{FaultPlan, FaultSite, ResourceBudget, RunDegradation};
use polyprof_core::{profile_with, try_profile_with, ProfileConfig};
use std::sync::Arc;
use std::time::Duration;

fn supervised_fold(
    prog: &polyprof_core::polyir::Program,
    k: usize,
    res: &ResilienceConfig,
) -> (FoldedDdg, RunDegradation) {
    let mut rec = polyprof_core::polycfg::StructureRecorder::new();
    polyprof_core::polyvm::Vm::new(prog)
        .run(&[], &mut rec)
        .expect("pass 1");
    let structure = polyprof_core::polycfg::StaticStructure::analyze(prog, rec);
    let cfg = PipelineConfig {
        fold_threads: k,
        chunk_events: 64,
        ..Default::default()
    };
    let (ddg, _, _, deg) = fold_pipelined_supervised(prog, &structure, &cfg, None, None, None, res)
        .expect("supervised fold must complete");
    (ddg, deg)
}

/// Every fault class — a panic in each of the three stage kinds, a chunk
/// stall, a chunk drop, a shadow allocation failure, and a malformed chunk —
/// completes end to end through `profile_with` with a populated degradation
/// record.
#[test]
fn every_fault_class_completes_with_degradation() {
    let prog = stencil(10, 3);
    for site in FaultSite::ALL {
        let cfg = ProfileConfig::new()
            .with_fold_threads(3)
            .with_chunk_events(64)
            .with_fault_plan(Arc::new(FaultPlan::single(site, 1)));
        let r = profile_with(&prog, &cfg);
        let deg = &r.degradation;
        assert!(
            deg.faults_injected >= 1,
            "{}: fault never fired: {deg:?}",
            site.name()
        );
        assert!(deg.is_degraded(), "{}: {deg:?}", site.name());
        match site {
            // Pre/resolve panics fail the attempt; the retry succeeds.
            FaultSite::PanicPre | FaultSite::PanicResolve => {
                assert!(deg.stage_retries >= 1, "{}: {deg:?}", site.name())
            }
            // A worker panic is salvaged: the shard is lost, not the run.
            FaultSite::PanicFold => {
                assert_eq!(deg.missing_shards.len(), 1, "{}: {deg:?}", site.name())
            }
            FaultSite::StallSend => {
                assert_eq!(deg.stalled_sends, 1, "{}: {deg:?}", site.name())
            }
            FaultSite::DropSend => {
                assert!(deg.dropped_chunks >= 1, "{}: {deg:?}", site.name())
            }
            FaultSite::AllocShadow => {
                assert_eq!(deg.shadow_alloc_failures, 1, "{}: {deg:?}", site.name());
                assert!(deg.unresolved_accesses >= 1, "{}: {deg:?}", site.name());
            }
            FaultSite::MalformedChunk => {
                assert_eq!(deg.malformed_chunks, 1, "{}: {deg:?}", site.name())
            }
        }
    }
}

/// A stall delays but loses nothing: the folded output must be
/// byte-identical to the fault-free pipeline.
#[test]
fn stalled_send_is_lossless() {
    let prog = stencil(9, 2);
    let clean = {
        let cfg = PipelineConfig {
            fold_threads: 2,
            chunk_events: 64,
            ..Default::default()
        };
        fold_program_pipelined(&prog, &cfg).0
    };
    let res = ResilienceConfig {
        faults: Some(Arc::new(
            FaultPlan::parse("stall:send@2;stall_ms=5").unwrap(),
        )),
        ..Default::default()
    };
    let (ddg, deg) = supervised_fold(&prog, 2, &res);
    assert_eq!(deg.stalled_sends, 1);
    assert_eq!(canon(&clean), canon(&ddg), "a stall must not lose events");
}

/// An armed plan whose occurrence index is never reached must not perturb
/// one folded byte — probing is observation, not interference.
#[test]
fn armed_but_unfired_plan_is_byte_identical() {
    let prog = stencil(10, 3);
    let clean = {
        let cfg = PipelineConfig {
            fold_threads: 3,
            chunk_events: 64,
            ..Default::default()
        };
        fold_program_pipelined(&prog, &cfg).0
    };
    let res = ResilienceConfig {
        faults: Some(Arc::new(
            FaultPlan::parse("panic:fold@999999999;drop:send@999999999").unwrap(),
        )),
        ..Default::default()
    };
    let (ddg, deg) = supervised_fold(&prog, 3, &res);
    assert_eq!(deg.faults_injected, 0);
    assert!(!deg.is_degraded(), "{deg:?}");
    assert_eq!(canon(&clean), canon(&ddg));
}

/// A fault that fires on *every* occurrence defeats bounded retry; the run
/// falls back to the serial path and still produces the full exact report.
#[test]
fn persistent_fault_falls_back_to_full_serial_report() {
    let prog = stencil(10, 3);
    let serial = profile_with(&prog, &ProfileConfig::new());
    let cfg = ProfileConfig::new()
        .with_fold_threads(3)
        .with_chunk_events(64)
        .with_max_retries(1)
        .with_fault_plan(Arc::new(FaultPlan::always(FaultSite::PanicPre)));
    let r = profile_with(&prog, &cfg);
    assert!(r.degradation.fell_back_serial, "{:?}", r.degradation);
    assert_eq!(r.degradation.stage_retries, 1);
    assert_eq!(r.folded_stats, serial.folded_stats, "fallback is lossless");
    assert_eq!(r.scev_removed, serial.scev_removed);
    assert_eq!(r.annotated_ast, serial.annotated_ast);
    assert!(
        r.full_text.contains("resilience & degradation"),
        "degraded runs must report their losses"
    );
}

/// A Rodinia workload under a memory budget so tight the first allocation
/// latches pressure: the run completes, statements are folded in
/// over-approximation mode, and every folded dependence domain *contains*
/// the exact serial one (superset soundness — degradation may lose
/// precision, never dependences).
#[test]
fn rodinia_tight_budget_overapproximates_soundly() {
    let w = rodinia::pathfinder::build();

    // Exact reference.
    let (exact, _, structure) = polyfold::fold_program(&w.program);

    // Budgeted run through the serial core path.
    let budget = Arc::new(ResourceBudget::new(Some(1), None));
    let mut sink = FoldingSink::new();
    sink.set_budget(Arc::clone(&budget));
    let mut prof = polyprof_core::polyddg::DdgProfiler::new(&w.program, &structure, sink);
    polyprof_core::polyvm::Vm::new(&w.program)
        .run(&[], &mut prof)
        .expect("pass 2");
    let (sink, interner) = prof.finish();
    assert!(sink.fold_stats().budget_degraded > 0);
    let coarse = sink.finalize(&w.program, &interner);

    assert!(budget.under_pressure());
    assert!(coarse.overapprox_stmts() > 0);
    assert_eq!(coarse.n_stmts(), exact.n_stmts());
    assert_eq!(coarse.total_ops, exact.total_ops);
    assert_eq!(coarse.deps.len(), exact.deps.len());
    for (c, e) in coarse.deps.iter().zip(exact.deps.iter()) {
        assert_eq!(
            (c.kind, c.src, c.dst, c.class),
            (e.kind, e.src, e.dst, e.class)
        );
        assert_eq!(c.domain.count, e.domain.count);
        for k in 0..c.domain.dim {
            assert!(c.domain.box_lo[k] <= e.domain.box_lo[k], "superset lb");
            assert!(c.domain.box_hi[k] >= e.domain.box_hi[k], "superset ub");
        }
    }

    // The same budget through the public config surfaces the degradation.
    let r = profile_with(&w.program, &ProfileConfig::new().with_memory_budget(1));
    assert!(r.degradation.budget_pressure, "{:?}", r.degradation);
    assert!(r.degradation.budget_overapprox_stmts > 0);
    assert!(r.degradation.peak_tracked_bytes > 0);
    assert!(r.full_text.contains("resilience & degradation"));
}

/// An already-expired watchdog deadline still yields a completed report —
/// the producer stops at the first throttled poll (every 4096 dynamic
/// instructions, so the workload must be big enough to reach one), and the
/// partial-but-valid DDG flows through scheduling and feedback without
/// panicking.
#[test]
fn expired_deadline_finalizes_partial_report() {
    let prog = stencil(64, 8);
    for threads in [1usize, 3] {
        let cfg = ProfileConfig::new()
            .with_fold_threads(threads)
            .with_deadline(Duration::ZERO);
        let r = try_profile_with(&prog, &cfg).expect("deadline is graceful, not fatal");
        assert!(r.degradation.deadline_hit, "threads={threads}");
        assert!(r.degradation.is_degraded());
        let full = profile_with(&prog, &ProfileConfig::new().with_fold_threads(threads));
        assert!(
            r.folded_stats.2 <= full.folded_stats.2,
            "partial run cannot observe more ops than the full one"
        );
    }
}

/// A generous budget and far-future deadline change nothing: the report
/// matches the unbudgeted run and the degradation record stays clean except
/// for the tracked peak.
#[test]
fn generous_budget_is_invisible() {
    let prog = stencil(10, 3);
    let plain = profile_with(&prog, &ProfileConfig::new());
    let r = profile_with(
        &prog,
        &ProfileConfig::new()
            .with_memory_budget(1 << 40)
            .with_deadline(Duration::from_secs(3600)),
    );
    assert!(!r.degradation.budget_pressure);
    assert!(!r.degradation.deadline_hit);
    assert!(r.degradation.peak_tracked_bytes > 0, "budget was tracking");
    assert_eq!(r.folded_stats, plain.folded_stats);
    assert_eq!(r.annotated_ast, plain.annotated_ast);
    assert!(!r.full_text.contains("resilience & degradation"));
}

/// The degradation JSON snapshot (what CI archives) carries the counters.
#[test]
fn degradation_json_reflects_the_run() {
    let prog = stencil(9, 2);
    let cfg = ProfileConfig::new()
        .with_fold_threads(2)
        .with_chunk_events(64)
        .with_fault_plan(Arc::new(FaultPlan::single(FaultSite::DropSend, 1)));
    let r = profile_with(&prog, &cfg);
    let j = r.degradation_json();
    assert!(j.contains("\"faults_injected\":1"), "{j}");
    assert!(j.contains("\"dropped_chunks\":1"), "{j}");
}
