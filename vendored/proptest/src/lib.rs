//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the `proptest!` macro over
//! `arg in strategy` bindings, integer-range and tuple strategies,
//! `prop_map`, `collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, by design:
//! * **No shrinking.** A failing case panics with the generated inputs
//!   printed; the run is reproducible because seeds are derived
//!   deterministically from the test's module path and name.
//! * `PROPTEST_CASES` overrides the per-test case count (default 64);
//!   `PROPTEST_SEED` perturbs every test's seed.

pub mod test_runner {
    /// SplitMix64 — tiny, deterministic, good enough for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform-ish value in `[lo, hi)` (modulo bias is irrelevant for
        /// the tiny ranges used in tests).
        pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
            assert!(lo < hi, "empty strategy range [{lo}, {hi})");
            let span = (hi - lo) as u128;
            lo + (self.next_u64() as u128 % span) as i128
        }
    }

    /// Per-test case count (`PROPTEST_CASES`, default 64).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Deterministic seed for a test, perturbed by `PROPTEST_SEED` if set.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let env = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        h ^ env
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values. Unlike upstream there is no value tree /
    /// shrinking: `generate` produces the final value directly.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<F, O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
            O: Debug,
        {
            Map { base: self, f }
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
        O: Debug,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_range(self.start as i128, self.end as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_range(*self.start() as i128, *self.end() as i128 + 1) as $t
                }
            }
        )+};
    }

    int_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, usize);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(elem, min..max)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.in_range(self.size.start as i128, self.size.end as i128) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Expand each `fn name(arg in strategy, ...) { body }` into a `#[test]`
/// running `cases()` generated cases. The body runs in a closure returning
/// `Result<(), String>` so `prop_assert!` can report failures with the
/// generated inputs attached; panics are caught and re-raised with the
/// inputs printed first.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let cases = $crate::test_runner::cases();
            let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::test_runner::TestRng::from_seed(seed);
            for case in 0..cases {
                $(let $arg = ($strat).generate(&mut rng);)+
                let inputs = format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                ));
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(msg)) => {
                        panic!(
                            "proptest case {}/{} failed: {}\n    inputs: {}\n    (seed {}; rerun with PROPTEST_SEED to vary)",
                            case + 1, cases, msg, inputs, seed
                        );
                    }
                    ::std::result::Result::Err(payload) => {
                        eprintln!(
                            "proptest case {}/{} panicked\n    inputs: {}\n    (seed {})",
                            case + 1, cases, inputs, seed
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )+};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "{} ({}:{})",
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n      left: {:?}\n     right: {:?} ({}:{})",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "{}\n      left: {:?}\n     right: {:?} ({}:{})",
                format!($($fmt)+), l, r, file!(), line!()
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n      both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -5i64..5, y in 0i64..=3, z in 1usize..10) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0..=3).contains(&y));
            prop_assert!((1..10).contains(&z));
        }

        #[test]
        fn tuples_and_vec(pair in (0i64..4, 0i64..4), xs in crate::collection::vec(0i64..16, 2..40)) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert!(xs.len() >= 2 && xs.len() < 40);
            prop_assert!(xs.iter().all(|&v| (0..16).contains(&v)));
        }

        #[test]
        fn prop_map_works(v in (0i64..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 20, "v = {} out of range", v);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_seed(crate::test_runner::seed_for("x"));
        let mut b = TestRng::from_seed(crate::test_runner::seed_for("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
