//! Offline stand-in for the `criterion` crate.
//!
//! Implements the group/bench API surface used by this workspace's benches
//! (`benchmark_group`, `sample_size`, `measurement_time`, `warm_up_time`,
//! `throughput`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `criterion_group!`, `criterion_main!`) with a simple
//! wall-clock harness: warm up for the configured time, then time up to
//! `sample_size` iterations or until the measurement budget is spent, and
//! print mean/min/max per-iteration time plus element throughput.
//!
//! No statistics engine, no HTML reports, no comparison to saved baselines —
//! the numbers go to stdout and machine-readable trend tracking lives in
//! the workspace's own `BENCH_pipeline.json` emission.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }
}

/// One measured sample set.
#[derive(Debug, Clone, Copy)]
struct Samples {
    mean: f64,
    min: f64,
    max: f64,
    n: usize,
}

pub struct Bencher {
    cfg: Config,
    samples: Option<Samples>,
}

impl Bencher {
    /// Time the closure: warm up, then measure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.cfg.warm_up_time {
                break;
            }
        }
        let mut times = Vec::with_capacity(self.cfg.sample_size);
        let budget = Instant::now();
        while times.len() < self.cfg.sample_size {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_secs_f64());
            if budget.elapsed() >= self.cfg.measurement_time {
                break;
            }
        }
        let n = times.len();
        let mean = times.iter().sum::<f64>() / n as f64;
        let (mut min, mut max) = (f64::INFINITY, 0.0f64);
        for &t in &times {
            min = min.min(t);
            max = max.max(t);
        }
        self.samples = Some(Samples { mean, min, max, n });
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

fn report(group: &str, id: &str, cfg: &Config, s: &Samples) {
    let mut line = format!(
        "{group}/{id}: time [{} .. {} .. {}] ({} samples)",
        fmt_time(s.min),
        fmt_time(s.mean),
        fmt_time(s.max),
        s.n
    );
    if let Some(t) = cfg.throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        if s.mean > 0.0 {
            line.push_str(&format!(" thrpt {:.3e} {unit}", count as f64 / s.mean));
        }
    }
    println!("{line}");
}

pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: Config,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.cfg.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            cfg: self.cfg,
            samples: None,
        };
        f(&mut b);
        if let Some(s) = b.samples {
            report(&self.name, &id.to_string(), &self.cfg, &s);
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            cfg: self.cfg,
            samples: None,
        };
        f(&mut b, input);
        if let Some(s) = b.samples {
            report(&self.name, &id.id, &self.cfg, &s);
        }
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            cfg: Config::default(),
            _c: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(&name).bench_function("", f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($fun(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(10));
        g.warm_up_time(Duration::from_millis(1));
        g.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
