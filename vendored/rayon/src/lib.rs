//! Offline stand-in for the `rayon` crate.
//!
//! Implements the exact API surface this workspace uses — `par_iter`,
//! `par_chunks_mut`, `zip`, `enumerate`, `take`, `map`, `for_each`,
//! `collect`, `current_num_threads` — with *real* parallelism built on
//! `std::thread::scope`. Iterators are length-aware and splittable; work is
//! divided recursively into `current_num_threads()` contiguous pieces, so
//! `collect` preserves input order and `par_chunks_mut` hands out disjoint
//! mutable chunks exactly like upstream rayon.
//!
//! Not a thread pool: each parallel drive spawns scoped threads for its own
//! duration. For the coarse-grained fan-outs in this workspace (whole
//! profiling pipelines, kernel row blocks) the spawn cost is noise.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel drive will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// A length-aware, splittable parallel iterator.
///
/// `split_at` divides the remaining work into two independent halves;
/// `into_seq` degrades one piece to a sequential iterator once it has been
/// assigned to a worker thread.
pub trait ParallelIterator: Sized + Send {
    type Item: Send;
    type Seq: Iterator<Item = Self::Item>;

    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    fn split_at(self, index: usize) -> (Self, Self);
    fn into_seq(self) -> Self::Seq;

    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Clone + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    fn take(self, n: usize) -> Take<Self> {
        let n = n.min(self.len());
        Take { base: self, n }
    }

    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        drive_for_each(self, &f, current_num_threads());
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

fn drive_for_each<I, F>(it: I, f: &F, threads: usize)
where
    I: ParallelIterator,
    F: Fn(I::Item) + Send + Sync,
{
    if threads <= 1 || it.len() <= 1 {
        it.into_seq().for_each(f);
        return;
    }
    let lt = threads / 2;
    let n = it.len();
    let mid = (n * lt / threads).clamp(1, n - 1);
    let (l, r) = it.split_at(mid);
    std::thread::scope(|s| {
        let h = s.spawn(move || drive_for_each(l, f, lt));
        drive_for_each(r, f, threads - lt);
        // Re-raise the worker's own payload instead of replacing it with a
        // generic join error: callers (CI included) must see the original
        // panic message.
        if let Err(payload) = h.join() {
            std::panic::resume_unwind(payload);
        }
    });
}

fn drive_collect_vec<I: ParallelIterator>(it: I, threads: usize) -> Vec<I::Item> {
    if threads <= 1 || it.len() <= 1 {
        return it.into_seq().collect();
    }
    let lt = threads / 2;
    let n = it.len();
    let mid = (n * lt / threads).clamp(1, n - 1);
    let (l, r) = it.split_at(mid);
    std::thread::scope(|s| {
        let h = s.spawn(move || drive_collect_vec(l, lt));
        let mut right = drive_collect_vec(r, threads - lt);
        let mut out = match h.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        out.append(&mut right);
        out
    })
}

/// Order-preserving parallel collection (only `Vec` is needed here).
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self {
        drive_collect_vec(it, current_num_threads())
    }
}

// ---------------------------------------------------------------- sources

pub trait IntoParallelRefIterator<'a> {
    type Iter: ParallelIterator;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk: usize) -> ParChunks<'_, T> {
        assert!(chunk > 0, "chunk size must be non-zero");
        ParChunks { slice: self, chunk }
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be non-zero");
        ParChunksMut { slice: self, chunk }
    }
}

pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (ParIter { slice: l }, ParIter { slice: r })
    }
    fn into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at(at);
        (
            ParChunks {
                slice: l,
                chunk: self.chunk,
            },
            ParChunks {
                slice: r,
                chunk: self.chunk,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.slice.chunks(self.chunk)
    }
}

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (
            ParChunksMut {
                slice: l,
                chunk: self.chunk,
            },
            ParChunksMut {
                slice: r,
                chunk: self.chunk,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.chunk)
    }
}

// ------------------------------------------------------------- adaptors

pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Clone + Send + Sync,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<I::Seq, F>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Map {
                base: l,
                f: self.f.clone(),
            },
            Map { base: r, f: self.f },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().map(self.f)
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }
    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type Seq = EnumerateSeq<I::Seq>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + index,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        EnumerateSeq {
            it: self.base.into_seq(),
            next: self.offset,
        }
    }
}

pub struct EnumerateSeq<I> {
    it: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let v = self.it.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, v))
    }
}

pub struct Take<I> {
    base: I,
    n: usize,
}

impl<I: ParallelIterator> ParallelIterator for Take<I> {
    type Item = I::Item;
    type Seq = std::iter::Take<I::Seq>;

    fn len(&self) -> usize {
        self.n
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let index = index.min(self.n);
        let (l, r) = self.base.split_at(index);
        (
            Take { base: l, n: index },
            Take {
                base: r,
                n: self.n - index,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().take(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, xs.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_disjoint_writes() {
        let mut v = vec![0u64; 1000];
        v.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i as u64;
            }
        });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, (j / 7) as u64);
        }
    }

    #[test]
    fn zip_take_enumerate() {
        let mut a = vec![0u32; 100];
        let mut b = vec![0u32; 100];
        a.par_chunks_mut(10)
            .zip(b.par_chunks_mut(10))
            .take(5)
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                ca[0] = i as u32 + 1;
                cb[0] = 10 * (i as u32 + 1);
            });
        assert_eq!(a[40], 5);
        assert_eq!(b[40], 50);
        assert_eq!(a[50], 0); // beyond take(5)
    }

    /// A worker panic must surface with its *original* payload, not a
    /// generic "worker panicked" join error.
    #[test]
    fn panics_propagate_with_payload() {
        let xs: Vec<u32> = (0..64).collect();
        let r = std::panic::catch_unwind(|| {
            // item 0 lands in the leftmost split, i.e. on a spawned worker
            // whenever more than one thread drives the loop
            xs.par_iter().for_each(|&x| {
                if x == 0 {
                    panic!("boom at {x}");
                }
            });
        });
        let payload = r.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("boom at 0"), "payload lost: {msg:?}");
    }

    #[test]
    fn empty_and_single() {
        let xs: Vec<u8> = vec![];
        let ys: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
        let one = [42u8];
        let t: Vec<u8> = one.par_iter().map(|&x| x).collect();
        assert_eq!(t, vec![42]);
    }
}
