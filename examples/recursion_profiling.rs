//! Recursion profiling (paper §3.2/§4, Fig. 3 Ex. 2): shows how the
//! recursive-component machinery folds arbitrarily deep recursion into a
//! single IIV dimension, where a calling-context tree grows linearly.
//!
//! ```sh
//! cargo run -p polyprof-core --example recursion_profiling
//! ```

use polyprof_core::polycfg::{StaticStructure, StructureRecorder};
use polyprof_core::polyiiv::cct::Cct;
use polyprof_core::polyvm::Vm;
use polyprof_core::profile;

fn main() {
    for depth in [4i64, 16, 64] {
        let prog = rodinia::paper_examples::fig3_example2(depth);

        // Classic CCT: depth grows with the recursion.
        let mut rec = StructureRecorder::new();
        Vm::new(&prog).run(&[], &mut rec).unwrap();
        let structure = StaticStructure::analyze(&prog, rec);
        let mut cct = Cct::new(prog.entry.unwrap());
        Vm::new(&prog).run(&[], &mut cct).unwrap();

        // Poly-Prof: the recursive component folds into one dimension.
        let comp = &structure.rcs.components;
        let report = profile(&prog);
        let max_stmt_depth = report
            .feedback
            .regions
            .iter()
            .map(|r| r.loop_depth)
            .max()
            .unwrap_or(0);

        println!("recursion depth {depth:>3}:");
        println!(
            "  calling-context-tree max depth : {:>4}  (grows with recursion)",
            cct.max_depth()
        );
        println!(
            "  recursive components           : {:>4}  (headers: {:?})",
            comp.len(),
            comp.iter().map(|c| c.headers.len()).collect::<Vec<_>>()
        );
        println!(
            "  IIV loop depth of hot region   : {:>4}  (constant — recursion folded)",
            max_stmt_depth
        );
        let (stmts, deps, ops) = report.folded_stats;
        println!("  folded DDG                     : {ops} ops → {stmts} stmts, {deps} deps\n");
    }
    println!(
        "The dynamic IIV advances its induction variable on recursive calls AND \
         returns (paper Fig. 3i steps 10–21), so the representation depth never \
         grows with the call stack."
    );
}
