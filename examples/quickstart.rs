//! Quickstart: build a tiny program with the PolyVM IR builder, run the
//! whole Poly-Prof pipeline on it, and read the feedback.
//!
//! ```sh
//! cargo run -p polyprof-core --example quickstart
//! ```

use polyprof_core::polyir::build::ProgramBuilder;
use polyprof_core::profile;

fn main() {
    // A 2-D producer/consumer kernel: b[i][j] = a[i][j] * 2; all loops
    // parallel, fully tilable.
    let n = 16i64;
    let mut pb = ProgramBuilder::new("quickstart");
    let a = pb.array_f64(&(0..n * n).map(|i| i as f64).collect::<Vec<_>>());
    let b = pb.alloc((n * n) as u64);
    let mut f = pb.func("main", 0);
    f.for_loop("Li", 0i64, n, 1, |f, i| {
        f.for_loop("Lj", 0i64, n, 1, |f, j| {
            let row = f.mul(i, n);
            let idx = f.add(row, j);
            let v = f.load(a as i64, idx);
            let w = f.fmul(v, 2.0f64);
            f.store(b as i64, idx, w);
        });
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);
    let prog = pb.finish();

    // One call runs both instrumentation passes, folding, SCEV removal,
    // the scheduler, and the feedback stage.
    let report = profile(&prog);

    println!("program: {}", report.feedback.name);
    println!(
        "dynamic instructions: {} (of which {} are loop/address overhead)",
        report.feedback.total_ops,
        report.feedback.total_ops - report.feedback.src_ops
    );
    println!(
        "affine fraction (%Aff): {:.0}%",
        100.0 * report.feedback.pct_aff
    );
    let (stmts, deps, ops) = report.folded_stats;
    println!("folded: {ops} dynamic ops → {stmts} statements, {deps} dependence relations");

    let region = &report.feedback.regions[0];
    println!(
        "\nhottest region: {} ({:.0}% of ops)",
        region.name,
        100.0 * region.pct_ops
    );
    println!("  %||ops    = {:.0}%", 100.0 * region.pct_parallel);
    println!("  %simdops  = {:.0}%", 100.0 * region.pct_simd);
    println!("  tile depth = {}D", region.tile_depth);
    println!("  suggested transformation:");
    for (i, s) in region.suggestions.iter().enumerate() {
        println!("    {}. {s}", i + 1);
    }

    println!("\nannotated AST:");
    print!("{}", report.annotated_ast);

    println!(
        "\nstatic (Polly-style) baseline: {}",
        report.static_report.summary()
    );
    assert!(
        report.static_report.all_modeled(),
        "this kernel is a clean SCoP"
    );
}
