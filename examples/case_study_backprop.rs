//! Case study I (paper §7): backprop. Profiles the workload, prints the
//! per-region feedback, writes the annotated flame graph, and contrasts
//! the dynamic findings with the static Polly-style baseline.
//!
//! ```sh
//! cargo run -p polyprof-core --example case_study_backprop
//! ```

use polyprof_core::profile;

fn main() {
    let w = rodinia::backprop::build();
    println!("{}: {}", w.name, w.description);

    let report = profile(&w.program);

    println!("\n─── dynamic feedback (Poly-Prof) ───");
    for r in &report.feedback.regions {
        println!(
            "region {} — {:.0}% ops, {}D loops, interprocedural: {}",
            r.name,
            100.0 * r.pct_ops,
            r.loop_depth,
            r.interproc
        );
        println!(
            "  parallel {:.0}% | simd {:.0}% | reuse {:.0}% → {:.0}% after permutation | tile {}D",
            100.0 * r.pct_parallel,
            100.0 * r.pct_simd,
            100.0 * r.pct_reuse,
            100.0 * r.pct_preuse,
            r.tile_depth
        );
        for (i, s) in r.suggestions.iter().enumerate() {
            println!("  {}. {s}", i + 1);
        }
    }

    println!("\n─── static baseline (Polly-style) ───");
    for v in &report.static_report.regions {
        println!(
            "  region at {}: {}",
            v.header,
            if v.modeled {
                "modeled".to_string()
            } else {
                format!(
                    "FAILED ({})",
                    polyprof_core::polystatic::reasons_string(&v.reasons)
                )
            }
        );
    }
    println!(
        "whole program modeled statically: {} — the paper's Experiment II contrast",
        report.static_report.all_modeled()
    );

    let path = "target/case_study_backprop_flamegraph.svg";
    std::fs::create_dir_all("target").ok();
    std::fs::write(path, &report.flamegraph_svg).expect("write flame graph");
    println!("\nflame graph written to {path}");
    println!(
        "paper reference (Table 3): interchange+SIMD; only the outer loop of L_layer \
         parallel; both nests fully permutable; 5.3×/7.8× after transformation"
    );
}
