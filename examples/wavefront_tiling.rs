//! Wavefront / skewed-tiling feedback (paper case study II and the nw /
//! pathfinder rows of Table 5): dependences with negative spatial
//! components block straight tiling; Poly-Prof detects that a skew repairs
//! the band.
//!
//! ```sh
//! cargo run -p polyprof-core --example wavefront_tiling
//! ```

use polyprof_core::profile;

fn main() {
    println!("── pathfinder: row DP with 3-neighbor min ──");
    let w = rodinia::pathfinder::build();
    let report = profile(&w.program);
    let r = &report.feedback.regions[0];
    println!(
        "  dependences force (1,-1) distances; tile depth {}D, skew needed: {}",
        r.tile_depth, r.skew
    );
    for (i, s) in r.suggestions.iter().enumerate() {
        println!("  {}. {s}", i + 1);
    }
    assert!(
        r.skew,
        "pathfinder requires a skew (paper Table 5: skew = Y)"
    );
    assert!(r.tile_depth >= 2);

    println!("\n── nw: anti-diagonal DP sweep ──");
    let w = rodinia::nw::build();
    let report = profile(&w.program);
    let r = &report.feedback.regions[0];
    println!(
        "  diagonal iteration already encodes a wavefront; tile depth {}D, skew: {}",
        r.tile_depth, r.skew
    );
    assert!(r.skew, "nw requires a skew (paper Table 5: skew = Y)");

    println!("\n── gemsfdtd: time-stepped 3-D stencils ──");
    let w = rodinia::gemsfdtd::build();
    let report = profile(&w.program);
    let r = &report.feedback.regions[0];
    println!(
        "  spatial band tiles without skew: tile depth {}D, skew: {}, parallel {:.0}%",
        r.tile_depth,
        r.skew,
        100.0 * r.pct_parallel
    );
    assert!(!r.skew, "spatial tiling of FDTD needs no skew");
    assert!(r.tile_depth >= 3);
    println!("\nThe skew column of Table 5 falls out of the permutable-band search.");
}
