//! CI resilience probe: profile one Rodinia workload under the fault plan
//! in `POLYPROF_FAULT_PLAN` and write the degradation counters as JSON.
//!
//! The `resilience-gate` CI step runs this over a fixed seed matrix and
//! uploads the `degradation_*.json` files as artifacts. An armed plan that
//! leaves the run undegraded is a hard error — a gate that silently runs
//! fault-free proves nothing.
//!
//! Usage: `resilience_probe [out.json]`

use polyprof_core::{try_profile_with, ProfileConfig};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "degradation_probe.json".into());
    let plan = std::env::var("POLYPROF_FAULT_PLAN").unwrap_or_default();

    let w = rodinia::pathfinder::build();
    let cfg = ProfileConfig::new()
        .with_fold_threads(3)
        .with_chunk_events(256);
    let report = try_profile_with(&w.program, &cfg).expect("resilience probe must complete");

    let json = report.degradation_json();
    std::fs::write(&out, &json).expect("write degradation json");
    println!("plan `{plan}` -> {json}");

    if !plan.trim().is_empty() && !report.degradation.is_degraded() {
        eprintln!("error: fault plan armed but the run completed undegraded");
        std::process::exit(1);
    }
}
