//! # polyresist — resilience primitives for the poly-prof pipeline
//!
//! The paper's folding stage already embraces principled loss: non-affine
//! parts are *over-approximated* so the back-end stays scalable (§3). This
//! crate extends that philosophy from the geometry to the runtime: a
//! profiling run should always terminate with a report, annotated with what
//! was lost, instead of dying on the first worker panic, wedged channel, or
//! memory blow-up.
//!
//! Three building blocks, all dependency-free:
//!
//! * [`FaultPlan`] — a deterministic, seedable schedule of injectable faults
//!   (stage panics, delayed/dropped chunk sends, shadow-page allocation
//!   failures, malformed event chunks). Production code threads an
//!   `Option<Arc<FaultPlan>>` through the pipeline; the `None` fast path is
//!   a single branch, so the hook is zero-cost when injection is off.
//! * [`ResourceBudget`] — shared byte/deadline accounting. Stages charge
//!   allocations against it and switch to over-approximation on pressure
//!   instead of aborting.
//! * [`RunDegradation`] — the structured record of everything a run lost,
//!   surfaced in the final `Report` and the feedback text.
//!
//! Plus the workspace-wide error type [`PolyProfError`] that replaces
//! panicking `.expect` paths in the public entry points.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Workspace-wide error type for fallible pipeline entry points.
///
/// Hand-rolled (`thiserror`-style `Display` impl) to keep the workspace
/// dependency-free.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolyProfError {
    /// The interpreter failed while driving a pass (fuel, unreachable, …).
    Vm {
        /// Which pipeline pass was running.
        stage: &'static str,
        /// The interpreter's own error rendering.
        msg: String,
    },
    /// A pipeline stage thread panicked and supervision could not recover.
    StagePanic {
        /// Which stage kind panicked (`"pre"`, `"resolve"`, `"fold"`).
        stage: &'static str,
        /// Best-effort panic payload rendering.
        msg: String,
    },
    /// A channel endpoint disappeared while a stage still had data to move.
    ChannelClosed {
        /// The stage that observed the closed channel.
        stage: &'static str,
    },
    /// A `POLYPROF_FAULT_PLAN` / [`FaultPlan::parse`] spec did not parse.
    InvalidFaultPlan(String),
    /// An event chunk failed validation before replay.
    MalformedChunk {
        /// Shard that received the chunk.
        shard: usize,
        /// What the validator rejected.
        detail: String,
    },
    /// The memory budget was exhausted and degradation was disabled.
    BudgetExhausted {
        /// Bytes tracked at the time of failure.
        used: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The watchdog deadline fired and partial results were not permitted.
    DeadlineExceeded,
    /// An on-disk trace recording could not be written or replayed
    /// (IO failure, bad magic, unsupported format version, checksum
    /// mismatch, truncation, or count disagreement).
    Recording {
        /// The recording's path (or a label for in-memory streams).
        path: String,
        /// What the writer/reader rejected.
        detail: String,
    },
}

impl std::fmt::Display for PolyProfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolyProfError::Vm { stage, msg } => write!(f, "vm error in {stage}: {msg}"),
            PolyProfError::StagePanic { stage, msg } => {
                write!(f, "pipeline stage `{stage}` panicked: {msg}")
            }
            PolyProfError::ChannelClosed { stage } => {
                write!(f, "pipeline channel closed under stage `{stage}`")
            }
            PolyProfError::InvalidFaultPlan(s) => write!(f, "invalid fault plan: {s}"),
            PolyProfError::MalformedChunk { shard, detail } => {
                write!(f, "malformed event chunk on shard {shard}: {detail}")
            }
            PolyProfError::BudgetExhausted { used, limit } => {
                write!(
                    f,
                    "memory budget exhausted: {used} bytes tracked > {limit} limit"
                )
            }
            PolyProfError::DeadlineExceeded => write!(f, "profiling deadline exceeded"),
            PolyProfError::Recording { path, detail } => {
                write!(f, "trace recording `{path}`: {detail}")
            }
        }
    }
}

impl std::error::Error for PolyProfError {}

/// Render a `catch_unwind` payload the way the default panic hook would.
pub fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------------

/// Where in the pipeline a fault can be injected.
///
/// The variants cover the fault matrix from the resilience gate: a panic in
/// each of the three stage kinds, a chunk-send stall and drop, a shadow-page
/// allocation failure, and a malformed event chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum FaultSite {
    /// Panic inside the producer (`PreProfiler`) event path.
    PanicPre = 0,
    /// Panic inside the `ShadowResolver` stage thread.
    PanicResolve = 1,
    /// Panic inside a folding worker while replaying a chunk.
    PanicFold = 2,
    /// Delay a chunk send (simulated back-pressure stall).
    StallSend = 3,
    /// Silently drop a chunk instead of sending it.
    DropSend = 4,
    /// Fail a shadow-memory page allocation.
    AllocShadow = 5,
    /// Corrupt an event chunk in flight (caught by `EventChunk::validate`).
    MalformedChunk = 6,
}

/// Number of distinct [`FaultSite`]s.
pub const N_FAULT_SITES: usize = 7;

impl FaultSite {
    /// All sites, in slot order.
    pub const ALL: [FaultSite; N_FAULT_SITES] = [
        FaultSite::PanicPre,
        FaultSite::PanicResolve,
        FaultSite::PanicFold,
        FaultSite::StallSend,
        FaultSite::DropSend,
        FaultSite::AllocShadow,
        FaultSite::MalformedChunk,
    ];

    /// Stable spec name, as accepted by [`FaultPlan::parse`].
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::PanicPre => "panic:pre",
            FaultSite::PanicResolve => "panic:resolve",
            FaultSite::PanicFold => "panic:fold",
            FaultSite::StallSend => "stall:send",
            FaultSite::DropSend => "drop:send",
            FaultSite::AllocShadow => "alloc:shadow",
            FaultSite::MalformedChunk => "malformed:chunk",
        }
    }

    fn slot(self) -> usize {
        self as usize
    }
}

/// When an armed fault fires, relative to the per-site occurrence counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Occurrence {
    /// Fire on exactly the n-th probe (1-based), once.
    Nth(u64),
    /// Fire on every probe.
    Every,
}

/// splitmix64 — tiny, deterministic, dependency-free PRNG used to derive
/// pseudo-random occurrence indices from the plan seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable schedule of injectable faults.
///
/// Built from a spec string (see [`FaultPlan::parse`]) or programmatically
/// via [`FaultPlan::single`]. Pipeline stages *probe* the plan at each
/// injectable site; a probe increments that site's occurrence counter and
/// reports whether an armed fault fires there. Probing is thread-safe and
/// deterministic for a fixed interleaving of per-site occurrences (each
/// site is probed from exactly one stage, so per-site order is total even
/// in the sharded pipeline).
///
/// The environment knob `POLYPROF_FAULT_PLAN` feeds [`FaultPlan::from_env`]
/// so the CI resilience gate can run a seed matrix without code changes.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<(FaultSite, Occurrence)>,
    /// Stall length applied by `StallSend` faults.
    stall: Duration,
    /// Per-site probe counters (how many times the site was reached).
    probes: [AtomicU64; N_FAULT_SITES],
    /// Per-site fire counters (how many faults actually triggered).
    fired: [AtomicU64; N_FAULT_SITES],
}

impl FaultPlan {
    /// Parse a plan spec: `;`-separated entries, each either `seed=<u64>`,
    /// `stall_ms=<u64>`, or `<site>@<occ>` where `<site>` is a
    /// [`FaultSite::name`] and `<occ>` is a 1-based occurrence index, `*`
    /// (every occurrence) or `?` (pseudo-random occurrence in `[1, 16]`
    /// derived from the seed — the "seedable" injection mode).
    ///
    /// Example: `seed=42;panic:fold@1;stall:send@3;malformed:chunk@?`.
    pub fn parse(spec: &str) -> Result<FaultPlan, PolyProfError> {
        let mut seed = 0u64;
        let mut stall_ms = 20u64;
        let mut raw: Vec<(FaultSite, String)> = Vec::new();
        for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            if let Some(v) = part.strip_prefix("seed=") {
                seed = v
                    .parse()
                    .map_err(|_| PolyProfError::InvalidFaultPlan(format!("bad seed `{v}`")))?;
            } else if let Some(v) = part.strip_prefix("stall_ms=") {
                stall_ms = v
                    .parse()
                    .map_err(|_| PolyProfError::InvalidFaultPlan(format!("bad stall_ms `{v}`")))?;
            } else {
                let (site_s, occ_s) = part.split_once('@').ok_or_else(|| {
                    PolyProfError::InvalidFaultPlan(format!("entry `{part}` missing `@<occ>`"))
                })?;
                let site = FaultSite::ALL
                    .iter()
                    .copied()
                    .find(|s| s.name() == site_s)
                    .ok_or_else(|| {
                        PolyProfError::InvalidFaultPlan(format!("unknown site `{site_s}`"))
                    })?;
                raw.push((site, occ_s.to_string()));
            }
        }
        let mut rng = seed ^ 0xD1F4_0FF5;
        let mut specs = Vec::with_capacity(raw.len());
        for (site, occ_s) in raw {
            let occ = match occ_s.as_str() {
                "*" => Occurrence::Every,
                "?" => Occurrence::Nth(splitmix64(&mut rng) % 16 + 1),
                n => Occurrence::Nth(n.parse().map_err(|_| {
                    PolyProfError::InvalidFaultPlan(format!("bad occurrence `{n}`"))
                })?),
            };
            if occ == Occurrence::Nth(0) {
                return Err(PolyProfError::InvalidFaultPlan(
                    "occurrence indices are 1-based".into(),
                ));
            }
            specs.push((site, occ));
        }
        Ok(FaultPlan {
            seed,
            specs,
            stall: Duration::from_millis(stall_ms),
            probes: Default::default(),
            fired: Default::default(),
        })
    }

    /// Read `POLYPROF_FAULT_PLAN`; `None` when unset or empty.
    ///
    /// Panics on a malformed spec — an injection harness that silently runs
    /// fault-free would defeat the gate.
    pub fn from_env() -> Option<FaultPlan> {
        match std::env::var("POLYPROF_FAULT_PLAN") {
            Ok(s) if !s.trim().is_empty() => {
                Some(FaultPlan::parse(&s).expect("POLYPROF_FAULT_PLAN did not parse"))
            }
            _ => None,
        }
    }

    /// A plan with a single armed fault: fire `site` on its `nth` probe
    /// (1-based).
    pub fn single(site: FaultSite, nth: u64) -> FaultPlan {
        assert!(nth >= 1, "occurrence indices are 1-based");
        FaultPlan {
            seed: 0,
            specs: vec![(site, Occurrence::Nth(nth))],
            stall: Duration::from_millis(20),
            probes: Default::default(),
            fired: Default::default(),
        }
    }

    /// A plan that fires `site` on *every* probe (used to defeat bounded
    /// retry and force the serial fallback).
    pub fn always(site: FaultSite) -> FaultPlan {
        FaultPlan {
            seed: 0,
            specs: vec![(site, Occurrence::Every)],
            stall: Duration::from_millis(20),
            probes: Default::default(),
            fired: Default::default(),
        }
    }

    /// The plan seed (0 when not set).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How long a `StallSend` fault delays the send.
    pub fn stall_duration(&self) -> Duration {
        self.stall
    }

    /// Probe an injection site. Increments the site's occurrence counter
    /// and returns `true` iff an armed fault fires on this occurrence.
    pub fn should_fire(&self, site: FaultSite) -> bool {
        let slot = site.slot();
        let n = self.probes[slot].fetch_add(1, Ordering::Relaxed) + 1;
        let hit = self.specs.iter().any(|&(s, occ)| {
            s == site
                && match occ {
                    Occurrence::Nth(k) => k == n,
                    Occurrence::Every => true,
                }
        });
        if hit {
            self.fired[slot].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// How many faults actually fired at `site` so far.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.fired[site.slot()].load(Ordering::Relaxed)
    }

    /// Total faults fired across all sites.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Reset occurrence counters (fired counters are kept — they feed the
    /// degradation record). Called between supervised retry attempts so the
    /// n-th-occurrence arithmetic stays deterministic per attempt… is *not*
    /// what we want: a transient `Nth` fault must not re-fire on retry, so
    /// counters deliberately keep counting across attempts. This method
    /// exists only for tests that reuse a plan across independent runs.
    pub fn reset_probes(&self) {
        for c in &self.probes {
            c.store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Resource budget
// ---------------------------------------------------------------------------

/// Shared byte / wall-clock budget for one profiling run.
///
/// Stages charge their retained allocations (shadow pages, coordinate
/// arena spills, folder tables) against the byte budget with
/// [`ResourceBudget::charge`]; once tracked bytes cross the limit the
/// budget latches *pressure* and consumers switch to the paper's
/// over-approximation mode instead of allocating further precision state.
/// The optional deadline is polled (cheaply, caller-throttled) by the
/// event producer; once hit it latches and the run finalizes partial but
/// valid results.
///
/// All counters are relaxed atomics: budget checks are heuristics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct ResourceBudget {
    limit_bytes: Option<u64>,
    deadline: Option<Instant>,
    used: AtomicU64,
    peak: AtomicU64,
    pressure: AtomicBool,
    deadline_hit: AtomicBool,
}

impl ResourceBudget {
    /// A budget with the given byte limit and/or deadline (measured from
    /// now). `None, None` yields an unlimited budget that never signals
    /// pressure.
    pub fn new(limit_bytes: Option<u64>, deadline_in: Option<Duration>) -> ResourceBudget {
        ResourceBudget {
            limit_bytes,
            deadline: deadline_in.map(|d| Instant::now() + d),
            ..ResourceBudget::default()
        }
    }

    /// Whether any limit is configured at all.
    pub fn is_limited(&self) -> bool {
        self.limit_bytes.is_some() || self.deadline.is_some()
    }

    /// Charge `bytes` of retained allocation. Returns `false` when the
    /// charge crossed the limit (pressure is then latched).
    pub fn charge(&self, bytes: u64) -> bool {
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
        match self.limit_bytes {
            Some(lim) if now > lim => {
                self.pressure.store(true, Ordering::Relaxed);
                false
            }
            _ => true,
        }
    }

    /// Return `bytes` to the budget (freed allocation).
    pub fn uncharge(&self, bytes: u64) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Has the byte budget been crossed at any point?
    pub fn under_pressure(&self) -> bool {
        self.pressure.load(Ordering::Relaxed)
    }

    /// Currently tracked bytes.
    pub fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of tracked bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// The configured byte limit, if any.
    pub fn limit_bytes(&self) -> Option<u64> {
        self.limit_bytes
    }

    /// Poll the deadline. Latches and returns `true` once the deadline has
    /// passed. Callers throttle this (it reads the clock).
    pub fn poll_deadline(&self) -> bool {
        if self.deadline_hit.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.deadline_hit.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Whether the deadline has latched (without reading the clock).
    pub fn deadline_was_hit(&self) -> bool {
        self.deadline_hit.load(Ordering::Relaxed)
    }

    /// Time left until the watchdog deadline: `None` without one,
    /// `Some(ZERO)` once it has passed. Reads the clock — the live-progress
    /// sampler polls this at its own (caller-chosen) interval.
    pub fn deadline_remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

// ---------------------------------------------------------------------------
// Degradation record
// ---------------------------------------------------------------------------

/// One noteworthy recovery action, in the order it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationEvent {
    /// Stage the event belongs to (`"pre"`, `"resolve"`, `"fold"`,
    /// `"supervisor"`, `"budget"`, …).
    pub stage: String,
    /// Human-readable description.
    pub detail: String,
}

/// Structured record of everything a run lost or recovered from.
///
/// Attached to `Report` by the supervised pipeline; an all-default record
/// means the run was clean. The counters mirror the `polytrace` degradation
/// counters so CI can diff them across fault-plan seeds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunDegradation {
    /// Faults the plan actually fired (0 for production runs).
    pub faults_injected: u64,
    /// Supervised pipeline attempts that were retried after a stage panic.
    pub stage_retries: u32,
    /// The pipelined path was abandoned for the retained serial path.
    pub fell_back_serial: bool,
    /// Event chunks dropped in flight (injected or send-error).
    pub dropped_chunks: u64,
    /// Event chunks rejected by validation before replay.
    pub malformed_chunks: u64,
    /// Chunk sends that were artificially stalled.
    pub stalled_sends: u64,
    /// Memory accesses whose dependences were skipped because the shadow
    /// page could not be allocated.
    pub unresolved_accesses: u64,
    /// Shadow page allocations that failed (injected).
    pub shadow_alloc_failures: u64,
    /// Statements folded in budget over-approximation mode.
    pub budget_overapprox_stmts: u64,
    /// The watchdog deadline fired and the run finalized partial results.
    pub deadline_hit: bool,
    /// The byte budget latched pressure at some point.
    pub budget_pressure: bool,
    /// High-water mark of budget-tracked bytes (0 when no budget).
    pub peak_tracked_bytes: u64,
    /// Shard ids whose folding worker died without emitting a part.
    pub missing_shards: Vec<usize>,
    /// Ordered log of recovery actions.
    pub events: Vec<DegradationEvent>,
}

impl RunDegradation {
    /// True when anything at all was lost or recovered.
    pub fn is_degraded(&self) -> bool {
        self.faults_injected > 0
            || self.stage_retries > 0
            || self.fell_back_serial
            || self.dropped_chunks > 0
            || self.malformed_chunks > 0
            || self.stalled_sends > 0
            || self.unresolved_accesses > 0
            || self.shadow_alloc_failures > 0
            || self.budget_overapprox_stmts > 0
            || self.deadline_hit
            || self.budget_pressure
            || !self.missing_shards.is_empty()
    }

    /// Append a recovery event.
    pub fn note(&mut self, stage: &str, detail: impl Into<String>) {
        self.events.push(DegradationEvent {
            stage: stage.to_string(),
            detail: detail.into(),
        });
    }

    /// Fold the fault-plan fire counts into this record.
    pub fn absorb_plan(&mut self, plan: &FaultPlan) {
        self.faults_injected = plan.total_fired();
        self.stalled_sends = plan.fired(FaultSite::StallSend);
        self.shadow_alloc_failures = plan.fired(FaultSite::AllocShadow);
    }

    /// Stable JSON rendering (counters only) for CI artifacts.
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self.missing_shards.iter().map(|s| s.to_string()).collect();
        format!(
            concat!(
                "{{\"faults_injected\":{},\"stage_retries\":{},",
                "\"fell_back_serial\":{},\"dropped_chunks\":{},",
                "\"malformed_chunks\":{},\"stalled_sends\":{},",
                "\"unresolved_accesses\":{},\"shadow_alloc_failures\":{},",
                "\"budget_overapprox_stmts\":{},\"deadline_hit\":{},",
                "\"budget_pressure\":{},\"peak_tracked_bytes\":{},",
                "\"missing_shards\":[{}]}}"
            ),
            self.faults_injected,
            self.stage_retries,
            self.fell_back_serial,
            self.dropped_chunks,
            self.malformed_chunks,
            self.stalled_sends,
            self.unresolved_accesses,
            self.shadow_alloc_failures,
            self.budget_overapprox_stmts,
            self.deadline_hit,
            self.budget_pressure,
            self.peak_tracked_bytes,
            shards.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_and_fire_order() {
        let p = FaultPlan::parse("seed=7;panic:fold@2;stall:send@1").unwrap();
        assert_eq!(p.seed(), 7);
        assert!(!p.should_fire(FaultSite::PanicFold)); // occurrence 1
        assert!(p.should_fire(FaultSite::PanicFold)); // occurrence 2 — armed
        assert!(!p.should_fire(FaultSite::PanicFold)); // one-shot
        assert!(p.should_fire(FaultSite::StallSend));
        assert_eq!(p.fired(FaultSite::PanicFold), 1);
        assert_eq!(p.total_fired(), 2);
    }

    #[test]
    fn seeded_random_occurrence_is_deterministic() {
        let occ = |seed: u64| {
            let p = FaultPlan::parse(&format!("seed={seed};panic:pre@?")).unwrap();
            let mut n = 0u64;
            while !p.should_fire(FaultSite::PanicPre) {
                n += 1;
                assert!(n < 64, "armed occurrence must be in [1,16]");
            }
            n + 1
        };
        assert_eq!(occ(3), occ(3), "same seed, same occurrence");
        assert!((1..=16).contains(&occ(3)));
        // Different seeds eventually differ (not guaranteed per pair, but
        // across a small range at least two must diverge).
        let all: Vec<u64> = (0..8).map(occ).collect();
        assert!(all.iter().any(|&x| x != all[0]), "{all:?}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("panic:fold").is_err());
        assert!(FaultPlan::parse("panic:nope@1").is_err());
        assert!(FaultPlan::parse("panic:fold@0").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
    }

    #[test]
    fn every_occurrence_fires_repeatedly() {
        let p = FaultPlan::always(FaultSite::PanicResolve);
        for _ in 0..4 {
            assert!(p.should_fire(FaultSite::PanicResolve));
        }
        assert_eq!(p.fired(FaultSite::PanicResolve), 4);
    }

    #[test]
    fn budget_latches_pressure_and_tracks_peak() {
        let b = ResourceBudget::new(Some(100), None);
        assert!(b.charge(60));
        assert!(!b.under_pressure());
        assert!(!b.charge(50)); // 110 > 100
        assert!(b.under_pressure());
        b.uncharge(80);
        assert!(b.under_pressure(), "pressure is latched");
        assert_eq!(b.peak_bytes(), 110);
        assert_eq!(b.used_bytes(), 30);
    }

    #[test]
    fn unlimited_budget_never_pressures() {
        let b = ResourceBudget::new(None, None);
        assert!(!b.is_limited());
        assert!(b.charge(u64::MAX / 2));
        assert!(!b.under_pressure());
        assert!(!b.poll_deadline());
    }

    #[test]
    fn deadline_latches() {
        let b = ResourceBudget::new(None, Some(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.poll_deadline());
        assert!(b.deadline_was_hit());
    }

    #[test]
    fn degradation_json_is_stable() {
        let mut d = RunDegradation::default();
        assert!(!d.is_degraded());
        d.stage_retries = 2;
        d.missing_shards = vec![1, 3];
        assert!(d.is_degraded());
        let j = d.to_json();
        assert!(j.contains("\"stage_retries\":2"), "{j}");
        assert!(j.contains("\"missing_shards\":[1,3]"), "{j}");
    }

    #[test]
    fn error_display_is_informative() {
        let e = PolyProfError::StagePanic {
            stage: "fold",
            msg: "boom".into(),
        };
        assert_eq!(e.to_string(), "pipeline stage `fold` panicked: boom");
        let e = PolyProfError::BudgetExhausted { used: 5, limit: 4 };
        assert!(e.to_string().contains("5 bytes"));
    }
}
