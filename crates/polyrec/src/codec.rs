//! Wire primitives of the `.ptrace` format: LEB128 varints, zigzag signed
//! encoding, FNV-1a checksums, and the frame/footer payload codecs.
//!
//! Every frame decodes independently: the per-frame delta state (previous
//! statement id, previous coordinate vector, previous address) resets at
//! each frame boundary, so a reader can recover from any frame start and a
//! single corrupted frame never poisons its neighbours' decode state.

use polycfg::{LoopIdx, LoopRef, RecCompIdx};
use polyddg::chunk::{EventChunk, EventRef};
use polyddg::DepKind;
use polyiiv::context::{ContextInterner, CtxPathId, StmtId, StmtInfo};
use polyiiv::CtxElem;
use polyir::{BlockRef, FuncId, InstrRef, LocalBlockId};

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte slice (frame and footer checksums).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Append an unsigned LEB128 varint.
pub fn write_uv(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append a zigzag-encoded signed varint.
pub fn write_iv(buf: &mut Vec<u8>, v: i64) {
    write_uv(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Bounds-checked reader over one decoded payload.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// True once every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// One raw byte.
    pub fn read_u8(&mut self) -> Result<u8, String> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    /// One unsigned LEB128 varint.
    pub fn read_uv(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.read_u8()?;
            if shift >= 63 && b > 1 {
                return Err(format!("varint overflows u64 at byte {}", self.pos));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(format!("varint longer than 10 bytes at byte {}", self.pos));
            }
        }
    }

    /// One zigzag-encoded signed varint.
    pub fn read_iv(&mut self) -> Result<i64, String> {
        let z = self.read_uv()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
}

/// Coordinate-vector cap: a decoded event claiming more dimensions than
/// this is corrupt (the deepest shipped workload nests a dozen levels).
const MAX_COORDS: u64 = 1 << 12;

// Event opcodes — resolved (fold-interface) alphabet only. A recording
// holds post-resolution streams, so the pre-resolution `MemPre` record has
// no opcode: encoding one is a hard error, and any unknown opcode on decode
// is structured corruption, not a panic.
const OP_POINT: u8 = 0;
const OP_POINT_VAL: u8 = 1;
const OP_LOAD: u8 = 2;
const OP_STORE: u8 = 3;
const OP_DEP_FLOW: u8 = 4;
const OP_DEP_ANTI: u8 = 5;
const OP_DEP_OUTPUT: u8 = 6;
const OP_DEP_REG: u8 = 7;

fn dep_op(kind: DepKind) -> u8 {
    match kind {
        DepKind::Flow => OP_DEP_FLOW,
        DepKind::Anti => OP_DEP_ANTI,
        DepKind::Output => OP_DEP_OUTPUT,
        DepKind::Reg => OP_DEP_REG,
    }
}

/// Per-frame delta-coding state; resets at every frame boundary.
#[derive(Default)]
struct DeltaState {
    stmt: u32,
    coords: Vec<i64>,
    addr: u64,
}

impl DeltaState {
    fn write_stmt(&mut self, buf: &mut Vec<u8>, stmt: StmtId) {
        write_iv(buf, stmt.0 as i64 - self.stmt as i64);
        self.stmt = stmt.0;
    }

    fn read_stmt(&mut self, cur: &mut Cursor) -> Result<StmtId, String> {
        let v = self.stmt as i64 + cur.read_iv()?;
        let id = u32::try_from(v).map_err(|_| format!("statement id {v} out of range"))?;
        self.stmt = id;
        Ok(StmtId(id))
    }

    /// Coordinates delta-coded against the previous vector (missing previous
    /// dimensions delta against 0); wrapping arithmetic keeps the roundtrip
    /// lossless at the i64 extremes.
    fn write_coords(&mut self, buf: &mut Vec<u8>, coords: &[i64]) {
        write_uv(buf, coords.len() as u64);
        for (i, &c) in coords.iter().enumerate() {
            let prev = self.coords.get(i).copied().unwrap_or(0);
            write_iv(buf, c.wrapping_sub(prev));
        }
        self.coords.clear();
        self.coords.extend_from_slice(coords);
    }

    fn read_coords(&mut self, cur: &mut Cursor, out: &mut Vec<i64>) -> Result<(), String> {
        let n = cur.read_uv()?;
        if n > MAX_COORDS {
            return Err(format!("coordinate vector of {n} dimensions is corrupt"));
        }
        out.clear();
        for i in 0..n as usize {
            let prev = self.coords.get(i).copied().unwrap_or(0);
            out.push(prev.wrapping_add(cur.read_iv()?));
        }
        self.coords.clear();
        self.coords.extend_from_slice(out);
        Ok(())
    }

    fn write_addr(&mut self, buf: &mut Vec<u8>, addr: u64) {
        write_iv(buf, addr.wrapping_sub(self.addr) as i64);
        self.addr = addr;
    }

    fn read_addr(&mut self, cur: &mut Cursor) -> Result<u64, String> {
        let addr = self.addr.wrapping_add(cur.read_iv()? as u64);
        self.addr = addr;
        Ok(addr)
    }
}

/// Encode one fully-resolved chunk as a frame payload. Errors on a
/// pre-resolution `MemPre` record — recordings carry the resolved alphabet
/// so replay needs neither a VM nor a shadow resolver.
pub fn encode_chunk(chunk: &EventChunk, buf: &mut Vec<u8>) -> Result<(), String> {
    let mut st = DeltaState::default();
    for ev in chunk.events() {
        match ev {
            EventRef::Point {
                stmt,
                coords,
                value,
            } => {
                buf.push(if value.is_some() {
                    OP_POINT_VAL
                } else {
                    OP_POINT
                });
                st.write_stmt(buf, stmt);
                st.write_coords(buf, coords);
                if let Some(v) = value {
                    write_iv(buf, v);
                }
            }
            EventRef::Access {
                stmt,
                coords,
                addr,
                is_write,
            } => {
                buf.push(if is_write { OP_STORE } else { OP_LOAD });
                st.write_stmt(buf, stmt);
                st.write_coords(buf, coords);
                st.write_addr(buf, addr);
            }
            EventRef::Dep {
                kind,
                src,
                src_coords,
                dst,
                dst_coords,
            } => {
                buf.push(dep_op(kind));
                // src deltas against the running state, dst against src —
                // producer and consumer coordinates share long prefixes.
                st.write_stmt(buf, src);
                st.write_coords(buf, src_coords);
                st.write_stmt(buf, dst);
                st.write_coords(buf, dst_coords);
            }
            EventRef::MemPre { .. } => {
                return Err("unresolved (pre-resolution) event cannot be recorded".into());
            }
        }
    }
    Ok(())
}

/// Decode one frame payload into `chunk` (cleared first). Returns the
/// number of decoded events.
pub fn decode_chunk(payload: &[u8], chunk: &mut EventChunk) -> Result<u64, String> {
    chunk.clear();
    let mut cur = Cursor::new(payload);
    let mut st = DeltaState::default();
    let mut scratch: Vec<i64> = Vec::new();
    let mut scratch2: Vec<i64> = Vec::new();
    let mut n = 0u64;
    while !cur.is_done() {
        let op = cur.read_u8()?;
        match op {
            OP_POINT | OP_POINT_VAL => {
                let stmt = st.read_stmt(&mut cur)?;
                st.read_coords(&mut cur, &mut scratch)?;
                let value = if op == OP_POINT_VAL {
                    Some(cur.read_iv()?)
                } else {
                    None
                };
                chunk.push_point(stmt, &scratch, value);
            }
            OP_LOAD | OP_STORE => {
                let stmt = st.read_stmt(&mut cur)?;
                st.read_coords(&mut cur, &mut scratch)?;
                let addr = st.read_addr(&mut cur)?;
                chunk.push_access(stmt, &scratch, addr, op == OP_STORE);
            }
            OP_DEP_FLOW | OP_DEP_ANTI | OP_DEP_OUTPUT | OP_DEP_REG => {
                let kind = match op {
                    OP_DEP_FLOW => DepKind::Flow,
                    OP_DEP_ANTI => DepKind::Anti,
                    OP_DEP_OUTPUT => DepKind::Output,
                    _ => DepKind::Reg,
                };
                let src = st.read_stmt(&mut cur)?;
                st.read_coords(&mut cur, &mut scratch)?;
                let dst = st.read_stmt(&mut cur)?;
                st.read_coords(&mut cur, &mut scratch2)?;
                chunk.push_dep(kind, src, &scratch, dst, &scratch2);
            }
            other => return Err(format!("unknown event opcode {other}")),
        }
        n += 1;
    }
    Ok(n)
}

// Context-element tags of the footer's statement table.
const CTX_BLOCK: u8 = 0;
const CTX_LOOP_CFG: u8 = 1;
const CTX_LOOP_REC: u8 = 2;

fn write_block_ref(buf: &mut Vec<u8>, b: BlockRef) {
    write_uv(buf, b.func.0 as u64);
    write_uv(buf, b.block.0 as u64);
}

fn read_u32(cur: &mut Cursor) -> Result<u32, String> {
    let v = cur.read_uv()?;
    u32::try_from(v).map_err(|_| format!("id {v} exceeds u32"))
}

fn read_block_ref(cur: &mut Cursor) -> Result<BlockRef, String> {
    Ok(BlockRef {
        func: FuncId(read_u32(cur)?),
        block: LocalBlockId(read_u32(cur)?),
    })
}

/// Serialize the interner's statement table (context paths + statements)
/// into the footer payload. Replay reconstructs the interner from this, so
/// offline finalization can classify SCEVs without re-running the VM.
pub fn encode_interner(buf: &mut Vec<u8>, interner: &ContextInterner) {
    write_uv(buf, interner.n_paths() as u64);
    for p in 0..interner.n_paths() {
        let stacks = interner.path(CtxPathId(p as u32));
        write_uv(buf, stacks.len() as u64);
        for stack in stacks {
            write_uv(buf, stack.len() as u64);
            for elem in stack {
                match *elem {
                    CtxElem::Block(b) => {
                        buf.push(CTX_BLOCK);
                        write_block_ref(buf, b);
                    }
                    CtxElem::Loop(LoopRef::Cfg(f, l)) => {
                        buf.push(CTX_LOOP_CFG);
                        write_uv(buf, f.0 as u64);
                        write_uv(buf, l.0 as u64);
                    }
                    CtxElem::Loop(LoopRef::Rec(r)) => {
                        buf.push(CTX_LOOP_REC);
                        write_uv(buf, r.0 as u64);
                    }
                }
            }
        }
    }
    write_uv(buf, interner.n_stmts() as u64);
    for (_, info) in interner.stmts() {
        write_uv(buf, info.path.0 as u64);
        write_block_ref(buf, info.instr.block);
        write_uv(buf, info.instr.idx as u64);
        write_uv(buf, info.depth as u64);
    }
}

/// Table-size cap: a footer claiming more than this many paths/statements
/// is corrupt (real workloads intern a few thousand).
const MAX_TABLE: u64 = 1 << 24;

/// Interner parts as stored in the footer: per-path per-dimension context
/// stacks, plus the statement table.
pub type InternerParts = (Vec<Vec<Vec<CtxElem>>>, Vec<StmtInfo>);

/// Decode the footer's statement table back into interner parts.
pub fn decode_interner(cur: &mut Cursor) -> Result<InternerParts, String> {
    let n_paths = cur.read_uv()?;
    if n_paths > MAX_TABLE {
        return Err(format!("statement table claims {n_paths} paths"));
    }
    let mut paths = Vec::with_capacity(n_paths as usize);
    for _ in 0..n_paths {
        let n_dims = cur.read_uv()?;
        if n_dims > MAX_COORDS {
            return Err(format!("context path claims {n_dims} dimensions"));
        }
        let mut stacks = Vec::with_capacity(n_dims as usize);
        for _ in 0..n_dims {
            let n_elems = cur.read_uv()?;
            if n_elems > MAX_TABLE {
                return Err(format!("context stack claims {n_elems} elements"));
            }
            let mut stack = Vec::with_capacity(n_elems as usize);
            for _ in 0..n_elems {
                let elem = match cur.read_u8()? {
                    CTX_BLOCK => CtxElem::Block(read_block_ref(cur)?),
                    CTX_LOOP_CFG => CtxElem::Loop(LoopRef::Cfg(
                        FuncId(read_u32(cur)?),
                        LoopIdx(read_u32(cur)?),
                    )),
                    CTX_LOOP_REC => CtxElem::Loop(LoopRef::Rec(RecCompIdx(read_u32(cur)?))),
                    other => return Err(format!("unknown context-element tag {other}")),
                };
                stack.push(elem);
            }
            stacks.push(stack);
        }
        paths.push(stacks);
    }
    let n_stmts = cur.read_uv()?;
    if n_stmts > MAX_TABLE {
        return Err(format!("statement table claims {n_stmts} statements"));
    }
    let mut stmts = Vec::with_capacity(n_stmts as usize);
    for _ in 0..n_stmts {
        let path = CtxPathId(read_u32(cur)?);
        if path.0 as u64 >= n_paths {
            return Err(format!("statement references path {} of {n_paths}", path.0));
        }
        let block = read_block_ref(cur)?;
        let idx = read_u32(cur)?;
        let depth = cur.read_uv()? as usize;
        stmts.push(StmtInfo {
            path,
            instr: InstrRef { block, idx },
            depth,
        });
    }
    Ok((paths, stmts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_extremes() {
        let mut buf = Vec::new();
        let us = [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX];
        let is = [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN];
        for &v in &us {
            write_uv(&mut buf, v);
        }
        for &v in &is {
            write_iv(&mut buf, v);
        }
        let mut cur = Cursor::new(&buf);
        for &v in &us {
            assert_eq!(cur.read_uv().unwrap(), v);
        }
        for &v in &is {
            assert_eq!(cur.read_iv().unwrap(), v);
        }
        assert!(cur.is_done());
    }

    #[test]
    fn chunk_codec_roundtrips_all_event_kinds() {
        let mut c = EventChunk::with_capacity(8);
        c.push_point(StmtId(3), &[0, 1], Some(-7));
        c.push_point(StmtId(3), &[0, 2], None);
        c.push_access(StmtId(4), &[0, 2], 1000, false);
        c.push_access(StmtId(4), &[0, 3], 1001, true);
        c.push_dep(DepKind::Flow, StmtId(3), &[0, 1], StmtId(4), &[0, 2]);
        c.push_dep(DepKind::Reg, StmtId(1), &[i64::MIN], StmtId(2), &[i64::MAX]);
        let mut buf = Vec::new();
        encode_chunk(&c, &mut buf).unwrap();
        let mut back = EventChunk::default();
        assert_eq!(decode_chunk(&buf, &mut back).unwrap(), 6);
        let orig: Vec<String> = c.events().map(|e| format!("{e:?}")).collect();
        let got: Vec<String> = back.events().map(|e| format!("{e:?}")).collect();
        assert_eq!(orig, got);
    }

    #[test]
    fn mem_pre_refuses_to_encode() {
        let mut c = EventChunk::with_capacity(2);
        c.push_mem_pre(StmtId(0), &[0], 4, false);
        let mut buf = Vec::new();
        assert!(encode_chunk(&c, &mut buf).is_err());
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let mut c = EventChunk::with_capacity(2);
        c.push_point(StmtId(1), &[5, 6, 7], Some(9));
        let mut buf = Vec::new();
        encode_chunk(&c, &mut buf).unwrap();
        let mut back = EventChunk::default();
        for cut in 1..buf.len() {
            assert!(
                decode_chunk(&buf[..cut], &mut back).is_err(),
                "cut at {cut} must fail"
            );
        }
    }
}
