//! `polyrec`: versioned on-disk event-stream recordings.
//!
//! Splits profiling from analysis (ROADMAP item 2): a [`Recorder`] taps the
//! resolved folding-interface stream during a live run and persists it as a
//! compact `.ptrace` file; a [`TraceReader`] replays the frames back into
//! recycled [`EventChunk`]s so the folder can re-run at any shard count K
//! without the VM, the shadow resolver, or even the original binary.
//!
//! # File layout (format version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"POLYREC\0"
//! 8       4     format version (u32 LE)         — mismatch is a hard error
//! 12      8     program hash (u64 LE)           — FNV-1a of the IR rendering
//! 20      4     chunk_events (u32 LE)           — recorder's chunk capacity
//! 24      8     total events (u64 LE)           — patched at finish()
//! 32      8     total frames (u64 LE)           — patched at finish()
//! 40      4     workload-name length (u32 LE)
//! 44      n     workload name (UTF-8)
//! --      --    frames: [0x01][payload len u32][payload][FNV-1a u64] ...
//! --      --    footer: [0x02][payload len u32][payload][FNV-1a u64]
//! --      8     end magic b"POLYREND"
//! ```
//!
//! Frame payloads are delta-coded zigzag varints (see [`codec`]); the footer
//! carries the interner's statement table plus the authoritative event/frame
//! totals. Three independent truncation tripwires — per-frame checksums, the
//! header counts (patched in place at `finish`, so a crash mid-write leaves
//! zeros), and the footer totals + end magic — mean a torn or bit-flipped
//! file surfaces as a structured [`PolyProfError::Recording`], never a panic
//! or a silently short replay.

pub mod codec;

use polyddg::chunk::EventChunk;
use polyddg::{DepKind, FoldSink, PreSink};
use polyiiv::context::{ContextInterner, StmtId};
use polyir::Program;
use polyresist::PolyProfError;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Leading file magic.
pub const MAGIC: [u8; 8] = *b"POLYREC\0";
/// Trailing file magic (after the footer frame).
pub const END_MAGIC: [u8; 8] = *b"POLYREND";
/// Current format version. Readers accept exactly this version; a bump is a
/// hard, tested error — old fixtures must be re-recorded, never reinterpreted.
pub const FORMAT_VERSION: u32 = 1;

/// Byte offset of the format version in the header.
pub const HDR_VERSION_OFF: u64 = 8;
/// Byte offset of the total-event count patched at `finish()`.
pub const HDR_EVENTS_OFF: u64 = 24;
/// Byte offset of the total-frame count patched at `finish()`.
pub const HDR_FRAMES_OFF: u64 = 32;

/// Frame tag: one encoded [`EventChunk`].
const TAG_FRAME: u8 = 1;
/// Frame tag: the footer (statement table + totals).
const TAG_FOOTER: u8 = 2;

/// Upper bound on a single frame/footer payload (64 MiB) — a length field
/// above this is corruption, not a real chunk.
const MAX_PAYLOAD: u32 = 64 << 20;

fn rec_err(path: &str, detail: impl Into<String>) -> PolyProfError {
    PolyProfError::Recording {
        path: path.to_string(),
        detail: detail.into(),
    }
}

fn io_err(path: &str, op: &str, e: std::io::Error) -> PolyProfError {
    rec_err(path, format!("{op}: {e}"))
}

/// Content hash of a [`Program`], stored in the header so a recording can
/// only be replayed against the IR that produced it. Hashes the IR's
/// deterministic `Debug` rendering (the `Program` tree is plain `Vec`s, so
/// the rendering is stable) with FNV-1a, streamed — no intermediate string.
pub fn program_hash(prog: &Program) -> u64 {
    struct FnvWriter(u64);
    impl std::fmt::Write for FnvWriter {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for b in s.bytes() {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Ok(())
        }
    }
    use std::fmt::Write as _;
    let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
    let _ = write!(w, "{prog:?}");
    w.0
}

/// What a finished recording contained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Event frames written (excluding the footer).
    pub frames: u64,
    /// Total events across all frames.
    pub events: u64,
    /// Total bytes written, header and footer included.
    pub bytes: u64,
}

/// Streaming `.ptrace` writer: header up front, one frame per chunk, footer
/// plus header count-patch at [`finish`](Self::finish).
pub struct TraceWriter<W: Write + Seek> {
    w: W,
    label: String,
    frames: u64,
    events: u64,
    bytes: u64,
    payload: Vec<u8>,
}

impl TraceWriter<BufWriter<File>> {
    /// Create a recording at `path` for `prog` (hash + workload name are
    /// derived from the program).
    pub fn create(path: &Path, prog: &Program, chunk_events: usize) -> Result<Self, PolyProfError> {
        let label = path.display().to_string();
        let f = File::create(path).map_err(|e| io_err(&label, "create", e))?;
        Self::new(
            BufWriter::new(f),
            label,
            program_hash(prog),
            &prog.name,
            chunk_events,
        )
    }
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Write the header onto `w`. `label` names the stream in errors.
    pub fn new(
        mut w: W,
        label: String,
        program_hash: u64,
        workload: &str,
        chunk_events: usize,
    ) -> Result<Self, PolyProfError> {
        let mut hdr = Vec::with_capacity(44 + workload.len());
        hdr.extend_from_slice(&MAGIC);
        hdr.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        hdr.extend_from_slice(&program_hash.to_le_bytes());
        hdr.extend_from_slice(&(chunk_events as u32).to_le_bytes());
        hdr.extend_from_slice(&0u64.to_le_bytes()); // total events, patched
        hdr.extend_from_slice(&0u64.to_le_bytes()); // total frames, patched
        hdr.extend_from_slice(&(workload.len() as u32).to_le_bytes());
        hdr.extend_from_slice(workload.as_bytes());
        w.write_all(&hdr)
            .map_err(|e| io_err(&label, "write header", e))?;
        Ok(TraceWriter {
            w,
            label,
            frames: 0,
            events: 0,
            bytes: hdr.len() as u64,
            payload: Vec::new(),
        })
    }

    /// Append one resolved chunk as a checksummed frame.
    pub fn write_chunk(&mut self, chunk: &EventChunk) -> Result<(), PolyProfError> {
        if chunk.is_empty() {
            return Ok(());
        }
        self.payload.clear();
        codec::encode_chunk(chunk, &mut self.payload).map_err(|d| rec_err(&self.label, d))?;
        self.emit_frame(TAG_FRAME)?;
        self.frames += 1;
        self.events += chunk.len() as u64;
        Ok(())
    }

    fn emit_frame(&mut self, tag: u8) -> Result<(), PolyProfError> {
        if self.payload.len() as u64 > MAX_PAYLOAD as u64 {
            return Err(rec_err(
                &self.label,
                format!("frame payload of {} bytes exceeds cap", self.payload.len()),
            ));
        }
        let sum = codec::fnv1a(&self.payload);
        let r: Result<(), std::io::Error> = (|| {
            self.w.write_all(&[tag])?;
            self.w
                .write_all(&(self.payload.len() as u32).to_le_bytes())?;
            self.w.write_all(&self.payload)?;
            self.w.write_all(&sum.to_le_bytes())
        })();
        r.map_err(|e| io_err(&self.label, "write frame", e))?;
        self.bytes += 1 + 4 + self.payload.len() as u64 + 8;
        Ok(())
    }

    /// Write the footer (statement table + authoritative totals), patch the
    /// header counts, and flush. Consumes the writer; a recording without a
    /// successful `finish` is detectably truncated.
    pub fn finish(mut self, interner: &ContextInterner) -> Result<WriteStats, PolyProfError> {
        self.payload.clear();
        codec::encode_interner(&mut self.payload, interner);
        codec::write_uv(&mut self.payload, self.events);
        codec::write_uv(&mut self.payload, self.frames);
        self.emit_frame(TAG_FOOTER)?;
        let r: Result<(), std::io::Error> = (|| {
            self.w.write_all(&END_MAGIC)?;
            self.w.seek(SeekFrom::Start(HDR_EVENTS_OFF))?;
            self.w.write_all(&self.events.to_le_bytes())?;
            self.w.write_all(&self.frames.to_le_bytes())?;
            self.w.flush()
        })();
        r.map_err(|e| io_err(&self.label, "finalize", e))?;
        self.bytes += END_MAGIC.len() as u64;
        Ok(WriteStats {
            frames: self.frames,
            events: self.events,
            bytes: self.bytes,
        })
    }

    /// Frames/events/bytes written so far (footer not included).
    pub fn stats(&self) -> WriteStats {
        WriteStats {
            frames: self.frames,
            events: self.events,
            bytes: self.bytes,
        }
    }
}

/// A recording tap: forwards every resolved event to an inner [`FoldSink`]
/// unchanged while buffering a copy into chunks and spilling each full chunk
/// as one frame.
///
/// Sink methods are infallible by contract, so IO failures are stashed and
/// surfaced at [`finish`](Self::finish) — the live fold is never disturbed
/// by a broken disk, it just loses the recording.
pub struct Recorder<S: FoldSink, W: Write + Seek> {
    inner: S,
    writer: Option<TraceWriter<W>>,
    buf: EventChunk,
    cap: usize,
    err: Option<PolyProfError>,
}

impl<S: FoldSink> Recorder<S, BufWriter<File>> {
    /// Record to a fresh file at `path` while folding into `inner`.
    pub fn to_file(
        path: &Path,
        prog: &Program,
        chunk_events: usize,
        inner: S,
    ) -> Result<Self, PolyProfError> {
        let writer = TraceWriter::create(path, prog, chunk_events)?;
        Ok(Self::new(writer, chunk_events, inner))
    }
}

impl<S: FoldSink, W: Write + Seek> Recorder<S, W> {
    /// Tap `inner` and spill chunks of `chunk_events` events into `writer`.
    pub fn new(writer: TraceWriter<W>, chunk_events: usize, inner: S) -> Self {
        let cap = chunk_events.max(1);
        Recorder {
            inner,
            writer: Some(writer),
            buf: EventChunk::with_capacity(cap),
            cap,
            err: None,
        }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped sink, mutably.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    fn spill(&mut self) {
        if self.err.is_some() || self.buf.is_empty() {
            self.buf.clear();
            return;
        }
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.write_chunk(&self.buf) {
                self.err = Some(e);
            }
        }
        self.buf.clear();
    }

    fn after_push(&mut self) {
        if self.buf.len() >= self.cap {
            self.spill();
        }
    }

    /// Flush the partial chunk, write the footer, and return the inner sink
    /// plus write stats. Any IO error stashed mid-run resurfaces here.
    pub fn finish(mut self, interner: &ContextInterner) -> Result<(S, WriteStats), PolyProfError> {
        self.spill();
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        let writer = self.writer.take().expect("finish called once");
        let stats = writer.finish(interner)?;
        Ok((self.inner, stats))
    }

    /// Flush the partial chunk and hand back the inner sink and the still
    /// footer-less writer. For pipelines where the interner only becomes
    /// available on another thread after this sink is torn down — the caller
    /// must still call [`TraceWriter::finish`] or the recording is
    /// (detectably) truncated.
    pub fn into_writer(mut self) -> Result<(S, TraceWriter<W>), PolyProfError> {
        self.spill();
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        let writer = self.writer.take().expect("writer present until teardown");
        Ok((self.inner, writer))
    }
}

impl<S: FoldSink, W: Write + Seek> FoldSink for Recorder<S, W> {
    fn instr_point(&mut self, stmt: StmtId, coords: &[i64], value: Option<i64>) {
        self.buf.push_point(stmt, coords, value);
        self.after_push();
        self.inner.instr_point(stmt, coords, value);
    }

    fn mem_access(&mut self, stmt: StmtId, coords: &[i64], addr: u64, is_write: bool) {
        self.buf.push_access(stmt, coords, addr, is_write);
        self.after_push();
        self.inner.mem_access(stmt, coords, addr, is_write);
    }

    fn dependence(
        &mut self,
        kind: DepKind,
        src: StmtId,
        src_coords: &[i64],
        dst: StmtId,
        dst_coords: &[i64],
    ) {
        self.buf.push_dep(kind, src, src_coords, dst, dst_coords);
        self.after_push();
        self.inner
            .dependence(kind, src, src_coords, dst, dst_coords);
    }
}

impl<S: PreSink, W: Write + Seek> PreSink for Recorder<S, W> {
    /// Pre-resolution records pass straight through: the recording holds the
    /// *resolved* stream, and unresolved touches are resolved downstream.
    fn mem_pre(&mut self, stmt: StmtId, coords: &[i64], addr: u64, is_write: bool) {
        self.inner.mem_pre(stmt, coords, addr, is_write);
    }
}

/// Header fields of an opened recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Format version (always [`FORMAT_VERSION`] once opened).
    pub version: u32,
    /// [`program_hash`] of the recorded program.
    pub program_hash: u64,
    /// Chunk capacity the recorder used.
    pub chunk_events: u32,
    /// Workload name from the header.
    pub workload: String,
    /// Header's total-event count (0 if the writer crashed before finish).
    pub header_events: u64,
    /// Header's total-frame count (0 if the writer crashed before finish).
    pub header_frames: u64,
}

/// What a fully-read recording contained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Event frames read (excluding the footer).
    pub frames: u64,
    /// Total events decoded.
    pub events: u64,
    /// Total payload bytes decoded (frames + footer).
    pub bytes: u64,
}

/// Streaming `.ptrace` reader: [`next_chunk`](Self::next_chunk) until it
/// returns `false`, then [`finish`](Self::finish) to recover the interner
/// and cross-check all three event counts.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    label: String,
    meta: TraceMeta,
    frames: u64,
    events: u64,
    bytes: u64,
    payload: Vec<u8>,
    footer: Option<(ContextInterner, u64, u64)>,
}

impl TraceReader<BufReader<File>> {
    /// Open a recording file and validate its header.
    pub fn open(path: &Path) -> Result<Self, PolyProfError> {
        let label = path.display().to_string();
        let f = File::open(path).map_err(|e| io_err(&label, "open", e))?;
        Self::new(BufReader::new(f), label)
    }
}

impl<R: Read> TraceReader<R> {
    /// Wrap a raw stream and validate its header. `label` names the stream
    /// in errors.
    pub fn new(mut r: R, label: String) -> Result<Self, PolyProfError> {
        let mut fixed = [0u8; 44];
        read_exact(&mut r, &mut fixed, &label, "header")?;
        if fixed[0..8] != MAGIC {
            return Err(rec_err(&label, "bad magic: not a polyrec recording"));
        }
        let version = u32::from_le_bytes(fixed[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(rec_err(
                &label,
                format!(
                    "unsupported format version {version} (this build reads version {FORMAT_VERSION})"
                ),
            ));
        }
        let program_hash = u64::from_le_bytes(fixed[12..20].try_into().unwrap());
        let chunk_events = u32::from_le_bytes(fixed[20..24].try_into().unwrap());
        let header_events = u64::from_le_bytes(fixed[24..32].try_into().unwrap());
        let header_frames = u64::from_le_bytes(fixed[32..40].try_into().unwrap());
        let name_len = u32::from_le_bytes(fixed[40..44].try_into().unwrap());
        if name_len > 4096 {
            return Err(rec_err(
                &label,
                format!("workload name of {name_len} bytes is corrupt"),
            ));
        }
        let mut name = vec![0u8; name_len as usize];
        read_exact(&mut r, &mut name, &label, "workload name")?;
        let workload =
            String::from_utf8(name).map_err(|_| rec_err(&label, "workload name is not UTF-8"))?;
        Ok(TraceReader {
            r,
            label,
            meta: TraceMeta {
                version,
                program_hash,
                chunk_events,
                workload,
                header_events,
                header_frames,
            },
            frames: 0,
            events: 0,
            bytes: 0,
            payload: Vec::new(),
            footer: None,
        })
    }

    /// Header metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Frames/events/bytes decoded so far.
    pub fn stats(&self) -> ReadStats {
        ReadStats {
            frames: self.frames,
            events: self.events,
            bytes: self.bytes,
        }
    }

    /// Decode the next frame into `chunk` (cleared first; pass a recycled
    /// chunk to amortize its buffers). Returns `Ok(false)` once the footer
    /// is reached — after that, call [`finish`](Self::finish).
    pub fn next_chunk(&mut self, chunk: &mut EventChunk) -> Result<bool, PolyProfError> {
        if self.footer.is_some() {
            chunk.clear();
            return Ok(false);
        }
        let tag = self.read_frame()?;
        match tag {
            TAG_FRAME => {
                let n = codec::decode_chunk(&self.payload, chunk)
                    .map_err(|d| rec_err(&self.label, format!("frame {}: {d}", self.frames)))?;
                self.frames += 1;
                self.events += n;
                Ok(true)
            }
            TAG_FOOTER => {
                chunk.clear();
                self.read_footer()?;
                Ok(false)
            }
            other => Err(rec_err(&self.label, format!("unknown frame tag {other}"))),
        }
    }

    /// Read one tagged frame into `self.payload`, verifying its checksum.
    fn read_frame(&mut self) -> Result<u8, PolyProfError> {
        let mut tag = [0u8; 1];
        read_exact(
            &mut self.r,
            &mut tag,
            &self.label,
            "frame tag (file truncated)",
        )?;
        let mut len = [0u8; 4];
        read_exact(
            &mut self.r,
            &mut len,
            &self.label,
            "frame length (file truncated)",
        )?;
        let len = u32::from_le_bytes(len);
        if len > MAX_PAYLOAD {
            return Err(rec_err(
                &self.label,
                format!("frame payload of {len} bytes exceeds cap — corrupt length"),
            ));
        }
        self.payload.resize(len as usize, 0);
        read_exact(
            &mut self.r,
            &mut self.payload,
            &self.label,
            "frame payload (file truncated)",
        )?;
        let mut sum = [0u8; 8];
        read_exact(
            &mut self.r,
            &mut sum,
            &self.label,
            "frame checksum (file truncated)",
        )?;
        let want = u64::from_le_bytes(sum);
        let got = codec::fnv1a(&self.payload);
        if want != got {
            return Err(rec_err(
                &self.label,
                format!(
                    "frame {} checksum mismatch (stored {want:#018x}, computed {got:#018x})",
                    self.frames
                ),
            ));
        }
        self.bytes += len as u64;
        Ok(tag[0])
    }

    /// Decode the footer payload and run the count cross-checks.
    fn read_footer(&mut self) -> Result<(), PolyProfError> {
        let mut cur = codec::Cursor::new(&self.payload);
        let (paths, stmts) = codec::decode_interner(&mut cur)
            .map_err(|d| rec_err(&self.label, format!("footer: {d}")))?;
        let total_events = cur
            .read_uv()
            .map_err(|d| rec_err(&self.label, format!("footer totals: {d}")))?;
        let total_frames = cur
            .read_uv()
            .map_err(|d| rec_err(&self.label, format!("footer totals: {d}")))?;
        if !cur.is_done() {
            return Err(rec_err(&self.label, "footer has trailing bytes"));
        }
        let mut end = [0u8; 8];
        read_exact(
            &mut self.r,
            &mut end,
            &self.label,
            "end magic (file truncated)",
        )?;
        if end != END_MAGIC {
            return Err(rec_err(&self.label, "bad end magic after footer"));
        }
        let mut extra = [0u8; 1];
        match self.r.read(&mut extra) {
            Ok(0) => {}
            Ok(_) => return Err(rec_err(&self.label, "trailing garbage after end magic")),
            Err(e) => return Err(io_err(&self.label, "probe end of stream", e)),
        }
        // Three-way count agreement: decoded stream vs footer vs header.
        if total_events != self.events || total_frames != self.frames {
            return Err(rec_err(
                &self.label,
                format!(
                    "footer claims {total_frames} frames / {total_events} events but stream \
                     decoded {} / {}",
                    self.frames, self.events
                ),
            ));
        }
        if self.meta.header_events != self.events || self.meta.header_frames != self.frames {
            return Err(rec_err(
                &self.label,
                format!(
                    "header claims {} frames / {} events but stream decoded {} / {} — \
                     recording was not finished or the header was tampered with",
                    self.meta.header_frames, self.meta.header_events, self.frames, self.events
                ),
            ));
        }
        self.footer = Some((
            ContextInterner::from_parts(paths, stmts),
            total_events,
            total_frames,
        ));
        Ok(())
    }

    /// Consume the reader after the footer was reached, returning the
    /// reconstructed interner and final stats. Calling this before
    /// [`next_chunk`](Self::next_chunk) returned `false` is an error — the
    /// stream was not fully verified.
    pub fn finish(self) -> Result<(ContextInterner, ReadStats), PolyProfError> {
        let stats = ReadStats {
            frames: self.frames,
            events: self.events,
            bytes: self.bytes,
        };
        match self.footer {
            Some((interner, _, _)) => Ok((interner, stats)),
            None => Err(rec_err(
                &self.label,
                "finish() before the footer was reached — stream not fully read",
            )),
        }
    }
}

fn read_exact<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    label: &str,
    what: &str,
) -> Result<(), PolyProfError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            rec_err(label, format!("unexpected end of file reading {what}"))
        } else {
            io_err(label, what, e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor as IoCursor;

    fn interner_with_stmts() -> ContextInterner {
        use polyir::{BlockRef, FuncId, InstrRef, LocalBlockId};
        let b = BlockRef {
            func: FuncId(0),
            block: LocalBlockId(0),
        };
        ContextInterner::from_parts(
            vec![vec![vec![polyiiv::CtxElem::Block(b)]]],
            vec![polyiiv::context::StmtInfo {
                path: polyiiv::context::CtxPathId(0),
                instr: InstrRef { block: b, idx: 0 },
                depth: 1,
            }],
        )
    }

    #[test]
    fn roundtrip_in_memory() {
        let mut bytes = Vec::new();
        {
            let buf = IoCursor::new(&mut bytes);
            let mut w = TraceWriter::new(buf, "<mem>".into(), 42, "unit", 4).unwrap();
            let mut c = EventChunk::with_capacity(4);
            c.push_point(StmtId(0), &[0, 7], Some(-3));
            c.push_access(StmtId(0), &[0, 7], 128, false);
            w.write_chunk(&c).unwrap();
            c.clear();
            c.push_dep(DepKind::Anti, StmtId(0), &[1], StmtId(0), &[2]);
            w.write_chunk(&c).unwrap();
            let stats = w.finish(&interner_with_stmts()).unwrap();
            assert_eq!(stats.frames, 2);
            assert_eq!(stats.events, 3);
        }
        let mut r = TraceReader::new(IoCursor::new(&bytes[..]), "<mem>".into()).unwrap();
        assert_eq!(r.meta().program_hash, 42);
        assert_eq!(r.meta().workload, "unit");
        assert_eq!(r.meta().header_events, 3);
        let mut chunk = EventChunk::default();
        let mut seen = Vec::new();
        while r.next_chunk(&mut chunk).unwrap() {
            for ev in chunk.events() {
                seen.push(format!("{ev:?}"));
            }
        }
        assert_eq!(seen.len(), 3);
        let (interner, stats) = r.finish().unwrap();
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.events, 3);
        assert_eq!(interner.n_stmts(), 1);
        assert_eq!(interner.n_paths(), 1);
    }

    #[test]
    fn empty_recording_roundtrips() {
        let mut bytes = Vec::new();
        {
            let w =
                TraceWriter::new(IoCursor::new(&mut bytes), "<mem>".into(), 7, "empty", 4).unwrap();
            w.finish(&interner_with_stmts()).unwrap();
        }
        let mut r = TraceReader::new(IoCursor::new(&bytes[..]), "<mem>".into()).unwrap();
        let mut chunk = EventChunk::default();
        assert!(!r.next_chunk(&mut chunk).unwrap());
        let (_, stats) = r.finish().unwrap();
        assert_eq!(stats.frames, 0);
        assert_eq!(stats.events, 0);
    }

    #[test]
    fn version_bump_is_a_hard_error() {
        let mut bytes = Vec::new();
        {
            let w = TraceWriter::new(IoCursor::new(&mut bytes), "<mem>".into(), 7, "v", 4).unwrap();
            w.finish(&interner_with_stmts()).unwrap();
        }
        bytes[HDR_VERSION_OFF as usize] = (FORMAT_VERSION + 1) as u8;
        let err = TraceReader::new(IoCursor::new(&bytes[..]), "<mem>".into()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unsupported format version"), "{msg}");
    }

    #[test]
    fn bad_magic_is_a_hard_error() {
        let mut bytes = Vec::new();
        {
            let w = TraceWriter::new(IoCursor::new(&mut bytes), "<mem>".into(), 7, "v", 4).unwrap();
            w.finish(&interner_with_stmts()).unwrap();
        }
        bytes[0] ^= 0xff;
        let err = TraceReader::new(IoCursor::new(&bytes[..]), "<mem>".into()).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn recorder_taps_without_perturbing_inner() {
        #[derive(Default)]
        struct CountSink(usize);
        impl FoldSink for CountSink {
            fn instr_point(&mut self, _: StmtId, _: &[i64], _: Option<i64>) {
                self.0 += 1;
            }
            fn mem_access(&mut self, _: StmtId, _: &[i64], _: u64, _: bool) {
                self.0 += 1;
            }
            fn dependence(&mut self, _: DepKind, _: StmtId, _: &[i64], _: StmtId, _: &[i64]) {
                self.0 += 1;
            }
        }
        let mut bytes = Vec::new();
        {
            let w =
                TraceWriter::new(IoCursor::new(&mut bytes), "<mem>".into(), 7, "tap", 2).unwrap();
            let mut rec = Recorder::new(w, 2, CountSink::default());
            for i in 0..5i64 {
                rec.instr_point(StmtId(0), &[i], Some(i));
            }
            let (inner, stats) = rec.finish(&interner_with_stmts()).unwrap();
            assert_eq!(inner.0, 5);
            assert_eq!(stats.events, 5);
            assert_eq!(stats.frames, 3); // 2 + 2 + 1
        }
        let mut r = TraceReader::new(IoCursor::new(&bytes[..]), "<mem>".into()).unwrap();
        let mut chunk = EventChunk::default();
        let mut n = 0;
        while r.next_chunk(&mut chunk).unwrap() {
            n += chunk.len();
        }
        assert_eq!(n, 5);
        r.finish().unwrap();
    }
}
