//! # polyfeedback — PolyFeat-style metrics and human-readable feedback
//! (paper §6–8)
//!
//! Turns the scheduler analysis into what Poly-Prof actually shows the
//! user:
//!
//! * per-region **metrics** — the columns of Table 5 (`%Aff`, `%ops`,
//!   `%Mops`, `%FPops`, interprocedurality, skew, `%||ops`, `%simdops`,
//!   `%reuse`, `%Preuse`, loop depths, `TileD`, `%Tilops`, fusion
//!   components C/Comp.);
//! * **transformation suggestions** — the "interchange + SIMD",
//!   "tile + parallel" feedback of the case studies (Tables 3–4);
//! * the **annotated flame graph** (Figs. 5b, 7) and a simplified
//!   **annotated AST** of the region after the suggested transformation.

pub mod metrics;
pub mod report;

pub use metrics::{ProgramFeedback, RegionReport};
pub use report::{
    annotated_ast, degradation_section, flamegraph_svg, full_report, self_flamegraph_svg,
    static_pass_section, table5_row, vm_profile_section,
};

use polycfg::StaticStructure;
use polyfold::FoldedDdg;
use polyiiv::context::ContextInterner;
use polysched::Analysis;

/// Everything the feedback stage needs from the earlier stages.
pub struct FeedbackInput<'a> {
    /// The program under analysis.
    pub prog: &'a polyir::Program,
    /// Folded DDG *after* SCEV removal.
    pub ddg: &'a FoldedDdg,
    /// The interner mapping statements to contexts.
    pub interner: &'a ContextInterner,
    /// Stage-1 structure (for naming loops and blocks).
    pub structure: &'a StaticStructure,
    /// Scheduler analysis.
    pub analysis: &'a Analysis,
}

/// Run the whole pipeline on a program and produce its feedback.
pub fn feedback_for_program(prog: &polyir::Program) -> ProgramFeedback {
    let mut rec = polycfg::StructureRecorder::new();
    polyvm::Vm::new(prog)
        .run(&[], &mut rec)
        .expect("pass-1 execution failed");
    let structure = polycfg::StaticStructure::analyze(prog, rec);
    let mut prof = polyddg::DdgProfiler::new(prog, &structure, polyfold::FoldingSink::new());
    polyvm::Vm::new(prog)
        .run(&[], &mut prof)
        .expect("pass-2 execution failed");
    let (sink, interner) = prof.finish();
    let mut ddg = sink.finalize(prog, &interner);
    ddg.remove_scevs();
    let analysis = Analysis::analyze(&ddg, &interner);
    metrics::compute(&FeedbackInput {
        prog,
        ddg: &ddg,
        interner: &interner,
        structure: &structure,
        analysis: &analysis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyir::build::ProgramBuilder;
    use polyir::FBinOp;

    fn layerforward_program(n2: i64, n1: i64) -> polyir::Program {
        let mut pb = ProgramBuilder::new("backprop");
        let conn = pb.array_f64(&vec![0.5; ((n1 + 1) * (n2 + 1) + 8) as usize]);
        let l1 = pb.array_f64(&vec![0.25; (n1 + 1) as usize]);
        let l2 = pb.alloc((n2 + 2) as u64);
        let mut sq = pb.func("squash", 1);
        let x = sq.param(0);
        let s = sq.un(polyir::UnOp::Sigmoid, x);
        sq.ret(Some(s.into()));
        let sq_id = sq.finish();
        let mut f = pb.func("main", 0);
        f.at_line(253);
        f.for_loop("Lj", 0i64, n2, 1, |f, j| {
            let sum = f.const_f(0.0);
            f.at_line(254);
            f.for_loop("Lk", 0i64, n1, 1, |f, k| {
                let row = f.mul(k, n2);
                let idx = f.add(row, j);
                let w = f.load(conn as i64, idx);
                let x = f.load(l1 as i64, k);
                let prod = f.fmul(w, x);
                f.fop_to(sum, FBinOp::Add, sum, prod);
            });
            let r = f.call(sq_id, &[sum.into()]);
            f.store(l2 as i64, j, r);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        pb.finish()
    }

    #[test]
    fn layerforward_feedback_matches_table3_shape() {
        let fb = feedback_for_program(&layerforward_program(16, 16));
        assert!(!fb.regions.is_empty());
        let r = &fb.regions[0];
        // Paper Table 3 L_layer row: parallel (outer yes), permutable nest,
        // high stride-0/1 after permutation.
        assert!(r.pct_parallel > 0.9, "%||ops = {}", r.pct_parallel);
        assert!(r.tile_depth >= 2, "fully permutable 2-D nest");
        assert!(!r.skew);
        assert!(
            r.pct_preuse >= r.pct_reuse,
            "permutation can only improve reuse"
        );
        // The kernel reads conn[k][j] with stride n2 along k (innermost):
        // reuse improves when j moves innermost.
        assert!(r.pct_preuse > 0.6, "%Preuse = {}", r.pct_preuse);
        // It calls squash → interprocedural region.
        assert!(r.interproc);
        // Suggestions mention interchange and parallelization.
        let all = r.suggestions.join("; ");
        assert!(all.contains("interchange"), "{all}");
        assert!(all.to_lowercase().contains("parallel"), "{all}");
        // %FPops and %Mops sane.
        assert!(r.pct_mops > 0.1 && r.pct_mops < 0.9);
        assert!(r.pct_fpops > 0.05);
    }

    #[test]
    fn flamegraph_and_ast_render() {
        let p = layerforward_program(8, 8);
        let mut rec = polycfg::StructureRecorder::new();
        polyvm::Vm::new(&p).run(&[], &mut rec).unwrap();
        let structure = polycfg::StaticStructure::analyze(&p, rec);
        let mut prof = polyddg::DdgProfiler::new(&p, &structure, polyfold::FoldingSink::new());
        polyvm::Vm::new(&p).run(&[], &mut prof).unwrap();
        let (sink, interner) = prof.finish();
        let mut ddg = sink.finalize(&p, &interner);
        ddg.remove_scevs();
        let analysis = Analysis::analyze(&ddg, &interner);
        let input = FeedbackInput {
            prog: &p,
            ddg: &ddg,
            interner: &interner,
            structure: &structure,
            analysis: &analysis,
        };
        let svg = flamegraph_svg(&input, "backprop");
        assert!(svg.contains("<svg") && svg.contains("</svg>"));
        assert!(svg.contains("main"), "function names appear in the graph");
        let ast = annotated_ast(&input);
        assert!(ast.contains("for"), "{ast}");
        assert!(ast.contains("parallel"), "{ast}");
    }

    #[test]
    fn nonaffine_program_reports_low_affinity() {
        // pointer chasing: b+tree-ish
        let mut pb = ProgramBuilder::new("chase");
        // linked list: node i at 2 words [next, payload]; the chain visits
        // i → (i+7) mod 32 (gcd(7,32)=1 ⇒ Hamiltonian), terminating at the
        // 32nd hop (node 25, the last in the walk from 0).
        let nodes: Vec<i64> = (0..32)
            .flat_map(|i: i64| {
                let next = if i == 25 {
                    -1
                } else {
                    0x1000 + (((i + 7) % 32) * 2)
                };
                [next, i]
            })
            .collect();
        let base = pb.array_i64(&nodes);
        assert_eq!(base, 0x1000);
        let mut f = pb.func("main", 0);
        let cur = f.mov(base as i64);
        let acc = f.const_i(0);
        f.while_loop(
            "chase",
            |f| f.icmp(polyir::CmpOp::Ge, cur, 0i64),
            |f| {
                let payload = f.load(cur, 1i64);
                f.iop_to(acc, polyir::IBinOp::Add, acc, payload);
                let next = f.load(cur, 0i64);
                f.mov_to(cur, next);
            },
        );
        f.ret(Some(acc.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let fb = feedback_for_program(&p);
        let r = &fb.regions[0];
        assert!(
            r.pct_reuse < 0.8,
            "pointer chasing should not be mostly unit-stride: {}",
            r.pct_reuse
        );
    }
}
