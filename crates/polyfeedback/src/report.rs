//! Rendering: annotated flame graphs (paper Figs. 5b/7), the simplified
//! annotated AST shown after a suggested transformation, and Table-5-style
//! text rows.

use crate::metrics::{ProgramFeedback, RegionReport};
use crate::FeedbackInput;
use polycfg::LoopRef;
use polyiiv::schedule_tree::SchedTree;
use polyiiv::CtxElem;
use std::fmt::Write as _;

/// Human-readable name for a context element.
pub fn ctx_name(input: &FeedbackInput<'_>, e: &CtxElem) -> String {
    match e {
        CtxElem::Block(b) => {
            let f = input.prog.func(b.func);
            format!("{}.{}", f.name, f.block(b.block).name)
        }
        CtxElem::Loop(LoopRef::Cfg(f, l)) => {
            let func = input.prog.func(*f);
            let header = input.structure.forest(*f).info(*l).header;
            format!("loop {}:{}", func.name, func.block(header).name)
        }
        CtxElem::Loop(LoopRef::Rec(c)) => format!("rec-loop #{}", c.0),
    }
}

/// Build the dynamic schedule tree weighted by dynamic op counts.
pub fn schedule_tree(input: &FeedbackInput<'_>) -> SchedTree {
    let mut tree = SchedTree::new();
    let mut stmt_ids: Vec<_> = input.ddg.stmts.keys().copied().collect();
    stmt_ids.sort();
    for s in stmt_ids {
        let info = input.interner.stmt_info(s);
        let path = input.interner.flat_path(info.path);
        tree.add_path(&path, input.ddg.stmts[&s].domain.count);
    }
    tree
}

/// Render the annotated flame graph: box width ∝ computation weight,
/// loops/calls colored, non-affine statements grayed out — the paper's
/// Fig. 7 presentation.
pub fn flamegraph_svg(input: &FeedbackInput<'_>, title: &str) -> String {
    let tree = schedule_tree(input);
    // Gray out context elements that only lead to non-affine statements.
    let nonaffine: std::collections::HashSet<CtxElem> = {
        let mut gray = std::collections::HashSet::new();
        for (s, st) in &input.ddg.stmts {
            if !st.domain.exact {
                let info = input.interner.stmt_info(*s);
                for e in input.interner.flat_path(info.path) {
                    gray.insert(e);
                }
            }
        }
        // An element reached by any affine statement is not gray.
        for (s, st) in &input.ddg.stmts {
            if st.domain.exact {
                let info = input.interner.stmt_info(*s);
                for e in input.interner.flat_path(info.path) {
                    gray.remove(&e);
                }
            }
        }
        gray
    };
    tree.render_svg(title, &|e| ctx_name(input, e), &|e| {
        if nonaffine.contains(e) {
            "#bbbbbb".into()
        } else {
            match e {
                CtxElem::Loop(_) => "#e8743b".into(),
                CtxElem::Block(_) => "#f2b134".into(),
            }
        }
    })
}

/// Render the profiler's *own* stage tree as a flame graph — the telemetry
/// layer's self-profile, through the same [`SchedTree`] machinery as the
/// subject program's graph ([`flamegraph_svg`]).
///
/// At `Timing` the boxes are wall time per sequential stage, with the
/// concurrent pipeline detail (stage threads + fold shards, CPU time)
/// nested under the profile stage; at `Counters` the pipeline boxes fall
/// back to event-flow weights instead.
pub fn self_flamegraph_svg(m: &polytrace::RunMetrics, title: &str) -> String {
    use polytrace::{Counter, PipeStage, Stage, StageNode};
    let mut tree: SchedTree<StageNode> = SchedTree::new();
    let profile = StageNode::Stage(Stage::Profile);
    if m.sequential_ns() > 0 {
        let mut children_ns = 0u64;
        for p in PipeStage::ALL {
            let w = m.pipe(p);
            if w > 0 {
                tree.add_path(&[profile, StageNode::Pipe(p)], w);
                children_ns += w;
            }
        }
        for (k, &ns) in m.shard_ns.iter().enumerate() {
            if ns > 0 {
                tree.add_path(&[profile, StageNode::Shard(k as u8)], ns);
                children_ns += ns;
            }
        }
        for s in Stage::ALL {
            // The profile stage's box absorbs its concurrent children; only
            // the residual (if its wall exceeds their CPU sum) is added
            // directly, so the subtree width stays monotone.
            let w = if s == Stage::Profile {
                m.stage(s).saturating_sub(children_ns)
            } else {
                m.stage(s)
            };
            if w > 0 {
                tree.add_path(&[StageNode::Stage(s)], w);
            }
        }
    } else {
        let pre = m.counter(Counter::EventsEmitted);
        if pre > 0 {
            tree.add_path(&[profile, StageNode::Pipe(PipeStage::PreProfile)], pre);
        }
        let res = m.counter(Counter::EventsResolved);
        if res > 0 {
            tree.add_path(&[profile, StageNode::Pipe(PipeStage::ShadowResolve)], res);
        }
        for (k, &ev) in m.shard_events.iter().enumerate() {
            if ev > 0 {
                tree.add_path(&[profile, StageNode::Shard(k as u8)], ev);
            }
        }
    }
    tree.render_svg(title, &|n| n.name(), &|n| match n {
        StageNode::Stage(_) => "#4a90d9".into(),
        StageNode::Pipe(_) => "#e8743b".into(),
        StageNode::Shard(_) => "#f2b134".into(),
    })
}

/// Render the simplified annotated AST of the whole nest forest: loop
/// structure with parallel/permutable/SIMD annotations — the "decorated
/// simplified AST" of §6.
pub fn annotated_ast(input: &FeedbackInput<'_>) -> String {
    let mut out = String::new();
    let a = input.analysis;
    fn rec(input: &FeedbackInput<'_>, node: usize, indent: usize, out: &mut String) {
        let a = input.analysis;
        let n = a.forest.node(node);
        let pad = "  ".repeat(indent);
        if node != a.forest.root() {
            let mut attrs = Vec::new();
            if a.node[node].parallel {
                attrs.push("parallel");
            }
            if a.node[node].zero_dist {
                attrs.push("movable");
            }
            let label = n
                .label
                .map(|e| ctx_name(input, &e))
                .unwrap_or_else(|| "?".into());
            let _ = writeln!(
                out,
                "{pad}for {label} [{}] ({} ops, {} stmts)",
                attrs.join(", "),
                n.ops,
                n.all_stmts.len()
            );
        }
        for &c in &n.children {
            rec(input, c, indent + 1, out);
        }
        if !n.stmts.is_empty() && node != a.forest.root() {
            let _ = writeln!(out, "{pad}  S: {} statements", n.stmts.len());
        }
    }
    rec(input, a.forest.root(), 0, &mut out);
    let _ = a;
    out
}

/// One Table-5-style row (fixed-width text).
pub fn table5_row(fb: &ProgramFeedback, region: &RegionReport, ld_src: usize) -> String {
    let pct = |x: f64| format!("{:.0}%", x * 100.0);
    format!(
        "{:<14} {:>10} {:>10} {:>5} {:<24} {:>5} {:>6} {:>7} {:^9} {:>5} {:>6} {:>8} {:>7} {:>8} {:>6} {:>6} {:>5} {:>8} {:>3} {:>5}",
        fb.name,
        fb.src_ops,
        fb.total_ops,
        pct(fb.pct_aff),
        region.name,
        pct(region.pct_ops),
        pct(region.pct_mops),
        pct(region.pct_fpops),
        if region.interproc { "Y" } else { "N" },
        if region.skew { "Y" } else { "N" },
        pct(region.pct_parallel),
        pct(region.pct_simd),
        pct(region.pct_reuse),
        pct(region.pct_preuse),
        format!("{}D", ld_src),
        format!("{}D", fb.ld_bin),
        format!("{}D", region.tile_depth),
        pct(region.pct_tilops),
        fb.components,
        fb.components_smartfuse,
    )
}

/// Header line matching [`table5_row`].
pub fn table5_header() -> String {
    format!(
        "{:<14} {:>10} {:>10} {:>5} {:<24} {:>5} {:>6} {:>7} {:^9} {:>5} {:>6} {:>8} {:>7} {:>8} {:>6} {:>6} {:>5} {:>8} {:>3} {:>5}",
        "benchmark",
        "#inst-src",
        "#inst-bin",
        "%Aff",
        "Region",
        "%ops",
        "%Mops",
        "%FPops",
        "interproc",
        "skew",
        "%||ops",
        "%simdops",
        "%reuse",
        "%Preuse",
        "ld-src",
        "ld-bin",
        "TileD",
        "%Tilops",
        "C",
        "Comp."
    )
}

/// The complete textual feedback document for one program — the paper's §6
/// "extensive textual length" output (shown only in its supplementary
/// material): per-region statistics, the dependence summary, the suggested
/// transformation sequence, and the annotated AST.
pub fn full_report(input: &FeedbackInput<'_>, fb: &ProgramFeedback) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "═══ Poly-Prof feedback for `{}` ═══\n", fb.name);
    let _ = writeln!(
        s,
        "dynamic instructions : {} total, {} semantic (non-overhead)",
        fb.total_ops, fb.src_ops
    );
    let _ = writeln!(s, "affine fraction      : {:.1}%", 100.0 * fb.pct_aff);
    let _ = writeln!(s, "interprocedural loop depth (binary): {}D", fb.ld_bin);
    let _ = writeln!(
        s,
        "fusion structure     : {} components ≥5% ops → {} after smartfuse, {} after maxfuse\n",
        fb.components, fb.components_smartfuse, fb.components_maxfuse
    );

    // Dependence summary.
    let a = input.analysis;
    let mut by_kind = std::collections::BTreeMap::new();
    for d in &a.deps {
        *by_kind.entry(format!("{:?}", d.kind)).or_insert(0u64) += d.count;
    }
    let _ = writeln!(s, "dependence instances by kind (post-SCEV):");
    for (k, n) in &by_kind {
        let _ = writeln!(s, "  {k:<8} {n}");
    }
    let carried: usize = a
        .deps
        .iter()
        .filter(|d| matches!(d.carried, polysched::Carried::Level(_)))
        .count();
    let _ = writeln!(
        s,
        "  {} folded relations, {} loop-carried\n",
        a.deps.len(),
        carried
    );

    for (i, r) in fb.regions.iter().enumerate() {
        let _ = writeln!(s, "─── region #{}: {} ───", i + 1, r.name);
        let _ = writeln!(
            s,
            "  ops {:.1}% of program | mem {:.0}% | fp {:.0}% | interprocedural: {}",
            100.0 * r.pct_ops,
            100.0 * r.pct_mops,
            100.0 * r.pct_fpops,
            if r.interproc { "yes" } else { "no" }
        );
        let _ = writeln!(
            s,
            "  parallel {:.0}% | simd {:.0}% | tilable {:.0}% ({}D band{}) | reuse {:.0}% → {:.0}%",
            100.0 * r.pct_parallel,
            100.0 * r.pct_simd,
            100.0 * r.pct_tilops,
            r.tile_depth,
            if r.skew { ", skewed" } else { "" },
            100.0 * r.pct_reuse,
            100.0 * r.pct_preuse
        );
        let _ = writeln!(s, "  suggested transformation sequence:");
        for (j, sug) in r.suggestions.iter().enumerate() {
            let _ = writeln!(s, "    {}. {sug}", j + 1);
        }
        let _ = writeln!(s);
    }

    let _ = writeln!(s, "─── annotated AST (post-analysis loop structure) ───");
    s.push_str(&annotated_ast(input));
    s
}

/// Render the hybrid static/dynamic section appended to the full report
/// when the static affine pre-pass ran: proof counts, pruning effect, and
/// the DDG lint verdict.
pub fn static_pass_section(
    static_scevs: usize,
    pruned_stmts: usize,
    pruned_events: u64,
    lint: Option<&polystatic::lint::LintReport>,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "─── static affine pre-pass ───");
    let _ = writeln!(s, "  statically proven SCEV instructions : {static_scevs}");
    let _ = writeln!(
        s,
        "  instrumentation pruned              : {pruned_stmts} statements, {pruned_events} register-dep events"
    );
    match lint {
        Some(rep) if rep.ok() => {
            let _ = writeln!(
                s,
                "  DDG lint                            : ok ({} checks)",
                rep.checks
            );
        }
        Some(rep) => {
            let _ = writeln!(
                s,
                "  DDG lint                            : {} VIOLATIONS ({} checks)",
                rep.violations.len(),
                rep.checks
            );
            for v in &rep.violations {
                let _ = writeln!(s, "    [{}] {}", v.kind, v.detail);
            }
        }
        None => {
            let _ = writeln!(s, "  DDG lint                            : not run");
        }
    }
    s
}

/// Render the resilience section appended to the full report when a run
/// degraded: injected faults, supervision actions, budget losses, and the
/// soundness reminder that every loss direction is an over-approximation
/// (dropped data can only *hide* dependences, never invent them).
pub fn degradation_section(deg: &polyresist::RunDegradation) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "─── resilience & degradation ───");
    let _ = writeln!(
        s,
        "  faults injected                     : {}",
        deg.faults_injected
    );
    let _ = writeln!(
        s,
        "  stage retries / serial fallback     : {} / {}",
        deg.stage_retries,
        if deg.fell_back_serial { "yes" } else { "no" }
    );
    let _ = writeln!(
        s,
        "  chunks dropped / malformed / stalled: {} / {} / {}",
        deg.dropped_chunks, deg.malformed_chunks, deg.stalled_sends
    );
    let _ = writeln!(
        s,
        "  unresolved accesses (shadow alloc)  : {} ({} failures)",
        deg.unresolved_accesses, deg.shadow_alloc_failures
    );
    let _ = writeln!(
        s,
        "  budget over-approximated statements : {}",
        deg.budget_overapprox_stmts
    );
    let _ = writeln!(
        s,
        "  budget pressure / peak tracked bytes: {} / {}",
        if deg.budget_pressure { "yes" } else { "no" },
        deg.peak_tracked_bytes
    );
    let _ = writeln!(
        s,
        "  deadline hit                        : {}",
        if deg.deadline_hit { "yes" } else { "no" }
    );
    if !deg.missing_shards.is_empty() {
        let ids: Vec<String> = deg.missing_shards.iter().map(|i| i.to_string()).collect();
        let _ = writeln!(
            s,
            "  missing folding shards              : [{}]",
            ids.join(", ")
        );
    }
    for ev in &deg.events {
        let _ = writeln!(s, "    [{}] {}", ev.stage, ev.detail);
    }
    s
}

/// Render the "VM profile" section appended to the full report when opcode
/// telemetry ran (`Timing`+): per-opcode dynamic dispatch counts, and the
/// sampled dispatch-latency distribution when the run traced. This is the
/// input signal for future dispatch-reordering / superinstruction work.
pub fn vm_profile_section(m: &polytrace::RunMetrics) -> String {
    let mut s = String::new();
    let total: u64 = m.vm_ops.iter().map(|(_, n)| n).sum();
    let _ = writeln!(s, "─── VM profile ───");
    let _ = writeln!(s, "  dynamic dispatches                  : {total}");
    for (name, n) in m.vm_ops.iter().take(12) {
        let pct = if total > 0 {
            100.0 * *n as f64 / total as f64
        } else {
            0.0
        };
        let _ = writeln!(s, "    {name:<12} {n:>12}  {pct:5.1}%");
    }
    if m.vm_ops.len() > 12 {
        let rest: u64 = m.vm_ops.iter().skip(12).map(|(_, n)| n).sum();
        let _ = writeln!(s, "    {:<12} {rest:>12}", "(other)");
    }
    if let Some(h) = m.hist(polytrace::HistKind::VmDispatchNs) {
        let _ = writeln!(
            s,
            "  dispatch latency (sampled, ns)      : p50 {} / p90 {} / p99 {} / max {}",
            h.percentile(0.50),
            h.percentile(0.90),
            h.percentile(0.99),
            h.max()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_row_align() {
        let h = table5_header();
        assert!(h.contains("%Aff") && h.contains("TileD") && h.contains("Comp."));
    }
}
