//! Region metrics: the quantities of the paper's Tables 3–5, computed from
//! the folded DDG and the scheduler analysis.

use crate::FeedbackInput;
use polyfold::LabelFold;
use polyiiv::context::StmtId;
use polyiiv::CtxElem;
use polylib::Rat;
use polysched::FusionHeuristic;
use std::collections::HashSet;

/// Feedback for one region (a top-level loop nest).
#[derive(Debug, Clone)]
pub struct RegionReport {
    /// Nest-forest node id of the region.
    pub nest: usize,
    /// `file:line` attribution of the region's outermost loop.
    pub name: String,
    /// Dynamic operations in the region (post-SCEV statements).
    pub ops: u64,
    /// Fraction of whole-program dynamic ops spent here.
    pub pct_ops: f64,
    /// Fraction of the region's ops that are memory accesses.
    pub pct_mops: f64,
    /// Fraction of the region's ops that are floating-point.
    pub pct_fpops: f64,
    /// Spans multiple functions (calls inside the nest).
    pub interproc: bool,
    /// Skewing needed for the proposed transformation.
    pub skew: bool,
    /// `%||ops` within the region.
    pub pct_parallel: f64,
    /// `%simdops` within the region.
    pub pct_simd: f64,
    /// `%reuse`: accesses stride-0/1 along current innermost loops.
    pub pct_reuse: f64,
    /// `%Preuse`: best achievable via permutations of permutable bands.
    pub pct_preuse: f64,
    /// Maximal permutable band size (tiling depth).
    pub tile_depth: usize,
    /// `%Tilops` within the region.
    pub pct_tilops: f64,
    /// Maximum loop depth inside the region (binary-level).
    pub loop_depth: usize,
    /// Whether the outermost loop is parallel (in place).
    pub outer_parallel: bool,
    /// Human-readable suggested transformation sequence.
    pub suggestions: Vec<String>,
}

/// Whole-program feedback.
#[derive(Debug, Clone)]
pub struct ProgramFeedback {
    /// Program name.
    pub name: String,
    /// All dynamic operations, including SCEV overhead ("#inst bin").
    pub total_ops: u64,
    /// Dynamic operations excluding SCEV/control overhead ("#inst src").
    pub src_ops: u64,
    /// `%Aff`: fraction of ops in exactly-folded affine statements.
    pub pct_aff: f64,
    /// Maximum interprocedural loop depth observed ("ld-bin").
    pub ld_bin: usize,
    /// Top-level components with ≥5% of ops (`C`).
    pub components: usize,
    /// Components after smartfuse (`Comp.`).
    pub components_smartfuse: usize,
    /// Components after maxfuse.
    pub components_maxfuse: usize,
    /// Regions, heaviest first.
    pub regions: Vec<RegionReport>,
}

/// Is `|stride| ≤ 1` (stride-0 or stride-1, either direction)?
fn unit_stride(s: Rat) -> bool {
    s == Rat::ZERO || s == Rat::ONE || s == -Rat::ONE
}

/// Compute the full feedback.
pub fn compute(input: &FeedbackInput<'_>) -> ProgramFeedback {
    let a = input.analysis;
    let ddg = input.ddg;
    let forest = &a.forest;

    let scev_removed: u64 = ddg.stmts.values().map(|s| s.domain.count).sum();
    let total_ops = ddg.total_ops;
    let src_ops = scev_removed;

    let (c, smart) = a.fusion_components(forest.root(), 0.05, FusionHeuristic::Smart);
    let (_, maxf) = a.fusion_components(forest.root(), 0.05, FusionHeuristic::Max);

    let mut regions: Vec<RegionReport> = forest
        .top_nests()
        .into_iter()
        .map(|n| region_report(input, n))
        .collect();
    regions.sort_by_key(|r| std::cmp::Reverse(r.ops));

    ProgramFeedback {
        name: input.prog.name.clone(),
        total_ops,
        src_ops,
        pct_aff: ddg.affine_fraction(),
        ld_bin: forest.max_loop_depth(),
        components: c,
        components_smartfuse: smart,
        components_maxfuse: maxf,
        regions,
    }
}

fn region_report(input: &FeedbackInput<'_>, nest: usize) -> RegionReport {
    let a = input.analysis;
    let ddg = input.ddg;
    let forest = &a.forest;
    let node = forest.node(nest);
    let stmts: HashSet<StmtId> = node.all_stmts.iter().copied().collect();
    let ops = node.ops.max(1);

    // Region name from the loop's context element (header block src info).
    let name = match node.label {
        Some(CtxElem::Loop(polycfg::LoopRef::Cfg(f, l))) => {
            let func = input.prog.func(f);
            let header = input.structure.forest(f).info(l).header;
            format!("{}:{}", func.src_file, func.block(header).src_line)
        }
        Some(CtxElem::Loop(polycfg::LoopRef::Rec(_))) => "recursive-component".into(),
        _ => input.prog.name.clone(),
    };

    // Interprocedural: statements from more than one function.
    let funcs: HashSet<_> = stmts
        .iter()
        .map(|s| input.interner.stmt_info(*s).instr.block.func)
        .collect();
    let interproc = funcs.len() > 1;

    // %Mops / %FPops weighted by dynamic counts.
    let mut mops = 0u64;
    let mut fpops = 0u64;
    for s in &stmts {
        let w = ddg.stmts[s].domain.count;
        let ins = input.prog.instr(input.interner.stmt_info(*s).instr);
        if ins.is_mem() {
            mops += w;
        }
        if ins.is_fp() {
            fpops += w;
        }
    }

    // %||ops, %simdops, %Tilops restricted to the region.
    let mut par = 0u64;
    let mut simd = 0u64;
    let mut til = 0u64;
    let mut best_band = polysched::Band {
        start: 1,
        len: 0,
        skewed: false,
    };
    for s in &stmts {
        let w = ddg.stmts[s].domain.count;
        if a.stmt_parallelizable(*s) {
            par += w;
        }
        if a.stmt_simdizable(*s) {
            simd += w;
        }
        let band = a.stmt_tile_band(*s);
        if band.len >= 2 {
            til += w;
        }
        if band.len > best_band.len {
            best_band = band;
        }
    }

    // Reuse metrics from folded access functions.
    let (reuse, preuse, mem_total) = reuse_metrics(input, &stmts);

    // Suggestions.
    let outer_parallel = a.node[nest].parallel;
    let mut suggestions = Vec::new();
    // Find whether permuting improves reuse → interchange.
    if preuse > reuse + 0.05 {
        suggestions.push("interchange (move the stride-0/1 dimension innermost)".into());
    }
    if best_band.skewed {
        suggestions.push("skew the nest to enable the permutable band".into());
    }
    if best_band.len >= 2 {
        suggestions.push(format!(
            "tile the {}-deep permutable band (e.g. tile size 32)",
            best_band.len
        ));
    }
    if outer_parallel {
        suggestions.push("omp parallel for on the outermost loop".into());
    } else if best_band.len >= 2 {
        suggestions.push("wavefront-parallelize the tiled bands".into());
    }
    if simd as f64 / ops as f64 > 0.3 {
        suggestions.push("SIMDize the (possibly interchanged) innermost loop".into());
    }

    // Max loop depth inside the region.
    let loop_depth = stmts
        .iter()
        .map(|s| forest.chain_of[s].len().saturating_sub(1))
        .max()
        .unwrap_or(0);

    let total_prog_ops = forest.node(forest.root()).ops.max(1);
    RegionReport {
        nest,
        name,
        ops: node.ops,
        pct_ops: node.ops as f64 / total_prog_ops as f64,
        pct_mops: mops as f64 / ops as f64,
        pct_fpops: fpops as f64 / ops as f64,
        interproc,
        skew: best_band.skewed,
        pct_parallel: par as f64 / ops as f64,
        pct_simd: simd as f64 / ops as f64,
        pct_reuse: if mem_total == 0 { 0.0 } else { reuse },
        pct_preuse: if mem_total == 0 { 0.0 } else { preuse },
        tile_depth: best_band.len,
        pct_tilops: til as f64 / ops as f64,
        loop_depth,
        outer_parallel,
        suggestions,
    }
}

/// (%reuse, %Preuse, total access ops) for the statements of one region.
fn reuse_metrics(input: &FeedbackInput<'_>, stmts: &HashSet<StmtId>) -> (f64, f64, u64) {
    let a = input.analysis;
    let ddg = input.ddg;
    let mut total = 0u64;
    let mut reuse = 0u64;
    let mut preuse = 0u64;
    for (s, acc) in &ddg.accesses {
        if !stmts.contains(s) {
            continue;
        }
        let w = acc.domain.count;
        total += w;
        let chain = &a.forest.chain_of[s];
        if chain.len() <= 1 {
            // not in a loop: a single access is trivially "stride 0"
            reuse += w;
            preuse += w;
            continue;
        }
        let innermost_dim = chain.len() - 1;
        // Non-affine accesses carry no (provable) spatial reuse.
        if let LabelFold::Affine(_) = &acc.addr {
            if acc.stride(innermost_dim).map(unit_stride).unwrap_or(false) {
                reuse += w;
            }
            // Permutations may move any dim of the innermost permutable
            // band innermost.
            let loops = &chain[1..];
            let band = a.innermost_band(loops);
            let candidates = band.start..band.start + band.len;
            if candidates
                .clone()
                .any(|d| acc.stride(d).map(unit_stride).unwrap_or(false))
            {
                preuse += w;
            }
        }
    }
    if total == 0 {
        (0.0, 0.0, 0)
    } else {
        (
            reuse as f64 / total as f64,
            preuse as f64 / total as f64,
            total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_classification() {
        assert!(unit_stride(Rat::ZERO));
        assert!(unit_stride(Rat::ONE));
        assert!(unit_stride(-Rat::ONE));
        assert!(!unit_stride(Rat::int(2)));
        assert!(!unit_stride(Rat::new(1, 2)));
    }
}
