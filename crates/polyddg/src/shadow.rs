//! Shadow memory (paper §9 "Dynamic dependence graph"): one record per
//! storage location holding the last dynamic instruction that wrote it (and,
//! for anti-dependence tracking, the last that read it).
//!
//! Layout is tuned for the per-event cost of stage 2:
//!
//! * Writer records are `Copy` ([`CoordSnap`] instead of `Box<[i64]>`), so
//!   recording never allocates.
//! * Last-writer and last-reader live in one [`Cell`] per word, in shared
//!   pages of 4096 cells — a memory *write* event (read prev writer, read
//!   prev reader, store new writer, clear reader) resolves its page **once**
//!   instead of probing separate write/read page tables four times.
//! * An MRU (last-page) cache in front of the page table turns the
//!   overwhelmingly common same-page access streams of dense kernels into
//!   a compare + index, no hashing at all.

use crate::coords::{CoordArena, CoordSnap};
use crate::{DdgConfig, DepKind, FoldSink};
use polyiiv::context::StmtId;
use polyresist::{FaultPlan, FaultSite, ResourceBudget};
use std::collections::HashMap;
use std::sync::Arc;

/// The producer record: a statement at specific coordinates.
#[derive(Debug, Clone, Copy)]
pub struct Writer {
    /// The statement (context + instruction).
    pub stmt: StmtId,
    /// Its iteration-vector coordinates (resolve via the profiler's arena).
    pub coords: CoordSnap,
}

/// Per-word shadow state: last writer and last reader (reader is cleared on
/// every write).
#[derive(Debug, Clone, Copy, Default)]
pub struct Cell {
    /// Last write to this word.
    pub write: Option<Writer>,
    /// Last read since that write.
    pub read: Option<Writer>,
}

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
/// Sentinel page number that can never equal `addr >> PAGE_BITS`.
const NO_PAGE: u64 = u64::MAX;

type Page = Box<[Cell]>;

fn new_page() -> Page {
    vec![Cell::default(); PAGE_SIZE].into_boxed_slice()
}

/// Paged shadow memory: last writer and last reader per word address.
#[derive(Debug)]
pub struct ShadowMemory {
    /// Page storage; stable indices handed out by `index`.
    pages: Vec<Page>,
    /// Page number (`addr >> PAGE_BITS`) → index into `pages`.
    index: HashMap<u64, u32>,
    /// MRU cache: the last page touched by `page_slot`.
    mru: (u64, u32),
    /// MRU hit/miss tally on the `cell_mut` (update) path — plain fields,
    /// harvested into the `polytrace` collector at stage end. The read-only
    /// `cell` path is deliberately uncounted: with the default tracking
    /// config every memory event makes exactly one `cell_mut` call, so
    /// hits + misses == memory events (the gated consistency invariant).
    mru_hits: u64,
    mru_misses: u64,
    /// Optional deterministic fault plan: probed on *new-page allocation*
    /// only (never on the MRU/resident hot path).
    faults: Option<Arc<FaultPlan>>,
    /// Optional resource budget charged per allocated page.
    budget: Option<Arc<ResourceBudget>>,
    /// Page allocations refused by the fault plan.
    alloc_failures: u64,
}

impl Default for ShadowMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl ShadowMemory {
    /// Empty shadow memory.
    pub fn new() -> Self {
        ShadowMemory {
            pages: Vec::new(),
            index: HashMap::new(),
            mru: (NO_PAGE, 0),
            mru_hits: 0,
            mru_misses: 0,
            faults: None,
            budget: None,
            alloc_failures: 0,
        }
    }

    /// Arm a deterministic fault plan: new-page allocations probe
    /// [`FaultSite::AllocShadow`] and fail when it fires.
    pub fn set_faults(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Charge every allocated page against `budget` (tracking only — shadow
    /// pages are required for correctness, so allocation proceeds even under
    /// pressure; the folding layer is what degrades).
    pub fn set_budget(&mut self, budget: Arc<ResourceBudget>) {
        self.budget = Some(budget);
    }

    /// Page allocations refused by the armed fault plan so far.
    pub fn alloc_failures(&self) -> u64 {
        self.alloc_failures
    }

    /// Index of the page holding `page_num`, allocating it if absent.
    /// Updates the MRU cache. `None` only when an armed fault plan refuses
    /// the allocation.
    #[inline]
    fn page_slot(&mut self, page_num: u64) -> Option<u32> {
        if self.mru.0 == page_num {
            self.mru_hits += 1;
            return Some(self.mru.1);
        }
        self.mru_misses += 1;
        let slot = match self.index.entry(page_num) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                if let Some(plan) = &self.faults {
                    if plan.should_fire(FaultSite::AllocShadow) {
                        self.alloc_failures += 1;
                        return None;
                    }
                }
                if let Some(b) = &self.budget {
                    b.charge((PAGE_SIZE * std::mem::size_of::<Cell>()) as u64);
                }
                let slot = self.pages.len() as u32;
                self.pages.push(new_page());
                e.insert(slot);
                slot
            }
        };
        self.mru = (page_num, slot);
        Some(slot)
    }

    /// The shadow cell for `addr`, allocating its page on first touch.
    ///
    /// This is the single-resolution hot path: one MRU compare (or one hash
    /// probe on a page switch) serves the whole event — previous writer,
    /// previous reader, and the update.
    ///
    /// Panics if an armed fault plan refuses the allocation — fault-aware
    /// callers use [`try_cell_mut`](Self::try_cell_mut) instead.
    #[inline]
    pub fn cell_mut(&mut self, addr: u64) -> &mut Cell {
        self.try_cell_mut(addr)
            .expect("shadow page allocation refused by fault plan")
    }

    /// Fallible variant of [`cell_mut`](Self::cell_mut): `None` when an
    /// armed fault plan refused the page allocation. The caller skips
    /// dependence emission for this event and counts it as unresolved.
    #[inline]
    pub fn try_cell_mut(&mut self, addr: u64) -> Option<&mut Cell> {
        let slot = self.page_slot(addr >> PAGE_BITS)?;
        Some(&mut self.pages[slot as usize][(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// The shadow cell for `addr` if its page is resident (read-only; checks
    /// the MRU cache first, does not update it).
    #[inline]
    pub fn cell(&self, addr: u64) -> Option<&Cell> {
        let page_num = addr >> PAGE_BITS;
        let slot = if self.mru.0 == page_num {
            self.mru.1
        } else {
            *self.index.get(&page_num)?
        };
        Some(&self.pages[slot as usize][(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Last writer of `addr`, if any.
    pub fn last_write(&self, addr: u64) -> Option<&Writer> {
        self.cell(addr)?.write.as_ref()
    }

    /// Last reader of `addr`, if any (cleared on write).
    pub fn last_read(&self, addr: u64) -> Option<&Writer> {
        self.cell(addr)?.read.as_ref()
    }

    /// Record a write: updates the writer and clears the reader.
    pub fn record_write(&mut self, addr: u64, w: Writer) {
        let cell = self.cell_mut(addr);
        cell.write = Some(w);
        cell.read = None;
    }

    /// Record a read (for last-reader anti-dependence tracking).
    pub fn record_read(&mut self, addr: u64, r: Writer) {
        self.cell_mut(addr).read = Some(r);
    }

    /// Number of resident shadow pages (overhead statistics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// MRU page-cache `(hits, misses)` on the update path since
    /// construction; hits + misses equals total `cell_mut` calls.
    pub fn mru_stats(&self) -> (u64, u64) {
        (self.mru_hits, self.mru_misses)
    }
}

/// Stage-2 shadow resolution for the profiling pipeline: owns a
/// [`ShadowMemory`] (plus its own [`CoordArena`] for writer snapshots) on a
/// thread of its own, and turns unresolved
/// [`mem_pre`](crate::PreSink::mem_pre) records into the same
/// flow/anti/output dependences and `mem_access` events the in-line
/// [`DdgProfiler`](crate::DdgProfiler) memory path emits, in the same order.
///
/// The resolver cannot see loop events, so it recovers the profiler's
/// "capture one snapshot per coordinate change" behaviour by comparing each
/// event's coordinate slice against the last one seen: coordinates only
/// change on loop boundaries, so the compare almost always hits and the
/// arena sees the same one-capture-per-change traffic as the serial path.
#[derive(Debug)]
pub struct ShadowResolver {
    shadow: ShadowMemory,
    arena: CoordArena,
    cur_coords: Vec<i64>,
    cur_snap: Option<CoordSnap>,
    track_anti: bool,
    track_output: bool,
    /// Memory events whose dependences could not be resolved because the
    /// fault plan refused a shadow page.
    unresolved: u64,
}

impl ShadowResolver {
    /// Resolver honouring the profiler's anti/output tracking switches.
    pub fn new(cfg: DdgConfig) -> Self {
        ShadowResolver {
            shadow: ShadowMemory::new(),
            arena: CoordArena::new(),
            cur_coords: Vec::with_capacity(8),
            cur_snap: None,
            track_anti: cfg.track_anti,
            track_output: cfg.track_output,
            unresolved: 0,
        }
    }

    /// Arm a deterministic fault plan on the owned shadow memory.
    pub fn set_faults(&mut self, plan: Arc<FaultPlan>) {
        self.shadow.set_faults(plan);
    }

    /// Track shadow-page and coordinate-arena bytes against `budget`.
    pub fn set_budget(&mut self, budget: Arc<ResourceBudget>) {
        self.shadow.set_budget(Arc::clone(&budget));
        self.arena.set_budget(budget);
    }

    /// Events whose dependences were skipped due to refused shadow pages.
    pub fn unresolved(&self) -> u64 {
        self.unresolved
    }

    /// Page allocations refused by the armed fault plan.
    pub fn alloc_failures(&self) -> u64 {
        self.shadow.alloc_failures()
    }

    #[inline]
    fn snapshot(&mut self, coords: &[i64]) -> CoordSnap {
        match self.cur_snap {
            Some(s) if self.cur_coords == coords => s,
            _ => {
                self.cur_coords.clear();
                self.cur_coords.extend_from_slice(coords);
                let s = CoordSnap::capture(coords, &mut self.arena);
                self.cur_snap = Some(s);
                s
            }
        }
    }

    /// Resolve one memory touch, emitting its dependences and the access
    /// event into `out` (mirrors `DdgProfiler::mem` exactly).
    pub fn resolve<F: FoldSink>(
        &mut self,
        stmt: StmtId,
        coords: &[i64],
        addr: u64,
        is_write: bool,
        out: &mut F,
    ) {
        let (prev_write, prev_read) = if is_write {
            let snap = self.snapshot(coords);
            match self.shadow.try_cell_mut(addr) {
                Some(cell) => {
                    let prev = (cell.write, cell.read);
                    cell.write = Some(Writer { stmt, coords: snap });
                    cell.read = None;
                    prev
                }
                None => {
                    // Shadow page refused: the access itself is still a
                    // valid event, but its dependences are unknowable.
                    self.unresolved += 1;
                    out.mem_access(stmt, coords, addr, is_write);
                    return;
                }
            }
        } else if self.track_anti {
            let snap = self.snapshot(coords);
            match self.shadow.try_cell_mut(addr) {
                Some(cell) => {
                    let prev = (cell.write, None);
                    cell.read = Some(Writer { stmt, coords: snap });
                    prev
                }
                None => {
                    self.unresolved += 1;
                    out.mem_access(stmt, coords, addr, is_write);
                    return;
                }
            }
        } else {
            (self.shadow.last_write(addr).copied(), None)
        };
        if is_write {
            if self.track_output {
                if let Some(w) = prev_write {
                    out.dependence(
                        DepKind::Output,
                        w.stmt,
                        w.coords.resolve(&self.arena),
                        stmt,
                        coords,
                    );
                }
            }
            if self.track_anti {
                if let Some(r) = prev_read {
                    out.dependence(
                        DepKind::Anti,
                        r.stmt,
                        r.coords.resolve(&self.arena),
                        stmt,
                        coords,
                    );
                }
            }
        } else if let Some(w) = prev_write {
            out.dependence(
                DepKind::Flow,
                w.stmt,
                w.coords.resolve(&self.arena),
                stmt,
                coords,
            );
        }
        out.mem_access(stmt, coords, addr, is_write);
    }

    /// Resident shadow pages (overhead statistics).
    pub fn resident_pages(&self) -> usize {
        self.shadow.resident_pages()
    }

    /// MRU page-cache `(hits, misses)` of the owned shadow memory.
    pub fn mru_stats(&self) -> (u64, u64) {
        self.shadow.mru_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::CoordArena;

    fn w(arena: &mut CoordArena, stmt: u32, coords: &[i64]) -> Writer {
        Writer {
            stmt: StmtId(stmt),
            coords: CoordSnap::capture(coords, arena),
        }
    }

    #[test]
    fn write_then_read_back() {
        let mut arena = CoordArena::new();
        let mut s = ShadowMemory::new();
        assert!(s.last_write(100).is_none());
        s.record_write(100, w(&mut arena, 1, &[0, 3]));
        let got = s.last_write(100).unwrap();
        assert_eq!(got.stmt, StmtId(1));
        assert_eq!(got.coords.resolve(&arena), &[0, 3]);
        assert!(s.last_write(101).is_none());
    }

    #[test]
    fn write_overwrites() {
        let mut arena = CoordArena::new();
        let mut s = ShadowMemory::new();
        s.record_write(5, w(&mut arena, 1, &[0]));
        s.record_write(5, w(&mut arena, 2, &[1]));
        assert_eq!(s.last_write(5).unwrap().stmt, StmtId(2));
    }

    #[test]
    fn write_clears_reader() {
        let mut arena = CoordArena::new();
        let mut s = ShadowMemory::new();
        s.record_read(7, w(&mut arena, 1, &[0]));
        assert!(s.last_read(7).is_some());
        s.record_write(7, w(&mut arena, 2, &[1]));
        assert!(s.last_read(7).is_none());
    }

    #[test]
    fn cross_page_addresses() {
        let mut arena = CoordArena::new();
        let mut s = ShadowMemory::new();
        let far = 1u64 << 40;
        s.record_write(far, w(&mut arena, 9, &[2]));
        s.record_write(far + PAGE_SIZE as u64, w(&mut arena, 10, &[3]));
        assert_eq!(s.last_write(far).unwrap().stmt, StmtId(9));
        assert_eq!(
            s.last_write(far + PAGE_SIZE as u64).unwrap().stmt,
            StmtId(10)
        );
        assert_eq!(s.resident_pages(), 2);
    }

    /// The MRU cache must stay coherent across page switches, including
    /// reads that race ahead of the cached write page.
    #[test]
    fn mru_cache_coherent_across_page_switches() {
        let mut arena = CoordArena::new();
        let mut s = ShadowMemory::new();
        let a = 10u64; // page 0
        let b = 10u64 + (PAGE_SIZE as u64) * 3; // page 3
        s.record_write(a, w(&mut arena, 1, &[0]));
        s.record_write(b, w(&mut arena, 2, &[1]));
        // MRU now points at b's page; reads of a must still resolve.
        assert_eq!(s.last_write(a).unwrap().stmt, StmtId(1));
        assert_eq!(s.last_write(b).unwrap().stmt, StmtId(2));
        s.record_write(a, w(&mut arena, 3, &[2]));
        assert_eq!(s.last_write(a).unwrap().stmt, StmtId(3));
        assert_eq!(s.last_write(b).unwrap().stmt, StmtId(2));
        assert_eq!(s.resident_pages(), 2);
    }

    /// One cell carries both roles: a combined write+read probe sequence
    /// through `cell_mut` matches the individual record/query API.
    #[test]
    fn combined_cell_roundtrip() {
        let mut arena = CoordArena::new();
        let mut s = ShadowMemory::new();
        s.record_read(42, w(&mut arena, 5, &[1]));
        let cell = s.cell_mut(42);
        assert!(cell.write.is_none());
        assert_eq!(cell.read.unwrap().stmt, StmtId(5));
        cell.write = Some(Writer {
            stmt: StmtId(6),
            coords: cell.read.unwrap().coords,
        });
        cell.read = None;
        assert_eq!(s.last_write(42).unwrap().stmt, StmtId(6));
        assert!(s.last_read(42).is_none());
    }

    /// Differential check against a naive map (the property-test invariant).
    #[test]
    fn matches_naive_map() {
        use std::collections::HashMap as Naive;
        let mut arena = CoordArena::new();
        let mut s = ShadowMemory::new();
        let mut naive: Naive<u64, u32> = Naive::new();
        // pseudo-random-ish address pattern without rand dependency
        let mut x = 12345u64;
        for i in 0..10_000u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = x % 8192;
            s.record_write(addr, w(&mut arena, i, &[i as i64]));
            naive.insert(addr, i);
        }
        for addr in 0..8192u64 {
            assert_eq!(
                s.last_write(addr).map(|w| w.stmt.0),
                naive.get(&addr).copied(),
                "mismatch at {addr}"
            );
        }
    }

    #[test]
    fn alloc_fault_refuses_one_page_then_recovers() {
        let mut s = ShadowMemory::new();
        s.set_faults(Arc::new(FaultPlan::single(FaultSite::AllocShadow, 1)));
        assert!(s.try_cell_mut(0).is_none(), "first allocation refused");
        assert_eq!(s.alloc_failures(), 1);
        // One-shot fault: the retry allocates normally.
        assert!(s.try_cell_mut(0).is_some());
        assert_eq!(s.resident_pages(), 1);
        assert_eq!(s.alloc_failures(), 1);
    }

    #[test]
    fn budget_charged_per_allocated_page() {
        let b = Arc::new(ResourceBudget::new(Some(1), None));
        let mut arena = CoordArena::new();
        let mut s = ShadowMemory::new();
        s.set_budget(Arc::clone(&b));
        s.record_write(0, w(&mut arena, 1, &[0]));
        assert!(b.used_bytes() >= (PAGE_SIZE * std::mem::size_of::<Cell>()) as u64);
        assert!(b.under_pressure(), "1-byte budget crossed by first page");
        // Same page again: no further charge.
        let used = b.used_bytes();
        s.record_write(1, w(&mut arena, 2, &[1]));
        assert_eq!(b.used_bytes(), used);
    }
}
