//! Shadow memory (paper §9 "Dynamic dependence graph"): one record per
//! storage location holding the last dynamic instruction that wrote it (and,
//! for anti-dependence tracking, the last that read it).
//!
//! Pages of 4096 cells keep the common dense-array case allocation-friendly,
//! like Umbra-style shadow schemes the paper cites.

use polyiiv::context::StmtId;
use std::collections::HashMap;

/// The producer record: a statement at specific coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Writer {
    /// The statement (context + instruction).
    pub stmt: StmtId,
    /// Its iteration-vector coordinates.
    pub coords: Box<[i64]>,
}

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

type Page = Box<[Option<Writer>]>;

fn new_page() -> Page {
    let mut v = Vec::with_capacity(PAGE_SIZE);
    v.resize(PAGE_SIZE, None);
    v.into_boxed_slice()
}

/// Paged shadow memory: last writer and last reader per word address.
#[derive(Debug, Default)]
pub struct ShadowMemory {
    writes: HashMap<u64, Page>,
    reads: HashMap<u64, Page>,
}

impl ShadowMemory {
    /// Empty shadow memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Last writer of `addr`, if any.
    pub fn last_write(&self, addr: u64) -> Option<&Writer> {
        self.writes
            .get(&(addr >> PAGE_BITS))?
            .get((addr as usize) & (PAGE_SIZE - 1))?
            .as_ref()
    }

    /// Last reader of `addr`, if any (cleared on write).
    pub fn last_read(&self, addr: u64) -> Option<&Writer> {
        self.reads
            .get(&(addr >> PAGE_BITS))?
            .get((addr as usize) & (PAGE_SIZE - 1))?
            .as_ref()
    }

    /// Record a write: updates the writer and clears the reader.
    pub fn record_write(&mut self, addr: u64, w: Writer) {
        let page = self.writes.entry(addr >> PAGE_BITS).or_insert_with(new_page);
        page[(addr as usize) & (PAGE_SIZE - 1)] = Some(w);
        if let Some(rp) = self.reads.get_mut(&(addr >> PAGE_BITS)) {
            rp[(addr as usize) & (PAGE_SIZE - 1)] = None;
        }
    }

    /// Record a read (for last-reader anti-dependence tracking).
    pub fn record_read(&mut self, addr: u64, r: Writer) {
        let page = self.reads.entry(addr >> PAGE_BITS).or_insert_with(new_page);
        page[(addr as usize) & (PAGE_SIZE - 1)] = Some(r);
    }

    /// Number of resident shadow pages (overhead statistics).
    pub fn resident_pages(&self) -> usize {
        self.writes.len() + self.reads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(stmt: u32, coords: &[i64]) -> Writer {
        Writer { stmt: StmtId(stmt), coords: coords.to_vec().into_boxed_slice() }
    }

    #[test]
    fn write_then_read_back() {
        let mut s = ShadowMemory::new();
        assert!(s.last_write(100).is_none());
        s.record_write(100, w(1, &[0, 3]));
        let got = s.last_write(100).unwrap();
        assert_eq!(got.stmt, StmtId(1));
        assert_eq!(&*got.coords, &[0, 3]);
        assert!(s.last_write(101).is_none());
    }

    #[test]
    fn write_overwrites() {
        let mut s = ShadowMemory::new();
        s.record_write(5, w(1, &[0]));
        s.record_write(5, w(2, &[1]));
        assert_eq!(s.last_write(5).unwrap().stmt, StmtId(2));
    }

    #[test]
    fn write_clears_reader() {
        let mut s = ShadowMemory::new();
        s.record_read(7, w(1, &[0]));
        assert!(s.last_read(7).is_some());
        s.record_write(7, w(2, &[1]));
        assert!(s.last_read(7).is_none());
    }

    #[test]
    fn cross_page_addresses() {
        let mut s = ShadowMemory::new();
        let far = 1u64 << 40;
        s.record_write(far, w(9, &[2]));
        s.record_write(far + PAGE_SIZE as u64, w(10, &[3]));
        assert_eq!(s.last_write(far).unwrap().stmt, StmtId(9));
        assert_eq!(s.last_write(far + PAGE_SIZE as u64).unwrap().stmt, StmtId(10));
        assert_eq!(s.resident_pages(), 2);
    }

    /// Differential check against a naive map (the property-test invariant).
    #[test]
    fn matches_naive_map() {
        use std::collections::HashMap as Naive;
        let mut s = ShadowMemory::new();
        let mut naive: Naive<u64, u32> = Naive::new();
        // pseudo-random-ish address pattern without rand dependency
        let mut x = 12345u64;
        for i in 0..10_000u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = x % 8192;
            s.record_write(addr, w(i, &[i as i64]));
            naive.insert(addr, i);
        }
        for addr in 0..8192u64 {
            assert_eq!(
                s.last_write(addr).map(|w| w.stmt.0),
                naive.get(&addr).copied(),
                "mismatch at {addr}"
            );
        }
    }
}
