//! Stage split of the DDG profiler for intra-trace pipeline parallelism.
//!
//! [`DdgProfiler`](crate::DdgProfiler) does everything on the VM thread:
//! loop events, IIV maintenance, statement interning, register tracking,
//! shadow-memory resolution, and the sink calls. For one large trace that
//! serializes the whole run. This module splits it:
//!
//! 1. **[`PreProfiler`]** (this file) stays on the VM thread and keeps only
//!    the inherently sequential work — loop events, the dynamic IIV,
//!    context/statement interning, and register-flow tracking (frame-local
//!    state). Memory events are *not* resolved; they leave as
//!    [`PreSink::mem_pre`] records carrying `(stmt, coords, addr, is_write)`.
//! 2. **[`ShadowResolver`](crate::shadow::ShadowResolver)** owns the shadow
//!    memory on its own thread and turns `mem_pre` records into
//!    flow/anti/output dependences plus `mem_access` events.
//! 3. **[`ShardRouter`]** partitions the resolved stream over K folding
//!    workers by statement id (dependences by *consumer* id — the folding
//!    key contains the consumer, so every dependence stream lives wholly in
//!    one shard).
//!
//! The stages exchange [`EventChunk`](crate::chunk::EventChunk)s over
//! bounded channels; orchestration lives in `polyfold::pipeline`, which
//! owns the folding side.
//!
//! Event order is preserved *per folding key*: each stage is single-threaded
//! and the channels are FIFO, so the subsequence of events a given shard
//! sees for one key is exactly the serial profiler's subsequence. That is
//! the invariant `StreamFolder` needs (lexicographically non-decreasing
//! coordinates per key) and the reason the sharded run folds byte-identical
//! state.

use crate::chunk::ChunkWriter;
use crate::coords::{CoordArena, CoordSnap};
use crate::prune::{PruneMask, PRUNED_STMT};
use crate::shadow::Writer;
use crate::{stmt_cache_slot, DdgConfig, DepKind, FoldSink, PreSink, STMT_CACHE_SLOTS};
use polycfg::{LoopEventGen, StaticStructure};
use polyiiv::context::{ContextInterner, CtxPathId, StmtId};
use polyiiv::IivTracker;
use polyir::{BlockRef, FuncId, InstrRef, Program, Value};
use polyresist::{FaultPlan, FaultSite, ResourceBudget};
use polytrace::Collector;
use polyvm::EventSink;
use std::sync::Arc;

/// Stage-1 profiler: the sequential prefix of [`DdgProfiler`]
/// (loop events, IIV, interning, register deps) emitting unresolved memory
/// events into a [`PreSink`]. See the module docs for the stage contract.
///
/// [`DdgProfiler`]: crate::DdgProfiler
pub struct PreProfiler<'p, S: PreSink> {
    prog: &'p Program,
    gen: LoopEventGen<'p>,
    iiv: IivTracker,
    /// Context/statement interner, exposed after the run for reporting.
    pub interner: ContextInterner,
    arena: CoordArena,
    reg_frames: Vec<Vec<Option<Writer>>>,
    frame_pool: Vec<Vec<Option<Writer>>>,
    out: S,
    cfg: DdgConfig,
    coords: Vec<i64>,
    cur_snap: Option<CoordSnap>,
    coords_dirty: bool,
    loop_buf: Vec<polycfg::LoopEvent>,
    stmt_cache: [Option<(CtxPathId, InstrRef, StmtId)>; STMT_CACHE_SLOTS],
    /// Dynamic instruction count (all ops).
    pub dyn_ops: u64,
    /// Dynamic memory events (loads + stores) seen.
    pub mem_events: u64,
    /// Statically-proven-SCEV instructions whose register tracking is
    /// skipped (see [`crate::prune`]); `None` disables pruning.
    prune: Option<Arc<PruneMask>>,
    /// Dynamic executions whose register tracking was skipped by the mask.
    pub pruned_events: u64,
    /// Optional deterministic fault plan probed per memory event
    /// ([`FaultSite::PanicPre`]).
    faults: Option<Arc<FaultPlan>>,
    /// Optional deadline budget polled by the VM watchdog hook.
    budget: Option<Arc<ResourceBudget>>,
}

impl<'p, S: PreSink> PreProfiler<'p, S> {
    /// Build a stage-1 profiler over a program and its stage-1 structure.
    pub fn new(prog: &'p Program, structure: &'p StaticStructure, out: S) -> Self {
        Self::with_config(prog, structure, out, DdgConfig::default())
    }

    /// As [`PreProfiler::new`] with explicit configuration.
    pub fn with_config(
        prog: &'p Program,
        structure: &'p StaticStructure,
        out: S,
        cfg: DdgConfig,
    ) -> Self {
        let entry_fn = prog.entry.expect("program must have an entry");
        let entry = BlockRef {
            func: entry_fn,
            block: prog.func(entry_fn).entry(),
        };
        let n_regs = prog.func(entry_fn).n_regs as usize;
        PreProfiler {
            prog,
            gen: LoopEventGen::new(structure),
            iiv: IivTracker::new(entry),
            interner: ContextInterner::new(),
            arena: CoordArena::new(),
            reg_frames: vec![vec![None; n_regs]],
            frame_pool: Vec::new(),
            out,
            cfg,
            coords: Vec::with_capacity(8),
            cur_snap: None,
            coords_dirty: true,
            loop_buf: Vec::with_capacity(8),
            stmt_cache: [None; STMT_CACHE_SLOTS],
            dyn_ops: 0,
            mem_events: 0,
            prune: None,
            pruned_events: 0,
            faults: None,
            budget: None,
        }
    }

    /// Arm a deterministic fault plan ([`FaultSite::PanicPre`] fires as a
    /// panic on the probed memory event). Zero-cost when never called.
    pub fn set_faults(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Attach a resource budget: the deadline is polled through the VM's
    /// throttled [`EventSink::poll_abort`] hook, and spilled coordinate
    /// vectors are charged against the byte limit.
    pub fn set_budget(&mut self, budget: Arc<ResourceBudget>) {
        self.arena.set_budget(Arc::clone(&budget));
        self.budget = Some(budget);
    }

    /// Enable static instrumentation pruning: instructions in `mask` skip
    /// register-dependence tracking. Sound only for masks whose every entry
    /// is dynamically `is_scev` (the [`crate::prune`] module contract).
    pub fn set_prune_mask(&mut self, mask: Arc<PruneMask>) {
        self.prune = Some(mask);
    }

    /// Consume the profiler, returning the sink and interner.
    pub fn finish(self) -> (S, ContextInterner) {
        (self.out, self.interner)
    }

    fn drain_loop_events(&mut self) {
        if self.loop_buf.is_empty() {
            return;
        }
        for ev in self.loop_buf.drain(..) {
            self.iiv.apply(&ev);
        }
        self.coords_dirty = true;
    }

    #[inline]
    fn refresh_coords(&mut self) {
        if self.coords_dirty {
            self.iiv.coords_into(&mut self.coords);
            self.cur_snap = None;
            self.coords_dirty = false;
        }
    }

    #[inline]
    fn snapshot(&mut self) -> CoordSnap {
        match self.cur_snap {
            Some(s) => s,
            None => {
                let s = CoordSnap::capture(&self.coords, &mut self.arena);
                self.cur_snap = Some(s);
                s
            }
        }
    }

    #[inline]
    fn current_stmt(&mut self, instr: InstrRef) -> StmtId {
        let path = self.interner.current_path(&self.iiv);
        let slot = stmt_cache_slot(instr);
        if let Some((p, i, s)) = self.stmt_cache[slot] {
            if p == path && i == instr {
                return s;
            }
        }
        let s = self.interner.stmt(path, instr);
        self.stmt_cache[slot] = Some((path, instr, s));
        s
    }

    fn push_frame(&mut self, n_regs: usize) {
        let mut f = self.frame_pool.pop().unwrap_or_default();
        f.clear();
        f.resize(n_regs, None);
        self.reg_frames.push(f);
    }

    fn pop_frame(&mut self) {
        if let Some(f) = self.reg_frames.pop() {
            self.frame_pool.push(f);
        }
    }
}

impl<'p, S: PreSink> EventSink for PreProfiler<'p, S> {
    fn local_jump(&mut self, from: BlockRef, to: BlockRef) {
        self.gen.on_jump(from, to, &mut self.loop_buf);
        self.drain_loop_events();
    }

    fn call(&mut self, callsite: BlockRef, callee: FuncId, entry: BlockRef) {
        self.gen
            .on_call(callsite, callee, entry, &mut self.loop_buf);
        self.drain_loop_events();
        let n_regs = self.prog.func(callee).n_regs as usize;
        self.push_frame(n_regs);
    }

    fn ret(&mut self, from: FuncId, to: Option<BlockRef>) {
        self.gen.on_ret(from, to, &mut self.loop_buf);
        self.drain_loop_events();
        self.pop_frame();
    }

    fn exec(&mut self, instr: InstrRef, value: Option<Value>) {
        self.dyn_ops += 1;
        let stmt = self.current_stmt(instr);
        self.refresh_coords();
        let ins = self.prog.instr(instr);

        let pruned = match &self.prune {
            Some(m) => m.contains(instr),
            None => false,
        };
        if self.cfg.track_reg {
            if pruned {
                self.pruned_events += 1;
            } else {
                let frame = self.reg_frames.last().expect("live frame");
                let arena = &self.arena;
                let coords = &self.coords;
                let out = &mut self.out;
                ins.for_each_use(|r| {
                    if let Some(w) = frame[r.0 as usize] {
                        if w.stmt != PRUNED_STMT {
                            out.dependence(
                                DepKind::Reg,
                                w.stmt,
                                w.coords.resolve(arena),
                                stmt,
                                coords,
                            );
                        }
                    }
                });
            }
        }
        if let Some(d) = ins.def() {
            let snap = self.snapshot();
            let frame = self.reg_frames.last_mut().expect("live frame");
            let stmt = if pruned { PRUNED_STMT } else { stmt };
            frame[d.0 as usize] = Some(Writer { stmt, coords: snap });
        }

        let label = match value {
            Some(Value::I64(v)) => Some(v),
            _ => None,
        };
        self.out.instr_point(stmt, &self.coords, label);
    }

    fn mem(&mut self, instr: InstrRef, addr: u64, is_write: bool) {
        self.mem_events += 1;
        if let Some(plan) = &self.faults {
            if plan.should_fire(FaultSite::PanicPre) {
                panic!(
                    "injected fault: pre-profiler panic (memory event {})",
                    self.mem_events
                );
            }
        }
        let stmt = self.current_stmt(instr);
        self.refresh_coords();
        self.out.mem_pre(stmt, &self.coords, addr, is_write);
    }

    fn poll_abort(&mut self) -> bool {
        match &self.budget {
            Some(b) => b.poll_deadline(),
            None => false,
        }
    }
}

/// Routes a resolved fold stream across K [`ChunkWriter`] shards.
///
/// Points and accesses shard by statement id; dependences by the
/// *consumer* statement id. The fold key of a dependence is
/// `(kind, src, dst, class)` — routing by `dst` keeps every key's stream
/// whole within one shard, so per-key folding state is identical to the
/// serial run.
pub struct ShardRouter {
    shards: Vec<ChunkWriter>,
}

impl ShardRouter {
    /// Router over one writer per folding worker (at least one).
    pub fn new(shards: Vec<ChunkWriter>) -> Self {
        assert!(!shards.is_empty(), "router needs at least one shard");
        ShardRouter { shards }
    }

    #[inline]
    fn shard_of(&self, stmt: StmtId) -> usize {
        stmt.0 as usize % self.shards.len()
    }

    /// Flush all trailing partial chunks and close the shard channels,
    /// returning the summed telemetry tally of every shard writer (its
    /// `events` field is the routed-event total).
    pub fn finish(self) -> crate::chunk::ChunkStats {
        let mut total = crate::chunk::ChunkStats::default();
        for w in self.shards {
            total.merge(&w.finish());
        }
        total
    }

    /// Attach a telemetry collector to every shard writer; shard `k` reports
    /// on channel edge `1 + k` (edge 0 is the pre → resolver edge).
    pub fn set_trace(&mut self, collector: &Arc<Collector>) {
        for (k, w) in self.shards.iter_mut().enumerate() {
            w.set_trace(Arc::clone(collector), 1 + k);
        }
    }

    /// Arm a deterministic fault plan on every shard writer (send-side
    /// stall/drop/corrupt sites).
    pub fn set_faults(&mut self, plan: &Arc<FaultPlan>) {
        for w in self.shards.iter_mut() {
            w.set_faults(Arc::clone(plan));
        }
    }
}

impl FoldSink for ShardRouter {
    #[inline]
    fn instr_point(&mut self, stmt: StmtId, coords: &[i64], value: Option<i64>) {
        let s = self.shard_of(stmt);
        self.shards[s].instr_point(stmt, coords, value);
    }

    #[inline]
    fn mem_access(&mut self, stmt: StmtId, coords: &[i64], addr: u64, is_write: bool) {
        let s = self.shard_of(stmt);
        self.shards[s].mem_access(stmt, coords, addr, is_write);
    }

    #[inline]
    fn dependence(
        &mut self,
        kind: DepKind,
        src: StmtId,
        src_coords: &[i64],
        dst: StmtId,
        dst_coords: &[i64],
    ) {
        let s = self.shard_of(dst);
        self.shards[s].dependence(kind, src, src_coords, dst, dst_coords);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::EventChunk;
    use crate::CollectSink;
    use std::sync::mpsc::sync_channel;

    #[test]
    fn router_partitions_by_key_and_preserves_order() {
        let k = 3;
        let mut writers = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..k {
            let (tx, rx) = sync_channel::<EventChunk>(16);
            let (_pool_tx, pool_rx) = sync_channel::<EventChunk>(1);
            writers.push(ChunkWriter::new(4, tx, pool_rx));
            rxs.push(rx);
        }
        let mut router = ShardRouter::new(writers);
        for i in 0..10u32 {
            router.instr_point(StmtId(i), &[i as i64], None);
            // dependence routed by dst (= i), src deliberately elsewhere
            router.dependence(DepKind::Flow, StmtId(i + 1), &[0], StmtId(i), &[i as i64]);
        }
        router.finish();
        for (shard, rx) in rxs.into_iter().enumerate() {
            let mut sink = CollectSink::default();
            for chunk in rx {
                chunk.replay_into(&mut sink);
            }
            let mut last = -1i64;
            for (stmt, coords, _) in &sink.points {
                assert_eq!(stmt.0 as usize % k, shard, "point routed to wrong shard");
                assert!(coords[0] > last, "per-shard order must be FIFO");
                last = coords[0];
            }
            for (_, _, _, dst, _) in &sink.deps {
                assert_eq!(dst.0 as usize % k, shard, "dep routed by consumer id");
            }
        }
    }
}
