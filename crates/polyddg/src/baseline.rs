//! Retained reference implementation of the stage-2 profiler — the
//! pre-optimization hot path, kept verbatim for two jobs:
//!
//! 1. **Differential testing**: the interned-coordinate
//!    [`DdgProfiler`](crate::DdgProfiler) must produce a byte-identical
//!    folding stream.
//! 2. **Benchmark baseline**: the ≥1.5× event-throughput claim in
//!    `BENCH_pipeline.json` is measured against this implementation.
//!
//! Differences from the production path, by construction:
//! * every writer record boxes its own coordinate vector (`Box<[i64]>`),
//!   allocated per register definition and per memory access;
//! * writes and reads shadow in two separate `HashMap<u64, Page>` tables, so
//!   a write event costs up to four hash probes (prev-writer lookup,
//!   prev-reader lookup, writer-page entry, reader-page clear);
//! * the statement cache holds a single entry.
//!
//! Nothing in the production pipeline uses this module.

use crate::{DdgConfig, DepKind, FoldSink};
use polycfg::{LoopEventGen, StaticStructure};
use polyiiv::context::{ContextInterner, CtxPathId, StmtId};
use polyiiv::IivTracker;
use polyir::{BlockRef, FuncId, InstrRef, Program, Value};
use polyvm::EventSink;
use std::collections::HashMap;

/// The boxed producer record of the naive path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveWriter {
    /// The statement (context + instruction).
    pub stmt: StmtId,
    /// Its iteration-vector coordinates, owned.
    pub coords: Box<[i64]>,
}

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

type Page = Box<[Option<NaiveWriter>]>;

fn new_page() -> Page {
    let mut v = Vec::with_capacity(PAGE_SIZE);
    v.resize(PAGE_SIZE, None);
    v.into_boxed_slice()
}

/// The original two-table paged shadow memory.
#[derive(Debug, Default)]
pub struct NaiveShadowMemory {
    writes: HashMap<u64, Page>,
    reads: HashMap<u64, Page>,
}

impl NaiveShadowMemory {
    /// Empty shadow memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Last writer of `addr`, if any.
    pub fn last_write(&self, addr: u64) -> Option<&NaiveWriter> {
        self.writes
            .get(&(addr >> PAGE_BITS))?
            .get((addr as usize) & (PAGE_SIZE - 1))?
            .as_ref()
    }

    /// Last reader of `addr`, if any (cleared on write).
    pub fn last_read(&self, addr: u64) -> Option<&NaiveWriter> {
        self.reads
            .get(&(addr >> PAGE_BITS))?
            .get((addr as usize) & (PAGE_SIZE - 1))?
            .as_ref()
    }

    /// Record a write: updates the writer and clears the reader (two hash
    /// probes — the double lookup the production path eliminates).
    pub fn record_write(&mut self, addr: u64, w: NaiveWriter) {
        let page = self
            .writes
            .entry(addr >> PAGE_BITS)
            .or_insert_with(new_page);
        page[(addr as usize) & (PAGE_SIZE - 1)] = Some(w);
        if let Some(rp) = self.reads.get_mut(&(addr >> PAGE_BITS)) {
            rp[(addr as usize) & (PAGE_SIZE - 1)] = None;
        }
    }

    /// Record a read (for last-reader anti-dependence tracking).
    pub fn record_read(&mut self, addr: u64, r: NaiveWriter) {
        let page = self.reads.entry(addr >> PAGE_BITS).or_insert_with(new_page);
        page[(addr as usize) & (PAGE_SIZE - 1)] = Some(r);
    }

    /// Number of resident shadow pages (write pages + read pages).
    pub fn resident_pages(&self) -> usize {
        self.writes.len() + self.reads.len()
    }
}

/// The pre-optimization stage-2 profiler: clones the full coordinate vector
/// on every writer record and dependence emission.
pub struct NaiveDdgProfiler<'p, F: FoldSink> {
    prog: &'p Program,
    gen: LoopEventGen<'p>,
    iiv: IivTracker,
    /// Context/statement interner, exposed after the run for reporting.
    pub interner: ContextInterner,
    shadow: NaiveShadowMemory,
    reg_frames: Vec<Vec<Option<NaiveWriter>>>,
    out: F,
    cfg: DdgConfig,
    coords: Vec<i64>,
    loop_buf: Vec<polycfg::LoopEvent>,
    stmt_cache: Option<(CtxPathId, InstrRef, StmtId)>,
    /// Dynamic instruction count (all ops).
    pub dyn_ops: u64,
}

impl<'p, F: FoldSink> NaiveDdgProfiler<'p, F> {
    /// Build a profiler over a program and its stage-1 structure; `out`
    /// receives the folding streams.
    pub fn new(prog: &'p Program, structure: &'p StaticStructure, out: F) -> Self {
        Self::with_config(prog, structure, out, DdgConfig::default())
    }

    /// As [`NaiveDdgProfiler::new`] with explicit configuration.
    pub fn with_config(
        prog: &'p Program,
        structure: &'p StaticStructure,
        out: F,
        cfg: DdgConfig,
    ) -> Self {
        let entry_fn = prog.entry.expect("program must have an entry");
        let entry = BlockRef {
            func: entry_fn,
            block: prog.func(entry_fn).entry(),
        };
        let n_regs = prog.func(entry_fn).n_regs as usize;
        NaiveDdgProfiler {
            prog,
            gen: LoopEventGen::new(structure),
            iiv: IivTracker::new(entry),
            interner: ContextInterner::new(),
            shadow: NaiveShadowMemory::new(),
            reg_frames: vec![vec![None; n_regs]],
            out,
            cfg,
            coords: Vec::with_capacity(8),
            loop_buf: Vec::with_capacity(8),
            stmt_cache: None,
            dyn_ops: 0,
        }
    }

    /// Consume the profiler, returning the sink and interner.
    pub fn finish(self) -> (F, ContextInterner) {
        (self.out, self.interner)
    }

    fn drain_loop_events(&mut self) {
        for ev in self.loop_buf.drain(..) {
            self.iiv.apply(&ev);
        }
    }

    fn current_stmt(&mut self, instr: InstrRef) -> StmtId {
        let path = self.interner.current_path(&self.iiv);
        if let Some((p, i, s)) = self.stmt_cache {
            if p == path && i == instr {
                return s;
            }
        }
        let s = self.interner.stmt(path, instr);
        self.stmt_cache = Some((path, instr, s));
        s
    }
}

impl<'p, F: FoldSink> EventSink for NaiveDdgProfiler<'p, F> {
    fn local_jump(&mut self, from: BlockRef, to: BlockRef) {
        self.gen.on_jump(from, to, &mut self.loop_buf);
        self.drain_loop_events();
    }

    fn call(&mut self, callsite: BlockRef, callee: FuncId, entry: BlockRef) {
        self.gen
            .on_call(callsite, callee, entry, &mut self.loop_buf);
        self.drain_loop_events();
        let n_regs = self.prog.func(callee).n_regs as usize;
        self.reg_frames.push(vec![None; n_regs]);
    }

    fn ret(&mut self, from: FuncId, to: Option<BlockRef>) {
        self.gen.on_ret(from, to, &mut self.loop_buf);
        self.drain_loop_events();
        self.reg_frames.pop();
    }

    fn exec(&mut self, instr: InstrRef, value: Option<Value>) {
        self.dyn_ops += 1;
        let stmt = self.current_stmt(instr);
        self.iiv.coords_into(&mut self.coords);
        let ins = self.prog.instr(instr);

        if self.cfg.track_reg {
            let frame = self.reg_frames.last().expect("live frame");
            // Clone to avoid holding a borrow across the sink call.
            for r in ins.uses() {
                if let Some(w) = &frame[r.0 as usize] {
                    let (ws, wc) = (w.stmt, w.coords.clone());
                    self.out
                        .dependence(DepKind::Reg, ws, &wc, stmt, &self.coords);
                }
            }
        }
        if let Some(d) = ins.def() {
            let coords = self.coords.clone().into_boxed_slice();
            let frame = self.reg_frames.last_mut().expect("live frame");
            frame[d.0 as usize] = Some(NaiveWriter { stmt, coords });
        }

        let label = match value {
            Some(Value::I64(v)) => Some(v),
            _ => None,
        };
        self.out.instr_point(stmt, &self.coords, label);
    }

    fn mem(&mut self, instr: InstrRef, addr: u64, is_write: bool) {
        let stmt = self.current_stmt(instr);
        self.iiv.coords_into(&mut self.coords);
        if is_write {
            if self.cfg.track_output {
                if let Some(w) = self.shadow.last_write(addr) {
                    let (ws, wc) = (w.stmt, w.coords.clone());
                    self.out
                        .dependence(DepKind::Output, ws, &wc, stmt, &self.coords);
                }
            }
            if self.cfg.track_anti {
                if let Some(r) = self.shadow.last_read(addr) {
                    let (rs, rc) = (r.stmt, r.coords.clone());
                    self.out
                        .dependence(DepKind::Anti, rs, &rc, stmt, &self.coords);
                }
            }
            self.shadow.record_write(
                addr,
                NaiveWriter {
                    stmt,
                    coords: self.coords.clone().into_boxed_slice(),
                },
            );
        } else {
            if let Some(w) = self.shadow.last_write(addr) {
                let (ws, wc) = (w.stmt, w.coords.clone());
                self.out
                    .dependence(DepKind::Flow, ws, &wc, stmt, &self.coords);
            }
            if self.cfg.track_anti {
                self.shadow.record_read(
                    addr,
                    NaiveWriter {
                        stmt,
                        coords: self.coords.clone().into_boxed_slice(),
                    },
                );
            }
        }
        self.out.mem_access(stmt, &self.coords, addr, is_write);
    }
}

/// As [`crate::profile_collected`], but through the naive profiler.
pub fn profile_collected_naive(
    prog: &Program,
) -> (crate::CollectSink, ContextInterner, StaticStructure) {
    use polycfg::StructureRecorder;
    let mut rec = StructureRecorder::new();
    polyvm::Vm::new(prog)
        .run(&[], &mut rec)
        .expect("pass-1 execution failed");
    let structure = StaticStructure::analyze(prog, rec);
    let mut prof = NaiveDdgProfiler::new(prog, &structure, crate::CollectSink::default());
    polyvm::Vm::new(prog)
        .run(&[], &mut prof)
        .expect("pass-2 execution failed");
    let (sink, interner) = prof.finish();
    (sink, interner, structure)
}
