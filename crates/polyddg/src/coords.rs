//! Interned IIV coordinate snapshots — the allocation-free backbone of the
//! stage-2 hot path.
//!
//! The dynamic IIV changes only on loop events (enter/iterate/exit,
//! call/ret); between two loop events every executed instruction shares one
//! coordinate vector. The profiler therefore captures the vector **once per
//! change** as a [`CoordSnap`] and hands copies of that snapshot to every
//! writer record, instead of boxing a fresh `Box<[i64]>` per register
//! definition and memory access.
//!
//! Two representations back a snapshot:
//! * up to [`INLINE_DIMS`] dimensions live inline in the `Copy` value — this
//!   covers every Rodinia kernel in the suite and never touches the arena;
//! * deeper vectors spill into a [`CoordArena`], a flat append-only store
//!   addressed by [`CoordId`] (`u32` index + generation tag).
//!
//! The arena deliberately does **not** deduplicate: IIV snapshots are
//! lexicographically monotone during a run, so no value ever repeats —
//! "interning" here means *sharing one id across the many writers created
//! between two loop events*, which the profiler achieves by caching the
//! snapshot of the current vector. The generation tag catches use of a stale
//! id after [`CoordArena::clear`] in debug builds.

/// Coordinate vectors up to this many dimensions are stored inline in a
/// [`CoordSnap`] and never touch the arena.
pub const INLINE_DIMS: usize = 4;

/// Handle to a spilled coordinate vector in a [`CoordArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoordId {
    idx: u32,
    gen: u32,
}

/// Flat append-only arena for coordinate vectors deeper than
/// [`INLINE_DIMS`]. One entry per *coordinate change* (loop event), not per
/// profiled instruction.
#[derive(Debug, Clone)]
pub struct CoordArena {
    storage: Vec<i64>,
    /// `(start, len)` spans into `storage`, indexed by `CoordId::idx`.
    spans: Vec<(u32, u32)>,
    gen: u32,
    /// Optional resource budget charged per interned vector.
    budget: Option<std::sync::Arc<polyresist::ResourceBudget>>,
}

impl Default for CoordArena {
    fn default() -> Self {
        Self::new()
    }
}

impl CoordArena {
    /// Empty arena (generation 1; generation 0 is never valid, so a
    /// zero-initialized `CoordId` can't alias a live entry).
    pub fn new() -> Self {
        CoordArena {
            storage: Vec::new(),
            spans: Vec::new(),
            gen: 1,
            budget: None,
        }
    }

    /// Track interned bytes against `budget` (spilled vectors only — inline
    /// snapshots never reach the arena and cost nothing).
    pub fn set_budget(&mut self, budget: std::sync::Arc<polyresist::ResourceBudget>) {
        self.budget = Some(budget);
    }

    /// Append a snapshot of `coords` and return its id.
    pub fn intern(&mut self, coords: &[i64]) -> CoordId {
        if let Some(b) = &self.budget {
            b.charge((std::mem::size_of_val(coords) + std::mem::size_of::<(u32, u32)>()) as u64);
        }
        let start = self.storage.len() as u32;
        self.storage.extend_from_slice(coords);
        let idx = self.spans.len() as u32;
        self.spans.push((start, coords.len() as u32));
        CoordId { idx, gen: self.gen }
    }

    /// Resolve an id back to its slice.
    ///
    /// Debug builds panic on a stale id (interned before the last
    /// [`clear`](Self::clear)); release builds index out of the current
    /// spans, which at worst panics on out-of-bounds.
    #[inline]
    pub fn resolve(&self, id: CoordId) -> &[i64] {
        debug_assert_eq!(id.gen, self.gen, "stale CoordId across arena clear");
        let (start, len) = self.spans[id.idx as usize];
        &self.storage[start as usize..(start + len) as usize]
    }

    /// Number of interned vectors.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing was interned since creation / the last clear.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Heap footprint of the stored coordinates in bytes (statistics).
    pub fn bytes(&self) -> usize {
        self.storage.len() * std::mem::size_of::<i64>()
            + self.spans.len() * std::mem::size_of::<(u32, u32)>()
    }

    /// Drop all entries and invalidate every outstanding [`CoordId`] by
    /// bumping the generation. Capacity is retained.
    pub fn clear(&mut self) {
        self.storage.clear();
        self.spans.clear();
        self.gen += 1;
    }
}

/// A `Copy` snapshot of one IIV coordinate vector: inline for shallow nests,
/// an arena id for deep ones.
#[derive(Debug, Clone, Copy)]
pub enum CoordSnap {
    /// `len` coordinates stored directly in the value.
    Inline {
        /// Number of live dimensions in `buf`.
        len: u8,
        /// The coordinates (`buf[..len]`).
        buf: [i64; INLINE_DIMS],
    },
    /// Vector deeper than [`INLINE_DIMS`], spilled to the arena.
    Spilled(CoordId),
}

impl CoordSnap {
    /// Capture `coords`, spilling into `arena` only when it doesn't fit
    /// inline.
    #[inline]
    pub fn capture(coords: &[i64], arena: &mut CoordArena) -> Self {
        if coords.len() <= INLINE_DIMS {
            let mut buf = [0i64; INLINE_DIMS];
            buf[..coords.len()].copy_from_slice(coords);
            CoordSnap::Inline {
                len: coords.len() as u8,
                buf,
            }
        } else {
            CoordSnap::Spilled(arena.intern(coords))
        }
    }

    /// The captured slice. `arena` must be the arena passed to
    /// [`capture`](Self::capture) (only consulted for spilled snapshots).
    #[inline]
    pub fn resolve<'a>(&'a self, arena: &'a CoordArena) -> &'a [i64] {
        match self {
            CoordSnap::Inline { len, buf } => &buf[..*len as usize],
            CoordSnap::Spilled(id) => arena.resolve(*id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_roundtrip() {
        let mut arena = CoordArena::new();
        for dims in 0..=INLINE_DIMS {
            let v: Vec<i64> = (0..dims as i64).map(|i| i * 7 - 3).collect();
            let s = CoordSnap::capture(&v, &mut arena);
            assert!(matches!(s, CoordSnap::Inline { .. }));
            assert_eq!(s.resolve(&arena), &v[..]);
        }
        assert!(
            arena.is_empty(),
            "inline snapshots must not touch the arena"
        );
    }

    #[test]
    fn spill_roundtrip() {
        let mut arena = CoordArena::new();
        let a: Vec<i64> = (0..7).collect();
        let b: Vec<i64> = (10..16).collect();
        let sa = CoordSnap::capture(&a, &mut arena);
        let sb = CoordSnap::capture(&b, &mut arena);
        assert!(matches!(sa, CoordSnap::Spilled(_)));
        assert_eq!(sa.resolve(&arena), &a[..]);
        assert_eq!(sb.resolve(&arena), &b[..]);
        assert_eq!(arena.len(), 2);
        assert!(arena.bytes() > 0);
    }

    #[test]
    fn snapshots_are_copy_and_shared() {
        let mut arena = CoordArena::new();
        let v: Vec<i64> = (0..6).collect();
        let s = CoordSnap::capture(&v, &mut arena);
        let t = s; // Copy — both resolve to the same span
        assert_eq!(s.resolve(&arena), t.resolve(&arena));
        assert_eq!(arena.len(), 1, "sharing does not re-intern");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale CoordId")]
    fn stale_id_detected_in_debug() {
        let mut arena = CoordArena::new();
        let v: Vec<i64> = (0..8).collect();
        let s = CoordSnap::capture(&v, &mut arena);
        arena.clear();
        let _ = s.resolve(&arena);
    }

    #[test]
    fn clear_retains_capacity_and_invalidates() {
        let mut arena = CoordArena::new();
        let v: Vec<i64> = (0..8).collect();
        arena.intern(&v);
        arena.clear();
        assert!(arena.is_empty());
        let id = arena.intern(&v);
        assert_eq!(arena.resolve(id), &v[..]);
    }
}
