//! # polyddg — the dynamic dependence graph stream (paper §4–5)
//!
//! Stage 2 of Poly-Prof ("Instrumentation II"): every dynamic instruction is
//! tagged with its dynamic IIV, and a *shadow memory* plus per-frame register
//! tracking turn the execution into three streams — the "folding interface"
//! of §5:
//!
//! * **instruction points** `(stmt, coords, label)` where the label is the
//!   integer value produced (for SCEV recognition);
//! * **memory accesses** `(stmt, coords, addr, is_write)` (for strided-access
//!   / reuse analysis);
//! * **dependences** `(kind, src stmt, src coords, dst stmt, dst coords)` —
//!   flow through memory and registers, plus anti/output dependences.
//!
//! Nothing is materialized: events flow to a [`FoldSink`] (normally the
//! folding stage) as they happen.
//!
//! Substitution note: the paper tracks the register-to-register flow of the
//! callee's return value into the caller; here the `Call` instruction itself
//! is the writer of its destination register (callee-internal memory
//! dependences are still exact). This only coarsens chains that the SCEV
//! filter would usually delete anyway.
//!
//! ## Hot-path architecture
//!
//! Stage 2 sees every dynamic instruction, so the per-event cost here
//! dominates whole-suite profiling time (paper §8). The profiler is
//! allocation-free at steady state:
//!
//! * IIV coordinates change only on loop events; the current vector is
//!   captured **once per change** as a `Copy` [`coords::CoordSnap`]
//!   (inline for ≤ [`coords::INLINE_DIMS`] dims, arena-interned beyond),
//!   and every writer record shares that snapshot instead of boxing its
//!   own `Box<[i64]>`.
//! * [`shadow::ShadowMemory`] keeps last-writer and last-reader in one
//!   cell per word behind an MRU page cache: a memory event resolves its
//!   page once instead of probing two hash tables repeatedly.
//! * Register frames are pooled across call/ret, and statement lookup goes
//!   through a small direct-mapped cache keyed by instruction.
//!
//! The pre-optimization implementation is retained in [`baseline`] for
//! differential tests and benchmark comparison.
//!
//! ## Pipeline decomposition
//!
//! For intra-trace parallelism the profiler also exists in a staged form:
//! [`pipeline::PreProfiler`] (sequential IIV/interning/register prefix,
//! emitting unresolved memory events via [`PreSink`]),
//! [`shadow::ShadowResolver`] (shadow resolution on its own thread), and
//! [`pipeline::ShardRouter`] (key-partitioned fan-out to folding workers),
//! exchanging [`chunk::EventChunk`] batches over bounded channels. The
//! orchestration lives in `polyfold::pipeline`.

pub mod baseline;
pub mod chunk;
pub mod coords;
pub mod pipeline;
pub mod prune;
pub mod shadow;

use coords::{CoordArena, CoordSnap};
use polycfg::{LoopEventGen, StaticStructure};
use polyiiv::context::{ContextInterner, CtxPathId, StmtId};
use polyiiv::IivTracker;
use polyir::{BlockRef, FuncId, InstrRef, Program, Value};
use polyvm::EventSink;
use prune::{PruneMask, PRUNED_STMT};
use shadow::{ShadowMemory, Writer};
use std::sync::Arc;

/// Kind of data dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepKind {
    /// Read-after-write through memory.
    Flow,
    /// Write-after-read through memory.
    Anti,
    /// Write-after-write through memory.
    Output,
    /// Flow through a register.
    Reg,
}

/// Consumer of the folding-interface streams.
pub trait FoldSink {
    /// A dynamic instruction at `coords` with its produced integer value
    /// (`None` for float producers / stores / calls).
    fn instr_point(&mut self, stmt: StmtId, coords: &[i64], value: Option<i64>);
    /// A memory access at `coords` touching word `addr`.
    fn mem_access(&mut self, stmt: StmtId, coords: &[i64], addr: u64, is_write: bool);
    /// A data dependence from `src` (producer) to `dst` (consumer).
    fn dependence(
        &mut self,
        kind: DepKind,
        src: StmtId,
        src_coords: &[i64],
        dst: StmtId,
        dst_coords: &[i64],
    );
}

/// Consumer of the *pre-resolution* stage-1 stream: the [`FoldSink`]
/// alphabet minus resolved memory events, plus [`mem_pre`](PreSink::mem_pre)
/// records that still need shadow-memory resolution downstream.
pub trait PreSink: FoldSink {
    /// An unresolved memory touch at `coords` on word `addr`.
    fn mem_pre(&mut self, stmt: StmtId, coords: &[i64], addr: u64, is_write: bool);
}

/// Configuration of the DDG profiler.
#[derive(Debug, Clone, Copy)]
pub struct DdgConfig {
    /// Track write-after-read dependences (last-reader approximation).
    pub track_anti: bool,
    /// Track write-after-write dependences.
    pub track_output: bool,
    /// Track register flow dependences.
    pub track_reg: bool,
}

impl Default for DdgConfig {
    fn default() -> Self {
        DdgConfig {
            track_anti: true,
            track_output: true,
            track_reg: true,
        }
    }
}

/// The stage-2 profiler: an [`EventSink`] that drives loop-event generation
/// (Alg. 1/2), the dynamic IIV (Alg. 3), shadow memory and register
/// tracking, and streams the folding interface to `F`.
pub struct DdgProfiler<'p, F: FoldSink> {
    prog: &'p Program,
    gen: LoopEventGen<'p>,
    iiv: IivTracker,
    /// Context/statement interner, exposed after the run for reporting.
    pub interner: ContextInterner,
    shadow: ShadowMemory,
    arena: CoordArena,
    reg_frames: Vec<Vec<Option<Writer>>>,
    /// Retired register frames, recycled on the next call (steady-state
    /// call/ret does not allocate).
    frame_pool: Vec<Vec<Option<Writer>>>,
    out: F,
    cfg: DdgConfig,
    /// Current coordinate vector, refreshed copy-on-change.
    coords: Vec<i64>,
    /// Shared snapshot of `coords`, captured lazily after each change.
    cur_snap: Option<CoordSnap>,
    /// Set when loop events changed the IIV since `coords` was refreshed.
    coords_dirty: bool,
    loop_buf: Vec<polycfg::LoopEvent>,
    stmt_cache: [Option<(CtxPathId, InstrRef, StmtId)>; STMT_CACHE_SLOTS],
    /// Dynamic instruction count (all ops).
    pub dyn_ops: u64,
    /// Dynamic memory events (loads + stores) seen.
    pub mem_events: u64,
    /// Statically-proven-SCEV instructions whose register tracking is
    /// skipped (see [`prune`]); `None` disables pruning.
    prune: Option<Arc<PruneMask>>,
    /// Dynamic executions whose register tracking was skipped by the mask.
    pub pruned_events: u64,
    /// Optional resource budget: shadow pages and spilled coordinates are
    /// charged against its byte limit, and its deadline is polled through
    /// the VM's throttled [`EventSink::poll_abort`] hook.
    budget: Option<Arc<polyresist::ResourceBudget>>,
}

/// Direct-mapped statement-cache size; must be a power of two. Multi-block
/// loop bodies alternate between a handful of instructions per context, so a
/// small cache captures virtually all lookups.
pub(crate) const STMT_CACHE_SLOTS: usize = 64;

#[inline]
pub(crate) fn stmt_cache_slot(instr: InstrRef) -> usize {
    (instr.idx as usize
        ^ ((instr.block.block.0 as usize) << 2)
        ^ ((instr.block.func.0 as usize) << 5))
        & (STMT_CACHE_SLOTS - 1)
}

impl<'p, F: FoldSink> DdgProfiler<'p, F> {
    /// Build a profiler over a program and its stage-1 structure; `out`
    /// receives the folding streams.
    pub fn new(prog: &'p Program, structure: &'p StaticStructure, out: F) -> Self {
        Self::with_config(prog, structure, out, DdgConfig::default())
    }

    /// As [`DdgProfiler::new`] with explicit configuration.
    pub fn with_config(
        prog: &'p Program,
        structure: &'p StaticStructure,
        out: F,
        cfg: DdgConfig,
    ) -> Self {
        let entry_fn = prog.entry.expect("program must have an entry");
        let entry = BlockRef {
            func: entry_fn,
            block: prog.func(entry_fn).entry(),
        };
        let n_regs = prog.func(entry_fn).n_regs as usize;
        DdgProfiler {
            prog,
            gen: LoopEventGen::new(structure),
            iiv: IivTracker::new(entry),
            interner: ContextInterner::new(),
            shadow: ShadowMemory::new(),
            arena: CoordArena::new(),
            reg_frames: vec![vec![None; n_regs]],
            frame_pool: Vec::new(),
            out,
            cfg,
            coords: Vec::with_capacity(8),
            cur_snap: None,
            coords_dirty: true,
            loop_buf: Vec::with_capacity(8),
            stmt_cache: [None; STMT_CACHE_SLOTS],
            dyn_ops: 0,
            mem_events: 0,
            prune: None,
            pruned_events: 0,
            budget: None,
        }
    }

    /// Enable static instrumentation pruning: instructions in `mask` skip
    /// register-dependence tracking. Sound only for masks whose every entry
    /// is dynamically `is_scev` (the [`prune`] module contract).
    pub fn set_prune_mask(&mut self, mask: Arc<PruneMask>) {
        self.prune = Some(mask);
    }

    /// Attach a resource budget: shadow pages and spilled coordinate
    /// vectors are charged against the byte limit, and the deadline is
    /// polled by the VM watchdog ([`EventSink::poll_abort`]).
    pub fn set_budget(&mut self, budget: Arc<polyresist::ResourceBudget>) {
        self.shadow.set_budget(Arc::clone(&budget));
        self.arena.set_budget(Arc::clone(&budget));
        self.budget = Some(budget);
    }

    /// Consume the profiler, returning the sink and interner.
    pub fn finish(self) -> (F, ContextInterner) {
        (self.out, self.interner)
    }

    /// Shadow-memory MRU page-cache `(hits, misses)` so far.
    pub fn shadow_mru_stats(&self) -> (u64, u64) {
        self.shadow.mru_stats()
    }

    /// Immutable access to the fold sink mid-run.
    pub fn sink(&self) -> &F {
        &self.out
    }

    /// Resident shadow pages (overhead statistics for benchmarks).
    pub fn resident_shadow_pages(&self) -> usize {
        self.shadow.resident_pages()
    }

    /// Heap footprint of spilled (> [`coords::INLINE_DIMS`]-dim) coordinate
    /// snapshots in bytes.
    pub fn arena_bytes(&self) -> usize {
        self.arena.bytes()
    }

    fn drain_loop_events(&mut self) {
        if self.loop_buf.is_empty() {
            return;
        }
        for ev in self.loop_buf.drain(..) {
            self.iiv.apply(&ev);
        }
        self.coords_dirty = true;
    }

    /// Refresh the coordinate buffer if loop events moved the IIV. The old
    /// snapshot stays valid for all writer records that captured it.
    #[inline]
    fn refresh_coords(&mut self) {
        if self.coords_dirty {
            self.iiv.coords_into(&mut self.coords);
            self.cur_snap = None;
            self.coords_dirty = false;
        }
    }

    /// The shared snapshot of the current coordinates, captured on first
    /// use after a change.
    #[inline]
    fn snapshot(&mut self) -> CoordSnap {
        match self.cur_snap {
            Some(s) => s,
            None => {
                let s = CoordSnap::capture(&self.coords, &mut self.arena);
                self.cur_snap = Some(s);
                s
            }
        }
    }

    #[inline]
    fn current_stmt(&mut self, instr: InstrRef) -> StmtId {
        let path = self.interner.current_path(&self.iiv);
        let slot = stmt_cache_slot(instr);
        if let Some((p, i, s)) = self.stmt_cache[slot] {
            if p == path && i == instr {
                return s;
            }
        }
        let s = self.interner.stmt(path, instr);
        self.stmt_cache[slot] = Some((path, instr, s));
        s
    }

    fn push_frame(&mut self, n_regs: usize) {
        let mut f = self.frame_pool.pop().unwrap_or_default();
        f.clear();
        f.resize(n_regs, None);
        self.reg_frames.push(f);
    }

    fn pop_frame(&mut self) {
        if let Some(f) = self.reg_frames.pop() {
            self.frame_pool.push(f);
        }
    }
}

impl<'p, F: FoldSink> EventSink for DdgProfiler<'p, F> {
    fn local_jump(&mut self, from: BlockRef, to: BlockRef) {
        self.gen.on_jump(from, to, &mut self.loop_buf);
        self.drain_loop_events();
    }

    fn call(&mut self, callsite: BlockRef, callee: FuncId, entry: BlockRef) {
        self.gen
            .on_call(callsite, callee, entry, &mut self.loop_buf);
        self.drain_loop_events();
        let n_regs = self.prog.func(callee).n_regs as usize;
        self.push_frame(n_regs);
    }

    fn ret(&mut self, from: FuncId, to: Option<BlockRef>) {
        self.gen.on_ret(from, to, &mut self.loop_buf);
        self.drain_loop_events();
        self.pop_frame();
    }

    fn exec(&mut self, instr: InstrRef, value: Option<Value>) {
        self.dyn_ops += 1;
        let stmt = self.current_stmt(instr);
        self.refresh_coords();
        let ins = self.prog.instr(instr);

        let pruned = match &self.prune {
            Some(m) => m.contains(instr),
            None => false,
        };
        if self.cfg.track_reg {
            if pruned {
                self.pruned_events += 1;
            } else {
                // Disjoint field borrows: the writer records are `Copy`, so no
                // clone is needed to emit across the sink call.
                let frame = self.reg_frames.last().expect("live frame");
                let arena = &self.arena;
                let coords = &self.coords;
                let out = &mut self.out;
                ins.for_each_use(|r| {
                    if let Some(w) = frame[r.0 as usize] {
                        if w.stmt != PRUNED_STMT {
                            out.dependence(
                                DepKind::Reg,
                                w.stmt,
                                w.coords.resolve(arena),
                                stmt,
                                coords,
                            );
                        }
                    }
                });
            }
        }
        if let Some(d) = ins.def() {
            let snap = self.snapshot();
            let frame = self.reg_frames.last_mut().expect("live frame");
            let stmt = if pruned { PRUNED_STMT } else { stmt };
            frame[d.0 as usize] = Some(Writer { stmt, coords: snap });
        }

        let label = match value {
            Some(Value::I64(v)) => Some(v),
            _ => None,
        };
        self.out.instr_point(stmt, &self.coords, label);
    }

    fn mem(&mut self, instr: InstrRef, addr: u64, is_write: bool) {
        self.mem_events += 1;
        let stmt = self.current_stmt(instr);
        self.refresh_coords();
        // Resolve the shadow cell once; prior records are copied out so the
        // update and the dependence emission don't contend for borrows.
        let (prev_write, prev_read) = if is_write {
            let snap = self.snapshot();
            let cell = self.shadow.cell_mut(addr);
            let prev = (cell.write, cell.read);
            cell.write = Some(Writer { stmt, coords: snap });
            cell.read = None;
            prev
        } else if self.cfg.track_anti {
            let snap = self.snapshot();
            let cell = self.shadow.cell_mut(addr);
            let prev = (cell.write, None);
            cell.read = Some(Writer { stmt, coords: snap });
            prev
        } else {
            (self.shadow.last_write(addr).copied(), None)
        };
        if is_write {
            if self.cfg.track_output {
                if let Some(w) = prev_write {
                    self.out.dependence(
                        DepKind::Output,
                        w.stmt,
                        w.coords.resolve(&self.arena),
                        stmt,
                        &self.coords,
                    );
                }
            }
            if self.cfg.track_anti {
                if let Some(r) = prev_read {
                    self.out.dependence(
                        DepKind::Anti,
                        r.stmt,
                        r.coords.resolve(&self.arena),
                        stmt,
                        &self.coords,
                    );
                }
            }
        } else if let Some(w) = prev_write {
            self.out.dependence(
                DepKind::Flow,
                w.stmt,
                w.coords.resolve(&self.arena),
                stmt,
                &self.coords,
            );
        }
        self.out.mem_access(stmt, &self.coords, addr, is_write);
    }

    fn poll_abort(&mut self) -> bool {
        match &self.budget {
            Some(b) => b.poll_deadline(),
            None => false,
        }
    }
}

/// One collected dependence: kind, producer + coords, consumer + coords.
pub type DepRecord = (DepKind, StmtId, Vec<i64>, StmtId, Vec<i64>);

/// A [`FoldSink`] that materializes everything (tests / Table 1 printing —
/// small programs only).
#[derive(Debug, Default)]
pub struct CollectSink {
    /// Instruction points.
    pub points: Vec<(StmtId, Vec<i64>, Option<i64>)>,
    /// Memory accesses.
    pub accesses: Vec<(StmtId, Vec<i64>, u64, bool)>,
    /// Dependences.
    pub deps: Vec<DepRecord>,
}

impl FoldSink for CollectSink {
    fn instr_point(&mut self, stmt: StmtId, coords: &[i64], value: Option<i64>) {
        self.points.push((stmt, coords.to_vec(), value));
    }
    fn mem_access(&mut self, stmt: StmtId, coords: &[i64], addr: u64, is_write: bool) {
        self.accesses.push((stmt, coords.to_vec(), addr, is_write));
    }
    fn dependence(
        &mut self,
        kind: DepKind,
        src: StmtId,
        src_coords: &[i64],
        dst: StmtId,
        dst_coords: &[i64],
    ) {
        self.deps
            .push((kind, src, src_coords.to_vec(), dst, dst_coords.to_vec()));
    }
}

/// Convenience: run both profiling passes over `prog` and return the
/// collected raw streams plus structure and interner (test/report helper).
/// Panics on a VM error — see [`try_profile_collected`] for the fallible
/// variant.
pub fn profile_collected(prog: &Program) -> (CollectSink, ContextInterner, StaticStructure) {
    match try_profile_collected(prog) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`profile_collected`]: a VM error in either pass
/// surfaces as [`polyresist::PolyProfError::Vm`] instead of a panic.
pub fn try_profile_collected(
    prog: &Program,
) -> Result<(CollectSink, ContextInterner, StaticStructure), polyresist::PolyProfError> {
    use polycfg::StructureRecorder;
    use polyresist::PolyProfError;
    let mut rec = StructureRecorder::new();
    polyvm::Vm::new(prog)
        .run(&[], &mut rec)
        .map_err(|e| PolyProfError::Vm {
            stage: "pass-1",
            msg: e.to_string(),
        })?;
    let structure = StaticStructure::analyze(prog, rec);
    let mut prof = DdgProfiler::new(prog, &structure, CollectSink::default());
    polyvm::Vm::new(prog)
        .run(&[], &mut prof)
        .map_err(|e| PolyProfError::Vm {
            stage: "pass-2",
            msg: e.to_string(),
        })?;
    let (sink, interner) = prof.finish();
    Ok((sink, interner, structure))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyir::build::ProgramBuilder;
    use polyir::FBinOp;

    /// a[i] = i; then s += a[i] — flow deps within the same iteration.
    #[test]
    fn flow_dep_same_iteration() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(8);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 4i64, 1, |f, i| {
            f.store(base as i64, i, i);
            let v = f.load(base as i64, i);
            let _ = v;
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, _, _) = profile_collected(&p);
        let flows: Vec<_> = sink
            .deps
            .iter()
            .filter(|(k, ..)| *k == DepKind::Flow)
            .collect();
        assert_eq!(flows.len(), 4);
        for (_, _, sc, _, dc) in &flows {
            assert_eq!(sc, dc, "producer/consumer in the same iteration");
        }
    }

    /// a[i] written in iteration i, read in iteration i+1: distance-1 flow.
    #[test]
    fn loop_carried_flow_dep() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(16);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 5i64, 1, |f, i| {
            let prev = f.load(base as i64, i); // reads what iteration i-1 wrote
            let next = f.add(i, 1i64);
            let v = f.add(prev, 1i64);
            f.store(base as i64, next, v);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, _, _) = profile_collected(&p);
        let flows: Vec<_> = sink
            .deps
            .iter()
            .filter(|(k, ..)| *k == DepKind::Flow)
            .collect();
        // iterations 1..4 read what 0..3 wrote
        assert_eq!(flows.len(), 4);
        for (_, _, sc, _, dc) in &flows {
            // distance 1 on the loop dimension (last coordinate)
            assert_eq!(dc.last().unwrap() - sc.last().unwrap(), 1);
        }
    }

    #[test]
    fn output_and_anti_deps() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(4);
        let mut f = pb.func("main", 0);
        // two stores to the same cell → WAW; load between them → WAR
        f.store(base as i64, 0i64, 1i64);
        f.load(base as i64, 0i64);
        f.store(base as i64, 0i64, 2i64);
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, _, _) = profile_collected(&p);
        assert_eq!(
            sink.deps
                .iter()
                .filter(|(k, ..)| *k == DepKind::Output)
                .count(),
            1
        );
        assert_eq!(
            sink.deps
                .iter()
                .filter(|(k, ..)| *k == DepKind::Anti)
                .count(),
            1
        );
        assert_eq!(
            sink.deps
                .iter()
                .filter(|(k, ..)| *k == DepKind::Flow)
                .count(),
            1
        );
    }

    #[test]
    fn register_deps_tracked() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.func("main", 0);
        let a = f.const_f(1.5);
        let b = f.fop(FBinOp::Mul, a, 2.0f64); // reg dep a→b
        let c = f.fop(FBinOp::Add, b, a); // deps b→c and a→c
        f.ret(Some(c.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, _, _) = profile_collected(&p);
        let regs = sink
            .deps
            .iter()
            .filter(|(k, ..)| *k == DepKind::Reg)
            .count();
        assert_eq!(regs, 3); // a→b, b→c, a→c (Ret is a terminator: no exec event)
    }

    /// Values produced are captured as labels (SCEV input): the IV increment
    /// chain yields values 1, 2, 3, ... at coords 0, 1, 2, ...
    #[test]
    fn labels_capture_produced_values() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 4i64, 1, |_, _| {});
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, interner, _) = profile_collected(&p);
        // find the latch add (value = iv + 1): points with increasing labels
        let mut found = false;
        for (stmt, info) in interner.stmts() {
            let pts: Vec<_> = sink.points.iter().filter(|(s, ..)| *s == stmt).collect();
            if pts.len() == 4 {
                let labels: Vec<_> = pts.iter().filter_map(|(_, _, l)| *l).collect();
                if labels == vec![1, 2, 3, 4] {
                    found = true;
                }
            }
            let _ = info;
        }
        assert!(found, "latch increment must fold to labels 1..=4");
    }

    /// Registers are frame-local: a callee writing r0 must not create deps
    /// with the caller's r0.
    #[test]
    fn register_frames_isolated() {
        let mut pb = ProgramBuilder::new("t");
        let mut g = pb.func("g", 0);
        g.const_i(42); // writes callee r0
        g.ret(None);
        let g_id = g.finish();
        let mut f = pb.func("main", 0);
        let a = f.const_i(7); // caller r0
        f.call_void(g_id, &[]);
        let b = f.add(a, 1i64); // dep must be from const, not from callee
        f.ret(Some(b.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, interner, _) = profile_collected(&p);
        for (_, src, _, _, _) in sink.deps.iter().filter(|(k, ..)| *k == DepKind::Reg) {
            let info = interner.stmt_info(*src);
            assert_eq!(info.instr.block.func, fid, "no cross-frame register deps");
        }
    }

    #[test]
    fn accesses_streamed_with_addresses() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(16);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 4i64, 1, |f, i| {
            let two_i = f.mul(i, 2i64);
            f.store(base as i64, two_i, i); // stride-2 store
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, _, _) = profile_collected(&p);
        let writes: Vec<u64> = sink
            .accesses
            .iter()
            .filter(|(_, _, _, w)| *w)
            .map(|(_, _, a, _)| *a)
            .collect();
        assert_eq!(writes.len(), 4);
        assert_eq!(writes[1] - writes[0], 2);
    }
}
