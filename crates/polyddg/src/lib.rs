//! # polyddg — the dynamic dependence graph stream (paper §4–5)
//!
//! Stage 2 of Poly-Prof ("Instrumentation II"): every dynamic instruction is
//! tagged with its dynamic IIV, and a *shadow memory* plus per-frame register
//! tracking turn the execution into three streams — the "folding interface"
//! of §5:
//!
//! * **instruction points** `(stmt, coords, label)` where the label is the
//!   integer value produced (for SCEV recognition);
//! * **memory accesses** `(stmt, coords, addr, is_write)` (for strided-access
//!   / reuse analysis);
//! * **dependences** `(kind, src stmt, src coords, dst stmt, dst coords)` —
//!   flow through memory and registers, plus anti/output dependences.
//!
//! Nothing is materialized: events flow to a [`FoldSink`] (normally the
//! folding stage) as they happen.
//!
//! Substitution note: the paper tracks the register-to-register flow of the
//! callee's return value into the caller; here the `Call` instruction itself
//! is the writer of its destination register (callee-internal memory
//! dependences are still exact). This only coarsens chains that the SCEV
//! filter would usually delete anyway.

pub mod shadow;

use polycfg::{LoopEventGen, StaticStructure};
use polyiiv::context::{ContextInterner, CtxPathId, StmtId};
use polyiiv::IivTracker;
use polyir::{BlockRef, FuncId, InstrRef, Program, Value};
use polyvm::EventSink;
use shadow::{ShadowMemory, Writer};

/// Kind of data dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepKind {
    /// Read-after-write through memory.
    Flow,
    /// Write-after-read through memory.
    Anti,
    /// Write-after-write through memory.
    Output,
    /// Flow through a register.
    Reg,
}

/// Consumer of the folding-interface streams.
pub trait FoldSink {
    /// A dynamic instruction at `coords` with its produced integer value
    /// (`None` for float producers / stores / calls).
    fn instr_point(&mut self, stmt: StmtId, coords: &[i64], value: Option<i64>);
    /// A memory access at `coords` touching word `addr`.
    fn mem_access(&mut self, stmt: StmtId, coords: &[i64], addr: u64, is_write: bool);
    /// A data dependence from `src` (producer) to `dst` (consumer).
    fn dependence(
        &mut self,
        kind: DepKind,
        src: StmtId,
        src_coords: &[i64],
        dst: StmtId,
        dst_coords: &[i64],
    );
}

/// Configuration of the DDG profiler.
#[derive(Debug, Clone, Copy)]
pub struct DdgConfig {
    /// Track write-after-read dependences (last-reader approximation).
    pub track_anti: bool,
    /// Track write-after-write dependences.
    pub track_output: bool,
    /// Track register flow dependences.
    pub track_reg: bool,
}

impl Default for DdgConfig {
    fn default() -> Self {
        DdgConfig { track_anti: true, track_output: true, track_reg: true }
    }
}

/// The stage-2 profiler: an [`EventSink`] that drives loop-event generation
/// (Alg. 1/2), the dynamic IIV (Alg. 3), shadow memory and register
/// tracking, and streams the folding interface to `F`.
pub struct DdgProfiler<'p, F: FoldSink> {
    prog: &'p Program,
    gen: LoopEventGen<'p>,
    iiv: IivTracker,
    /// Context/statement interner, exposed after the run for reporting.
    pub interner: ContextInterner,
    shadow: ShadowMemory,
    reg_frames: Vec<Vec<Option<Writer>>>,
    out: F,
    cfg: DdgConfig,
    coords: Vec<i64>,
    loop_buf: Vec<polycfg::LoopEvent>,
    stmt_cache: Option<(CtxPathId, InstrRef, StmtId)>,
    /// Dynamic instruction count (all ops).
    pub dyn_ops: u64,
}

impl<'p, F: FoldSink> DdgProfiler<'p, F> {
    /// Build a profiler over a program and its stage-1 structure; `out`
    /// receives the folding streams.
    pub fn new(prog: &'p Program, structure: &'p StaticStructure, out: F) -> Self {
        Self::with_config(prog, structure, out, DdgConfig::default())
    }

    /// As [`DdgProfiler::new`] with explicit configuration.
    pub fn with_config(
        prog: &'p Program,
        structure: &'p StaticStructure,
        out: F,
        cfg: DdgConfig,
    ) -> Self {
        let entry_fn = prog.entry.expect("program must have an entry");
        let entry = BlockRef { func: entry_fn, block: prog.func(entry_fn).entry() };
        let n_regs = prog.func(entry_fn).n_regs as usize;
        DdgProfiler {
            prog,
            gen: LoopEventGen::new(structure),
            iiv: IivTracker::new(entry),
            interner: ContextInterner::new(),
            shadow: ShadowMemory::new(),
            reg_frames: vec![vec![None; n_regs]],
            out,
            cfg,
            coords: Vec::with_capacity(8),
            loop_buf: Vec::with_capacity(8),
            stmt_cache: None,
            dyn_ops: 0,
        }
    }

    /// Consume the profiler, returning the sink and interner.
    pub fn finish(self) -> (F, ContextInterner) {
        (self.out, self.interner)
    }

    /// Immutable access to the fold sink mid-run.
    pub fn sink(&self) -> &F {
        &self.out
    }

    fn drain_loop_events(&mut self) {
        for ev in self.loop_buf.drain(..) {
            self.iiv.apply(&ev);
        }
    }

    fn current_stmt(&mut self, instr: InstrRef) -> StmtId {
        let path = self.interner.current_path(&self.iiv);
        if let Some((p, i, s)) = self.stmt_cache {
            if p == path && i == instr {
                return s;
            }
        }
        let s = self.interner.stmt(path, instr);
        self.stmt_cache = Some((path, instr, s));
        s
    }
}

impl<'p, F: FoldSink> EventSink for DdgProfiler<'p, F> {
    fn local_jump(&mut self, from: BlockRef, to: BlockRef) {
        self.gen.on_jump(from, to, &mut self.loop_buf);
        self.drain_loop_events();
    }

    fn call(&mut self, callsite: BlockRef, callee: FuncId, entry: BlockRef) {
        self.gen.on_call(callsite, callee, entry, &mut self.loop_buf);
        self.drain_loop_events();
        let n_regs = self.prog.func(callee).n_regs as usize;
        self.reg_frames.push(vec![None; n_regs]);
    }

    fn ret(&mut self, from: FuncId, to: Option<BlockRef>) {
        self.gen.on_ret(from, to, &mut self.loop_buf);
        self.drain_loop_events();
        self.reg_frames.pop();
    }

    fn exec(&mut self, instr: InstrRef, value: Option<Value>) {
        self.dyn_ops += 1;
        let stmt = self.current_stmt(instr);
        self.iiv.coords_into(&mut self.coords);
        let ins = self.prog.instr(instr);

        if self.cfg.track_reg {
            let frame = self.reg_frames.last().expect("live frame");
            // Collect to avoid holding a borrow across the sink call.
            for r in ins.uses() {
                if let Some(w) = &frame[r.0 as usize] {
                    let (ws, wc) = (w.stmt, w.coords.clone());
                    self.out.dependence(DepKind::Reg, ws, &wc, stmt, &self.coords);
                }
            }
        }
        if let Some(d) = ins.def() {
            let coords = self.coords.clone().into_boxed_slice();
            let frame = self.reg_frames.last_mut().expect("live frame");
            frame[d.0 as usize] = Some(Writer { stmt, coords });
        }

        let label = match value {
            Some(Value::I64(v)) => Some(v),
            _ => None,
        };
        self.out.instr_point(stmt, &self.coords, label);
    }

    fn mem(&mut self, instr: InstrRef, addr: u64, is_write: bool) {
        let stmt = self.current_stmt(instr);
        self.iiv.coords_into(&mut self.coords);
        if is_write {
            if self.cfg.track_output {
                if let Some(w) = self.shadow.last_write(addr) {
                    let (ws, wc) = (w.stmt, w.coords.clone());
                    self.out.dependence(DepKind::Output, ws, &wc, stmt, &self.coords);
                }
            }
            if self.cfg.track_anti {
                if let Some(r) = self.shadow.last_read(addr) {
                    let (rs, rc) = (r.stmt, r.coords.clone());
                    self.out.dependence(DepKind::Anti, rs, &rc, stmt, &self.coords);
                }
            }
            self.shadow.record_write(
                addr,
                Writer { stmt, coords: self.coords.clone().into_boxed_slice() },
            );
        } else {
            if let Some(w) = self.shadow.last_write(addr) {
                let (ws, wc) = (w.stmt, w.coords.clone());
                self.out.dependence(DepKind::Flow, ws, &wc, stmt, &self.coords);
            }
            if self.cfg.track_anti {
                self.shadow.record_read(
                    addr,
                    Writer { stmt, coords: self.coords.clone().into_boxed_slice() },
                );
            }
        }
        self.out.mem_access(stmt, &self.coords, addr, is_write);
    }
}

/// A [`FoldSink`] that materializes everything (tests / Table 1 printing —
/// small programs only).
#[derive(Debug, Default)]
pub struct CollectSink {
    /// Instruction points.
    pub points: Vec<(StmtId, Vec<i64>, Option<i64>)>,
    /// Memory accesses.
    pub accesses: Vec<(StmtId, Vec<i64>, u64, bool)>,
    /// Dependences.
    pub deps: Vec<(DepKind, StmtId, Vec<i64>, StmtId, Vec<i64>)>,
}

impl FoldSink for CollectSink {
    fn instr_point(&mut self, stmt: StmtId, coords: &[i64], value: Option<i64>) {
        self.points.push((stmt, coords.to_vec(), value));
    }
    fn mem_access(&mut self, stmt: StmtId, coords: &[i64], addr: u64, is_write: bool) {
        self.accesses.push((stmt, coords.to_vec(), addr, is_write));
    }
    fn dependence(
        &mut self,
        kind: DepKind,
        src: StmtId,
        src_coords: &[i64],
        dst: StmtId,
        dst_coords: &[i64],
    ) {
        self.deps
            .push((kind, src, src_coords.to_vec(), dst, dst_coords.to_vec()));
    }
}

/// Convenience: run both profiling passes over `prog` and return the
/// collected raw streams plus structure and interner (test/report helper).
pub fn profile_collected(
    prog: &Program,
) -> (CollectSink, ContextInterner, StaticStructure) {
    use polycfg::StructureRecorder;
    let mut rec = StructureRecorder::new();
    polyvm::Vm::new(prog)
        .run(&[], &mut rec)
        .expect("pass-1 execution failed");
    let structure = StaticStructure::analyze(prog, rec);
    let mut prof = DdgProfiler::new(prog, &structure, CollectSink::default());
    polyvm::Vm::new(prog)
        .run(&[], &mut prof)
        .expect("pass-2 execution failed");
    let (sink, interner) = prof.finish();
    (sink, interner, structure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyir::build::ProgramBuilder;
    use polyir::FBinOp;

    /// a[i] = i; then s += a[i] — flow deps within the same iteration.
    #[test]
    fn flow_dep_same_iteration() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(8);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 4i64, 1, |f, i| {
            f.store(base as i64, i, i);
            let v = f.load(base as i64, i);
            let _ = v;
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, _, _) = profile_collected(&p);
        let flows: Vec<_> = sink
            .deps
            .iter()
            .filter(|(k, ..)| *k == DepKind::Flow)
            .collect();
        assert_eq!(flows.len(), 4);
        for (_, _, sc, _, dc) in &flows {
            assert_eq!(sc, dc, "producer/consumer in the same iteration");
        }
    }

    /// a[i] written in iteration i, read in iteration i+1: distance-1 flow.
    #[test]
    fn loop_carried_flow_dep() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(16);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 5i64, 1, |f, i| {
            let prev = f.load(base as i64, i); // reads what iteration i-1 wrote
            let next = f.add(i, 1i64);
            let v = f.add(prev, 1i64);
            f.store(base as i64, next, v);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, _, _) = profile_collected(&p);
        let flows: Vec<_> = sink
            .deps
            .iter()
            .filter(|(k, ..)| *k == DepKind::Flow)
            .collect();
        // iterations 1..4 read what 0..3 wrote
        assert_eq!(flows.len(), 4);
        for (_, _, sc, _, dc) in &flows {
            // distance 1 on the loop dimension (last coordinate)
            assert_eq!(dc.last().unwrap() - sc.last().unwrap(), 1);
        }
    }

    #[test]
    fn output_and_anti_deps() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(4);
        let mut f = pb.func("main", 0);
        // two stores to the same cell → WAW; load between them → WAR
        f.store(base as i64, 0i64, 1i64);
        f.load(base as i64, 0i64);
        f.store(base as i64, 0i64, 2i64);
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, _, _) = profile_collected(&p);
        assert_eq!(
            sink.deps.iter().filter(|(k, ..)| *k == DepKind::Output).count(),
            1
        );
        assert_eq!(
            sink.deps.iter().filter(|(k, ..)| *k == DepKind::Anti).count(),
            1
        );
        assert_eq!(
            sink.deps.iter().filter(|(k, ..)| *k == DepKind::Flow).count(),
            1
        );
    }

    #[test]
    fn register_deps_tracked() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.func("main", 0);
        let a = f.const_f(1.5);
        let b = f.fop(FBinOp::Mul, a, 2.0f64); // reg dep a→b
        let c = f.fop(FBinOp::Add, b, a); // deps b→c and a→c
        f.ret(Some(c.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, _, _) = profile_collected(&p);
        let regs = sink
            .deps
            .iter()
            .filter(|(k, ..)| *k == DepKind::Reg)
            .count();
        assert_eq!(regs, 3); // a→b, b→c, a→c (Ret is a terminator: no exec event)
    }

    /// Values produced are captured as labels (SCEV input): the IV increment
    /// chain yields values 1, 2, 3, ... at coords 0, 1, 2, ...
    #[test]
    fn labels_capture_produced_values() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 4i64, 1, |_, _| {});
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, interner, _) = profile_collected(&p);
        // find the latch add (value = iv + 1): points with increasing labels
        let mut found = false;
        for (stmt, info) in interner.stmts() {
            let pts: Vec<_> =
                sink.points.iter().filter(|(s, ..)| *s == stmt).collect();
            if pts.len() == 4 {
                let labels: Vec<_> = pts.iter().filter_map(|(_, _, l)| *l).collect();
                if labels == vec![1, 2, 3, 4] {
                    found = true;
                }
            }
            let _ = info;
        }
        assert!(found, "latch increment must fold to labels 1..=4");
    }

    /// Registers are frame-local: a callee writing r0 must not create deps
    /// with the caller's r0.
    #[test]
    fn register_frames_isolated() {
        let mut pb = ProgramBuilder::new("t");
        let mut g = pb.func("g", 0);
        g.const_i(42); // writes callee r0
        g.ret(None);
        let g_id = g.finish();
        let mut f = pb.func("main", 0);
        let a = f.const_i(7); // caller r0
        f.call_void(g_id, &[]);
        let b = f.add(a, 1i64); // dep must be from const, not from callee
        f.ret(Some(b.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, interner, _) = profile_collected(&p);
        for (_, src, _, _, _) in sink.deps.iter().filter(|(k, ..)| *k == DepKind::Reg) {
            let info = interner.stmt_info(*src);
            assert_eq!(info.instr.block.func, fid, "no cross-frame register deps");
        }
    }

    #[test]
    fn accesses_streamed_with_addresses() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(16);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 4i64, 1, |f, i| {
            let two_i = f.mul(i, 2i64);
            f.store(base as i64, two_i, i); // stride-2 store
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (sink, _, _) = profile_collected(&p);
        let writes: Vec<u64> = sink
            .accesses
            .iter()
            .filter(|(_, _, _, w)| *w)
            .map(|(_, _, a, _)| *a)
            .collect();
        assert_eq!(writes.len(), 4);
        assert_eq!(writes[1] - writes[0], 2);
    }
}
