//! Static instrumentation pruning (hybrid static/dynamic mode).
//!
//! The static affine pre-pass (`polystatic::dataflow`) proves, before pass 2
//! runs, that certain instructions can only ever fold to SCEV statements —
//! statements `FoldedDdg::remove_scevs` would delete anyway. For those the
//! profiler can skip register-dependence tracking entirely: the deps it would
//! have emitted are exactly the ones SCEV removal retires.
//!
//! The contract is deliberately narrow so the folded result stays
//! byte-identical after `remove_scevs()` with pruning on or off:
//!
//! * pruned instructions still emit their `instr_point` (with labels), so
//!   folded statement domains, label folds, `total_ops` and the dynamic
//!   `is_scev` verdict are unchanged;
//! * a pruned instruction's *uses* are not scanned (no `DepKind::Reg` dep
//!   with a pruned destination), and its *definition* writes a tombstone
//!   writer ([`PRUNED_STMT`]) into the register frame so later readers skip
//!   the dep (no reg dep with a pruned source) without losing the
//!   "this register was overwritten" fact;
//! * memory instructions are never in the mask (SCEV candidates are
//!   `Const`/`Move`/`IOp`/compares), so shadow-memory tracking is untouched.
//!
//! The mask itself is a dense per-instruction bitmap — one `bool` per
//! instruction of the program, indexed `[func][block][instr]` — so the hot
//! path pays one array load per executed instruction, no hashing.

use polyiiv::context::StmtId;
use polyir::{BlockRef, FuncId, InstrRef, Program};

/// Sentinel statement id stored in a register frame when the writing
/// instruction was pruned. Real statement ids are interned densely from 0,
/// so `u32::MAX` can never collide.
pub const PRUNED_STMT: StmtId = StmtId(u32::MAX);

/// Dense per-instruction prune bitmap. See the module docs for the contract
/// a mask must satisfy (every marked instruction must be dynamically
/// `is_scev` in every context) — the mask itself is just storage.
#[derive(Debug, Clone)]
pub struct PruneMask {
    /// `bits[func][block]` is one bool per instruction of that block.
    bits: Vec<Vec<Box<[bool]>>>,
    marked: usize,
}

impl PruneMask {
    /// Build a mask by evaluating `pred` on every instruction of `prog`.
    pub fn from_fn(prog: &Program, mut pred: impl FnMut(InstrRef) -> bool) -> PruneMask {
        let mut marked = 0usize;
        let bits = prog
            .funcs
            .iter()
            .enumerate()
            .map(|(f, func)| {
                func.blocks
                    .iter()
                    .enumerate()
                    .map(|(b, blk)| {
                        (0..blk.instrs.len())
                            .map(|i| {
                                let hit = pred(InstrRef {
                                    block: BlockRef::new(FuncId(f as u32), b as u32),
                                    idx: i as u32,
                                });
                                marked += hit as usize;
                                hit
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        PruneMask { bits, marked }
    }

    /// Is this instruction pruned? `i` must refer into the program the mask
    /// was built for.
    #[inline]
    pub fn contains(&self, i: InstrRef) -> bool {
        self.bits[i.block.func.0 as usize][i.block.block.0 as usize][i.idx as usize]
    }

    /// Number of instructions marked.
    pub fn marked(&self) -> usize {
        self.marked
    }

    /// True when no instruction is marked (pruning would be a no-op).
    pub fn is_empty(&self) -> bool {
        self.marked == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyir::build::ProgramBuilder;
    use polyir::{IBinOp, Operand};

    fn iref(f: u32, b: u32, i: u32) -> InstrRef {
        InstrRef {
            block: BlockRef::new(FuncId(f), b),
            idx: i,
        }
    }

    #[test]
    fn mask_marks_exactly_the_predicate() {
        let mut pb = ProgramBuilder::new("t");
        let mut fb = pb.func("main", 0);
        let a = fb.const_i(1);
        let b = fb.iop(IBinOp::Add, a, 2i64);
        fb.ret(Some(Operand::Reg(b)));
        let f = fb.finish();
        pb.set_entry(f);
        let prog = pb.finish();
        let mask = PruneMask::from_fn(&prog, |i| i.idx == 1);
        assert_eq!(mask.marked(), 1);
        assert!(!mask.contains(iref(0, 0, 0)));
        assert!(mask.contains(iref(0, 0, 1)));
        assert!(!mask.is_empty());
    }
}
