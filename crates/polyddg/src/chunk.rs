//! Fixed-size event chunks — the unit of transfer between the pipeline
//! stages of an intra-trace parallel profiling run.
//!
//! A [`EventChunk`] is a flat, reusable buffer of folding-interface events:
//! per-event records live in one `Vec`, all coordinate vectors in a shared
//! `i64` buffer addressed by spans. Chunks are recycled through bounded
//! channels, so a steady-state pipeline moves events between threads with
//! **zero allocation per event** — the only per-chunk work is a `memcpy`
//! into the flat buffers and one channel send per `chunk_events` events.
//!
//! Two event alphabets share the container:
//!
//! * the *resolved* alphabet ([`FoldSink`]: points, accesses, dependences)
//!   flowing from the shadow-resolution stage to the folding shards;
//! * the *pre-resolution* alphabet (points, register dependences, and
//!   [`EventRef::MemPre`] unresolved memory touches) flowing from the
//!   sequential event-generation stage to the shadow resolver.

use crate::{DepKind, FoldSink, PreSink};
use polyiiv::context::StmtId;
use polyresist::{FaultPlan, FaultSite};
use polytrace::{Collector, Counter, HistKind, Histogram, Journal, TID_PRE, TID_RESOLVE};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::Instant;

/// Span into an [`EventChunk`]'s shared coordinate buffer.
#[derive(Debug, Clone, Copy)]
struct Span {
    off: u32,
    len: u32,
}

/// One event record; coordinates live in the chunk's flat buffer.
#[derive(Debug, Clone, Copy)]
enum Rec {
    /// A dynamic instruction point.
    Point {
        stmt: StmtId,
        coords: Span,
        value: Option<i64>,
    },
    /// A resolved memory access.
    Access {
        stmt: StmtId,
        coords: Span,
        addr: u64,
        is_write: bool,
    },
    /// A resolved data dependence.
    Dep {
        kind: DepKind,
        src: StmtId,
        src_coords: Span,
        dst: StmtId,
        dst_coords: Span,
    },
    /// An *unresolved* memory touch: shadow resolution still pending.
    MemPre {
        stmt: StmtId,
        coords: Span,
        addr: u64,
        is_write: bool,
    },
}

/// Borrowed view of one chunk event.
#[derive(Debug, Clone, Copy)]
pub enum EventRef<'a> {
    /// A dynamic instruction point.
    Point {
        /// Statement.
        stmt: StmtId,
        /// IIV coordinates.
        coords: &'a [i64],
        /// Produced integer value, if any.
        value: Option<i64>,
    },
    /// A resolved memory access.
    Access {
        /// Statement.
        stmt: StmtId,
        /// IIV coordinates.
        coords: &'a [i64],
        /// Word address.
        addr: u64,
        /// True for stores.
        is_write: bool,
    },
    /// A resolved data dependence.
    Dep {
        /// Dependence kind.
        kind: DepKind,
        /// Producer statement.
        src: StmtId,
        /// Producer coordinates.
        src_coords: &'a [i64],
        /// Consumer statement.
        dst: StmtId,
        /// Consumer coordinates.
        dst_coords: &'a [i64],
    },
    /// An unresolved memory touch (pre-resolution alphabet only).
    MemPre {
        /// Statement.
        stmt: StmtId,
        /// IIV coordinates.
        coords: &'a [i64],
        /// Word address.
        addr: u64,
        /// True for stores.
        is_write: bool,
    },
}

/// A reusable flat buffer of events (see module docs).
#[derive(Debug, Default)]
pub struct EventChunk {
    recs: Vec<Rec>,
    coords: Vec<i64>,
}

impl EventChunk {
    /// Chunk with room for `events` records (the coordinate buffer sizes
    /// itself on first use and is retained across [`clear`](Self::clear)).
    pub fn with_capacity(events: usize) -> Self {
        EventChunk {
            recs: Vec::with_capacity(events),
            coords: Vec::new(),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Drop all events, retaining both buffers' capacity.
    pub fn clear(&mut self) {
        self.recs.clear();
        self.coords.clear();
    }

    #[inline]
    fn span(&mut self, c: &[i64]) -> Span {
        let off = self.coords.len() as u32;
        self.coords.extend_from_slice(c);
        Span {
            off,
            len: c.len() as u32,
        }
    }

    #[inline]
    fn slice(&self, s: Span) -> &[i64] {
        &self.coords[s.off as usize..(s.off + s.len) as usize]
    }

    /// Append an instruction point.
    #[inline]
    pub fn push_point(&mut self, stmt: StmtId, coords: &[i64], value: Option<i64>) {
        let coords = self.span(coords);
        self.recs.push(Rec::Point {
            stmt,
            coords,
            value,
        });
    }

    /// Append a resolved memory access.
    #[inline]
    pub fn push_access(&mut self, stmt: StmtId, coords: &[i64], addr: u64, is_write: bool) {
        let coords = self.span(coords);
        self.recs.push(Rec::Access {
            stmt,
            coords,
            addr,
            is_write,
        });
    }

    /// Append a resolved dependence.
    #[inline]
    pub fn push_dep(
        &mut self,
        kind: DepKind,
        src: StmtId,
        src_coords: &[i64],
        dst: StmtId,
        dst_coords: &[i64],
    ) {
        let src_coords = self.span(src_coords);
        let dst_coords = self.span(dst_coords);
        self.recs.push(Rec::Dep {
            kind,
            src,
            src_coords,
            dst,
            dst_coords,
        });
    }

    /// Append an unresolved memory touch.
    #[inline]
    pub fn push_mem_pre(&mut self, stmt: StmtId, coords: &[i64], addr: u64, is_write: bool) {
        let coords = self.span(coords);
        self.recs.push(Rec::MemPre {
            stmt,
            coords,
            addr,
            is_write,
        });
    }

    /// Iterate the buffered events in push order.
    pub fn events(&self) -> impl Iterator<Item = EventRef<'_>> {
        (0..self.recs.len()).map(move |i| self.event_at(i))
    }

    /// Borrow one buffered event by index — the batched folding path groups
    /// record indices by folding key and revisits them out of push order.
    #[inline]
    pub fn event_at(&self, i: usize) -> EventRef<'_> {
        match self.recs[i] {
            Rec::Point {
                stmt,
                coords,
                value,
            } => EventRef::Point {
                stmt,
                coords: self.slice(coords),
                value,
            },
            Rec::Access {
                stmt,
                coords,
                addr,
                is_write,
            } => EventRef::Access {
                stmt,
                coords: self.slice(coords),
                addr,
                is_write,
            },
            Rec::Dep {
                kind,
                src,
                src_coords,
                dst,
                dst_coords,
            } => EventRef::Dep {
                kind,
                src,
                src_coords: self.slice(src_coords),
                dst,
                dst_coords: self.slice(dst_coords),
            },
            Rec::MemPre {
                stmt,
                coords,
                addr,
                is_write,
            } => EventRef::MemPre {
                stmt,
                coords: self.slice(coords),
                addr,
                is_write,
            },
        }
    }

    /// Structural integrity check: every record's coordinate spans must lie
    /// inside the shared buffer. Well-formed by construction in production;
    /// receivers call this only when a fault plan is armed, to reject chunks
    /// corrupted by [`corrupt_for_fault_injection`](Self::corrupt_for_fault_injection).
    pub fn validate(&self) -> Result<(), String> {
        let limit = self.coords.len() as u64;
        let check = |s: Span| -> Result<(), String> {
            let end = s.off as u64 + s.len as u64;
            if end > limit {
                Err(format!(
                    "coordinate span {}..{} exceeds buffer of {} words",
                    s.off, end, limit
                ))
            } else {
                Ok(())
            }
        };
        for r in &self.recs {
            match *r {
                Rec::Point { coords, .. }
                | Rec::Access { coords, .. }
                | Rec::MemPre { coords, .. } => check(coords)?,
                Rec::Dep {
                    src_coords,
                    dst_coords,
                    ..
                } => {
                    check(src_coords)?;
                    check(dst_coords)?;
                }
            }
        }
        Ok(())
    }

    /// Deliberately break the chunk's span invariants (deterministic fault
    /// injection only — see `polyresist::FaultSite::MalformedChunk`). The
    /// damage is always detectable by [`validate`](Self::validate).
    pub fn corrupt_for_fault_injection(&mut self) {
        match self.recs.first_mut() {
            Some(Rec::Point { coords, .. })
            | Some(Rec::Access { coords, .. })
            | Some(Rec::MemPre { coords, .. })
            | Some(Rec::Dep {
                src_coords: coords, ..
            }) => coords.len = coords.len.wrapping_add(1 << 20),
            None => {
                // Empty chunk: fabricate a record pointing past the buffer.
                self.recs.push(Rec::Point {
                    stmt: StmtId(u32::MAX),
                    coords: Span {
                        off: u32::MAX / 2,
                        len: 1 << 20,
                    },
                    value: None,
                });
            }
        }
    }

    /// Replay a fully-resolved chunk into a [`FoldSink`], in order.
    ///
    /// Panics on a [`EventRef::MemPre`] record: unresolved events must never
    /// reach a folding shard — that is a stage-routing bug, not a data
    /// condition.
    pub fn replay_into<F: FoldSink>(&self, sink: &mut F) {
        for ev in self.events() {
            match ev {
                EventRef::Point {
                    stmt,
                    coords,
                    value,
                } => sink.instr_point(stmt, coords, value),
                EventRef::Access {
                    stmt,
                    coords,
                    addr,
                    is_write,
                } => sink.mem_access(stmt, coords, addr, is_write),
                EventRef::Dep {
                    kind,
                    src,
                    src_coords,
                    dst,
                    dst_coords,
                } => sink.dependence(kind, src, src_coords, dst, dst_coords),
                EventRef::MemPre { .. } => {
                    unreachable!("unresolved memory event reached a folding shard")
                }
            }
        }
    }
}

/// Per-writer telemetry tally: plain fields incremented on the hot path
/// (no atomics), harvested by [`ChunkWriter::finish`] and merged into the
/// run's `polytrace` collector by the owning stage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ChunkStats {
    /// Events pushed through this writer.
    pub events: u64,
    /// Chunks obtained from the recycling pool.
    pub chunks_recycled: u64,
    /// Chunks freshly allocated (pool momentarily dry).
    pub chunks_fresh: u64,
    /// Nanoseconds blocked in bounded-channel sends (only measured when the
    /// attached collector records at `Timing`; otherwise stays 0).
    pub send_stall_ns: u64,
    /// Chunks lost on this edge: injected drops plus sends that errored out
    /// because the consumer was gone (early-exited or panicked).
    pub dropped_chunks: u64,
    /// Chunks deliberately corrupted before send (fault injection).
    pub malformed_sent: u64,
    /// Sends artificially delayed by an armed fault plan.
    pub stalled_sends: u64,
}

impl ChunkStats {
    /// Accumulate another writer's tally (shard routers sum their writers).
    pub fn merge(&mut self, other: &ChunkStats) {
        self.events += other.events;
        self.chunks_recycled += other.chunks_recycled;
        self.chunks_fresh += other.chunks_fresh;
        self.send_stall_ns += other.send_stall_ns;
        self.dropped_chunks += other.dropped_chunks;
        self.malformed_sent += other.malformed_sent;
        self.stalled_sends += other.stalled_sends;
    }
}

/// Per-writer latency distributions, kept out of [`ChunkStats`] so the
/// plain tally stays `Copy`. Present only when the attached collector
/// records at `Timing` or above; the journal only at `Trace`.
#[derive(Debug, Default)]
struct WriterTelemetry {
    occupancy: Histogram,
    send_stall: Histogram,
    queue_depth: Histogram,
    journal: Option<Journal>,
}

/// A [`FoldSink`]/[`PreSink`] that batches events into [`EventChunk`]s and
/// ships full chunks over a bounded channel (backpressure: `send` blocks
/// when the consumer lags). Consumed chunks come back through the `recycled`
/// channel, so a warmed-up pipeline allocates nothing per chunk.
#[derive(Debug)]
pub struct ChunkWriter {
    cur: EventChunk,
    capacity: usize,
    tx: SyncSender<EventChunk>,
    recycled: Receiver<EventChunk>,
    stats: ChunkStats,
    /// Optional telemetry: queue-depth gauge + stall timing per flush.
    /// Chunk-granularity only — the per-event path never touches it.
    trace: Option<(Arc<Collector>, usize)>,
    /// Histograms + trace journal, allocated only at `Timing`+.
    telemetry: Option<Box<WriterTelemetry>>,
    /// Optional deterministic fault plan probed once per flushed chunk.
    faults: Option<Arc<FaultPlan>>,
}

impl ChunkWriter {
    /// Writer emitting `capacity`-event chunks into `tx`, reusing buffers
    /// returned through `recycled`.
    pub fn new(
        capacity: usize,
        tx: SyncSender<EventChunk>,
        recycled: Receiver<EventChunk>,
    ) -> Self {
        let capacity = capacity.max(1);
        ChunkWriter {
            cur: EventChunk::with_capacity(capacity),
            capacity,
            tx,
            recycled,
            stats: ChunkStats::default(),
            trace: None,
            telemetry: None,
            faults: None,
        }
    }

    /// Arm a deterministic fault plan: each flushed chunk probes the
    /// send-side fault sites (stall, drop, corrupt). Costs nothing when
    /// never called — the hot path only tests an `Option`.
    pub fn set_faults(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Attach a telemetry collector; `edge` names this writer's channel edge
    /// in the collector's queue gauges (0 = pre → resolver, `1 + k` =
    /// resolver → shard `k`).
    pub fn set_trace(&mut self, collector: Arc<Collector>, edge: usize) {
        if collector.timing() {
            // Edge 0 is the pre-profile → resolver channel; 1 + k the
            // resolver → shard-k channels — label the journal lane to match.
            let tid = if edge == 0 { TID_PRE } else { TID_RESOLVE };
            self.telemetry = Some(Box::new(WriterTelemetry {
                journal: collector.new_journal(tid),
                ..WriterTelemetry::default()
            }));
        }
        self.trace = Some((collector, edge));
    }

    /// Ship the current chunk (no-op when empty). A disconnected consumer
    /// never blocks or aborts this writer: the chunk is counted as dropped
    /// and the stage keeps draining — the supervisor decides afterwards
    /// whether the run degraded.
    pub fn flush(&mut self) {
        if self.cur.is_empty() {
            return;
        }
        let mut next = match self.recycled.try_recv() {
            Ok(chunk) => {
                self.stats.chunks_recycled += 1;
                chunk
            }
            Err(_) => {
                self.stats.chunks_fresh += 1;
                EventChunk::with_capacity(self.capacity)
            }
        };
        next.clear();
        let mut full = std::mem::replace(&mut self.cur, next);
        if let Some(plan) = &self.faults {
            if plan.should_fire(FaultSite::MalformedChunk) {
                full.corrupt_for_fault_injection();
                self.stats.malformed_sent += 1;
            }
            if plan.should_fire(FaultSite::StallSend) {
                std::thread::sleep(plan.stall_duration());
                self.stats.stalled_sends += 1;
            }
            if plan.should_fire(FaultSite::DropSend) {
                self.stats.dropped_chunks += 1;
                return;
            }
        }
        match &self.trace {
            Some((col, edge)) => {
                if col.timing() {
                    let occupancy = full.len() as u64;
                    let t0 = Instant::now();
                    if self.tx.send(full).is_err() {
                        self.stats.dropped_chunks += 1;
                    }
                    let stall = t0.elapsed().as_nanos() as u64;
                    self.stats.send_stall_ns += stall;
                    let depth = col.queue_send(*edge);
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.occupancy.record(occupancy);
                        t.send_stall.record(stall);
                        t.queue_depth.record(depth);
                        if let Some(j) = t.journal.as_mut() {
                            let seq = self.stats.chunks_recycled + self.stats.chunks_fresh;
                            j.instant("chunk-send", *edge as u64, seq);
                        }
                    }
                } else {
                    if self.tx.send(full).is_err() {
                        self.stats.dropped_chunks += 1;
                    }
                    col.queue_send(*edge);
                }
            }
            None => {
                if self.tx.send(full).is_err() {
                    self.stats.dropped_chunks += 1;
                }
            }
        }
    }

    #[inline]
    fn after_push(&mut self) {
        self.stats.events += 1;
        if self.cur.len() >= self.capacity {
            self.flush();
        }
    }

    /// The tally so far (finish() returns the final value).
    pub fn stats(&self) -> ChunkStats {
        self.stats
    }

    /// Flush the trailing partial chunk and close the channel (consumers see
    /// disconnect and finish), returning this writer's telemetry tally.
    /// Histograms and the trace journal (if any) merge straight into the
    /// attached collector here — they never ride through [`ChunkStats`].
    pub fn finish(mut self) -> ChunkStats {
        self.flush();
        if let (Some(t), Some((col, _))) = (self.telemetry.take(), &self.trace) {
            col.merge_hist(HistKind::ChunkOccupancy, &t.occupancy);
            col.merge_hist(HistKind::SendStallNs, &t.send_stall);
            col.merge_hist(HistKind::QueueDepth, &t.queue_depth);
            if let Some(j) = t.journal {
                col.submit_journal(j);
            }
        }
        self.stats
    }

    /// Merge a tally into a collector's named counters (the owning stage
    /// calls this once, after its writer finishes).
    pub fn harvest(stats: &ChunkStats, col: &Collector, events_counter: Counter) {
        col.add(events_counter, stats.events);
        col.add(Counter::ChunkRecycled, stats.chunks_recycled);
        col.add(Counter::ChunkFresh, stats.chunks_fresh);
        col.add(Counter::SendStallNs, stats.send_stall_ns);
        // One sending thread per harvest: the per-thread stall mean divides
        // the summed stall nanoseconds by this tally.
        col.add(Counter::SendStallThreads, 1);
        col.add(Counter::DroppedChunks, stats.dropped_chunks);
        col.add(Counter::MalformedChunks, stats.malformed_sent);
    }
}

impl FoldSink for ChunkWriter {
    #[inline]
    fn instr_point(&mut self, stmt: StmtId, coords: &[i64], value: Option<i64>) {
        self.cur.push_point(stmt, coords, value);
        self.after_push();
    }

    #[inline]
    fn mem_access(&mut self, stmt: StmtId, coords: &[i64], addr: u64, is_write: bool) {
        self.cur.push_access(stmt, coords, addr, is_write);
        self.after_push();
    }

    #[inline]
    fn dependence(
        &mut self,
        kind: DepKind,
        src: StmtId,
        src_coords: &[i64],
        dst: StmtId,
        dst_coords: &[i64],
    ) {
        self.cur.push_dep(kind, src, src_coords, dst, dst_coords);
        self.after_push();
    }
}

impl PreSink for ChunkWriter {
    #[inline]
    fn mem_pre(&mut self, stmt: StmtId, coords: &[i64], addr: u64, is_write: bool) {
        self.cur.push_mem_pre(stmt, coords, addr, is_write);
        self.after_push();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectSink;
    use std::sync::mpsc::sync_channel;

    #[test]
    fn chunk_roundtrip_preserves_events_in_order() {
        let mut c = EventChunk::with_capacity(8);
        c.push_point(StmtId(1), &[0, 1], Some(7));
        c.push_dep(DepKind::Flow, StmtId(1), &[0, 0], StmtId(2), &[0, 1]);
        c.push_access(StmtId(2), &[0, 1], 100, true);
        let mut sink = CollectSink::default();
        c.replay_into(&mut sink);
        assert_eq!(sink.points, vec![(StmtId(1), vec![0, 1], Some(7))]);
        assert_eq!(
            sink.deps,
            vec![(DepKind::Flow, StmtId(1), vec![0, 0], StmtId(2), vec![0, 1])]
        );
        assert_eq!(sink.accesses, vec![(StmtId(2), vec![0, 1], 100, true)]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut c = EventChunk::with_capacity(4);
        c.push_point(StmtId(0), &[1, 2, 3], None);
        let rec_cap = c.recs.capacity();
        let coord_cap = c.coords.capacity();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.recs.capacity(), rec_cap);
        assert_eq!(c.coords.capacity(), coord_cap);
    }

    #[test]
    fn mem_pre_surfaces_through_events() {
        let mut c = EventChunk::with_capacity(4);
        c.push_mem_pre(StmtId(3), &[2], 42, false);
        let evs: Vec<_> = c.events().collect();
        assert_eq!(evs.len(), 1);
        match evs[0] {
            EventRef::MemPre {
                stmt,
                coords,
                addr,
                is_write,
            } => {
                assert_eq!(stmt, StmtId(3));
                assert_eq!(coords, &[2]);
                assert_eq!(addr, 42);
                assert!(!is_write);
            }
            _ => panic!("expected MemPre"),
        }
    }

    #[test]
    fn writer_ships_full_chunks_and_recycles() {
        let (tx, rx) = sync_channel(8);
        let (pool_tx, pool_rx) = sync_channel(8);
        let mut w = ChunkWriter::new(2, tx, pool_rx);
        for i in 0..5 {
            w.instr_point(StmtId(i), &[i as i64], None);
        }
        // Two full chunks shipped; one partial pending.
        let c1 = rx.try_recv().expect("first chunk");
        assert_eq!(c1.len(), 2);
        pool_tx.send(c1).unwrap(); // recycle
        let c2 = rx.try_recv().expect("second chunk");
        assert_eq!(c2.len(), 2);
        w.finish();
        let c3 = rx.try_recv().expect("trailing partial chunk");
        assert_eq!(c3.len(), 1);
        assert!(rx.recv().is_err(), "writer closed the channel");
    }

    #[test]
    fn validate_accepts_well_formed_and_rejects_corrupted() {
        let mut c = EventChunk::with_capacity(4);
        c.push_point(StmtId(1), &[0, 1], None);
        c.push_dep(DepKind::Flow, StmtId(1), &[0], StmtId(2), &[1]);
        assert!(c.validate().is_ok());
        c.corrupt_for_fault_injection();
        assert!(c.validate().is_err());

        // An empty chunk gains a fabricated out-of-range record.
        let mut e = EventChunk::with_capacity(1);
        assert!(e.validate().is_ok());
        e.corrupt_for_fault_injection();
        assert!(e.validate().is_err());
    }

    #[test]
    fn writer_drop_fault_loses_exactly_the_probed_chunk() {
        let (tx, rx) = sync_channel(8);
        let (_pool_tx, pool_rx) = sync_channel(8);
        let mut w = ChunkWriter::new(2, tx, pool_rx);
        w.set_faults(Arc::new(FaultPlan::single(FaultSite::DropSend, 2)));
        for i in 0..6 {
            w.instr_point(StmtId(i), &[i as i64], None);
        }
        let stats = w.finish();
        assert_eq!(stats.dropped_chunks, 1);
        // Chunks 1 and 3 arrive; chunk 2 (the second flush) was dropped.
        let delivered: usize = rx.iter().map(|c| c.len()).sum();
        assert_eq!(delivered, 4);
    }

    #[test]
    fn writer_malformed_fault_is_detectable_downstream() {
        let (tx, rx) = sync_channel(8);
        let (_pool_tx, pool_rx) = sync_channel(8);
        let mut w = ChunkWriter::new(2, tx, pool_rx);
        w.set_faults(Arc::new(FaultPlan::single(FaultSite::MalformedChunk, 1)));
        for i in 0..4 {
            w.instr_point(StmtId(i), &[i as i64], None);
        }
        let stats = w.finish();
        assert_eq!(stats.malformed_sent, 1);
        let chunks: Vec<EventChunk> = rx.iter().collect();
        assert_eq!(chunks.len(), 2);
        assert!(chunks[0].validate().is_err(), "first chunk corrupted");
        assert!(chunks[1].validate().is_ok(), "second chunk untouched");
    }

    /// Shutdown-ordering regression (1-slot channel): a consumer that exits
    /// early MUST drop its receiver; the writer's pending and future sends
    /// then error out — counted as dropped chunks — instead of blocking
    /// forever against the full bounded channel.
    #[test]
    fn early_consumer_exit_unblocks_writer_sends() {
        let (tx, rx) = sync_channel::<EventChunk>(1);
        let (_pool_tx, pool_rx) = sync_channel(1);
        let writer = std::thread::spawn(move || {
            let mut w = ChunkWriter::new(1, tx, pool_rx);
            for i in 0..64 {
                w.instr_point(StmtId(i), &[i as i64], None);
            }
            w.finish()
        });
        // Consume a single chunk, then exit early *dropping the receiver*.
        let first = rx.recv().expect("one chunk");
        assert_eq!(first.len(), 1);
        drop(rx);
        let stats = writer.join().expect("writer must not deadlock");
        assert_eq!(stats.events, 64);
        assert!(stats.dropped_chunks > 0, "post-exit sends counted as drops");
    }
}
