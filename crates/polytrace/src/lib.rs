//! # polytrace — the profiler profiling itself
//!
//! Poly-Prof's whole premise is feedback from a single execution; this crate
//! gives the *pipeline itself* the same treatment. One [`Collector`] per
//! profiling run accumulates, into **fixed atomic slots** (no allocation on
//! any recording path):
//!
//! * **per-stage span timing** — wall time of each sequential stage of
//!   [`profile`](https://docs.rs/polyprof-core) (structure recording, the
//!   static affine pre-pass, pass 2, finalize, DDG lint, SCEV removal,
//!   scheduling, feedback, rendering, the static baseline), plus the
//!   *concurrent* stage threads of the sharded pipeline
//!   (event generation, shadow resolution, each fold shard, merge);
//! * **pipeline counters and gauges** — events emitted / resolved / folded
//!   (total and per shard), chunk-pool recycle vs fresh-allocation counts,
//!   bounded-channel send/recv stall time, shadow-page and context-cache MRU
//!   hit/miss, dependence-MRU hit/miss, retired (SCEV) and over-approximated
//!   statement counts, queue-depth high-water marks.
//!
//! The design keeps the hot paths honest:
//!
//! * Per-event accounting lives in the components themselves as plain `u64`
//!   fields (a register increment, no atomics, no branches) and is harvested
//!   into the collector **once per stage**, when the owning thread finishes.
//! * Atomic traffic happens only at chunk granularity (queue gauges, stall
//!   time) or stage granularity (span ends) — thousands of events apart.
//! * `Instant::now()` is taken only at [`MetricsLevel::Timing`]; at
//!   [`MetricsLevel::Counters`] spans are free, and at [`MetricsLevel::Off`]
//!   no collector exists at all, so the zero-allocation steady state of the
//!   profiling hot path is untouched (gated by `tests/zero_alloc.rs`).
//!
//! At the end of a run [`Collector::snapshot`] freezes everything into a
//! [`RunMetrics`] — plain data, rendered as a human-readable table
//! ([`std::fmt::Display`]) or machine-readable JSON ([`RunMetrics::to_json`]),
//! and surfaced on `polyprof_core::Report::metrics`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How much the profiler records about itself during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum MetricsLevel {
    /// No collector at all: the hot paths still maintain their (free) local
    /// counters, but nothing is harvested and `Report::metrics` is `None`.
    #[default]
    Off,
    /// Counters and gauges only — spans exist but never read the clock.
    Counters,
    /// Counters plus wall-clock span timing for every stage.
    Timing,
}

impl MetricsLevel {
    /// Parse the `POLYPROF_METRICS` environment variable
    /// (`off`/`counters`/`timing`, case-insensitive; unset or unknown =>
    /// `Off`). Suite drivers use this so a run can be made attributable
    /// without recompiling.
    pub fn from_env() -> Self {
        match std::env::var("POLYPROF_METRICS") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "counters" => MetricsLevel::Counters,
                "timing" => MetricsLevel::Timing,
                _ => MetricsLevel::Off,
            },
            Err(_) => MetricsLevel::Off,
        }
    }
}

/// Sequential stages of one profiling run. Exactly one of these is active at
/// any moment, so their span times sum to (approximately) the run's wall
/// time — the property the metrics-consistency suite asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Pass 1: dynamic CFG/CG recording + loop-forest analysis.
    Structure,
    /// The static affine pre-pass (`polystatic::dataflow`): dominators,
    /// induction variables, SCEV proofs and the instrumentation prune mask.
    StaticPass,
    /// Pass 2: the DDG profiling run itself (serial in-line, or the whole
    /// staged pipeline — whose internal concurrency is broken out in
    /// [`PipeStage`] / shard slots).
    Profile,
    /// Folding-sink finalization (serial path; the pipeline finalizes inside
    /// [`Stage::Profile`], attributed to [`PipeStage::Merge`]).
    Finalize,
    /// Post-fold DDG lint against the static summary.
    Lint,
    /// SCEV statement/dependence removal.
    ScevRemoval,
    /// Pluto-style schedule analysis.
    Schedule,
    /// PolyFeat metric computation.
    Feedback,
    /// Report rendering: flame graph, annotated AST, full text.
    Render,
    /// The static "Polly" baseline analysis.
    StaticBaseline,
    /// Supervision and recovery work: draining wedged channels after a stage
    /// panic, retry backoff, the serial-fallback re-run, and the deadline
    /// watchdog's partial finalize. Zero on a clean run.
    Recovery,
}

/// Number of [`Stage`] slots.
pub const N_STAGES: usize = 11;

impl Stage {
    /// All stages, in execution order.
    pub const ALL: [Stage; N_STAGES] = [
        Stage::Structure,
        Stage::StaticPass,
        Stage::Profile,
        Stage::Finalize,
        Stage::Lint,
        Stage::ScevRemoval,
        Stage::Schedule,
        Stage::Feedback,
        Stage::Render,
        Stage::StaticBaseline,
        Stage::Recovery,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Structure => "structure",
            Stage::StaticPass => "static-pass",
            Stage::Profile => "profile",
            Stage::Finalize => "finalize",
            Stage::Lint => "lint",
            Stage::ScevRemoval => "scev-removal",
            Stage::Schedule => "schedule",
            Stage::Feedback => "feedback",
            Stage::Render => "render",
            Stage::StaticBaseline => "static-baseline",
            Stage::Recovery => "recovery",
        }
    }

    fn slot(self) -> usize {
        match self {
            Stage::Structure => 0,
            Stage::StaticPass => 1,
            Stage::Profile => 2,
            Stage::Finalize => 3,
            Stage::Lint => 4,
            Stage::ScevRemoval => 5,
            Stage::Schedule => 6,
            Stage::Feedback => 7,
            Stage::Render => 8,
            Stage::StaticBaseline => 9,
            Stage::Recovery => 10,
        }
    }
}

/// Concurrent stage threads *inside* [`Stage::Profile`] when pass 2 runs as
/// the sharded pipeline. These overlap in time (and with the fold shards),
/// so they are reported as CPU time, not added to the sequential sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipeStage {
    /// The VM thread: loop events, IIV, interning, register deps.
    PreProfile,
    /// The shadow-resolution thread.
    ShadowResolve,
    /// Parallel shard finalization + deterministic merge.
    Merge,
}

/// Number of [`PipeStage`] slots.
pub const N_PIPE: usize = 3;

impl PipeStage {
    /// All pipeline stages.
    pub const ALL: [PipeStage; N_PIPE] = [
        PipeStage::PreProfile,
        PipeStage::ShadowResolve,
        PipeStage::Merge,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            PipeStage::PreProfile => "pre-profile",
            PipeStage::ShadowResolve => "shadow-resolve",
            PipeStage::Merge => "merge",
        }
    }

    fn slot(self) -> usize {
        match self {
            PipeStage::PreProfile => 0,
            PipeStage::ShadowResolve => 1,
            PipeStage::Merge => 2,
        }
    }
}

/// Named scalar counters. Every variant owns one fixed `AtomicU64` slot in
/// the [`Collector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Dynamic instructions executed (pass 2).
    DynOps,
    /// Dynamic memory events (loads + stores) seen by pass 2.
    MemEvents,
    /// Events emitted by the sequential stage-1 prefix (pre-resolution
    /// alphabet: points + register deps + unresolved memory touches).
    EventsEmitted,
    /// Unresolved memory touches turned into accesses/dependences by shadow
    /// resolution.
    EventsResolved,
    /// Resolved events routed into folding shards (fold-input alphabet).
    EventsRouted,
    /// Events consumed by folding sinks (must equal the per-shard sum).
    EventsFolded,
    /// Dependence events folded (subset of [`Counter::EventsFolded`]).
    DepsFolded,
    /// Context-path version-cache hits (`ContextInterner`).
    CtxCacheHit,
    /// Context-path version-cache misses.
    CtxCacheMiss,
    /// Shadow-memory MRU page-cache hits.
    ShadowMruHit,
    /// Shadow-memory MRU page-cache misses (page-table probe or page alloc).
    ShadowMruMiss,
    /// Resident shadow pages at the end of the run.
    ShadowPages,
    /// Whole event chunks folded through the batched per-shard path.
    ChunksFolded,
    /// Fold shards the adaptive executor settled on (0 = inline/serial).
    AdaptiveShards,
    /// Event chunks obtained from the recycling pool.
    ChunkRecycled,
    /// Event chunks freshly allocated (pool momentarily dry).
    ChunkFresh,
    /// Nanoseconds spent blocked in bounded-channel sends (backpressure),
    /// summed over every contributing thread.
    SendStallNs,
    /// Threads that contributed to `SendStallNs` (per-thread mean
    /// denominator; stall sums across threads can exceed wall time).
    SendStallThreads,
    /// Nanoseconds spent blocked waiting on channel receives, summed over
    /// every contributing thread.
    RecvStallNs,
    /// Threads that contributed to `RecvStallNs` (per-thread mean
    /// denominator).
    RecvStallThreads,
    /// High-water mark of in-flight chunks over all channel edges.
    QueuePeakDepth,
    /// Bytes held by spilled coordinate-snapshot arenas.
    ArenaBytes,
    /// Statements retired by SCEV removal.
    RetiredStmts,
    /// Dependences removed together with SCEV statements.
    RetiredDeps,
    /// Folded statements left over-approximated (inexact domain or
    /// non-affine label/access).
    OverapproxStmts,
    /// Static instructions proven SCEV by the affine pre-pass.
    StaticScevStmts,
    /// Folded statements whose instruction was in the prune mask.
    PrunedStmts,
    /// Dynamic executions whose register-dependence tracking was skipped
    /// because the instruction was statically proven SCEV.
    PrunedEvents,
    /// DDG lint checks evaluated.
    LintChecks,
    /// DDG lint violations found.
    LintViolations,
    /// Faults fired by an armed `polyresist::FaultPlan` (0 in production).
    FaultsInjected,
    /// Supervised pipeline attempts retried after a stage panic.
    StageRetries,
    /// Runs that abandoned the pipelined path for the serial fallback.
    SerialFallbacks,
    /// Event chunks dropped in flight (injected or send-error).
    DroppedChunks,
    /// Event chunks rejected by validation before replay.
    MalformedChunks,
    /// Memory accesses skipped because a shadow page failed to allocate.
    UnresolvedAccesses,
    /// Statements folded in budget over-approximation (coarse) mode.
    BudgetOverapprox,
    /// Watchdog deadline firings (0 or 1 per run).
    DeadlineHits,
    /// Trace-recording frames written to disk (`polyrec` writer).
    RecFramesWritten,
    /// Trace-recording bytes written to disk (`polyrec` writer).
    RecBytesWritten,
    /// Trace-recording frames decoded during replay (`polyrec` reader).
    RecFramesRead,
    /// Trace-recording payload bytes decoded during replay (`polyrec` reader).
    RecBytesRead,
}

/// Number of [`Counter`] slots.
pub const N_COUNTERS: usize = 42;

impl Counter {
    /// All counters, in report order.
    pub const ALL: [Counter; N_COUNTERS] = [
        Counter::DynOps,
        Counter::MemEvents,
        Counter::EventsEmitted,
        Counter::EventsResolved,
        Counter::EventsRouted,
        Counter::EventsFolded,
        Counter::DepsFolded,
        Counter::CtxCacheHit,
        Counter::CtxCacheMiss,
        Counter::ShadowMruHit,
        Counter::ShadowMruMiss,
        Counter::ShadowPages,
        Counter::ChunksFolded,
        Counter::AdaptiveShards,
        Counter::ChunkRecycled,
        Counter::ChunkFresh,
        Counter::SendStallNs,
        Counter::SendStallThreads,
        Counter::RecvStallNs,
        Counter::RecvStallThreads,
        Counter::QueuePeakDepth,
        Counter::ArenaBytes,
        Counter::RetiredStmts,
        Counter::RetiredDeps,
        Counter::OverapproxStmts,
        Counter::StaticScevStmts,
        Counter::PrunedStmts,
        Counter::PrunedEvents,
        Counter::LintChecks,
        Counter::LintViolations,
        Counter::FaultsInjected,
        Counter::StageRetries,
        Counter::SerialFallbacks,
        Counter::DroppedChunks,
        Counter::MalformedChunks,
        Counter::UnresolvedAccesses,
        Counter::BudgetOverapprox,
        Counter::DeadlineHits,
        Counter::RecFramesWritten,
        Counter::RecBytesWritten,
        Counter::RecFramesRead,
        Counter::RecBytesRead,
    ];

    /// Stable snake_case name (JSON keys, table rows).
    pub fn name(self) -> &'static str {
        match self {
            Counter::DynOps => "dyn_ops",
            Counter::MemEvents => "mem_events",
            Counter::EventsEmitted => "events_emitted",
            Counter::EventsResolved => "events_resolved",
            Counter::EventsRouted => "events_routed",
            Counter::EventsFolded => "events_folded",
            Counter::DepsFolded => "deps_folded",
            Counter::CtxCacheHit => "ctx_cache_hit",
            Counter::CtxCacheMiss => "ctx_cache_miss",
            Counter::ShadowMruHit => "shadow_mru_hit",
            Counter::ShadowMruMiss => "shadow_mru_miss",
            Counter::ShadowPages => "shadow_pages",
            Counter::ChunksFolded => "chunks_folded",
            Counter::AdaptiveShards => "adaptive_shards",
            Counter::ChunkRecycled => "chunks_recycled",
            Counter::ChunkFresh => "chunks_fresh",
            Counter::SendStallNs => "send_stall_ns",
            Counter::SendStallThreads => "send_stall_threads",
            Counter::RecvStallNs => "recv_stall_ns",
            Counter::RecvStallThreads => "recv_stall_threads",
            Counter::QueuePeakDepth => "queue_peak_depth",
            Counter::ArenaBytes => "arena_bytes",
            Counter::RetiredStmts => "retired_stmts",
            Counter::RetiredDeps => "retired_deps",
            Counter::OverapproxStmts => "overapprox_stmts",
            Counter::StaticScevStmts => "static_scev_stmts",
            Counter::PrunedStmts => "pruned_stmts",
            Counter::PrunedEvents => "pruned_events",
            Counter::LintChecks => "lint_checks",
            Counter::LintViolations => "lint_violations",
            Counter::FaultsInjected => "faults_injected",
            Counter::StageRetries => "stage_retries",
            Counter::SerialFallbacks => "serial_fallbacks",
            Counter::DroppedChunks => "dropped_chunks",
            Counter::MalformedChunks => "malformed_chunks",
            Counter::UnresolvedAccesses => "unresolved_accesses",
            Counter::BudgetOverapprox => "budget_overapprox_stmts",
            Counter::DeadlineHits => "deadline_hits",
            Counter::RecFramesWritten => "rec_frames_written",
            Counter::RecBytesWritten => "rec_bytes_written",
            Counter::RecFramesRead => "rec_frames_read",
            Counter::RecBytesRead => "rec_bytes_read",
        }
    }

    fn slot(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("listed")
    }
}

/// Fixed shard-accumulator count. Shard indices beyond this saturate into
/// the last slot (the pipeline defaults cap `fold_threads` at 8; 32 slots
/// keep even oversubscribed configurations attributable).
pub const MAX_SHARDS: usize = 32;

/// Channel-edge slots: edge 0 is the stage-1 → resolver edge; edge `1 + k`
/// is the resolver → shard-`k` edge.
pub const N_EDGES: usize = MAX_SHARDS + 1;

/// A node of the profiler's own stage tree — the label alphabet of the
/// self-flamegraph (rendered by `polyfeedback::report::self_flamegraph_svg`
/// through the same `SchedTree` machinery as the subject program's graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageNode {
    /// A sequential stage.
    Stage(Stage),
    /// A concurrent pipeline stage thread.
    Pipe(PipeStage),
    /// One folding shard.
    Shard(u8),
}

impl StageNode {
    /// Display label.
    pub fn name(&self) -> String {
        match self {
            StageNode::Stage(s) => s.name().to_string(),
            StageNode::Pipe(p) => p.name().to_string(),
            StageNode::Shard(k) => format!("fold-shard {k}"),
        }
    }
}

fn atomic_array<const N: usize>() -> [AtomicU64; N] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

/// The per-run accumulator: fixed slots, atomic, allocation-free to record
/// into. Shared by every stage thread of one profiling run (behind an `Arc`
/// or a scope borrow); one atomic add per harvest, `Relaxed` everywhere —
/// cross-slot consistency is established by the thread joins that precede
/// [`Collector::snapshot`].
#[derive(Debug)]
pub struct Collector {
    level: MetricsLevel,
    stage_ns: [AtomicU64; N_STAGES],
    pipe_ns: [AtomicU64; N_PIPE],
    shard_ns: [AtomicU64; MAX_SHARDS],
    shard_events: [AtomicU64; MAX_SHARDS],
    /// Highest shard slot touched + 1 (how many shards to report).
    shards_used: AtomicU64,
    /// Highest channel edge touched + 1 (how many edges to report).
    edges_used: AtomicU64,
    counters: [AtomicU64; N_COUNTERS],
    queue_depth: [AtomicU64; N_EDGES],
    queue_peak: [AtomicU64; N_EDGES],
}

impl Collector {
    /// Fresh collector recording at `level`.
    pub fn new(level: MetricsLevel) -> Self {
        Collector {
            level,
            stage_ns: atomic_array(),
            pipe_ns: atomic_array(),
            shard_ns: atomic_array(),
            shard_events: atomic_array(),
            shards_used: AtomicU64::new(0),
            edges_used: AtomicU64::new(0),
            counters: atomic_array(),
            queue_depth: atomic_array(),
            queue_peak: atomic_array(),
        }
    }

    /// The configured level.
    pub fn level(&self) -> MetricsLevel {
        self.level
    }

    /// True when span timing is on (clock reads allowed).
    #[inline]
    pub fn timing(&self) -> bool {
        self.level >= MetricsLevel::Timing
    }

    /// Add `n` to a named counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if n != 0 {
            self.counters[c.slot()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raise a named counter to at least `n` (gauge high-water mark).
    #[inline]
    pub fn raise(&self, c: Counter, n: u64) {
        self.counters[c.slot()].fetch_max(n, Ordering::Relaxed);
    }

    /// Current value of a named counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.slot()].load(Ordering::Relaxed)
    }

    /// RAII span over a sequential stage (no clock read below `Timing`).
    pub fn span(&self, s: Stage) -> Span<'_> {
        Span::new(self, SpanSlot::Stage(s.slot()))
    }

    /// RAII span over a concurrent pipeline stage.
    pub fn pipe_span(&self, p: PipeStage) -> Span<'_> {
        Span::new(self, SpanSlot::Pipe(p.slot()))
    }

    /// RAII span over fold shard `k`'s worker loop.
    pub fn shard_span(&self, k: usize) -> Span<'_> {
        Span::new(self, SpanSlot::Shard(k.min(MAX_SHARDS - 1)))
    }

    /// Record nanoseconds directly into a sequential-stage slot (for code
    /// paths where a guard is awkward).
    pub fn record_stage_ns(&self, s: Stage, ns: u64) {
        self.stage_ns[s.slot()].fetch_add(ns, Ordering::Relaxed);
    }

    /// Record events folded by shard `k`.
    pub fn record_shard_events(&self, k: usize, events: u64) {
        let k = k.min(MAX_SHARDS - 1);
        self.shard_events[k].fetch_add(events, Ordering::Relaxed);
        self.shards_used.fetch_max(k as u64 + 1, Ordering::Relaxed);
    }

    /// A chunk entered channel edge `edge` (send side).
    #[inline]
    pub fn queue_send(&self, edge: usize) {
        let edge = edge.min(N_EDGES - 1);
        let depth = self.queue_depth[edge].fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak[edge].fetch_max(depth, Ordering::Relaxed);
        self.edges_used
            .fetch_max(edge as u64 + 1, Ordering::Relaxed);
    }

    /// A chunk left channel edge `edge` (receive side).
    #[inline]
    pub fn queue_recv(&self, edge: usize) {
        let edge = edge.min(N_EDGES - 1);
        // Saturating: a recv observed before its send's add would underflow.
        let _ = self.queue_depth[edge].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
            Some(d.saturating_sub(1))
        });
    }

    /// Freeze the accumulators into a [`RunMetrics`]. Call after every stage
    /// thread has been joined; `total_ns` is the run's measured wall time.
    pub fn snapshot(&self, total_ns: u64) -> RunMetrics {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let shards = ld(&self.shards_used) as usize;
        let mut m = RunMetrics {
            level: self.level,
            total_ns,
            stage_ns: std::array::from_fn(|i| ld(&self.stage_ns[i])),
            pipe_ns: std::array::from_fn(|i| ld(&self.pipe_ns[i])),
            shard_ns: self.shard_ns[..shards].iter().map(ld).collect(),
            shard_events: self.shard_events[..shards].iter().map(ld).collect(),
            queue_peak: self.queue_peak[..ld(&self.edges_used) as usize]
                .iter()
                .map(ld)
                .collect(),
            counters: std::array::from_fn(|i| ld(&self.counters[i])),
        };
        let peak = m.queue_peak.iter().copied().max().unwrap_or(0);
        m.counters[Counter::QueuePeakDepth.slot()] =
            m.counters[Counter::QueuePeakDepth.slot()].max(peak);
        m
    }
}

enum SpanSlot {
    Stage(usize),
    Pipe(usize),
    Shard(usize),
}

/// RAII timing guard: adds its elapsed wall time to a collector slot on
/// drop. Below [`MetricsLevel::Timing`] it never reads the clock and drop is
/// a no-op.
pub struct Span<'a> {
    col: &'a Collector,
    slot: SpanSlot,
    t0: Option<Instant>,
}

impl<'a> Span<'a> {
    fn new(col: &'a Collector, slot: SpanSlot) -> Self {
        let t0 = col.timing().then(Instant::now);
        Span { col, slot, t0 }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            let slot = match self.slot {
                SpanSlot::Stage(i) => &self.col.stage_ns[i],
                SpanSlot::Pipe(i) => &self.col.pipe_ns[i],
                SpanSlot::Shard(i) => &self.col.shard_ns[i],
            };
            slot.fetch_add(ns, Ordering::Relaxed);
        }
    }
}

/// Frozen metrics of one profiling run: plain data, cheap to clone, stable
/// to serialize. Produced by [`Collector::snapshot`], surfaced on
/// `polyprof_core::Report::metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// The level the run recorded at.
    pub level: MetricsLevel,
    /// Measured wall time of the whole run, nanoseconds.
    pub total_ns: u64,
    /// Sequential stage times (ns), indexed by [`Stage`] slot order.
    pub stage_ns: [u64; N_STAGES],
    /// Concurrent pipeline stage CPU times (ns), indexed by [`PipeStage`].
    pub pipe_ns: [u64; N_PIPE],
    /// Per-shard worker-loop CPU time (ns); empty on a serial run.
    pub shard_ns: Vec<u64>,
    /// Per-shard folded event counts; empty on a serial run.
    pub shard_events: Vec<u64>,
    /// Per-edge in-flight chunk high-water marks (edge 0 = pre → resolver).
    pub queue_peak: Vec<u64>,
    /// Named counters, indexed by [`Counter`] slot order.
    pub counters: [u64; N_COUNTERS],
}

impl RunMetrics {
    /// A sequential stage's recorded wall time, nanoseconds.
    pub fn stage(&self, s: Stage) -> u64 {
        self.stage_ns[s.slot()]
    }

    /// A concurrent pipeline stage's recorded CPU time, nanoseconds.
    pub fn pipe(&self, p: PipeStage) -> u64 {
        self.pipe_ns[p.slot()]
    }

    /// A named counter's value.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.slot()]
    }

    /// Sum of the sequential stage spans — within a small epsilon of
    /// [`RunMetrics::total_ns`] at `Timing` (the stages partition the run).
    pub fn sequential_ns(&self) -> u64 {
        self.stage_ns.iter().sum()
    }

    /// True when the run went through the sharded pipeline (per-shard
    /// accumulators populated).
    pub fn has_pipeline(&self) -> bool {
        !self.shard_events.is_empty()
    }

    /// Shard balance: max over mean of per-shard folded events (1.0 =
    /// perfectly balanced; meaningless — 0.0 — on a serial run).
    pub fn shard_balance(&self) -> f64 {
        if self.shard_events.is_empty() {
            return 0.0;
        }
        let max = *self.shard_events.iter().max().unwrap() as f64;
        let mean = self.shard_events.iter().sum::<u64>() as f64 / self.shard_events.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }

    /// Hit rate of a hit/miss counter pair (`None` when no lookups).
    pub fn hit_rate(&self, hit: Counter, miss: Counter) -> Option<f64> {
        let (h, m) = (self.counter(hit), self.counter(miss));
        let total = h + m;
        (total > 0).then(|| h as f64 / total as f64)
    }

    /// Per-thread mean of `SendStallNs` (the summed counter divided by the
    /// number of contributing threads; 0 when no thread contributed).
    pub fn send_stall_mean_ns(&self) -> u64 {
        self.counter(Counter::SendStallNs)
            .checked_div(self.counter(Counter::SendStallThreads))
            .unwrap_or(0)
    }

    /// Per-thread mean of `RecvStallNs`.
    pub fn recv_stall_mean_ns(&self) -> u64 {
        self.counter(Counter::RecvStallNs)
            .checked_div(self.counter(Counter::RecvStallThreads))
            .unwrap_or(0)
    }

    /// Machine-readable JSON rendering (hand-rolled; no external deps —
    /// stable snake_case keys, suitable for CI artifacts).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        let level = match self.level {
            MetricsLevel::Off => "off",
            MetricsLevel::Counters => "counters",
            MetricsLevel::Timing => "timing",
        };
        push_kv(&mut s, "level", &format!("\"{level}\""));
        push_kv(&mut s, "total_ns", &self.total_ns.to_string());
        s.push_str("\"stages_ns\": {");
        for (i, st) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", st.name(), self.stage(*st)));
        }
        s.push_str("}, ");
        s.push_str("\"pipeline_ns\": {");
        for (i, p) in PipeStage::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", p.name(), self.pipe(*p)));
        }
        s.push_str("}, ");
        push_kv(&mut s, "shard_ns", &json_array(&self.shard_ns));
        push_kv(&mut s, "shard_events", &json_array(&self.shard_events));
        push_kv(&mut s, "queue_peak", &json_array(&self.queue_peak));
        push_kv(
            &mut s,
            "shard_balance",
            &format!("{:.4}", self.shard_balance()),
        );
        // Per-thread stall means: the stall counters are sums over every
        // contributing thread, so only the means compare against total_ns.
        push_kv(
            &mut s,
            "send_stall_mean_ns",
            &self.send_stall_mean_ns().to_string(),
        );
        push_kv(
            &mut s,
            "recv_stall_mean_ns",
            &self.recv_stall_mean_ns().to_string(),
        );
        s.push_str("\"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", c.name(), self.counter(*c)));
        }
        s.push_str("}}");
        s
    }
}

fn push_kv(s: &mut String, k: &str, raw: &str) {
    s.push_str(&format!("\"{k}\": {raw}, "));
}

fn json_array(v: &[u64]) -> String {
    let body: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", body.join(", "))
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl fmt::Display for RunMetrics {
    /// The human-readable table: stage times with % of wall, pipeline
    /// breakdown when present, then the counter inventory with hit rates.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "── run metrics ({:?}) ──", self.level)?;
        writeln!(f, "total wall time          {:>10.3} ms", ms(self.total_ns))?;
        if self.level >= MetricsLevel::Timing {
            let total = self.total_ns.max(1) as f64;
            for s in Stage::ALL {
                let ns = self.stage(s);
                if ns == 0 {
                    continue;
                }
                writeln!(
                    f,
                    "  {:<22} {:>10.3} ms  {:>5.1}%",
                    s.name(),
                    ms(ns),
                    100.0 * ns as f64 / total
                )?;
            }
            writeln!(
                f,
                "  {:<22} {:>10.3} ms  {:>5.1}%",
                "(stage sum)",
                ms(self.sequential_ns()),
                100.0 * self.sequential_ns() as f64 / total
            )?;
        }
        if self.has_pipeline() {
            writeln!(f, "pipeline (concurrent CPU time):")?;
            if self.level >= MetricsLevel::Timing {
                for p in PipeStage::ALL {
                    writeln!(f, "  {:<22} {:>10.3} ms", p.name(), ms(self.pipe(p)))?;
                }
            }
            for (k, ev) in self.shard_events.iter().enumerate() {
                if self.level >= MetricsLevel::Timing {
                    writeln!(
                        f,
                        "  fold-shard {:<11} {:>10.3} ms  {:>12} events",
                        k,
                        ms(self.shard_ns.get(k).copied().unwrap_or(0)),
                        ev
                    )?;
                } else {
                    writeln!(f, "  fold-shard {:<11} {:>12} events", k, ev)?;
                }
            }
            writeln!(f, "  shard balance (max/mean) {:.3}", self.shard_balance())?;
            // Stalls are summed over every contributing thread, so the sum
            // can legitimately exceed wall time — the per-thread mean is
            // the number comparable to `total_ns` and shard balance.
            writeln!(
                f,
                "  send stall {:.3} ms total / {:.3} ms per thread, recv stall {:.3} ms total / {:.3} ms per thread, peak queue depth {}",
                ms(self.counter(Counter::SendStallNs)),
                ms(self.send_stall_mean_ns()),
                ms(self.counter(Counter::RecvStallNs)),
                ms(self.recv_stall_mean_ns()),
                self.counter(Counter::QueuePeakDepth)
            )?;
        }
        writeln!(f, "counters:")?;
        for c in Counter::ALL {
            // Stall/peak counters already shown in the pipeline section.
            if matches!(
                c,
                Counter::SendStallNs
                    | Counter::SendStallThreads
                    | Counter::RecvStallNs
                    | Counter::RecvStallThreads
                    | Counter::QueuePeakDepth
            ) && self.has_pipeline()
            {
                continue;
            }
            let v = self.counter(c);
            if v == 0 {
                continue;
            }
            write!(f, "  {:<22} {:>14}", c.name(), v)?;
            let rate = match c {
                Counter::CtxCacheHit => self.hit_rate(Counter::CtxCacheHit, Counter::CtxCacheMiss),
                Counter::ShadowMruHit => {
                    self.hit_rate(Counter::ShadowMruHit, Counter::ShadowMruMiss)
                }
                _ => None,
            };
            match rate {
                Some(r) => writeln!(f, "  ({:.1}% hit rate)", 100.0 * r)?,
                None => writeln!(f)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_slots_are_dense_and_unique() {
        let mut seen = [false; N_COUNTERS];
        for c in Counter::ALL {
            assert!(!seen[c.slot()], "duplicate slot for {c:?}");
            seen[c.slot()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.slot(), i, "Stage::ALL must be in slot order");
        }
    }

    #[test]
    fn spans_record_only_at_timing_level() {
        let c = Collector::new(MetricsLevel::Counters);
        {
            let _s = c.span(Stage::Profile);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(c.snapshot(0).stage(Stage::Profile), 0);

        let c = Collector::new(MetricsLevel::Timing);
        {
            let _s = c.span(Stage::Profile);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(c.snapshot(0).stage(Stage::Profile) > 0);
    }

    #[test]
    fn queue_gauges_track_peak_depth() {
        let c = Collector::new(MetricsLevel::Counters);
        c.queue_send(0);
        c.queue_send(0);
        c.queue_recv(0);
        c.queue_send(0);
        let m = c.snapshot(0);
        assert_eq!(m.counter(Counter::QueuePeakDepth), 2);
        // Underflow-safe: spurious recv does not wrap.
        c.queue_recv(1);
        c.queue_recv(1);
        c.queue_send(1);
        assert_eq!(c.snapshot(0).queue_peak[1], 1);
    }

    #[test]
    fn shard_accounting_and_balance() {
        let c = Collector::new(MetricsLevel::Counters);
        c.record_shard_events(0, 100);
        c.record_shard_events(2, 300);
        let m = c.snapshot(0);
        assert_eq!(m.shard_events, vec![100, 0, 300]);
        // max 300, mean 133.3 → balance 2.25
        assert!((m.shard_balance() - 2.25).abs() < 1e-9);
        assert!(m.has_pipeline());
    }

    #[test]
    fn shard_slots_saturate_not_panic() {
        let c = Collector::new(MetricsLevel::Counters);
        c.record_shard_events(MAX_SHARDS + 5, 7);
        let _s = c.shard_span(MAX_SHARDS + 5);
        let m = c.snapshot(0);
        assert_eq!(m.shard_events.len(), MAX_SHARDS);
        assert_eq!(m.shard_events[MAX_SHARDS - 1], 7);
    }

    #[test]
    fn json_and_table_render() {
        let c = Collector::new(MetricsLevel::Timing);
        c.add(Counter::DynOps, 1000);
        c.add(Counter::CtxCacheHit, 90);
        c.add(Counter::CtxCacheMiss, 10);
        c.record_shard_events(0, 500);
        c.record_stage_ns(Stage::Profile, 5_000_000);
        let m = c.snapshot(10_000_000);
        let j = m.to_json();
        assert!(j.contains("\"dyn_ops\": 1000"), "{j}");
        assert!(j.contains("\"profile\": 5000000"), "{j}");
        assert!(j.contains("\"shard_events\": [500]"), "{j}");
        assert!(j.contains("\"level\": \"timing\""), "{j}");
        let t = format!("{m}");
        assert!(t.contains("ctx_cache_hit"), "{t}");
        assert!(t.contains("90.0% hit rate"), "{t}");
        assert!(t.contains("total wall time"), "{t}");
    }

    #[test]
    fn hit_rate_and_sequential_sum() {
        let c = Collector::new(MetricsLevel::Timing);
        c.record_stage_ns(Stage::Structure, 100);
        c.record_stage_ns(Stage::Profile, 900);
        let m = c.snapshot(1000);
        assert_eq!(m.sequential_ns(), 1000);
        assert_eq!(
            m.hit_rate(Counter::ShadowMruHit, Counter::ShadowMruMiss),
            None
        );
    }

    /// Stall sums divide by the contributing-thread counters; zero threads
    /// never divides by zero.
    #[test]
    fn stall_means_are_per_thread() {
        let c = Collector::new(MetricsLevel::Timing);
        c.add(Counter::RecvStallNs, 3000);
        c.add(Counter::RecvStallThreads, 3);
        let m = c.snapshot(100);
        assert_eq!(m.recv_stall_mean_ns(), 1000);
        assert_eq!(m.send_stall_mean_ns(), 0);
    }

    #[test]
    fn level_from_env_parses() {
        // Sequential: env is process-global.
        std::env::set_var("POLYPROF_METRICS", "timing");
        assert_eq!(MetricsLevel::from_env(), MetricsLevel::Timing);
        std::env::set_var("POLYPROF_METRICS", "Counters");
        assert_eq!(MetricsLevel::from_env(), MetricsLevel::Counters);
        std::env::set_var("POLYPROF_METRICS", "nonsense");
        assert_eq!(MetricsLevel::from_env(), MetricsLevel::Off);
        std::env::remove_var("POLYPROF_METRICS");
        assert_eq!(MetricsLevel::from_env(), MetricsLevel::Off);
    }
}
