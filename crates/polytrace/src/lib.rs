//! # polytrace — the profiler profiling itself
//!
//! Poly-Prof's whole premise is feedback from a single execution; this crate
//! gives the *pipeline itself* the same treatment. One [`Collector`] per
//! profiling run accumulates, into **fixed atomic slots** (no allocation on
//! any recording path):
//!
//! * **per-stage span timing** — wall time of each sequential stage of
//!   [`profile`](https://docs.rs/polyprof-core) (structure recording, the
//!   static affine pre-pass, pass 2, finalize, DDG lint, SCEV removal,
//!   scheduling, feedback, rendering, the static baseline), plus the
//!   *concurrent* stage threads of the sharded pipeline
//!   (event generation, shadow resolution, each fold shard, merge);
//! * **pipeline counters and gauges** — events emitted / resolved / folded
//!   (total and per shard), chunk-pool recycle vs fresh-allocation counts,
//!   bounded-channel send/recv stall time, shadow-page and context-cache MRU
//!   hit/miss, dependence-MRU hit/miss, retired (SCEV) and over-approximated
//!   statement counts, queue-depth high-water marks.
//!
//! The design keeps the hot paths honest:
//!
//! * Per-event accounting lives in the components themselves as plain `u64`
//!   fields (a register increment, no atomics, no branches) and is harvested
//!   into the collector **once per stage**, when the owning thread finishes.
//! * Atomic traffic happens only at chunk granularity (queue gauges, stall
//!   time) or stage granularity (span ends) — thousands of events apart.
//! * `Instant::now()` is taken only at [`MetricsLevel::Timing`]; at
//!   [`MetricsLevel::Counters`] spans are free, and at [`MetricsLevel::Off`]
//!   no collector exists at all, so the zero-allocation steady state of the
//!   profiling hot path is untouched (gated by `tests/zero_alloc.rs`).
//!
//! At the end of a run [`Collector::snapshot`] freezes everything into a
//! [`RunMetrics`] — plain data, rendered as a human-readable table
//! ([`std::fmt::Display`]) or machine-readable JSON ([`RunMetrics::to_json`]),
//! and surfaced on `polyprof_core::Report::metrics`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How much the profiler records about itself during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum MetricsLevel {
    /// No collector at all: the hot paths still maintain their (free) local
    /// counters, but nothing is harvested and `Report::metrics` is `None`.
    #[default]
    Off,
    /// Counters and gauges only — spans exist but never read the clock.
    Counters,
    /// Counters plus wall-clock span timing for every stage, plus latency
    /// [`Histogram`]s for per-chunk fold time, channel stalls, chunk
    /// occupancy and queue depth.
    Timing,
    /// Everything above plus a timestamped event timeline: per-thread
    /// bounded [`Journal`]s record begin/end/instant events at chunk
    /// granularity, drained once at finish and exportable as Chrome
    /// trace-event JSON ([`RunMetrics::timeline_json`]).
    Trace,
}

impl MetricsLevel {
    /// Parse the `POLYPROF_METRICS` environment variable
    /// (`off`/`counters`/`timing`/`trace`, case-insensitive; unset or
    /// unknown => `Off`). Suite drivers use this so a run can be made
    /// attributable without recompiling.
    pub fn from_env() -> Self {
        match std::env::var("POLYPROF_METRICS") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "counters" => MetricsLevel::Counters,
                "timing" => MetricsLevel::Timing,
                "trace" => MetricsLevel::Trace,
                _ => MetricsLevel::Off,
            },
            Err(_) => MetricsLevel::Off,
        }
    }

    /// Stable lowercase name (JSON `level` field).
    pub fn name(self) -> &'static str {
        match self {
            MetricsLevel::Off => "off",
            MetricsLevel::Counters => "counters",
            MetricsLevel::Timing => "timing",
            MetricsLevel::Trace => "trace",
        }
    }
}

/// Escape a string for embedding inside a JSON string literal: quotes,
/// backslashes and all control characters (the latter as `\u00XX`). Shared
/// by every hand-rolled JSON emitter in the workspace so workload names,
/// degradation details etc. cannot break an artifact.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Latency histograms
// ---------------------------------------------------------------------------

/// Sub-bucket resolution of [`Histogram`]: each power-of-two octave is split
/// into `2^HIST_SUB_BITS` linear sub-buckets (≤ 12.5% relative error).
pub const HIST_SUB_BITS: u32 = 3;
const HIST_SUB: usize = 1 << HIST_SUB_BITS;

/// Number of buckets in a [`Histogram`]: values `0..8` get exact buckets,
/// then 8 sub-buckets per octave up to `u64::MAX`.
pub const N_HIST_BUCKETS: usize = (64 - HIST_SUB_BITS as usize) * HIST_SUB + HIST_SUB;

/// HDR-style log-bucketed histogram of `u64` samples (nanoseconds, counts).
///
/// Fixed ~4 KB of plain `u64`s: recording is a handful of ALU ops plus one
/// indexed increment — no allocation, no atomics — so components keep a
/// *local* histogram on their own thread and merge it into the
/// [`Collector`] once at stage end, the same harvest discipline as the
/// scalar counters. [`Histogram::merge`] is associative and commutative
/// (bucket-wise addition), so per-shard histograms merge into exactly the
/// histogram a single observer of the interleaved stream would have built —
/// the distribution analogue of `FoldedDdg::merge_parts`.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; N_HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; N_HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.counts[..] == other.counts[..]
    }
}

/// Bucket index of a sample value.
#[inline]
fn hist_bucket(v: u64) -> usize {
    if v < HIST_SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= HIST_SUB_BITS
        let base = (msb - HIST_SUB_BITS + 1) as usize * HIST_SUB;
        base + ((v >> (msb - HIST_SUB_BITS)) as usize & (HIST_SUB - 1))
    }
}

/// Inclusive upper bound of bucket `idx` (what percentiles report).
fn hist_bucket_upper(idx: usize) -> u64 {
    if idx < HIST_SUB {
        idx as u64
    } else {
        let msb = (idx / HIST_SUB) as u32 + HIST_SUB_BITS - 1;
        let offset = (idx % HIST_SUB) as u64;
        let width = 1u64 << (msb - HIST_SUB_BITS);
        let start = (1u64 << msb) + offset * width;
        start + (width - 1)
    }
}

impl Histogram {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[hist_bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self` (associative, commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`): upper bound of the bucket holding
    /// the target rank, clamped into `[min, max]` so a percentile can never
    /// fall outside the recorded range. 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return hist_bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// JSON summary object: count, sum, mean, min, p50/p90/p99, max.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"count\": {}, \"sum\": {}, \"mean\": {}, \"min\": {}, ",
                "\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}"
            ),
            self.count,
            self.sum,
            self.mean(),
            self.min(),
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
            self.max
        )
    }
}

/// The fixed set of latency/occupancy distributions a run records. Every
/// variant owns one histogram slot in the [`Collector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistKind {
    /// Wall time of one `fold_chunk` call in a fold worker (ns).
    FoldChunkNs,
    /// Per-chunk blocked time in a bounded-channel send (ns).
    SendStallNs,
    /// Per-recv blocked time waiting on a channel (ns).
    RecvStallNs,
    /// Events carried by one sent chunk (occupancy; capacity = chunk_events).
    ChunkOccupancy,
    /// In-flight chunk count observed at each send, over all edges.
    QueueDepth,
    /// Sampled VM dispatch time of one dynamic instruction (ns).
    VmDispatchNs,
}

/// Number of [`HistKind`] slots.
pub const N_HISTS: usize = 6;

impl HistKind {
    /// All kinds, in report order.
    pub const ALL: [HistKind; N_HISTS] = [
        HistKind::FoldChunkNs,
        HistKind::SendStallNs,
        HistKind::RecvStallNs,
        HistKind::ChunkOccupancy,
        HistKind::QueueDepth,
        HistKind::VmDispatchNs,
    ];

    /// Stable snake_case name (JSON keys, table rows).
    pub fn name(self) -> &'static str {
        match self {
            HistKind::FoldChunkNs => "fold_chunk_ns",
            HistKind::SendStallNs => "send_stall_ns",
            HistKind::RecvStallNs => "recv_stall_ns",
            HistKind::ChunkOccupancy => "chunk_occupancy",
            HistKind::QueueDepth => "queue_depth",
            HistKind::VmDispatchNs => "vm_dispatch_ns",
        }
    }

    fn slot(self) -> usize {
        self as usize
    }
}

/// Sequential stages of one profiling run. Exactly one of these is active at
/// any moment, so their span times sum to (approximately) the run's wall
/// time — the property the metrics-consistency suite asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Pass 1: dynamic CFG/CG recording + loop-forest analysis.
    Structure,
    /// The static affine pre-pass (`polystatic::dataflow`): dominators,
    /// induction variables, SCEV proofs and the instrumentation prune mask.
    StaticPass,
    /// Pass 2: the DDG profiling run itself (serial in-line, or the whole
    /// staged pipeline — whose internal concurrency is broken out in
    /// [`PipeStage`] / shard slots).
    Profile,
    /// Folding-sink finalization (serial path; the pipeline finalizes inside
    /// [`Stage::Profile`], attributed to [`PipeStage::Merge`]).
    Finalize,
    /// Post-fold DDG lint against the static summary.
    Lint,
    /// SCEV statement/dependence removal.
    ScevRemoval,
    /// Pluto-style schedule analysis.
    Schedule,
    /// PolyFeat metric computation.
    Feedback,
    /// Report rendering: flame graph, annotated AST, full text.
    Render,
    /// The static "Polly" baseline analysis.
    StaticBaseline,
    /// Supervision and recovery work: draining wedged channels after a stage
    /// panic, retry backoff, the serial-fallback re-run, and the deadline
    /// watchdog's partial finalize. Zero on a clean run.
    Recovery,
}

/// Number of [`Stage`] slots.
pub const N_STAGES: usize = 11;

impl Stage {
    /// All stages, in execution order.
    pub const ALL: [Stage; N_STAGES] = [
        Stage::Structure,
        Stage::StaticPass,
        Stage::Profile,
        Stage::Finalize,
        Stage::Lint,
        Stage::ScevRemoval,
        Stage::Schedule,
        Stage::Feedback,
        Stage::Render,
        Stage::StaticBaseline,
        Stage::Recovery,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Structure => "structure",
            Stage::StaticPass => "static-pass",
            Stage::Profile => "profile",
            Stage::Finalize => "finalize",
            Stage::Lint => "lint",
            Stage::ScevRemoval => "scev-removal",
            Stage::Schedule => "schedule",
            Stage::Feedback => "feedback",
            Stage::Render => "render",
            Stage::StaticBaseline => "static-baseline",
            Stage::Recovery => "recovery",
        }
    }

    fn slot(self) -> usize {
        match self {
            Stage::Structure => 0,
            Stage::StaticPass => 1,
            Stage::Profile => 2,
            Stage::Finalize => 3,
            Stage::Lint => 4,
            Stage::ScevRemoval => 5,
            Stage::Schedule => 6,
            Stage::Feedback => 7,
            Stage::Render => 8,
            Stage::StaticBaseline => 9,
            Stage::Recovery => 10,
        }
    }
}

/// Concurrent stage threads *inside* [`Stage::Profile`] when pass 2 runs as
/// the sharded pipeline. These overlap in time (and with the fold shards),
/// so they are reported as CPU time, not added to the sequential sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipeStage {
    /// The VM thread: loop events, IIV, interning, register deps.
    PreProfile,
    /// The shadow-resolution thread.
    ShadowResolve,
    /// Parallel shard finalization + deterministic merge.
    Merge,
}

/// Number of [`PipeStage`] slots.
pub const N_PIPE: usize = 3;

impl PipeStage {
    /// All pipeline stages.
    pub const ALL: [PipeStage; N_PIPE] = [
        PipeStage::PreProfile,
        PipeStage::ShadowResolve,
        PipeStage::Merge,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            PipeStage::PreProfile => "pre-profile",
            PipeStage::ShadowResolve => "shadow-resolve",
            PipeStage::Merge => "merge",
        }
    }

    fn slot(self) -> usize {
        match self {
            PipeStage::PreProfile => 0,
            PipeStage::ShadowResolve => 1,
            PipeStage::Merge => 2,
        }
    }
}

/// Named scalar counters. Every variant owns one fixed `AtomicU64` slot in
/// the [`Collector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Dynamic instructions executed (pass 2).
    DynOps,
    /// Dynamic memory events (loads + stores) seen by pass 2.
    MemEvents,
    /// Events emitted by the sequential stage-1 prefix (pre-resolution
    /// alphabet: points + register deps + unresolved memory touches).
    EventsEmitted,
    /// Unresolved memory touches turned into accesses/dependences by shadow
    /// resolution.
    EventsResolved,
    /// Resolved events routed into folding shards (fold-input alphabet).
    EventsRouted,
    /// Events consumed by folding sinks (must equal the per-shard sum).
    EventsFolded,
    /// Dependence events folded (subset of [`Counter::EventsFolded`]).
    DepsFolded,
    /// Context-path version-cache hits (`ContextInterner`).
    CtxCacheHit,
    /// Context-path version-cache misses.
    CtxCacheMiss,
    /// Shadow-memory MRU page-cache hits.
    ShadowMruHit,
    /// Shadow-memory MRU page-cache misses (page-table probe or page alloc).
    ShadowMruMiss,
    /// Resident shadow pages at the end of the run.
    ShadowPages,
    /// Whole event chunks folded through the batched per-shard path.
    ChunksFolded,
    /// Fold shards the adaptive executor settled on (0 = inline/serial).
    AdaptiveShards,
    /// Event chunks obtained from the recycling pool.
    ChunkRecycled,
    /// Event chunks freshly allocated (pool momentarily dry).
    ChunkFresh,
    /// Nanoseconds spent blocked in bounded-channel sends (backpressure),
    /// summed over every contributing thread.
    SendStallNs,
    /// Threads that contributed to `SendStallNs` (per-thread mean
    /// denominator; stall sums across threads can exceed wall time).
    SendStallThreads,
    /// Nanoseconds spent blocked waiting on channel receives, summed over
    /// every contributing thread.
    RecvStallNs,
    /// Threads that contributed to `RecvStallNs` (per-thread mean
    /// denominator).
    RecvStallThreads,
    /// High-water mark of in-flight chunks over all channel edges.
    QueuePeakDepth,
    /// Bytes held by spilled coordinate-snapshot arenas.
    ArenaBytes,
    /// Statements retired by SCEV removal.
    RetiredStmts,
    /// Dependences removed together with SCEV statements.
    RetiredDeps,
    /// Folded statements left over-approximated (inexact domain or
    /// non-affine label/access).
    OverapproxStmts,
    /// Static instructions proven SCEV by the affine pre-pass.
    StaticScevStmts,
    /// Folded statements whose instruction was in the prune mask.
    PrunedStmts,
    /// Dynamic executions whose register-dependence tracking was skipped
    /// because the instruction was statically proven SCEV.
    PrunedEvents,
    /// DDG lint checks evaluated.
    LintChecks,
    /// DDG lint violations found.
    LintViolations,
    /// Faults fired by an armed `polyresist::FaultPlan` (0 in production).
    FaultsInjected,
    /// Supervised pipeline attempts retried after a stage panic.
    StageRetries,
    /// Runs that abandoned the pipelined path for the serial fallback.
    SerialFallbacks,
    /// Event chunks dropped in flight (injected or send-error).
    DroppedChunks,
    /// Event chunks rejected by validation before replay.
    MalformedChunks,
    /// Memory accesses skipped because a shadow page failed to allocate.
    UnresolvedAccesses,
    /// Statements folded in budget over-approximation (coarse) mode.
    BudgetOverapprox,
    /// Watchdog deadline firings (0 or 1 per run).
    DeadlineHits,
    /// Trace-recording frames written to disk (`polyrec` writer).
    RecFramesWritten,
    /// Trace-recording bytes written to disk (`polyrec` writer).
    RecBytesWritten,
    /// Trace-recording frames decoded during replay (`polyrec` reader).
    RecFramesRead,
    /// Trace-recording payload bytes decoded during replay (`polyrec` reader).
    RecBytesRead,
}

/// Number of [`Counter`] slots.
pub const N_COUNTERS: usize = 42;

impl Counter {
    /// All counters, in report order.
    pub const ALL: [Counter; N_COUNTERS] = [
        Counter::DynOps,
        Counter::MemEvents,
        Counter::EventsEmitted,
        Counter::EventsResolved,
        Counter::EventsRouted,
        Counter::EventsFolded,
        Counter::DepsFolded,
        Counter::CtxCacheHit,
        Counter::CtxCacheMiss,
        Counter::ShadowMruHit,
        Counter::ShadowMruMiss,
        Counter::ShadowPages,
        Counter::ChunksFolded,
        Counter::AdaptiveShards,
        Counter::ChunkRecycled,
        Counter::ChunkFresh,
        Counter::SendStallNs,
        Counter::SendStallThreads,
        Counter::RecvStallNs,
        Counter::RecvStallThreads,
        Counter::QueuePeakDepth,
        Counter::ArenaBytes,
        Counter::RetiredStmts,
        Counter::RetiredDeps,
        Counter::OverapproxStmts,
        Counter::StaticScevStmts,
        Counter::PrunedStmts,
        Counter::PrunedEvents,
        Counter::LintChecks,
        Counter::LintViolations,
        Counter::FaultsInjected,
        Counter::StageRetries,
        Counter::SerialFallbacks,
        Counter::DroppedChunks,
        Counter::MalformedChunks,
        Counter::UnresolvedAccesses,
        Counter::BudgetOverapprox,
        Counter::DeadlineHits,
        Counter::RecFramesWritten,
        Counter::RecBytesWritten,
        Counter::RecFramesRead,
        Counter::RecBytesRead,
    ];

    /// Stable snake_case name (JSON keys, table rows).
    pub fn name(self) -> &'static str {
        match self {
            Counter::DynOps => "dyn_ops",
            Counter::MemEvents => "mem_events",
            Counter::EventsEmitted => "events_emitted",
            Counter::EventsResolved => "events_resolved",
            Counter::EventsRouted => "events_routed",
            Counter::EventsFolded => "events_folded",
            Counter::DepsFolded => "deps_folded",
            Counter::CtxCacheHit => "ctx_cache_hit",
            Counter::CtxCacheMiss => "ctx_cache_miss",
            Counter::ShadowMruHit => "shadow_mru_hit",
            Counter::ShadowMruMiss => "shadow_mru_miss",
            Counter::ShadowPages => "shadow_pages",
            Counter::ChunksFolded => "chunks_folded",
            Counter::AdaptiveShards => "adaptive_shards",
            Counter::ChunkRecycled => "chunks_recycled",
            Counter::ChunkFresh => "chunks_fresh",
            Counter::SendStallNs => "send_stall_ns",
            Counter::SendStallThreads => "send_stall_threads",
            Counter::RecvStallNs => "recv_stall_ns",
            Counter::RecvStallThreads => "recv_stall_threads",
            Counter::QueuePeakDepth => "queue_peak_depth",
            Counter::ArenaBytes => "arena_bytes",
            Counter::RetiredStmts => "retired_stmts",
            Counter::RetiredDeps => "retired_deps",
            Counter::OverapproxStmts => "overapprox_stmts",
            Counter::StaticScevStmts => "static_scev_stmts",
            Counter::PrunedStmts => "pruned_stmts",
            Counter::PrunedEvents => "pruned_events",
            Counter::LintChecks => "lint_checks",
            Counter::LintViolations => "lint_violations",
            Counter::FaultsInjected => "faults_injected",
            Counter::StageRetries => "stage_retries",
            Counter::SerialFallbacks => "serial_fallbacks",
            Counter::DroppedChunks => "dropped_chunks",
            Counter::MalformedChunks => "malformed_chunks",
            Counter::UnresolvedAccesses => "unresolved_accesses",
            Counter::BudgetOverapprox => "budget_overapprox_stmts",
            Counter::DeadlineHits => "deadline_hits",
            Counter::RecFramesWritten => "rec_frames_written",
            Counter::RecBytesWritten => "rec_bytes_written",
            Counter::RecFramesRead => "rec_frames_read",
            Counter::RecBytesRead => "rec_bytes_read",
        }
    }

    fn slot(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("listed")
    }
}

/// Fixed shard-accumulator count. Shard indices beyond this saturate into
/// the last slot (the pipeline defaults cap `fold_threads` at 8; 32 slots
/// keep even oversubscribed configurations attributable).
pub const MAX_SHARDS: usize = 32;

/// Channel-edge slots: edge 0 is the stage-1 → resolver edge; edge `1 + k`
/// is the resolver → shard-`k` edge.
pub const N_EDGES: usize = MAX_SHARDS + 1;

/// A node of the profiler's own stage tree — the label alphabet of the
/// self-flamegraph (rendered by `polyfeedback::report::self_flamegraph_svg`
/// through the same `SchedTree` machinery as the subject program's graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageNode {
    /// A sequential stage.
    Stage(Stage),
    /// A concurrent pipeline stage thread.
    Pipe(PipeStage),
    /// One folding shard.
    Shard(u8),
}

impl StageNode {
    /// Display label.
    pub fn name(&self) -> String {
        match self {
            StageNode::Stage(s) => s.name().to_string(),
            StageNode::Pipe(p) => p.name().to_string(),
            StageNode::Shard(k) => format!("fold-shard {k}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Timeline events and per-thread journals
// ---------------------------------------------------------------------------

/// Logical thread lanes of the timeline (the Chrome trace `tid`).
/// The driver and every sequential stage run in lane [`TID_DRIVER`]; the
/// pipeline stage threads and fold shards get their own lanes.
pub const TID_DRIVER: u32 = 0;
/// The VM / pre-profile producer thread lane.
pub const TID_PRE: u32 = 1;
/// The shadow-resolver thread lane.
pub const TID_RESOLVE: u32 = 2;
/// Fold shard `k` maps to lane `TID_SHARD0 + k`.
pub const TID_SHARD0: u32 = 10;

/// Timeline lane of fold shard `k`.
pub fn tid_shard(k: usize) -> u32 {
    TID_SHARD0 + k.min(MAX_SHARDS - 1) as u32
}

/// Human-readable lane name (Chrome trace `thread_name` metadata).
pub fn tid_name(tid: u32) -> String {
    match tid {
        TID_DRIVER => "driver".to_string(),
        TID_PRE => "pre-profile".to_string(),
        TID_RESOLVE => "shadow-resolve".to_string(),
        k if k >= TID_SHARD0 => format!("fold-shard {}", k - TID_SHARD0),
        other => format!("thread {other}"),
    }
}

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Opens a span (Chrome `ph: "B"`).
    Begin,
    /// Closes the innermost open span of the same lane (Chrome `ph: "E"`).
    End,
    /// A point event (Chrome `ph: "i"`).
    Instant,
}

/// One timestamped timeline record. Plain copyable data: a static name, a
/// lane, the offset from the collector's epoch, and two free-form integer
/// arguments (shard id, chunk sequence number, counts, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static event name (`"fold-chunk"`, `"chunk-send"`, `"profile"`, …).
    pub name: &'static str,
    /// Begin / end / instant.
    pub kind: TraceEventKind,
    /// Nanoseconds since the collector's construction.
    pub ts_ns: u64,
    /// Timeline lane (see [`TID_DRIVER`] and friends).
    pub tid: u32,
    /// First argument (convention: shard id, or a count).
    pub arg0: u64,
    /// Second argument (convention: chunk sequence number, or a count).
    pub arg1: u64,
}

/// A thread-owned, bounded event journal — the [`MetricsLevel::Trace`]
/// recording primitive for chunk-frequency events.
///
/// Lock-free by ownership: exactly one thread writes it, with no atomics or
/// locks on the recording path, and it is handed back to the collector
/// ([`Collector::submit_journal`]) once when the thread finishes. Capacity
/// is fixed at creation; a `begin` is accepted only if its matching `end`
/// is *guaranteed* to fit (one slot per open span stays reserved), so every
/// accepted begin has a matching end even under overflow — the
/// well-formedness invariant the timeline tests assert. Overflowed records
/// are counted, not silently lost.
#[derive(Debug)]
pub struct Journal {
    tid: u32,
    events: Vec<TraceEvent>,
    cap: usize,
    open: usize,
    dropped: u64,
    epoch: Instant,
}

/// Default per-thread journal capacity (events). At the default chunk size
/// of 4096 events this covers runs of ~130M events per thread before
/// dropping; ~1.5 MB per thread at 48 B per record.
pub const JOURNAL_CAP: usize = 1 << 15;

impl Journal {
    fn new(tid: u32, cap: usize, epoch: Instant) -> Journal {
        Journal {
            tid,
            events: Vec::with_capacity(cap),
            cap,
            open: 0,
            dropped: 0,
            epoch,
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Open a span. Returns `true` when the record was accepted — pass the
    /// result to [`Journal::end`], which records only for accepted begins.
    #[inline]
    pub fn begin(&mut self, name: &'static str, arg0: u64, arg1: u64) -> bool {
        // Reserve one slot per open span (incl. this one) for the ends.
        if self.events.len() + self.open + 2 > self.cap {
            self.dropped += 1;
            return false;
        }
        self.open += 1;
        let ev = TraceEvent {
            name,
            kind: TraceEventKind::Begin,
            ts_ns: self.now_ns(),
            tid: self.tid,
            arg0,
            arg1,
        };
        self.events.push(ev);
        true
    }

    /// Close the innermost open span. `opened` is the value the matching
    /// [`Journal::begin`] returned; a dropped begin drops its end too.
    #[inline]
    pub fn end(&mut self, opened: bool, name: &'static str, arg0: u64, arg1: u64) {
        if !opened {
            return;
        }
        debug_assert!(self.open > 0, "end without begin");
        self.open = self.open.saturating_sub(1);
        let ev = TraceEvent {
            name,
            kind: TraceEventKind::End,
            ts_ns: self.now_ns(),
            tid: self.tid,
            arg0,
            arg1,
        };
        self.events.push(ev);
    }

    /// Record a point event.
    #[inline]
    pub fn instant(&mut self, name: &'static str, arg0: u64, arg1: u64) {
        if self.events.len() + self.open + 1 > self.cap {
            self.dropped += 1;
            return;
        }
        let ev = TraceEvent {
            name,
            kind: TraceEventKind::Instant,
            ts_ns: self.now_ns(),
            tid: self.tid,
            arg0,
            arg1,
        };
        self.events.push(ev);
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Records rejected because the journal was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

fn atomic_array<const N: usize>() -> [AtomicU64; N] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

/// The per-run accumulator: fixed slots, atomic, allocation-free to record
/// into. Shared by every stage thread of one profiling run (behind an `Arc`
/// or a scope borrow); one atomic add per harvest, `Relaxed` everywhere —
/// cross-slot consistency is established by the thread joins that precede
/// [`Collector::snapshot`].
#[derive(Debug)]
pub struct Collector {
    level: MetricsLevel,
    /// Epoch of the run: every timeline timestamp is an offset from here.
    epoch: Instant,
    stage_ns: [AtomicU64; N_STAGES],
    pipe_ns: [AtomicU64; N_PIPE],
    shard_ns: [AtomicU64; MAX_SHARDS],
    shard_events: [AtomicU64; MAX_SHARDS],
    /// Highest shard slot touched + 1 (how many shards to report).
    shards_used: AtomicU64,
    /// Highest channel edge touched + 1 (how many edges to report).
    edges_used: AtomicU64,
    counters: [AtomicU64; N_COUNTERS],
    queue_depth: [AtomicU64; N_EDGES],
    queue_peak: [AtomicU64; N_EDGES],
    /// Latency histograms, merged in at stage granularity (locked only at
    /// harvest time, never per event).
    hists: Box<[Mutex<Histogram>; N_HISTS]>,
    /// Low-frequency shared timeline (stage/pipe/shard spans, recovery
    /// instants) plus every submitted per-thread [`Journal`]. Locked O(1)
    /// per span — tens of times per run.
    timeline: Mutex<Vec<TraceEvent>>,
    /// Journal records rejected for capacity across all threads.
    trace_dropped: AtomicU64,
    /// Per-opcode VM dispatch counts, harvested once per VM run. The names
    /// come from the interpreter — polytrace stays ignorant of the ISA.
    vm_ops: Mutex<Vec<(&'static str, u64)>>,
}

impl Collector {
    /// Fresh collector recording at `level`.
    pub fn new(level: MetricsLevel) -> Self {
        Collector {
            level,
            epoch: Instant::now(),
            stage_ns: atomic_array(),
            pipe_ns: atomic_array(),
            shard_ns: atomic_array(),
            shard_events: atomic_array(),
            shards_used: AtomicU64::new(0),
            edges_used: AtomicU64::new(0),
            counters: atomic_array(),
            queue_depth: atomic_array(),
            queue_peak: atomic_array(),
            hists: Box::new(std::array::from_fn(|_| Mutex::new(Histogram::new()))),
            timeline: Mutex::new(Vec::new()),
            trace_dropped: AtomicU64::new(0),
            vm_ops: Mutex::new(Vec::new()),
        }
    }

    /// The configured level.
    pub fn level(&self) -> MetricsLevel {
        self.level
    }

    /// True when span timing is on (clock reads allowed).
    #[inline]
    pub fn timing(&self) -> bool {
        self.level >= MetricsLevel::Timing
    }

    /// True when timeline journaling is on.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.level >= MetricsLevel::Trace
    }

    /// Nanoseconds since the collector's epoch (the timeline time axis).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Hand out a bounded per-thread journal for lane `tid`, sharing this
    /// collector's epoch. `None` below [`MetricsLevel::Trace`] — callers
    /// keep the `Option` and skip recording entirely when absent.
    pub fn new_journal(&self, tid: u32) -> Option<Journal> {
        self.tracing()
            .then(|| Journal::new(tid, JOURNAL_CAP, self.epoch))
    }

    /// Absorb a finished thread's journal into the shared timeline.
    pub fn submit_journal(&self, j: Journal) {
        if j.dropped > 0 {
            self.trace_dropped.fetch_add(j.dropped, Ordering::Relaxed);
        }
        if !j.events.is_empty() {
            self.timeline.lock().unwrap().extend_from_slice(&j.events);
        }
    }

    /// Record a point event straight onto the shared timeline (recovery,
    /// degradation, watchdog — low-frequency paths only). No-op below
    /// [`MetricsLevel::Trace`].
    pub fn timeline_instant(&self, name: &'static str, tid: u32, arg0: u64, arg1: u64) {
        if !self.tracing() {
            return;
        }
        let ev = TraceEvent {
            name,
            kind: TraceEventKind::Instant,
            ts_ns: self.now_ns(),
            tid,
            arg0,
            arg1,
        };
        self.timeline.lock().unwrap().push(ev);
    }

    /// Merge a thread-local histogram into the shared slot for `kind`
    /// (stage-end harvest; one lock per thread per kind).
    pub fn merge_hist(&self, kind: HistKind, h: &Histogram) {
        if h.is_empty() {
            return;
        }
        self.hists[kind.slot()].lock().unwrap().merge(h);
    }

    /// Record a single sample into the shared histogram for `kind`. Chunk
    /// granularity or colder only — per-event paths keep a local
    /// [`Histogram`] and use [`Collector::merge_hist`].
    pub fn record_hist(&self, kind: HistKind, v: u64) {
        self.hists[kind.slot()].lock().unwrap().record(v);
    }

    /// Harvest a per-opcode dispatch count from a finished VM run. Counts
    /// for the same opcode name accumulate across runs (retries, serial
    /// fallback).
    pub fn record_vm_op(&self, name: &'static str, count: u64) {
        if count == 0 {
            return;
        }
        let mut ops = self.vm_ops.lock().unwrap();
        match ops.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += count,
            None => ops.push((name, count)),
        }
    }

    /// Add `n` to a named counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if n != 0 {
            self.counters[c.slot()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raise a named counter to at least `n` (gauge high-water mark).
    #[inline]
    pub fn raise(&self, c: Counter, n: u64) {
        self.counters[c.slot()].fetch_max(n, Ordering::Relaxed);
    }

    /// Current value of a named counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.slot()].load(Ordering::Relaxed)
    }

    /// RAII span over a sequential stage (no clock read below `Timing`).
    pub fn span(&self, s: Stage) -> Span<'_> {
        Span::new(self, SpanSlot::Stage(s.slot()), s.name(), TID_DRIVER, 0)
    }

    /// RAII span over a concurrent pipeline stage.
    pub fn pipe_span(&self, p: PipeStage) -> Span<'_> {
        let tid = match p {
            PipeStage::PreProfile => TID_PRE,
            PipeStage::ShadowResolve => TID_RESOLVE,
            PipeStage::Merge => TID_DRIVER,
        };
        Span::new(self, SpanSlot::Pipe(p.slot()), p.name(), tid, 0)
    }

    /// RAII span over fold shard `k`'s worker loop.
    pub fn shard_span(&self, k: usize) -> Span<'_> {
        let k = k.min(MAX_SHARDS - 1);
        Span::new(
            self,
            SpanSlot::Shard(k),
            "fold-shard",
            tid_shard(k),
            k as u64,
        )
    }

    /// Record nanoseconds directly into a sequential-stage slot (for code
    /// paths where a guard is awkward).
    pub fn record_stage_ns(&self, s: Stage, ns: u64) {
        self.stage_ns[s.slot()].fetch_add(ns, Ordering::Relaxed);
    }

    /// Record events folded by shard `k`.
    pub fn record_shard_events(&self, k: usize, events: u64) {
        let k = k.min(MAX_SHARDS - 1);
        self.shard_events[k].fetch_add(events, Ordering::Relaxed);
        self.shards_used.fetch_max(k as u64 + 1, Ordering::Relaxed);
    }

    /// A chunk entered channel edge `edge` (send side). Returns the
    /// post-send in-flight depth of the edge, so callers recording a
    /// queue-depth histogram don't need a second atomic read.
    #[inline]
    pub fn queue_send(&self, edge: usize) -> u64 {
        let edge = edge.min(N_EDGES - 1);
        let depth = self.queue_depth[edge].fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak[edge].fetch_max(depth, Ordering::Relaxed);
        self.edges_used
            .fetch_max(edge as u64 + 1, Ordering::Relaxed);
        depth
    }

    /// Current in-flight depth of every touched channel edge (sampler view).
    pub fn queue_depths(&self) -> Vec<u64> {
        let edges = self.edges_used.load(Ordering::Relaxed) as usize;
        self.queue_depth[..edges]
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect()
    }

    /// An incremental live view of the run for the progress sampler:
    /// counters and gauges loaded relaxed, no locks on any recording path.
    /// Budget fields are left zero for the caller to fill in.
    pub fn progress(&self, t_ns: u64) -> ProgressSnapshot {
        ProgressSnapshot {
            t_ns,
            dyn_ops: self.get(Counter::DynOps),
            events_emitted: self.get(Counter::EventsEmitted),
            events_resolved: self.get(Counter::EventsResolved),
            events_folded: self.get(Counter::EventsFolded),
            events_per_sec: 0.0,
            pipe_busy_ns: std::array::from_fn(|i| self.pipe_ns[i].load(Ordering::Relaxed)),
            queue_depths: self.queue_depths(),
            budget_used_bytes: 0,
            budget_pressure: false,
            deadline_remaining_ns: None,
        }
    }

    /// A chunk left channel edge `edge` (receive side).
    #[inline]
    pub fn queue_recv(&self, edge: usize) {
        let edge = edge.min(N_EDGES - 1);
        // Saturating: a recv observed before its send's add would underflow.
        let _ = self.queue_depth[edge].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
            Some(d.saturating_sub(1))
        });
    }

    /// Freeze the accumulators into a [`RunMetrics`]. Call after every stage
    /// thread has been joined; `total_ns` is the run's measured wall time.
    pub fn snapshot(&self, total_ns: u64) -> RunMetrics {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let shards = ld(&self.shards_used) as usize;
        let hists = if self.timing() {
            self.hists
                .iter()
                .map(|h| h.lock().unwrap().clone())
                .collect()
        } else {
            Vec::new()
        };
        let mut vm_ops = self.vm_ops.lock().unwrap().clone();
        vm_ops.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let timeline = if self.tracing() {
            let mut tl = self.timeline.lock().unwrap().clone();
            // Stable per-lane order: journals arrive whole; sorting by
            // timestamp interleaves the lanes chronologically while the
            // stable sort preserves same-timestamp intra-thread order.
            tl.sort_by_key(|e| e.ts_ns);
            tl
        } else {
            Vec::new()
        };
        let mut m = RunMetrics {
            level: self.level,
            total_ns,
            stage_ns: std::array::from_fn(|i| ld(&self.stage_ns[i])),
            pipe_ns: std::array::from_fn(|i| ld(&self.pipe_ns[i])),
            shard_ns: self.shard_ns[..shards].iter().map(ld).collect(),
            shard_events: self.shard_events[..shards].iter().map(ld).collect(),
            queue_peak: self.queue_peak[..ld(&self.edges_used) as usize]
                .iter()
                .map(ld)
                .collect(),
            counters: std::array::from_fn(|i| ld(&self.counters[i])),
            hists,
            vm_ops,
            timeline,
            trace_dropped: ld(&self.trace_dropped),
        };
        let peak = m.queue_peak.iter().copied().max().unwrap_or(0);
        m.counters[Counter::QueuePeakDepth.slot()] =
            m.counters[Counter::QueuePeakDepth.slot()].max(peak);
        m
    }
}

enum SpanSlot {
    Stage(usize),
    Pipe(usize),
    Shard(usize),
}

/// RAII timing guard: adds its elapsed wall time to a collector slot on
/// drop. Below [`MetricsLevel::Timing`] it never reads the clock and drop is
/// a no-op. At [`MetricsLevel::Trace`] it additionally opens/closes a span
/// on the shared timeline, so every existing stage/pipe/shard span shows up
/// in the Chrome trace for free.
pub struct Span<'a> {
    col: &'a Collector,
    slot: SpanSlot,
    t0: Option<Instant>,
    name: &'static str,
    tid: u32,
    arg0: u64,
}

impl<'a> Span<'a> {
    fn new(col: &'a Collector, slot: SpanSlot, name: &'static str, tid: u32, arg0: u64) -> Self {
        let t0 = col.timing().then(Instant::now);
        if col.tracing() {
            let ev = TraceEvent {
                name,
                kind: TraceEventKind::Begin,
                ts_ns: col.now_ns(),
                tid,
                arg0,
                arg1: 0,
            };
            col.timeline.lock().unwrap().push(ev);
        }
        Span {
            col,
            slot,
            t0,
            name,
            tid,
            arg0,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            let slot = match self.slot {
                SpanSlot::Stage(i) => &self.col.stage_ns[i],
                SpanSlot::Pipe(i) => &self.col.pipe_ns[i],
                SpanSlot::Shard(i) => &self.col.shard_ns[i],
            };
            slot.fetch_add(ns, Ordering::Relaxed);
        }
        if self.col.tracing() {
            let ev = TraceEvent {
                name: self.name,
                kind: TraceEventKind::End,
                ts_ns: self.col.now_ns(),
                tid: self.tid,
                arg0: self.arg0,
                arg1: 0,
            };
            self.col.timeline.lock().unwrap().push(ev);
        }
    }
}

/// One incremental live view of a running profile, produced by the optional
/// watcher thread (`ProfileConfig::with_progress`). Counter fields are
/// monotone totals as of `t_ns`; the sampler derives `events_per_sec` from
/// consecutive snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Nanoseconds since the collector's epoch.
    pub t_ns: u64,
    /// Dynamic instructions executed so far.
    pub dyn_ops: u64,
    /// Events emitted by stage 1 so far.
    pub events_emitted: u64,
    /// Memory touches resolved by the shadow stage so far.
    pub events_resolved: u64,
    /// Events consumed by folding sinks so far.
    pub events_folded: u64,
    /// Folded-event throughput over the last sampling interval.
    pub events_per_sec: f64,
    /// Cumulative busy nanoseconds per concurrent pipeline stage (zero
    /// below `Timing`); deltas over the interval give per-stage busy
    /// fractions.
    pub pipe_busy_ns: [u64; N_PIPE],
    /// Current in-flight chunks per touched channel edge.
    pub queue_depths: Vec<u64>,
    /// Bytes currently tracked against the resource budget (0 if none).
    pub budget_used_bytes: u64,
    /// Whether the byte budget has latched pressure.
    pub budget_pressure: bool,
    /// Time left until the watchdog deadline (`None` without a deadline).
    pub deadline_remaining_ns: Option<u64>,
}

/// Frozen metrics of one profiling run: plain data, cheap to clone, stable
/// to serialize. Produced by [`Collector::snapshot`], surfaced on
/// `polyprof_core::Report::metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// The level the run recorded at.
    pub level: MetricsLevel,
    /// Measured wall time of the whole run, nanoseconds.
    pub total_ns: u64,
    /// Sequential stage times (ns), indexed by [`Stage`] slot order.
    pub stage_ns: [u64; N_STAGES],
    /// Concurrent pipeline stage CPU times (ns), indexed by [`PipeStage`].
    pub pipe_ns: [u64; N_PIPE],
    /// Per-shard worker-loop CPU time (ns); empty on a serial run.
    pub shard_ns: Vec<u64>,
    /// Per-shard folded event counts; empty on a serial run.
    pub shard_events: Vec<u64>,
    /// Per-edge in-flight chunk high-water marks (edge 0 = pre → resolver).
    pub queue_peak: Vec<u64>,
    /// Named counters, indexed by [`Counter`] slot order.
    pub counters: [u64; N_COUNTERS],
    /// Latency histograms, indexed by [`HistKind`] slot order; empty below
    /// [`MetricsLevel::Timing`].
    pub hists: Vec<Histogram>,
    /// Per-opcode VM dispatch counts, sorted by count descending; empty
    /// unless VM telemetry ran (Timing and above).
    pub vm_ops: Vec<(&'static str, u64)>,
    /// The merged timeline, sorted by timestamp; empty below
    /// [`MetricsLevel::Trace`].
    pub timeline: Vec<TraceEvent>,
    /// Journal records lost to capacity (0 on a well-sized run).
    pub trace_dropped: u64,
}

impl RunMetrics {
    /// A sequential stage's recorded wall time, nanoseconds.
    pub fn stage(&self, s: Stage) -> u64 {
        self.stage_ns[s.slot()]
    }

    /// A concurrent pipeline stage's recorded CPU time, nanoseconds.
    pub fn pipe(&self, p: PipeStage) -> u64 {
        self.pipe_ns[p.slot()]
    }

    /// A named counter's value.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.slot()]
    }

    /// Sum of the sequential stage spans — within a small epsilon of
    /// [`RunMetrics::total_ns`] at `Timing` (the stages partition the run).
    pub fn sequential_ns(&self) -> u64 {
        self.stage_ns.iter().sum()
    }

    /// True when the run went through the sharded pipeline (per-shard
    /// accumulators populated).
    pub fn has_pipeline(&self) -> bool {
        !self.shard_events.is_empty()
    }

    /// Shard balance: max over mean of per-shard folded events (1.0 =
    /// perfectly balanced; meaningless — 0.0 — on a serial run).
    pub fn shard_balance(&self) -> f64 {
        if self.shard_events.is_empty() {
            return 0.0;
        }
        let max = *self.shard_events.iter().max().unwrap() as f64;
        let mean = self.shard_events.iter().sum::<u64>() as f64 / self.shard_events.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }

    /// Hit rate of a hit/miss counter pair (`None` when no lookups).
    pub fn hit_rate(&self, hit: Counter, miss: Counter) -> Option<f64> {
        let (h, m) = (self.counter(hit), self.counter(miss));
        let total = h + m;
        (total > 0).then(|| h as f64 / total as f64)
    }

    /// Per-thread mean of `SendStallNs` (the summed counter divided by the
    /// number of contributing threads; 0 when no thread contributed).
    pub fn send_stall_mean_ns(&self) -> u64 {
        self.counter(Counter::SendStallNs)
            .checked_div(self.counter(Counter::SendStallThreads))
            .unwrap_or(0)
    }

    /// Per-thread mean of `RecvStallNs`.
    pub fn recv_stall_mean_ns(&self) -> u64 {
        self.counter(Counter::RecvStallNs)
            .checked_div(self.counter(Counter::RecvStallThreads))
            .unwrap_or(0)
    }

    /// The recorded histogram for `kind` (`None` below `Timing`).
    pub fn hist(&self, kind: HistKind) -> Option<&Histogram> {
        self.hists.get(kind.slot())
    }

    /// Count of timeline events with a given name and kind (reconciliation
    /// against the scalar counters: e.g. `fold-chunk` begins must equal
    /// [`Counter::ChunksFolded`] on a drop-free trace).
    pub fn timeline_count(&self, name: &str, kind: TraceEventKind) -> u64 {
        self.timeline
            .iter()
            .filter(|e| e.name == name && e.kind == kind)
            .count() as u64
    }

    /// Render the timeline as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object format), loadable in Perfetto or
    /// `chrome://tracing`. Timestamps are microseconds from the run epoch;
    /// lanes carry `thread_name` metadata. Valid (empty) JSON below
    /// [`MetricsLevel::Trace`].
    pub fn timeline_json(&self) -> String {
        let mut s = String::with_capacity(64 + self.timeline.len() * 96);
        s.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: &mut String, ev: String| {
            if !first {
                s.push(',');
            }
            first = false;
            s.push('\n');
            s.push_str(&ev);
        };
        // One thread_name metadata record per lane that appears.
        let mut tids: Vec<u32> = self.timeline.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            push(
                &mut s,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    tid,
                    json_escape(&tid_name(tid))
                ),
            );
        }
        for ev in &self.timeline {
            let ph = match ev.kind {
                TraceEventKind::Begin => "B",
                TraceEventKind::End => "E",
                TraceEventKind::Instant => "i",
            };
            let scope = if ev.kind == TraceEventKind::Instant {
                ",\"s\":\"t\""
            } else {
                ""
            };
            push(
                &mut s,
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\
                     \"ts\":{:.3}{scope},\"args\":{{\"arg0\":{},\"arg1\":{}}}}}",
                    json_escape(ev.name),
                    ev.tid,
                    ev.ts_ns as f64 / 1000.0,
                    ev.arg0,
                    ev.arg1
                ),
            );
        }
        s.push_str("\n],\"displayTimeUnit\":\"ms\"}");
        s
    }

    /// Machine-readable JSON rendering (hand-rolled; no external deps —
    /// stable snake_case keys, suitable for CI artifacts).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        push_kv(&mut s, "level", &format!("\"{}\"", self.level.name()));
        push_kv(&mut s, "total_ns", &self.total_ns.to_string());
        s.push_str("\"stages_ns\": {");
        for (i, st) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", st.name(), self.stage(*st)));
        }
        s.push_str("}, ");
        s.push_str("\"pipeline_ns\": {");
        for (i, p) in PipeStage::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", p.name(), self.pipe(*p)));
        }
        s.push_str("}, ");
        push_kv(&mut s, "shard_ns", &json_array(&self.shard_ns));
        push_kv(&mut s, "shard_events", &json_array(&self.shard_events));
        push_kv(&mut s, "queue_peak", &json_array(&self.queue_peak));
        push_kv(
            &mut s,
            "shard_balance",
            &format!("{:.4}", self.shard_balance()),
        );
        // Per-thread stall means: the stall counters are sums over every
        // contributing thread, so only the means compare against total_ns.
        push_kv(
            &mut s,
            "send_stall_mean_ns",
            &self.send_stall_mean_ns().to_string(),
        );
        push_kv(
            &mut s,
            "recv_stall_mean_ns",
            &self.recv_stall_mean_ns().to_string(),
        );
        // Distribution / timeline / VM sections exist only at the levels
        // that record them, so `Off`/`Counters` artifacts stay byte-stable.
        if !self.hists.is_empty() {
            s.push_str("\"histograms\": {");
            for (i, k) in HistKind::ALL.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let h = self.hist(*k).cloned().unwrap_or_default();
                s.push_str(&format!("\"{}\": {}", k.name(), h.to_json()));
            }
            s.push_str("}, ");
        }
        if !self.vm_ops.is_empty() {
            s.push_str("\"vm_ops\": {");
            for (i, (name, count)) in self.vm_ops.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\": {count}", json_escape(name)));
            }
            s.push_str("}, ");
        }
        if self.level >= MetricsLevel::Trace {
            push_kv(&mut s, "trace_events", &self.timeline.len().to_string());
            push_kv(&mut s, "trace_dropped", &self.trace_dropped.to_string());
        }
        s.push_str("\"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", c.name(), self.counter(*c)));
        }
        s.push_str("}}");
        s
    }
}

fn push_kv(s: &mut String, k: &str, raw: &str) {
    s.push_str(&format!("\"{k}\": {raw}, "));
}

fn json_array(v: &[u64]) -> String {
    let body: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", body.join(", "))
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl fmt::Display for RunMetrics {
    /// The human-readable table: stage times with % of wall, pipeline
    /// breakdown when present, then the counter inventory with hit rates.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "── run metrics ({:?}) ──", self.level)?;
        writeln!(f, "total wall time          {:>10.3} ms", ms(self.total_ns))?;
        if self.level >= MetricsLevel::Timing {
            let total = self.total_ns.max(1) as f64;
            for s in Stage::ALL {
                let ns = self.stage(s);
                if ns == 0 {
                    continue;
                }
                writeln!(
                    f,
                    "  {:<22} {:>10.3} ms  {:>5.1}%",
                    s.name(),
                    ms(ns),
                    100.0 * ns as f64 / total
                )?;
            }
            writeln!(
                f,
                "  {:<22} {:>10.3} ms  {:>5.1}%",
                "(stage sum)",
                ms(self.sequential_ns()),
                100.0 * self.sequential_ns() as f64 / total
            )?;
        }
        if self.has_pipeline() {
            writeln!(f, "pipeline (concurrent CPU time):")?;
            if self.level >= MetricsLevel::Timing {
                for p in PipeStage::ALL {
                    writeln!(f, "  {:<22} {:>10.3} ms", p.name(), ms(self.pipe(p)))?;
                }
            }
            for (k, ev) in self.shard_events.iter().enumerate() {
                if self.level >= MetricsLevel::Timing {
                    writeln!(
                        f,
                        "  fold-shard {:<11} {:>10.3} ms  {:>12} events",
                        k,
                        ms(self.shard_ns.get(k).copied().unwrap_or(0)),
                        ev
                    )?;
                } else {
                    writeln!(f, "  fold-shard {:<11} {:>12} events", k, ev)?;
                }
            }
            writeln!(f, "  shard balance (max/mean) {:.3}", self.shard_balance())?;
            // Stalls are summed over every contributing thread, so the sum
            // can legitimately exceed wall time — the per-thread mean is
            // the number comparable to `total_ns` and shard balance.
            writeln!(
                f,
                "  send stall {:.3} ms total / {:.3} ms per thread, recv stall {:.3} ms total / {:.3} ms per thread, peak queue depth {}",
                ms(self.counter(Counter::SendStallNs)),
                ms(self.send_stall_mean_ns()),
                ms(self.counter(Counter::RecvStallNs)),
                ms(self.recv_stall_mean_ns()),
                self.counter(Counter::QueuePeakDepth)
            )?;
        }
        if self.hists.iter().any(|h| !h.is_empty()) {
            writeln!(f, "latency histograms:")?;
            for k in HistKind::ALL {
                let Some(h) = self.hist(k) else { continue };
                if h.is_empty() {
                    continue;
                }
                writeln!(
                    f,
                    "  {:<18} n {:>10}  p50 {:>10}  p90 {:>10}  p99 {:>10}  max {:>10}",
                    k.name(),
                    h.count(),
                    h.percentile(0.50),
                    h.percentile(0.90),
                    h.percentile(0.99),
                    h.max()
                )?;
            }
        }
        if !self.vm_ops.is_empty() {
            let total: u64 = self.vm_ops.iter().map(|(_, c)| c).sum();
            writeln!(f, "vm opcode profile ({total} dispatches):")?;
            for (name, count) in self.vm_ops.iter().take(12) {
                writeln!(
                    f,
                    "  {:<18} {:>14}  {:>5.1}%",
                    name,
                    count,
                    100.0 * *count as f64 / total.max(1) as f64
                )?;
            }
            if self.vm_ops.len() > 12 {
                writeln!(f, "  … {} more opcodes", self.vm_ops.len() - 12)?;
            }
        }
        if self.level >= MetricsLevel::Trace {
            writeln!(
                f,
                "timeline: {} events ({} dropped)",
                self.timeline.len(),
                self.trace_dropped
            )?;
        }
        writeln!(f, "counters:")?;
        for c in Counter::ALL {
            // Stall/peak counters already shown in the pipeline section.
            if matches!(
                c,
                Counter::SendStallNs
                    | Counter::SendStallThreads
                    | Counter::RecvStallNs
                    | Counter::RecvStallThreads
                    | Counter::QueuePeakDepth
            ) && self.has_pipeline()
            {
                continue;
            }
            let v = self.counter(c);
            if v == 0 {
                continue;
            }
            write!(f, "  {:<22} {:>14}", c.name(), v)?;
            let rate = match c {
                Counter::CtxCacheHit => self.hit_rate(Counter::CtxCacheHit, Counter::CtxCacheMiss),
                Counter::ShadowMruHit => {
                    self.hit_rate(Counter::ShadowMruHit, Counter::ShadowMruMiss)
                }
                _ => None,
            };
            match rate {
                Some(r) => writeln!(f, "  ({:.1}% hit rate)", 100.0 * r)?,
                None => writeln!(f)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_slots_are_dense_and_unique() {
        let mut seen = [false; N_COUNTERS];
        for c in Counter::ALL {
            assert!(!seen[c.slot()], "duplicate slot for {c:?}");
            seen[c.slot()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.slot(), i, "Stage::ALL must be in slot order");
        }
    }

    #[test]
    fn spans_record_only_at_timing_level() {
        let c = Collector::new(MetricsLevel::Counters);
        {
            let _s = c.span(Stage::Profile);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(c.snapshot(0).stage(Stage::Profile), 0);

        let c = Collector::new(MetricsLevel::Timing);
        {
            let _s = c.span(Stage::Profile);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(c.snapshot(0).stage(Stage::Profile) > 0);
    }

    #[test]
    fn queue_gauges_track_peak_depth() {
        let c = Collector::new(MetricsLevel::Counters);
        c.queue_send(0);
        c.queue_send(0);
        c.queue_recv(0);
        c.queue_send(0);
        let m = c.snapshot(0);
        assert_eq!(m.counter(Counter::QueuePeakDepth), 2);
        // Underflow-safe: spurious recv does not wrap.
        c.queue_recv(1);
        c.queue_recv(1);
        c.queue_send(1);
        assert_eq!(c.snapshot(0).queue_peak[1], 1);
    }

    #[test]
    fn shard_accounting_and_balance() {
        let c = Collector::new(MetricsLevel::Counters);
        c.record_shard_events(0, 100);
        c.record_shard_events(2, 300);
        let m = c.snapshot(0);
        assert_eq!(m.shard_events, vec![100, 0, 300]);
        // max 300, mean 133.3 → balance 2.25
        assert!((m.shard_balance() - 2.25).abs() < 1e-9);
        assert!(m.has_pipeline());
    }

    #[test]
    fn shard_slots_saturate_not_panic() {
        let c = Collector::new(MetricsLevel::Counters);
        c.record_shard_events(MAX_SHARDS + 5, 7);
        let _s = c.shard_span(MAX_SHARDS + 5);
        let m = c.snapshot(0);
        assert_eq!(m.shard_events.len(), MAX_SHARDS);
        assert_eq!(m.shard_events[MAX_SHARDS - 1], 7);
    }

    #[test]
    fn json_and_table_render() {
        let c = Collector::new(MetricsLevel::Timing);
        c.add(Counter::DynOps, 1000);
        c.add(Counter::CtxCacheHit, 90);
        c.add(Counter::CtxCacheMiss, 10);
        c.record_shard_events(0, 500);
        c.record_stage_ns(Stage::Profile, 5_000_000);
        let m = c.snapshot(10_000_000);
        let j = m.to_json();
        assert!(j.contains("\"dyn_ops\": 1000"), "{j}");
        assert!(j.contains("\"profile\": 5000000"), "{j}");
        assert!(j.contains("\"shard_events\": [500]"), "{j}");
        assert!(j.contains("\"level\": \"timing\""), "{j}");
        let t = format!("{m}");
        assert!(t.contains("ctx_cache_hit"), "{t}");
        assert!(t.contains("90.0% hit rate"), "{t}");
        assert!(t.contains("total wall time"), "{t}");
    }

    #[test]
    fn hit_rate_and_sequential_sum() {
        let c = Collector::new(MetricsLevel::Timing);
        c.record_stage_ns(Stage::Structure, 100);
        c.record_stage_ns(Stage::Profile, 900);
        let m = c.snapshot(1000);
        assert_eq!(m.sequential_ns(), 1000);
        assert_eq!(
            m.hit_rate(Counter::ShadowMruHit, Counter::ShadowMruMiss),
            None
        );
    }

    /// Stall sums divide by the contributing-thread counters; zero threads
    /// never divides by zero.
    #[test]
    fn stall_means_are_per_thread() {
        let c = Collector::new(MetricsLevel::Timing);
        c.add(Counter::RecvStallNs, 3000);
        c.add(Counter::RecvStallThreads, 3);
        let m = c.snapshot(100);
        assert_eq!(m.recv_stall_mean_ns(), 1000);
        assert_eq!(m.send_stall_mean_ns(), 0);
    }

    #[test]
    fn level_from_env_parses() {
        // Sequential: env is process-global.
        std::env::set_var("POLYPROF_METRICS", "timing");
        assert_eq!(MetricsLevel::from_env(), MetricsLevel::Timing);
        std::env::set_var("POLYPROF_METRICS", "Counters");
        assert_eq!(MetricsLevel::from_env(), MetricsLevel::Counters);
        std::env::set_var("POLYPROF_METRICS", "Trace");
        assert_eq!(MetricsLevel::from_env(), MetricsLevel::Trace);
        std::env::set_var("POLYPROF_METRICS", "nonsense");
        assert_eq!(MetricsLevel::from_env(), MetricsLevel::Off);
        std::env::remove_var("POLYPROF_METRICS");
        assert_eq!(MetricsLevel::from_env(), MetricsLevel::Off);
    }

    #[test]
    fn trace_is_ordered_above_timing() {
        assert!(MetricsLevel::Trace > MetricsLevel::Timing);
        let c = Collector::new(MetricsLevel::Trace);
        assert!(c.timing(), "Trace implies Timing");
        assert!(c.tracing());
        assert!(!Collector::new(MetricsLevel::Timing).tracing());
    }

    #[test]
    fn json_escape_covers_quotes_and_controls() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
        assert_eq!(json_escape("\u{1}x"), "\\u0001x");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn histogram_buckets_are_monotone_and_dense() {
        // Bucket index must be monotone non-decreasing in the value and
        // every value must land in a bucket whose upper bound covers it.
        let mut vals: Vec<u64> = (0..=256).collect();
        for shift in 3..63 {
            for off in [0u64, 1, 3] {
                vals.push((1u64 << shift) + off);
                vals.push((1u64 << shift) - 1);
            }
        }
        vals.push(u64::MAX);
        vals.sort_unstable();
        let mut prev = 0;
        for v in vals {
            let b = hist_bucket(v);
            assert!(b >= prev, "bucket({v}) = {b} < {prev}");
            assert!(b < N_HIST_BUCKETS);
            assert!(hist_bucket_upper(b) >= v, "upper({b}) < {v}");
            prev = b;
        }
        // Small values are exact.
        for v in 0..8u64 {
            assert_eq!(hist_bucket_upper(hist_bucket(v)), v);
        }
    }

    #[test]
    fn histogram_percentiles_bound_and_order() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 1000, 5000, 100_000] {
            h.record(v);
        }
        let (p50, p90, p99) = (h.percentile(0.5), h.percentile(0.9), h.percentile(0.99));
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 >= h.min() && p99 <= h.max());
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 100_000);
        // Empty histogram renders zeros, no panic.
        let e = Histogram::new();
        assert_eq!(e.percentile(0.99), 0);
        assert_eq!(e.min(), 0);
        assert!(e.to_json().contains("\"count\": 0"));
    }

    #[test]
    fn histogram_merge_matches_single_stream() {
        let samples: Vec<u64> = (0..500).map(|i| (i * i * 7 + 13) % 100_000).collect();
        let mut whole = Histogram::new();
        let mut parts = vec![Histogram::new(); 4];
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            parts[i % 4].record(v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, whole);
        assert_eq!(merged.percentile(0.99), whole.percentile(0.99));
    }

    #[test]
    fn journal_reserves_ends_under_overflow() {
        let mut j = Journal::new(TID_PRE, 5, Instant::now());
        let a = j.begin("outer", 0, 0);
        let b = j.begin("inner", 1, 1);
        assert!(a && b);
        // len 2 + open 2 + 2 > 5: next begin must be rejected…
        let c = j.begin("third", 2, 2);
        assert!(!c);
        assert_eq!(j.dropped(), 1);
        // …but both accepted spans can still close.
        j.end(b, "inner", 1, 1);
        j.end(a, "outer", 0, 0);
        j.end(c, "third", 2, 2); // dropped begin: end is a no-op
        assert_eq!(j.len(), 4);
        let begins = j
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Begin)
            .count();
        let ends = j
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::End)
            .count();
        assert_eq!(begins, ends);
    }

    #[test]
    fn journals_and_spans_feed_the_timeline() {
        let c = Collector::new(MetricsLevel::Trace);
        {
            let _s = c.span(Stage::Profile);
            let mut j = c.new_journal(tid_shard(1)).expect("tracing on");
            let ok = j.begin("fold-chunk", 1, 0);
            j.end(ok, "fold-chunk", 1, 0);
            j.instant("chunk-send", 0, 42);
            c.submit_journal(j);
        }
        c.timeline_instant("recovery", TID_DRIVER, 7, 0);
        let m = c.snapshot(1);
        assert_eq!(m.timeline_count("fold-chunk", TraceEventKind::Begin), 1);
        assert_eq!(m.timeline_count("fold-chunk", TraceEventKind::End), 1);
        assert_eq!(m.timeline_count("profile", TraceEventKind::Begin), 1);
        assert_eq!(m.timeline_count("chunk-send", TraceEventKind::Instant), 1);
        assert_eq!(m.timeline_count("recovery", TraceEventKind::Instant), 1);
        // Sorted by timestamp.
        assert!(m.timeline.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let j = m.timeline_json();
        assert!(j.contains("\"traceEvents\""), "{j}");
        assert!(j.contains("\"ph\":\"B\""), "{j}");
        assert!(j.contains("\"ph\":\"E\""), "{j}");
        assert!(j.contains("\"thread_name\""), "{j}");
        assert!(j.contains("fold-shard 1"), "{j}");
    }

    #[test]
    fn below_trace_no_journal_no_timeline() {
        let c = Collector::new(MetricsLevel::Timing);
        assert!(c.new_journal(TID_PRE).is_none());
        c.timeline_instant("recovery", TID_DRIVER, 0, 0);
        {
            let _s = c.span(Stage::Profile);
        }
        let m = c.snapshot(1);
        assert!(m.timeline.is_empty());
        // Valid (empty) Chrome JSON either way.
        assert!(m.timeline_json().contains("\"traceEvents\":["));
    }

    #[test]
    fn vm_ops_accumulate_and_render() {
        let c = Collector::new(MetricsLevel::Timing);
        c.record_vm_op("iop.add", 100);
        c.record_vm_op("load", 50);
        c.record_vm_op("iop.add", 10);
        c.record_vm_op("nop", 0); // zero counts are skipped
        let m = c.snapshot(1);
        assert_eq!(m.vm_ops, vec![("iop.add", 110), ("load", 50)]);
        let j = m.to_json();
        assert!(
            j.contains("\"vm_ops\": {\"iop.add\": 110, \"load\": 50}"),
            "{j}"
        );
        let t = format!("{m}");
        assert!(t.contains("vm opcode profile"), "{t}");
    }

    #[test]
    fn hists_render_at_timing_not_counters() {
        let c = Collector::new(MetricsLevel::Timing);
        c.record_hist(HistKind::FoldChunkNs, 1234);
        let mut local = Histogram::new();
        local.record(10);
        local.record(99);
        c.merge_hist(HistKind::QueueDepth, &local);
        let m = c.snapshot(1);
        assert_eq!(m.hist(HistKind::FoldChunkNs).unwrap().count(), 1);
        assert_eq!(m.hist(HistKind::QueueDepth).unwrap().count(), 2);
        let j = m.to_json();
        assert!(j.contains("\"histograms\""), "{j}");
        assert!(j.contains("\"fold_chunk_ns\": {\"count\": 1"), "{j}");

        // Counters-level snapshots carry no histograms and render none —
        // the byte-stability invariant for Off/Counters artifacts.
        let c = Collector::new(MetricsLevel::Counters);
        c.record_hist(HistKind::FoldChunkNs, 1234);
        let m = c.snapshot(1);
        assert!(m.hists.is_empty());
        assert!(!m.to_json().contains("histograms"));
        assert!(!m.to_json().contains("trace_events"));
    }

    #[test]
    fn queue_send_reports_depth() {
        let c = Collector::new(MetricsLevel::Counters);
        assert_eq!(c.queue_send(0), 1);
        assert_eq!(c.queue_send(0), 2);
        c.queue_recv(0);
        assert_eq!(c.queue_send(0), 2);
        assert_eq!(c.queue_depths(), vec![2]);
    }

    #[test]
    fn progress_snapshot_reads_counters() {
        let c = Collector::new(MetricsLevel::Counters);
        c.add(Counter::EventsFolded, 500);
        c.add(Counter::DynOps, 1000);
        c.queue_send(0);
        let p = c.progress(123);
        assert_eq!(p.t_ns, 123);
        assert_eq!(p.events_folded, 500);
        assert_eq!(p.dyn_ops, 1000);
        assert_eq!(p.queue_depths, vec![1]);
        assert_eq!(p.budget_used_bytes, 0);
    }
}
