//! Recursive-component-set construction (§3.2 of the paper): the call-graph
//! counterpart of the loop-nesting-forest.
//!
//! Every top-level SCC of the call graph with at least one cycle becomes a
//! *recursive component* with a set of *entries* (functions callable from
//! outside) and a set of *headers* accumulated by repeatedly choosing an
//! entry of a remaining cyclic sub-SCC and deleting the edges that target it
//! — the adaptation of Havlak's construction the paper describes. At run
//! time only the headers matter: calls to / returns from a header function
//! advance the induction variable of the recursive loop (Alg. 2).

use crate::graph::{component_has_cycle, tarjan_scc, DiGraph};
use polyir::FuncId;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Index of a recursive component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecCompIdx(pub u32);

/// One recursive component of the call graph.
#[derive(Debug, Clone)]
pub struct RecComponent {
    /// Functions belonging to the component (the SCC).
    pub members: BTreeSet<FuncId>,
    /// Functions callable from outside the component.
    pub entries: BTreeSet<FuncId>,
    /// Header functions: calls to (and returns from) these iterate the
    /// recursive loop.
    pub headers: BTreeSet<FuncId>,
}

/// The recursive-component-set of a whole program's (dynamic) call graph.
#[derive(Debug, Clone, Default)]
pub struct RecursiveComponentSet {
    /// All components (typically zero or one — recursion is rare in
    /// performance-critical code, as the paper notes about Rodinia).
    pub components: Vec<RecComponent>,
    comp_of: HashMap<FuncId, RecCompIdx>,
}

impl RecursiveComponentSet {
    /// Build from the (dynamic) call graph. `root` is the program entry
    /// function; it counts as externally-callable.
    pub fn build(
        funcs: &BTreeSet<FuncId>,
        edges: &BTreeSet<(FuncId, FuncId)>,
        root: FuncId,
    ) -> RecursiveComponentSet {
        let ids: Vec<FuncId> = funcs.iter().copied().collect();
        let index_of: BTreeMap<FuncId, usize> =
            ids.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        let mut g = DiGraph::new(ids.len());
        for &(u, v) in edges {
            if let (Some(&iu), Some(&iv)) = (index_of.get(&u), index_of.get(&v)) {
                g.add_edge(iu, iv);
            }
        }
        g.dedup();

        let (_, comps) = tarjan_scc(&g);
        let mut out = RecursiveComponentSet::default();

        for members in comps.iter().filter(|m| component_has_cycle(&g, m)) {
            let member_set: BTreeSet<usize> = members.iter().copied().collect();
            // Entries: in-edge from outside the SCC, or the program root.
            let mut entries: BTreeSet<usize> = BTreeSet::new();
            for (u, v) in g.edges() {
                if member_set.contains(&v) && !member_set.contains(&u) {
                    entries.insert(v);
                }
            }
            if let Some(&r) = index_of.get(&root) {
                if member_set.contains(&r) {
                    entries.insert(r);
                }
            }
            if entries.is_empty() {
                // Unreachable cycle; keep it well-formed anyway.
                entries.insert(members[0]);
            }

            // Header accumulation: repeatedly pick an entry of a remaining
            // cyclic sub-SCC and delete its incoming intra-component edges.
            let mut headers: BTreeSet<usize> = BTreeSet::new();
            let mut live_edges: BTreeSet<(usize, usize)> = g
                .edges()
                .filter(|(u, v)| member_set.contains(u) && member_set.contains(v))
                .collect();
            loop {
                // Sub-SCCs of the remaining intra-component graph.
                let mut sub = DiGraph::new(ids.len());
                for &(u, v) in &live_edges {
                    sub.add_edge(u, v);
                }
                let (_, sub_comps) = tarjan_scc(&sub);
                let mut progressed = false;
                for sc in sub_comps
                    .iter()
                    .filter(|sc| sc.iter().all(|m| member_set.contains(m)))
                {
                    if !component_has_cycle(&sub, sc) {
                        continue;
                    }
                    let sc_set: BTreeSet<usize> = sc.iter().copied().collect();
                    // Entries of the sub-SCC: in-edges from outside it (using
                    // the full graph so outer callers count), plus the
                    // component entries that are members.
                    let mut sc_entries: BTreeSet<usize> = BTreeSet::new();
                    for (u, v) in g.edges() {
                        if sc_set.contains(&v) && !sc_set.contains(&u) {
                            sc_entries.insert(v);
                        }
                    }
                    for &e in &entries {
                        if sc_set.contains(&e) {
                            sc_entries.insert(e);
                        }
                    }
                    let h = sc_entries
                        .iter()
                        .copied()
                        .min_by_key(|&m| ids[m])
                        .unwrap_or(sc[0]);
                    headers.insert(h);
                    live_edges.retain(|&(_, v)| v != h);
                    progressed = true;
                    break; // re-run SCC after each removal for determinism
                }
                if !progressed {
                    break;
                }
            }

            let idx = RecCompIdx(out.components.len() as u32);
            for &m in members {
                out.comp_of.insert(ids[m], idx);
            }
            out.components.push(RecComponent {
                members: members.iter().map(|&m| ids[m]).collect(),
                entries: entries.iter().map(|&m| ids[m]).collect(),
                headers: headers.iter().map(|&m| ids[m]).collect(),
            });
        }
        out
    }

    /// The recursive component a function belongs to, if any.
    pub fn component_of(&self, f: FuncId) -> Option<RecCompIdx> {
        self.comp_of.get(&f).copied()
    }

    /// Component lookup.
    pub fn info(&self, c: RecCompIdx) -> &RecComponent {
        &self.components[c.0 as usize]
    }

    /// True if `f` is an entry of its component.
    pub fn is_entry(&self, f: FuncId) -> bool {
        self.component_of(f)
            .map(|c| self.info(c).entries.contains(&f))
            .unwrap_or(false)
    }

    /// True if `f` is a header of its component.
    pub fn is_header(&self, f: FuncId) -> bool {
        self.component_of(f)
            .map(|c| self.info(c).headers.contains(&f))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(i: u32) -> FuncId {
        FuncId(i)
    }

    fn build(funcs: &[u32], edges: &[(u32, u32)], root: u32) -> RecursiveComponentSet {
        let fs: BTreeSet<FuncId> = funcs.iter().map(|&f| fid(f)).collect();
        let es: BTreeSet<(FuncId, FuncId)> = edges.iter().map(|&(u, v)| (fid(u), fid(v))).collect();
        RecursiveComponentSet::build(&fs, &es, fid(root))
    }

    #[test]
    fn acyclic_cg_has_no_components() {
        let r = build(&[0, 1, 2], &[(0, 1), (0, 2), (1, 2)], 0);
        assert!(r.components.is_empty());
        assert_eq!(r.component_of(fid(1)), None);
    }

    /// Self-recursion (the paper's Fig. 3 Ex. 2: B calls B).
    #[test]
    fn self_recursion_single_header() {
        // M=0 calls B=1 and D=2; B calls B and C=3; D calls C.
        let r = build(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 1), (1, 3), (2, 3)], 0);
        assert_eq!(r.components.len(), 1);
        let c = r.info(RecCompIdx(0));
        assert_eq!(c.members.iter().map(|f| f.0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(c.entries.iter().map(|f| f.0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(c.headers.iter().map(|f| f.0).collect::<Vec<_>>(), vec![1]);
        assert!(r.is_entry(fid(1)));
        assert!(r.is_header(fid(1)));
        assert!(!r.is_header(fid(3)));
    }

    /// The paper's Fig. 2c/2d shape: entries = {B}, headers = {B, C}.
    /// Component {B=1, C=2} with B→C, C→B and a self-cycle left after
    /// removing edges to B (C→C).
    #[test]
    fn figure2_multi_header_component() {
        let r = build(&[0, 1, 2], &[(0, 1), (1, 2), (2, 1), (2, 2)], 0);
        assert_eq!(r.components.len(), 1);
        let c = r.info(RecCompIdx(0));
        assert_eq!(
            c.members.iter().map(|f| f.0).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(c.entries.iter().map(|f| f.0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(
            c.headers.iter().map(|f| f.0).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    /// Mutual recursion A↔B: one header suffices.
    #[test]
    fn mutual_recursion_one_header() {
        let r = build(&[0, 1, 2], &[(0, 1), (1, 2), (2, 1)], 0);
        assert_eq!(r.components.len(), 1);
        let c = r.info(RecCompIdx(0));
        assert_eq!(c.members.len(), 2);
        assert_eq!(c.headers.len(), 1);
        assert_eq!(c.headers.iter().next().unwrap().0, 1);
    }

    /// Root inside a cycle counts as an entry.
    #[test]
    fn root_is_entry() {
        let r = build(&[0, 1], &[(0, 1), (1, 0)], 0);
        assert_eq!(r.components.len(), 1);
        assert!(r.is_entry(fid(0)));
    }

    /// Two independent recursive components.
    #[test]
    fn two_components() {
        let r = build(
            &[0, 1, 2, 3, 4],
            &[(0, 1), (1, 1), (0, 3), (3, 4), (4, 3)],
            0,
        );
        assert_eq!(r.components.len(), 2);
        let ca = r.component_of(fid(1)).unwrap();
        let cb = r.component_of(fid(3)).unwrap();
        assert_ne!(ca, cb);
        assert_eq!(r.component_of(fid(4)), Some(cb));
    }
}
