//! Pass 1 of the paper's "Instrumentation I": record the *dynamic* CFG of
//! every executed function and the dynamic call graph, then build the
//! loop-nesting forests and the recursive-component-set.
//!
//! Only executed blocks and edges are analyzed — the paper highlights this
//! as an advantage over static analysis for large programs with small hot
//! regions.

use crate::loop_forest::LoopForest;
use crate::recursive::RecursiveComponentSet;
use polyir::{BlockRef, FuncId, InstrRef, LocalBlockId, Program, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Dynamic CFG of one function: observed blocks and local edges.
#[derive(Debug, Clone, Default)]
pub struct DynCfg {
    /// Blocks that executed at least one instruction or control event.
    pub blocks: BTreeSet<LocalBlockId>,
    /// Observed local jump edges.
    pub edges: BTreeSet<(LocalBlockId, LocalBlockId)>,
}

/// [`polyvm::EventSink`] that records dynamic CFGs and the call graph.
#[derive(Debug, Default)]
pub struct StructureRecorder {
    /// Per-function dynamic CFG.
    pub cfgs: BTreeMap<FuncId, DynCfg>,
    /// Dynamic call-graph edges (caller function → callee function).
    pub cg_edges: BTreeSet<(FuncId, FuncId)>,
    /// Functions observed executing.
    pub funcs: BTreeSet<FuncId>,
    last_block: Option<BlockRef>,
}

impl StructureRecorder {
    /// Fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch_block(&mut self, b: BlockRef) {
        // Cache the last touched block: the exec stream revisits the same
        // block for every instruction.
        if self.last_block == Some(b) {
            return;
        }
        self.last_block = Some(b);
        self.funcs.insert(b.func);
        self.cfgs.entry(b.func).or_default().blocks.insert(b.block);
    }
}

impl polyvm::EventSink for StructureRecorder {
    fn local_jump(&mut self, from: BlockRef, to: BlockRef) {
        debug_assert_eq!(from.func, to.func);
        self.touch_block(from);
        self.touch_block(to);
        self.cfgs
            .entry(from.func)
            .or_default()
            .edges
            .insert((from.block, to.block));
    }

    fn call(&mut self, callsite: BlockRef, callee: FuncId, entry: BlockRef) {
        self.touch_block(callsite);
        self.touch_block(entry);
        self.cg_edges.insert((callsite.func, callee));
    }

    fn ret(&mut self, _from: FuncId, to: Option<BlockRef>) {
        if let Some(b) = to {
            self.touch_block(b);
        }
        self.last_block = to;
    }

    fn exec(&mut self, instr: InstrRef, _value: Option<Value>) {
        self.touch_block(instr.block);
    }
}

/// Stage-1 output: loop forests for every executed function plus the
/// recursive-component-set — the "interprocedural loop context tree" inputs
/// of Fig. 1.
#[derive(Debug, Default)]
pub struct StaticStructure {
    /// Loop-nesting forest per executed function.
    pub forests: BTreeMap<FuncId, LoopForest>,
    /// Recursive components of the dynamic call graph.
    pub rcs: RecursiveComponentSet,
    /// The recorded dynamic CFGs (kept for reporting).
    pub cfgs: BTreeMap<FuncId, DynCfg>,
}

impl StaticStructure {
    /// Analyze a completed recording. `prog` supplies entry-function and
    /// entry-block information.
    pub fn analyze(prog: &Program, rec: StructureRecorder) -> StaticStructure {
        let mut forests = BTreeMap::new();
        for (&f, cfg) in &rec.cfgs {
            let entry = prog.func(f).entry();
            forests.insert(f, LoopForest::build(&cfg.blocks, &cfg.edges, entry));
        }
        let root = prog.entry.unwrap_or(FuncId(0));
        let rcs = RecursiveComponentSet::build(&rec.funcs, &rec.cg_edges, root);
        StaticStructure {
            forests,
            rcs,
            cfgs: rec.cfgs,
        }
    }

    /// Forest lookup; panics if the function never executed.
    pub fn forest(&self, f: FuncId) -> &LoopForest {
        &self.forests[&f]
    }

    /// Maximum loop depth observed in any single function ("ld-bin" is
    /// derived later from the interprocedural schedule tree; this is the
    /// intraprocedural bound).
    pub fn max_cfg_loop_depth(&self) -> u32 {
        self.forests
            .values()
            .map(|f| f.max_depth())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyir::build::ProgramBuilder;
    use polyir::IBinOp;
    use polyvm::Vm;

    fn profiled(p: &Program) -> StaticStructure {
        let mut rec = StructureRecorder::new();
        Vm::new(p).run(&[], &mut rec).unwrap();
        StaticStructure::analyze(p, rec)
    }

    #[test]
    fn records_loop_cfg() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.func("main", 0);
        let acc = f.const_i(0);
        f.for_loop("L", 0i64, 5i64, 1, |f, i| {
            f.iop_to(acc, IBinOp::Add, acc, i);
        });
        f.ret(Some(acc.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let s = profiled(&p);
        let forest = s.forest(fid);
        assert_eq!(forest.loops.len(), 1);
        // header is block 1 in the canonical for_loop shape
        assert_eq!(forest.loops[0].header, LocalBlockId(1));
        assert_eq!(s.max_cfg_loop_depth(), 1);
        assert!(s.rcs.components.is_empty());
    }

    #[test]
    fn only_executed_paths_recorded() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.func("main", 0);
        let c = f.const_i(1); // always true
        let t = f.block("taken");
        let e = f.block("nottaken");
        f.br(c, t, e);
        f.switch_to(t);
        f.ret(None);
        f.switch_to(e);
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let s = profiled(&p);
        let cfg = &s.cfgs[&fid];
        assert!(cfg.blocks.contains(&LocalBlockId(1)));
        assert!(
            !cfg.blocks.contains(&LocalBlockId(2)),
            "untaken branch must be absent"
        );
    }

    #[test]
    fn call_graph_and_recursion_recorded() {
        let mut pb = ProgramBuilder::new("t");
        let r = pb.declare("rec", 1);
        let mut f = pb.func("rec", 1);
        let n = f.param(0);
        let c = f.icmp(polyir::CmpOp::Le, n, 0i64);
        let bb = f.block("base");
        let rb = f.block("go");
        f.br(c, bb, rb);
        f.switch_to(bb);
        f.ret(Some(n.into()));
        f.switch_to(rb);
        let n1 = f.sub(n, 1i64);
        let v = f.call(r, &[n1.into()]);
        f.ret(Some(v.into()));
        f.finish();
        let mut m = pb.func("main", 0);
        let five = m.const_i(5);
        let v = m.call(r, &[five.into()]);
        m.ret(Some(v.into()));
        let mid = m.finish();
        pb.set_entry(mid);
        let p = pb.finish();
        let s = profiled(&p);
        assert_eq!(s.rcs.components.len(), 1);
        assert!(s.rcs.is_header(r));
        assert!(s.rcs.is_entry(r));
        assert_eq!(s.rcs.component_of(mid), None);
    }
}
