//! Loop-event generation — Algorithms 1 and 2 of the paper.
//!
//! Pass 2 of "Instrumentation I": the raw control events (jump / call /
//! return) are translated online into *loop events* — entry `E`, iterate
//! `I`, exit `X` for CFG loops, their recursive-component counterparts
//! `Ec`/`Ic`/`Ir`/`Xr`, plus plain block `N`, call `C` and return `R`
//! events. These drive the dynamic-IIV update (Alg. 3, in `polyiiv`).
//!
//! The generator keeps the paper's `inLoops` stack of currently live loops,
//! the per-CFG-loop `visiting` flag, and the per-recursive-component
//! `stackcount` / `entry` state.

use crate::loop_forest::LoopIdx;
use crate::recorder::StaticStructure;
use crate::recursive::RecCompIdx;
use polyir::{BlockRef, FuncId};

/// A live loop on the `inLoops` stack: either a CFG loop of a specific
/// function or a recursive component of the call graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LoopRef {
    /// A CFG loop `l` of function `f`.
    Cfg(FuncId, LoopIdx),
    /// A recursive component.
    Rec(RecCompIdx),
}

impl LoopRef {
    /// True for CFG loops (`L.isCFG` in the paper's pseudo-code).
    pub fn is_cfg(&self) -> bool {
        matches!(self, LoopRef::Cfg(..))
    }
}

/// Loop events, matching the paper's emitted-event alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopEvent {
    /// `E(L, H)` — entry into CFG loop `l`; `block` is its header.
    Enter {
        /// The entered loop.
        l: LoopRef,
        /// Header block.
        block: BlockRef,
    },
    /// `Ec(L, B)` — call to a component entry; enters the recursive loop.
    EnterRec {
        /// The entered recursive loop.
        l: LoopRef,
        /// Callee entry block.
        block: BlockRef,
    },
    /// `I(L, H)` — new iteration of CFG loop `l` (back-edge to header).
    Iter {
        /// The iterated loop.
        l: LoopRef,
        /// Header block.
        block: BlockRef,
    },
    /// `Ic(L, B)` — call to a component header: recursive iteration.
    IterCall {
        /// The iterated recursive loop.
        l: LoopRef,
        /// Callee entry block.
        block: BlockRef,
    },
    /// `Ir(L, B)` — return from a component header: recursive iteration.
    IterRet {
        /// The iterated recursive loop.
        l: LoopRef,
        /// Block execution resumes in.
        block: BlockRef,
    },
    /// `X(L, B)` — exit of CFG loop `l`, jumping to `block`.
    Exit {
        /// The exited loop.
        l: LoopRef,
        /// Jump target outside the loop.
        block: BlockRef,
    },
    /// `Xr(L, B)` — the entering call of a recursive loop unstacked.
    ExitRec {
        /// The exited recursive loop.
        l: LoopRef,
        /// Block execution resumes in.
        block: BlockRef,
    },
    /// `N(B)` — local jump to `block`.
    Block(BlockRef),
    /// `C(F, B)` — plain call; `block` is the callee entry block.
    Call {
        /// Callee function.
        callee: FuncId,
        /// Callee entry block.
        block: BlockRef,
    },
    /// `R(B)` — plain return; `block` is where execution resumes.
    Ret(BlockRef),
}

#[derive(Debug, Clone, Copy, Default)]
struct RecState {
    stackcount: i64,
    entry: Option<FuncId>,
}

/// Online translator from raw control events to [`LoopEvent`]s.
#[derive(Debug)]
pub struct LoopEventGen<'s> {
    structure: &'s StaticStructure,
    in_loops: Vec<LoopRef>,
    /// `visiting` flags, indexed per function by loop index.
    visiting: std::collections::HashMap<(FuncId, LoopIdx), bool>,
    rec: Vec<RecState>,
}

impl<'s> LoopEventGen<'s> {
    /// New generator over a completed stage-1 structure.
    pub fn new(structure: &'s StaticStructure) -> Self {
        LoopEventGen {
            structure,
            in_loops: Vec::new(),
            visiting: std::collections::HashMap::new(),
            rec: vec![RecState::default(); structure.rcs.components.len()],
        }
    }

    /// The current `inLoops` stack (outermost first).
    pub fn live_loops(&self) -> &[LoopRef] {
        &self.in_loops
    }

    fn is_visiting(&self, f: FuncId, l: LoopIdx) -> bool {
        self.visiting.get(&(f, l)).copied().unwrap_or(false)
    }

    /// Alg. 1: process a local jump; appends emitted events to `out`.
    pub fn on_jump(&mut self, _from: BlockRef, to: BlockRef, out: &mut Vec<LoopEvent>) {
        let forest = self.structure.forest(to.func);
        // Exit live CFG loops of this function that the target lies outside.
        while let Some(&top) = self.in_loops.last() {
            match top {
                LoopRef::Cfg(f, l)
                    if f == to.func && !self.structure.forest(f).contains(l, to.block) =>
                {
                    self.visiting.insert((f, l), false);
                    self.in_loops.pop();
                    out.push(LoopEvent::Exit { l: top, block: to });
                }
                _ => break,
            }
        }
        if let Some(l) = forest.loop_of_header(to.block) {
            let lref = LoopRef::Cfg(to.func, l);
            if !self.is_visiting(to.func, l) {
                self.visiting.insert((to.func, l), true);
                self.in_loops.push(lref);
                out.push(LoopEvent::Enter { l: lref, block: to });
            } else {
                out.push(LoopEvent::Iter { l: lref, block: to });
            }
        }
        out.push(LoopEvent::Block(to));
    }

    /// Alg. 2 (call half): process a call; appends emitted events to `out`.
    pub fn on_call(
        &mut self,
        _callsite: BlockRef,
        callee: FuncId,
        entry: BlockRef,
        out: &mut Vec<LoopEvent>,
    ) {
        if let Some(comp) = self.structure.rcs.component_of(callee) {
            let lref = LoopRef::Rec(comp);
            let state = &self.rec[comp.0 as usize];
            if self.structure.rcs.is_entry(callee) && state.entry.is_none() {
                self.rec[comp.0 as usize].entry = Some(callee);
                self.in_loops.push(lref);
                out.push(LoopEvent::EnterRec {
                    l: lref,
                    block: entry,
                });
                return;
            }
            if self.structure.rcs.is_header(callee) {
                // Exit CFG loops still live inside the component's functions:
                // a new recursive iteration begins.
                let members = &self.structure.rcs.info(comp).members;
                while let Some(&top) = self.in_loops.last() {
                    match top {
                        LoopRef::Cfg(f, l) if members.contains(&f) => {
                            self.visiting.insert((f, l), false);
                            self.in_loops.pop();
                            out.push(LoopEvent::Exit {
                                l: top,
                                block: entry,
                            });
                        }
                        _ => break,
                    }
                }
                self.rec[comp.0 as usize].stackcount += 1;
                out.push(LoopEvent::IterCall {
                    l: lref,
                    block: entry,
                });
                return;
            }
        }
        out.push(LoopEvent::Call {
            callee,
            block: entry,
        });
    }

    /// Alg. 2 (return half): process a return from `from`; `to` is the
    /// caller block (None when the root frame returns — state is cleaned but
    /// nothing user-visible is emitted).
    pub fn on_ret(&mut self, from: FuncId, to: Option<BlockRef>, out: &mut Vec<LoopEvent>) {
        // Exit CFG loops of the returning function that are still live.
        while let Some(&top) = self.in_loops.last() {
            match top {
                LoopRef::Cfg(f, l) if f == from => {
                    self.visiting.insert((f, l), false);
                    self.in_loops.pop();
                    if let Some(b) = to {
                        out.push(LoopEvent::Exit { l: top, block: b });
                    }
                }
                _ => break,
            }
        }
        if let Some(comp) = self.structure.rcs.component_of(from) {
            let lref = LoopRef::Rec(comp);
            let state = self.rec[comp.0 as usize];
            if self.structure.rcs.is_entry(from)
                && state.stackcount == 0
                && state.entry == Some(from)
            {
                self.rec[comp.0 as usize].entry = None;
                // Pop the recursive loop (pushed at Ec).
                if self.in_loops.last() == Some(&lref) {
                    self.in_loops.pop();
                }
                if let Some(b) = to {
                    out.push(LoopEvent::ExitRec { l: lref, block: b });
                }
                return;
            }
            if self.structure.rcs.is_header(from) {
                self.rec[comp.0 as usize].stackcount -= 1;
                if let Some(b) = to {
                    out.push(LoopEvent::IterRet { l: lref, block: b });
                }
                return;
            }
        }
        if let Some(b) = to {
            out.push(LoopEvent::Ret(b));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::StructureRecorder;
    use polyir::build::ProgramBuilder;
    use polyir::{IBinOp, Program};
    use polyvm::{EventSink, Vm};

    /// Adapter: runs raw events through the generator, collecting loop events.
    struct Collect<'s> {
        gen: LoopEventGen<'s>,
        out: Vec<LoopEvent>,
    }
    impl EventSink for Collect<'_> {
        fn local_jump(&mut self, from: BlockRef, to: BlockRef) {
            self.gen.on_jump(from, to, &mut self.out);
        }
        fn call(&mut self, callsite: BlockRef, callee: FuncId, entry: BlockRef) {
            self.gen.on_call(callsite, callee, entry, &mut self.out);
        }
        fn ret(&mut self, from: FuncId, to: Option<BlockRef>) {
            self.gen.on_ret(from, to, &mut self.out);
        }
    }

    fn loop_events(p: &Program) -> Vec<LoopEvent> {
        let mut rec = StructureRecorder::new();
        Vm::new(p).run(&[], &mut rec).unwrap();
        let s = StaticStructure::analyze(p, rec);
        let mut c = Collect {
            gen: LoopEventGen::new(&s),
            out: Vec::new(),
        };
        Vm::new(p).run(&[], &mut c).unwrap();
        c.out
    }

    fn counts(evs: &[LoopEvent]) -> (usize, usize, usize) {
        let e = evs
            .iter()
            .filter(|e| matches!(e, LoopEvent::Enter { .. }))
            .count();
        let i = evs
            .iter()
            .filter(|e| matches!(e, LoopEvent::Iter { .. }))
            .count();
        let x = evs
            .iter()
            .filter(|e| matches!(e, LoopEvent::Exit { .. }))
            .count();
        (e, i, x)
    }

    #[test]
    fn single_loop_event_counts() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.func("main", 0);
        let acc = f.const_i(0);
        f.for_loop("L", 0i64, 5i64, 1, |f, i| {
            f.iop_to(acc, IBinOp::Add, acc, i);
        });
        f.ret(Some(acc.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let evs = loop_events(&p);
        // one loop: 1 entry, 5 iterations (6 header visits: the last one
        // fails the compare and exits), 1 exit
        assert_eq!(counts(&evs), (1, 5, 1));
    }

    #[test]
    fn nested_loops_inner_exits_on_outer_iter() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.func("main", 0);
        let acc = f.const_i(0);
        f.for_loop("Li", 0i64, 3i64, 1, |f, _i| {
            f.for_loop("Lj", 0i64, 2i64, 1, |f, j| {
                f.iop_to(acc, IBinOp::Add, acc, j);
            });
        });
        f.ret(Some(acc.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let evs = loop_events(&p);
        // inner loop entered 3 times, exited 3 times; outer once.
        // Iterations: outer 3 (header visits 4) + inner 3×2 (visits 3 each).
        assert_eq!(counts(&evs), (1 + 3, 3 + 3 * 2, 1 + 3));
    }

    /// The paper's Fig. 3 Ex. 1: a loop in A calls B which has its own loop.
    /// The callee's loop events must nest inside the caller's without the
    /// caller's loop being exited.
    #[test]
    fn interprocedural_nesting() {
        let mut pb = ProgramBuilder::new("ex1");
        let mut b = pb.func("B", 0);
        let acc = b.const_i(0);
        b.for_loop("L2", 0i64, 2i64, 1, |f, j| {
            f.iop_to(acc, IBinOp::Add, acc, j);
        });
        b.ret(Some(acc.into()));
        let b_id = b.finish();
        let mut a = pb.func("A", 0);
        a.for_loop("L1", 0i64, 2i64, 1, |f, _| {
            f.call(b_id, &[]);
        });
        a.ret(None);
        let a_id = a.finish();
        let mut m = pb.func("main", 0);
        m.call_void(a_id, &[]);
        m.ret(None);
        let mid = m.finish();
        pb.set_entry(mid);
        let p = pb.finish();
        let evs = loop_events(&p);
        // L1 entered once; L2 entered twice (once per call to B).
        let enters: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                LoopEvent::Enter { block, .. } => Some(block.func),
                _ => None,
            })
            .collect();
        assert_eq!(enters.iter().filter(|f| **f == a_id).count(), 1);
        assert_eq!(enters.iter().filter(|f| **f == b_id).count(), 2);
        // plain calls to B emit C events
        let calls = evs
            .iter()
            .filter(|e| matches!(e, LoopEvent::Call { callee, .. } if *callee == b_id))
            .count();
        assert_eq!(calls, 2);
    }

    /// Self recursion: f(3) → f(2) → f(1) → f(0); one Ec, then Ic per deeper
    /// call, Ir per inner return, one Xr when the entering call unstacks.
    #[test]
    fn recursion_events() {
        let mut pb = ProgramBuilder::new("rec");
        let r = pb.declare("r", 1);
        let mut f = pb.func("r", 1);
        let n = f.param(0);
        let c = f.icmp(polyir::CmpOp::Le, n, 0i64);
        let bb = f.block("base");
        let go = f.block("go");
        f.br(c, bb, go);
        f.switch_to(bb);
        f.ret(Some(n.into()));
        f.switch_to(go);
        let n1 = f.sub(n, 1i64);
        let v = f.call(r, &[n1.into()]);
        f.ret(Some(v.into()));
        f.finish();
        let mut m = pb.func("main", 0);
        let three = m.const_i(3);
        let v = m.call(r, &[three.into()]);
        m.ret(Some(v.into()));
        let mid = m.finish();
        pb.set_entry(mid);
        let p = pb.finish();
        let evs = loop_events(&p);
        let ec = evs
            .iter()
            .filter(|e| matches!(e, LoopEvent::EnterRec { .. }))
            .count();
        let ic = evs
            .iter()
            .filter(|e| matches!(e, LoopEvent::IterCall { .. }))
            .count();
        let ir = evs
            .iter()
            .filter(|e| matches!(e, LoopEvent::IterRet { .. }))
            .count();
        let xr = evs
            .iter()
            .filter(|e| matches!(e, LoopEvent::ExitRec { .. }))
            .count();
        assert_eq!((ec, ic, ir, xr), (1, 3, 3, 1));
    }

    /// A function called both inside and outside a recursion (Fig. 3 Ex. 2's
    /// C) emits plain C events in both contexts.
    #[test]
    fn helper_call_inside_recursion_stays_plain() {
        let mut pb = ProgramBuilder::new("ex2");
        let mut cf = pb.func("C", 0);
        cf.const_i(1);
        cf.ret(None);
        let c_id = cf.finish();
        let b = pb.declare("B", 1);
        let mut bf = pb.func("B", 1);
        let n = bf.param(0);
        bf.call_void(c_id, &[]);
        let cnd = bf.icmp(polyir::CmpOp::Le, n, 0i64);
        let done = bf.block("done");
        let go = bf.block("go");
        bf.br(cnd, done, go);
        bf.switch_to(go);
        let n1 = bf.sub(n, 1i64);
        bf.call_void(b, &[n1.into()]);
        bf.jump(done);
        bf.switch_to(done);
        bf.ret(None);
        bf.finish();
        let mut m = pb.func("main", 0);
        m.call_void(c_id, &[]); // call outside the recursion
        let two = m.const_i(2);
        m.call_void(b, &[two.into()]);
        m.ret(None);
        let mid = m.finish();
        pb.set_entry(mid);
        let p = pb.finish();
        let evs = loop_events(&p);
        let plain_calls_to_c = evs
            .iter()
            .filter(|e| matches!(e, LoopEvent::Call { callee, .. } if *callee == c_id))
            .count();
        assert_eq!(plain_calls_to_c, 4); // once from main, once per B activation
        let ec = evs
            .iter()
            .filter(|e| matches!(e, LoopEvent::EnterRec { .. }))
            .count();
        assert_eq!(ec, 1);
    }

    /// Early return from inside a CFG loop exits the loop via the return path.
    #[test]
    fn early_return_exits_loop() {
        let mut pb = ProgramBuilder::new("early");
        let mut g = pb.func("g", 0);
        let iv = g.const_i(0);
        let header = g.block("h");
        let body = g.block("b");
        let out = g.block("out");
        g.jump(header);
        g.switch_to(header);
        let c = g.icmp(polyir::CmpOp::Lt, iv, 10i64);
        g.br(c, body, out);
        g.switch_to(body);
        let stop = g.icmp(polyir::CmpOp::Eq, iv, 3i64);
        let retb = g.block("ret");
        let cont = g.block("cont");
        g.br(stop, retb, cont);
        g.switch_to(retb);
        g.ret(None); // return from *inside* the loop
        g.switch_to(cont);
        g.iop_to(iv, IBinOp::Add, iv, 1i64);
        g.jump(header);
        g.switch_to(out);
        g.ret(None);
        let g_id = g.finish();
        let mut m = pb.func("main", 0);
        m.call_void(g_id, &[]);
        m.ret(None);
        let mid = m.finish();
        pb.set_entry(mid);
        let p = pb.finish();
        let evs = loop_events(&p);
        let (e, i, x) = counts(&evs);
        assert_eq!(e, 1);
        assert_eq!(i, 3);
        assert_eq!(x, 1, "return must exit the live loop");
    }
}
