//! Loop-nesting-forest construction (§3.1 of the paper).
//!
//! Follows Ramalingam's recursive characterization, which is what Poly-Prof
//! uses (Havlak semantics): every SCC of the CFG containing a cycle is the
//! region of an outermost loop; one entry node is designated the *header*;
//! edges inside the loop targeting the header are *back-edges*; removing them
//! exposes the next nesting level, recursively. Irreducible (multi-entry)
//! loops are handled naturally — the non-chosen entries seed inner loops on
//! the next round if cycles remain.
//!
//! The forest also carries the *static indices* of Kelly's mapping (§4,
//! Fig. 4): within each region (the function's top level or a loop body with
//! back-edges removed), the reduced DAG of sub-loops and plain blocks is
//! topologically numbered; those numbers order schedule-tree siblings.

use crate::graph::{component_has_cycle, tarjan_scc, DiGraph};
use polyir::LocalBlockId;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Index of a loop within a [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopIdx(pub u32);

/// One natural (or irreducible) loop.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// The designated header block.
    pub header: LocalBlockId,
    /// Enclosing loop, if any.
    pub parent: Option<LoopIdx>,
    /// Directly nested loops.
    pub children: Vec<LoopIdx>,
    /// Nesting depth; 1 for outermost loops.
    pub depth: u32,
    /// All blocks of the loop region (including nested loops' blocks).
    pub blocks: BTreeSet<LocalBlockId>,
    /// Edges within the region that target the header.
    pub back_edges: Vec<(LocalBlockId, LocalBlockId)>,
}

/// A node of the reduced DAG used for static numbering: either a block that
/// belongs directly to a region, or a whole sub-loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchedNodeKey {
    /// A plain basic block.
    Block(LocalBlockId),
    /// A contracted sub-loop.
    Loop(LoopIdx),
}

/// The loop-nesting forest of one function's (dynamic) CFG.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// All loops; parents precede children.
    pub loops: Vec<LoopInfo>,
    header_to_loop: HashMap<LocalBlockId, LoopIdx>,
    innermost: HashMap<LocalBlockId, LoopIdx>,
    /// Kelly static index of every block / loop within its parent region.
    pub static_index: HashMap<SchedNodeKey, u32>,
}

impl LoopForest {
    /// Build the forest of a function's *static* CFG: every block, every
    /// terminator successor edge — as opposed to the dynamically observed
    /// subgraph recorded by `StructureRecorder`. The static pre-pass analyses
    /// code that may never execute, so it needs the full graph; the dynamic
    /// forest is then checked to be a refinement of this one by the DDG lint.
    pub fn from_function(f: &polyir::Function) -> LoopForest {
        let blocks: BTreeSet<LocalBlockId> = (0..f.blocks.len())
            .map(|b| LocalBlockId(b as u32))
            .collect();
        let mut edges: BTreeSet<(LocalBlockId, LocalBlockId)> = BTreeSet::new();
        for (b, blk) in f.blocks.iter().enumerate() {
            for succ in blk.term.successors() {
                edges.insert((LocalBlockId(b as u32), succ));
            }
        }
        LoopForest::build(&blocks, &edges, f.entry())
    }

    /// Build the forest for a CFG given as an edge set over observed blocks.
    /// `entry` is the function entry block (counts as a region entry when it
    /// sits inside an SCC).
    pub fn build(
        blocks: &BTreeSet<LocalBlockId>,
        edges: &BTreeSet<(LocalBlockId, LocalBlockId)>,
        entry: LocalBlockId,
    ) -> LoopForest {
        let ids: Vec<LocalBlockId> = blocks.iter().copied().collect();
        let index_of: BTreeMap<LocalBlockId, usize> =
            ids.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let dense_edges: Vec<(usize, usize)> = edges
            .iter()
            .filter(|(u, v)| index_of.contains_key(u) && index_of.contains_key(v))
            .map(|(u, v)| (index_of[u], index_of[v]))
            .collect();
        let mut forest = LoopForest::default();
        let all: Vec<usize> = (0..ids.len()).collect();
        let entry_dense = index_of.get(&entry).copied();
        forest.build_region(
            &ids,
            &all,
            &dense_edges,
            entry_dense.map(|e| vec![e]).unwrap_or_default(),
            None,
            1,
        );
        forest
    }

    /// Recursively process one region: condense, number, recurse into cyclic
    /// components.
    fn build_region(
        &mut self,
        ids: &[LocalBlockId],
        nodes: &[usize],
        edges: &[(usize, usize)],
        region_entries: Vec<usize>,
        parent: Option<LoopIdx>,
        depth: u32,
    ) {
        // Dense re-map of the region.
        let local_of: BTreeMap<usize, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut g = DiGraph::new(nodes.len());
        for &(u, v) in edges {
            if let (Some(&lu), Some(&lv)) = (local_of.get(&u), local_of.get(&v)) {
                g.add_edge(lu, lv);
            }
        }
        g.dedup();
        let (comp_of, comps) = tarjan_scc(&g);

        // Condensation + deterministic topo order (Kahn, min original block
        // id first) for static numbering.
        let mut cg = DiGraph::new(comps.len());
        for (u, v) in g.edges() {
            if comp_of[u] != comp_of[v] {
                cg.add_edge(comp_of[u], comp_of[v]);
            }
        }
        cg.dedup();
        let comp_min: Vec<usize> = comps.iter().map(|c| nodes[c[0]]).collect();
        let order = kahn_by_key(&cg, &comp_min);

        for (static_idx, &c) in order.iter().enumerate() {
            let members = &comps[c];
            if component_has_cycle(&g, members) {
                // Entries: members with an in-edge from outside the SCC, or
                // that are region entries.
                let member_set: BTreeSet<usize> = members.iter().copied().collect();
                let mut entries: BTreeSet<usize> = BTreeSet::new();
                for (u, v) in g.edges() {
                    if member_set.contains(&v) && !member_set.contains(&u) {
                        entries.insert(v);
                    }
                }
                for &e in &region_entries {
                    if let Some(&le) = local_of.get(&e) {
                        if member_set.contains(&le) {
                            entries.insert(le);
                        }
                    }
                }
                // Header = entry with the smallest block id; fall back to the
                // smallest member for completely unreachable cycles.
                let header_local = entries
                    .iter()
                    .copied()
                    .min_by_key(|&m| ids[nodes[m]])
                    .unwrap_or(members[0]);
                let header_block = ids[nodes[header_local]];

                let loop_idx = LoopIdx(self.loops.len() as u32);
                let blocks: BTreeSet<LocalBlockId> =
                    members.iter().map(|&m| ids[nodes[m]]).collect();
                let back_edges: Vec<(LocalBlockId, LocalBlockId)> = g
                    .edges()
                    .filter(|&(u, v)| {
                        member_set.contains(&u) && member_set.contains(&v) && v == header_local
                    })
                    .map(|(u, v)| (ids[nodes[u]], ids[nodes[v]]))
                    .collect();
                self.loops.push(LoopInfo {
                    header: header_block,
                    parent,
                    children: Vec::new(),
                    depth,
                    blocks: blocks.clone(),
                    back_edges,
                });
                if let Some(p) = parent {
                    self.loops[p.0 as usize].children.push(loop_idx);
                }
                self.header_to_loop.insert(header_block, loop_idx);
                for b in &blocks {
                    // Children recurse later and overwrite: creation order
                    // guarantees outer-before-inner.
                    self.innermost.insert(*b, loop_idx);
                }
                self.static_index
                    .insert(SchedNodeKey::Loop(loop_idx), static_idx as u32);

                // Recurse with back-edges (all edges to the header) removed.
                let inner_nodes: Vec<usize> = members.iter().map(|&m| nodes[m]).collect();
                let inner_edges: Vec<(usize, usize)> = g
                    .edges()
                    .filter(|&(u, v)| {
                        member_set.contains(&u) && member_set.contains(&v) && v != header_local
                    })
                    .map(|(u, v)| (nodes[u], nodes[v]))
                    .collect();
                self.build_region(
                    ids,
                    &inner_nodes,
                    &inner_edges,
                    vec![nodes[header_local]],
                    Some(loop_idx),
                    depth + 1,
                );
            } else {
                let b = ids[nodes[members[0]]];
                self.static_index
                    .insert(SchedNodeKey::Block(b), static_idx as u32);
            }
        }
    }

    /// The loop headed by block `b`, if `b` is a header.
    pub fn loop_of_header(&self, b: LocalBlockId) -> Option<LoopIdx> {
        self.header_to_loop.get(&b).copied()
    }

    /// The innermost loop containing `b` (None = top level).
    pub fn innermost(&self, b: LocalBlockId) -> Option<LoopIdx> {
        self.innermost.get(&b).copied()
    }

    /// Whether `b` belongs to the region of loop `l`.
    pub fn contains(&self, l: LoopIdx, b: LocalBlockId) -> bool {
        self.loops[l.0 as usize].blocks.contains(&b)
    }

    /// Loop lookup.
    pub fn info(&self, l: LoopIdx) -> &LoopInfo {
        &self.loops[l.0 as usize]
    }

    /// Maximum loop nesting depth in this function (0 = loop-free).
    pub fn max_depth(&self) -> u32 {
        self.loops.iter().map(|l| l.depth).max().unwrap_or(0)
    }

    /// Static (Kelly) index of a block or loop within its parent region.
    pub fn static_index_of(&self, k: SchedNodeKey) -> Option<u32> {
        self.static_index.get(&k).copied()
    }
}

/// Kahn topological order choosing, among ready components, the one whose
/// `key` is smallest (keys = smallest original block id of the component).
fn kahn_by_key(g: &DiGraph, key: &[usize]) -> Vec<usize> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.len();
    let mut indeg = vec![0usize; n];
    for (_, v) in g.edges() {
        indeg[v] += 1;
    }
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = (0..n)
        .filter(|&v| indeg[v] == 0)
        .map(|v| Reverse((key[v], v)))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse((_, u))) = heap.pop() {
        order.push(u);
        for &v in &g.succs[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                heap.push(Reverse((key[v], v)));
            }
        }
    }
    assert_eq!(order.len(), n, "condensation must be acyclic");
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(i: u32) -> LocalBlockId {
        LocalBlockId(i)
    }

    fn build(blocks: &[u32], edges: &[(u32, u32)], entry: u32) -> LoopForest {
        let bs: BTreeSet<LocalBlockId> = blocks.iter().map(|&b| bb(b)).collect();
        let es: BTreeSet<(LocalBlockId, LocalBlockId)> =
            edges.iter().map(|&(u, v)| (bb(u), bb(v))).collect();
        LoopForest::build(&bs, &es, bb(entry))
    }

    /// The paper's Fig. 2a/2b: A=0, B=1, C=2, D=3, E=4.
    /// Edges: A→B, B→C, B→D, C→D, D→C, D→B (back-edge of L1), C→E.
    /// Expected: L1 = {B,C,D} headed by B; nested L2 = {C,D} headed by C
    /// (C chosen among entries {C, D}); back-edge of L2 = (D, C).
    #[test]
    fn figure2_loop_nesting_tree() {
        let f = build(
            &[0, 1, 2, 3, 4],
            &[(0, 1), (1, 2), (1, 3), (2, 3), (3, 2), (3, 1), (2, 4)],
            0,
        );
        assert_eq!(f.loops.len(), 2);
        let l1 = f.loop_of_header(bb(1)).expect("L1 headed by B");
        let l2 = f.loop_of_header(bb(2)).expect("L2 headed by C");
        assert_eq!(f.info(l1).depth, 1);
        assert_eq!(f.info(l2).depth, 2);
        assert_eq!(f.info(l2).parent, Some(l1));
        assert_eq!(f.info(l1).children, vec![l2]);
        let l1_blocks: Vec<u32> = f.info(l1).blocks.iter().map(|b| b.0).collect();
        assert_eq!(l1_blocks, vec![1, 2, 3]);
        let l2_blocks: Vec<u32> = f.info(l2).blocks.iter().map(|b| b.0).collect();
        assert_eq!(l2_blocks, vec![2, 3]);
        assert_eq!(f.info(l1).back_edges, vec![(bb(3), bb(1))]);
        assert_eq!(f.info(l2).back_edges, vec![(bb(3), bb(2))]);
        // innermost: B in L1; C, D in L2; A, E in none
        assert_eq!(f.innermost(bb(1)), Some(l1));
        assert_eq!(f.innermost(bb(2)), Some(l2));
        assert_eq!(f.innermost(bb(3)), Some(l2));
        assert_eq!(f.innermost(bb(0)), None);
        assert_eq!(f.innermost(bb(4)), None);
        assert_eq!(f.max_depth(), 2);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let f = build(&[0, 1, 2], &[(0, 1), (1, 2)], 0);
        assert!(f.loops.is_empty());
        assert_eq!(f.max_depth(), 0);
        // static indices follow control-flow order
        assert_eq!(f.static_index_of(SchedNodeKey::Block(bb(0))), Some(0));
        assert_eq!(f.static_index_of(SchedNodeKey::Block(bb(1))), Some(1));
        assert_eq!(f.static_index_of(SchedNodeKey::Block(bb(2))), Some(2));
    }

    #[test]
    fn self_loop_is_a_loop() {
        let f = build(&[0, 1], &[(0, 0), (0, 1)], 0);
        assert_eq!(f.loops.len(), 1);
        let l = f.loop_of_header(bb(0)).unwrap();
        assert_eq!(f.info(l).back_edges, vec![(bb(0), bb(0))]);
    }

    /// Two sequential loops get sibling positions in source order.
    #[test]
    fn sequential_loops_static_indices() {
        // 0 → 1⟲ (1→2, 2→1) → 3⟲ (3→4, 4→3) → 5
        let f = build(
            &[0, 1, 2, 3, 4, 5],
            &[(0, 1), (1, 2), (2, 1), (2, 3), (3, 4), (4, 3), (4, 5)],
            0,
        );
        assert_eq!(f.loops.len(), 2);
        let la = f.loop_of_header(bb(1)).unwrap();
        let lb = f.loop_of_header(bb(3)).unwrap();
        assert_eq!(f.info(la).depth, 1);
        assert_eq!(f.info(lb).depth, 1);
        let ia = f.static_index_of(SchedNodeKey::Loop(la)).unwrap();
        let ib = f.static_index_of(SchedNodeKey::Loop(lb)).unwrap();
        let i0 = f.static_index_of(SchedNodeKey::Block(bb(0))).unwrap();
        let i5 = f.static_index_of(SchedNodeKey::Block(bb(5))).unwrap();
        assert!(i0 < ia && ia < ib && ib < i5);
    }

    /// Triple nesting: canonical for-loop shape per level.
    #[test]
    fn triple_nesting_depth() {
        // L1: 1..6, L2: 2..5, L3: {3}
        let f = build(
            &[0, 1, 2, 3, 4, 5, 6],
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 3), // L3 self-loop
                (3, 4),
                (4, 2), // back to L2 header
                (4, 5),
                (5, 1), // back to L1 header
                (5, 6),
            ],
            0,
        );
        assert_eq!(f.loops.len(), 3);
        assert_eq!(f.max_depth(), 3);
        let l3 = f.loop_of_header(bb(3)).unwrap();
        assert_eq!(f.info(l3).depth, 3);
        assert_eq!(f.innermost(bb(3)), Some(l3));
    }

    /// Irreducible region: a cycle entered at two nodes; the non-chosen entry
    /// may head an inner loop if a cycle remains after header removal.
    #[test]
    fn irreducible_loop_handled() {
        // 0→1, 0→2, 1→2, 2→1 : SCC {1,2} entered at both 1 and 2.
        let f = build(&[0, 1, 2], &[(0, 1), (0, 2), (1, 2), (2, 1)], 0);
        assert_eq!(f.loops.len(), 1);
        let l = f.loop_of_header(bb(1)).unwrap(); // min entry = 1
        assert_eq!(f.info(l).header, bb(1));
        let blocks: Vec<u32> = f.info(l).blocks.iter().map(|b| b.0).collect();
        assert_eq!(blocks, vec![1, 2]);
    }

    /// Header membership: contains() includes the header and nested blocks.
    #[test]
    fn contains_region_semantics() {
        let f = build(&[0, 1, 2, 3], &[(0, 1), (1, 2), (2, 2), (2, 3), (3, 1)], 0);
        let outer = f.loop_of_header(bb(1)).unwrap();
        let inner = f.loop_of_header(bb(2)).unwrap();
        assert!(f.contains(outer, bb(1)));
        assert!(f.contains(outer, bb(2)));
        assert!(f.contains(outer, bb(3)));
        assert!(!f.contains(outer, bb(0)));
        assert!(f.contains(inner, bb(2)));
        assert!(!f.contains(inner, bb(1)));
    }
}
