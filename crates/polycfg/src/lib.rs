//! # polycfg — interprocedural control structure (paper §3)
//!
//! Stage 1 of the Poly-Prof pipeline:
//!
//! 1. [`recorder::StructureRecorder`] observes a first instrumented run and
//!    records the dynamic CFG of every executed function plus the dynamic
//!    call graph (only executed code is ever analyzed).
//! 2. [`loop_forest::LoopForest`] builds the Havlak/Ramalingam
//!    loop-nesting-forest of each CFG, including the Kelly static indices
//!    used for schedule trees; [`recursive::RecursiveComponentSet`] builds
//!    its call-graph counterpart with multi-header support.
//! 3. [`events::LoopEventGen`] translates raw jump/call/return events into
//!    the loop-event alphabet `E/I/X` + `Ec/Ic/Ir/Xr` + `N/C/R`
//!    (Algorithms 1 and 2 of the paper) that drives the dynamic-IIV update.

pub mod events;
pub mod graph;
pub mod loop_forest;
pub mod recorder;
pub mod recursive;

pub use events::{LoopEvent, LoopEventGen, LoopRef};
pub use loop_forest::{LoopForest, LoopIdx, LoopInfo, SchedNodeKey};
pub use recorder::{DynCfg, StaticStructure, StructureRecorder};
pub use recursive::{RecCompIdx, RecComponent, RecursiveComponentSet};
