//! Small directed-graph toolkit used by the loop-forest and
//! recursive-component constructions: Tarjan SCCs, condensation, and a
//! deterministic topological order (the "static index" of Kelly's mapping).
//!
//! Nodes are dense `usize` indices into an adjacency list; callers map their
//! domain ids (blocks, functions) to indices.

/// A directed graph over nodes `0..n` as adjacency lists.
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    /// `succs[u]` lists the successors of `u`.
    pub succs: Vec<Vec<usize>>,
}

impl DiGraph {
    /// An edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        DiGraph {
            succs: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Add edge `u → v` (duplicates allowed; dedup with [`DiGraph::dedup`]).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        self.succs[u].push(v);
    }

    /// Sort and deduplicate every adjacency list (gives deterministic walks).
    pub fn dedup(&mut self) {
        for s in &mut self.succs {
            s.sort_unstable();
            s.dedup();
        }
    }

    /// All edges as `(u, v)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }
}

/// Strongly connected components in reverse-topological order
/// (Tarjan, iterative to survive deep graphs).
///
/// Returns `(comp_of, components)`: `comp_of[v]` is the component index of
/// `v`; `components[c]` lists members of component `c`. Component indices are
/// in reverse topological order of the condensation (successors first).
pub fn tarjan_scc(g: &DiGraph) -> (Vec<usize>, Vec<Vec<usize>>) {
    let n = g.len();
    const UNDEF: usize = usize::MAX;
    let mut index = vec![UNDEF; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp_of = vec![UNDEF; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;

    // Explicit DFS stack: (node, next-successor-position).
    let mut dfs: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNDEF {
            continue;
        }
        dfs.push((root, 0));
        index[root] = counter;
        low[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut pos)) = dfs.last_mut() {
            if *pos < g.succs[v].len() {
                let w = g.succs[v][*pos];
                *pos += 1;
                if index[w] == UNDEF {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack");
                        on_stack[w] = false;
                        comp_of[w] = comps.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
            }
        }
    }
    (comp_of, comps)
}

/// True if component `members` contains a cycle in `g`: more than one node,
/// or a single node with a self-edge.
pub fn component_has_cycle(g: &DiGraph, members: &[usize]) -> bool {
    members.len() > 1 || g.succs[members[0]].contains(&members[0])
}

/// Deterministic topological order of a DAG, smallest-index-first among
/// ready nodes (Kahn). Panics if the graph has a cycle.
pub fn topo_order(g: &DiGraph) -> Vec<usize> {
    let n = g.len();
    let mut indeg = vec![0usize; n];
    for (_, v) in g.edges() {
        indeg[v] += 1;
    }
    // Min-heap behaviour via sorted insertion into a BinaryHeap<Reverse>.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut ready: BinaryHeap<Reverse<usize>> =
        (0..n).filter(|&v| indeg[v] == 0).map(Reverse).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse(u)) = ready.pop() {
        order.push(u);
        for &v in &g.succs[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                ready.push(Reverse(v));
            }
        }
    }
    assert_eq!(order.len(), n, "topo_order called on a cyclic graph");
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize, edges: &[(usize, usize)]) -> DiGraph {
        let mut g = DiGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    #[test]
    fn scc_of_dag_is_singletons() {
        let g = g(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let (_, comps) = tarjan_scc(&g);
        assert_eq!(comps.len(), 4);
        assert!(comps.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn scc_finds_cycle() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3
        let g = g(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let (comp_of, comps) = tarjan_scc(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comp_of[1], comp_of[2]);
        assert_ne!(comp_of[0], comp_of[1]);
        let c = &comps[comp_of[1]];
        assert!(component_has_cycle(&g, c));
        assert!(!component_has_cycle(&g, &comps[comp_of[0]]));
    }

    #[test]
    fn scc_reverse_topological() {
        let g = g(3, &[(0, 1), (1, 2)]);
        let (comp_of, _) = tarjan_scc(&g);
        // successors get smaller (earlier) component ids
        assert!(comp_of[2] < comp_of[1]);
        assert!(comp_of[1] < comp_of[0]);
    }

    #[test]
    fn self_loop_is_cyclic() {
        let g = g(2, &[(0, 0), (0, 1)]);
        let (comp_of, comps) = tarjan_scc(&g);
        assert!(component_has_cycle(&g, &comps[comp_of[0]]));
        assert!(!component_has_cycle(&g, &comps[comp_of[1]]));
    }

    #[test]
    fn topo_is_deterministic_and_valid() {
        let g = g(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]);
        let o = topo_order(&g);
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &v) in o.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (u, v) in g.edges() {
            assert!(pos[u] < pos[v]);
        }
        // smallest-first tie-breaking: 0 before 1, 3 before 4
        assert!(pos[0] < pos[1]);
        assert!(pos[3] < pos[4]);
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn topo_panics_on_cycle() {
        let g = g(2, &[(0, 1), (1, 0)]);
        topo_order(&g);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut g = g(2, &[(0, 1), (0, 1), (0, 1)]);
        g.dedup();
        assert_eq!(g.succs[0], vec![1]);
    }
}
