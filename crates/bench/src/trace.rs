//! Trace recording/replay helpers and the parametric backprop-class
//! workload shared by the profiling benches (`bench_pipeline`,
//! `bench_fold_scaling`).

use polyir::build::ProgramBuilder;
use polyir::{BlockRef, FBinOp, FuncId, InstrRef, Operand, Program, UnOp, Value};
use polyvm::EventSink;

/// One recorded instrumentation event.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// Local jump.
    Jump(BlockRef, BlockRef),
    /// Call.
    Call(BlockRef, FuncId, BlockRef),
    /// Return.
    Ret(FuncId, Option<BlockRef>),
    /// Instruction execution.
    Exec(InstrRef, Option<Value>),
    /// Memory access.
    Mem(InstrRef, u64, bool),
}

/// Records the full event stream of one execution for later replay.
#[derive(Debug, Default)]
pub struct Recorder {
    /// The recorded events, in execution order.
    pub events: Vec<Ev>,
}

impl EventSink for Recorder {
    fn local_jump(&mut self, from: BlockRef, to: BlockRef) {
        self.events.push(Ev::Jump(from, to));
    }
    fn call(&mut self, callsite: BlockRef, callee: FuncId, entry: BlockRef) {
        self.events.push(Ev::Call(callsite, callee, entry));
    }
    fn ret(&mut self, from: FuncId, to: Option<BlockRef>) {
        self.events.push(Ev::Ret(from, to));
    }
    fn exec(&mut self, instr: InstrRef, value: Option<Value>) {
        self.events.push(Ev::Exec(instr, value));
    }
    fn mem(&mut self, instr: InstrRef, addr: u64, is_write: bool) {
        self.events.push(Ev::Mem(instr, addr, is_write));
    }
}

/// Replay a recorded stream into any [`EventSink`], in order.
pub fn replay<S: EventSink>(events: &[Ev], sink: &mut S) {
    for ev in events {
        match *ev {
            Ev::Jump(a, b) => sink.local_jump(a, b),
            Ev::Call(a, b, c) => sink.call(a, b, c),
            Ev::Ret(a, b) => sink.ret(a, b),
            Ev::Exec(a, b) => sink.exec(a, b),
            Ev::Mem(a, b, c) => sink.mem(a, b, c),
        }
    }
}

/// A backprop-class program (the shape of `rodinia::backprop` — 2-D column-
/// stride reduction kernel + 2-D elementwise update, both behind calls) with
/// parametric layer sizes, so the recorded trace is long enough that
/// steady-state event cost dominates fixed setup/finalization cost.
pub fn big_backprop(n1: i64, n2: i64) -> Program {
    let mut pb = ProgramBuilder::new("backprop_big");
    let conn = pb.array_f64(&vec![0.1; ((n1 + 1) * (n2 + 1)) as usize]);
    let l1 = pb.array_f64(&vec![0.5; (n1 + 1) as usize]);
    let l2 = pb.alloc((n2 + 1) as u64);
    let delta = pb.array_f64(&vec![0.01; (n2 + 1) as usize]);
    let oldw = pb.array_f64(&vec![0.2; ((n1 + 1) * (n2 + 1)) as usize]);
    let w = pb.array_f64(&vec![0.3; ((n1 + 1) * (n2 + 1)) as usize]);

    let mut sq = pb.func("squash", 1);
    let x = sq.param(0);
    let s = sq.un(UnOp::Sigmoid, x);
    sq.ret(Some(s.into()));
    let squash = sq.finish();

    let mut lf = pb.func("bpnn_layerforward", 5);
    {
        let (l1p, l2p, connp, pn1, pn2) = (
            lf.param(0),
            lf.param(1),
            lf.param(2),
            lf.param(3),
            lf.param(4),
        );
        lf.for_loop("Lj", 1i64, pn2, 1, |f, j| {
            let sum = f.const_f(0.0);
            f.for_loop("Lk", 0i64, pn1, 1, |f, k| {
                let row = f.mul(k, n2 + 1);
                let idx = f.add(row, j);
                let wv = f.load(connp, idx);
                let xv = f.load(l1p, k);
                let prod = f.fmul(wv, xv);
                f.fop_to(sum, FBinOp::Add, sum, prod);
            });
            let out = f.call(squash, &[sum.into()]);
            f.store(l2p, j, out);
        });
        lf.ret(None);
    }
    let layerforward = lf.finish();

    let mut aw = pb.func("bpnn_adjust_weights", 4);
    {
        let (deltap, lyp, wp, oldwp) = (aw.param(0), aw.param(1), aw.param(2), aw.param(3));
        aw.for_loop("Lj", 1i64, n2, 1, |f, j| {
            f.for_loop("Lk", 0i64, n1, 1, |f, k| {
                let row = f.mul(k, n2 + 1);
                let idx = f.add(row, j);
                let d = f.load(deltap, j);
                let y = f.load(lyp, k);
                let old = f.load(oldwp, idx);
                let eta = f.fmul(d, 0.3f64);
                let t1 = f.fmul(eta, y);
                let t2 = f.fmul(old, 0.3f64);
                let upd = f.fadd(t1, t2);
                let cur = f.load(wp, idx);
                let neww = f.fadd(cur, upd);
                f.store(wp, idx, neww);
                f.store(oldwp, idx, upd);
            });
        });
        aw.ret(None);
    }
    let adjust = aw.finish();

    let mut m = pb.func("main", 0);
    m.call_void(
        layerforward,
        &[
            Operand::ImmI(l1 as i64),
            Operand::ImmI(l2 as i64),
            Operand::ImmI(conn as i64),
            Operand::ImmI(n1),
            Operand::ImmI(n2),
        ],
    );
    m.call_void(
        adjust,
        &[
            Operand::ImmI(delta as i64),
            Operand::ImmI(l1 as i64),
            Operand::ImmI(w as i64),
            Operand::ImmI(oldw as i64),
        ],
    );
    m.ret(None);
    let mid = m.finish();
    pb.set_entry(mid);
    pb.finish()
}
