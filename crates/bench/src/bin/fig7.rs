//! Regenerates **Figure 7** (and Fig. 5b): the annotated flame graph for
//! backprop. Writes SVG + folded-stacks text next to the target directory
//! and prints the annotated AST.

use polyprof_core::profile;
use std::fs;

fn main() {
    let out_dir = std::path::Path::new("target/figures");
    fs::create_dir_all(out_dir).expect("create target/figures");

    for (workload, tag) in [
        (rodinia::backprop::build(), "fig7_backprop"),
        (rodinia::gemsfdtd::build(), "fig5_gemsfdtd"),
    ] {
        let report = profile(&workload.program);
        let svg_path = out_dir.join(format!("{tag}.svg"));
        fs::write(&svg_path, &report.flamegraph_svg).expect("write svg");
        println!(
            "wrote {} ({} bytes)",
            svg_path.display(),
            report.flamegraph_svg.len()
        );

        let txt_path = out_dir.join(format!("{tag}_report.txt"));
        fs::write(&txt_path, &report.full_text).expect("write report");
        println!("wrote {}", txt_path.display());

        println!("\nannotated AST for {}:", workload.name);
        print!("{}", report.annotated_ast);
        println!(
            "regions of interest: {}",
            report
                .feedback
                .regions
                .iter()
                .map(|r| format!("{} ({:.0}% ops)", r.name, 100.0 * r.pct_ops))
                .collect::<Vec<_>>()
                .join(", ")
        );
        for r in report.feedback.regions.iter().take(2) {
            for (i, s) in r.suggestions.iter().enumerate() {
                println!("  {}. {}", i + 1, s);
            }
        }
        println!();
    }
}
