//! Re-fold `.ptrace` recordings offline — no VM run — and check replay
//! invariants.
//!
//! Modes:
//! - `refold [--threads K] TRACE...` — fold each recording at K shards and
//!   print one JSON line per trace (workload, frames, events, folded
//!   statement/dependence counts).
//! - `refold --assert-live [--threads K] TRACE...` — additionally run the
//!   live profiler on the matching workload and require the replayed
//!   folded DDG to be byte-identical (`FoldedDdg::canonical_text`); exits
//!   non-zero on any divergence. This is the CI replay gate.
//! - `refold --diff A.ptrace B.ptrace` — fold both recordings and compare
//!   their canonical texts; prints the first differing line and exits
//!   non-zero when they disagree.
//!
//! Recordings are matched to programs by header program hash against the
//! fixed [`polyprof_bench::replay_workloads`] registry.

use polyprof_bench::replay_workloads;
use polyprof_bench::JsonObj;
use polyprof_core::polyfold::replay::fold_recording;
use polyprof_core::polyfold::{self, FoldOptions};
use polyprof_core::polyrec::{program_hash, TraceReader};
use std::path::Path;
use std::process::exit;

/// Find the registry program a recording was captured from, by hash.
fn lookup(path: &Path) -> (&'static str, polyir::Program) {
    let reader = match TraceReader::open(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("refold: {}: {e}", path.display());
            exit(1);
        }
    };
    let want = reader.meta().program_hash;
    for (name, prog) in replay_workloads() {
        if program_hash(&prog) == want {
            return (name, prog);
        }
    }
    eprintln!(
        "refold: {}: recording of unknown workload `{}` (hash {want:#018x} not in registry)",
        path.display(),
        reader.meta().workload
    );
    exit(1);
}

/// Fold one recording at `k` shards, returning its canonical text.
fn refold_one(path: &Path, k: usize) -> (&'static str, String) {
    let (name, prog) = lookup(path);
    match fold_recording(path, &prog, k, FoldOptions::default(), None) {
        Ok((ddg, _)) => (name, ddg.canonical_text()),
        Err(e) => {
            eprintln!("refold: {}: {e}", path.display());
            exit(1);
        }
    }
}

/// First line where the two canonical texts disagree, if any.
fn first_diff(a: &str, b: &str) -> Option<(usize, String, String)> {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return Some((i + 1, la.to_string(), lb.to_string()));
        }
    }
    let (na, nb) = (a.lines().count(), b.lines().count());
    (na != nb).then(|| {
        (
            na.min(nb) + 1,
            format!("<{na} lines>"),
            format!("<{nb} lines>"),
        )
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 1usize;
    let mut assert_live = false;
    let mut diff = false;
    let mut traces: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            "--assert-live" => assert_live = true,
            "--diff" => diff = true,
            other if other.starts_with("--") => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: refold [--threads K] [--assert-live] TRACE... | refold --diff A B"
                );
                exit(2);
            }
            trace => traces.push(trace.to_string()),
        }
        i += 1;
    }

    if diff {
        if traces.len() != 2 {
            eprintln!("refold --diff takes exactly two traces");
            exit(2);
        }
        let (name_a, text_a) = refold_one(Path::new(&traces[0]), threads);
        let (name_b, text_b) = refold_one(Path::new(&traces[1]), threads);
        match first_diff(&text_a, &text_b) {
            None => {
                println!(
                    "identical: {} ({name_a}) == {} ({name_b})",
                    traces[0], traces[1]
                );
            }
            Some((line, la, lb)) => {
                eprintln!("differ at canonical line {line}:");
                eprintln!("  {}: {la}", traces[0]);
                eprintln!("  {}: {lb}", traces[1]);
                exit(1);
            }
        }
        return;
    }

    if traces.is_empty() {
        eprintln!("usage: refold [--threads K] [--assert-live] TRACE... | refold --diff A B");
        exit(2);
    }
    let mut failed = false;
    for trace in &traces {
        let path = Path::new(trace);
        let (name, prog) = lookup(path);
        let (ddg, _interner) =
            match fold_recording(path, &prog, threads, FoldOptions::default(), None) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("refold: {trace}: {e}");
                    exit(1);
                }
            };
        let replayed = ddg.canonical_text();
        let mut live_ok = true;
        if assert_live {
            let live = polyfold::fold_program(&prog).0.canonical_text();
            live_ok = live == replayed;
            if !live_ok {
                failed = true;
                if let Some((line, ll, rl)) = first_diff(&live, &replayed) {
                    eprintln!("refold: {trace}: replay diverged from live fold at line {line}:");
                    eprintln!("  live:   {ll}");
                    eprintln!("  replay: {rl}");
                }
            }
        }
        let mut j = JsonObj::new();
        j.str_field("workload", name)
            .str_field("trace", trace)
            .int_field("threads", threads as u64)
            .int_field("stmts", ddg.stmts.len() as u64)
            .int_field("deps", ddg.deps.len() as u64)
            .int_field("dyn_ops", ddg.total_ops);
        if assert_live {
            j.raw_field("live_identical", if live_ok { "true" } else { "false" });
        }
        println!("{}", j.render());
    }
    if failed {
        exit(1);
    }
}
