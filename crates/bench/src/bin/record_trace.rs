//! Record `.ptrace` fixtures for the CI replay gate.
//!
//! Profiles every [`polyprof_bench::replay_workloads`] entry with a
//! recorder tap and writes one recording per workload into a directory
//! (default `traces/`). Existing recordings whose header matches the
//! current format version and program hash are kept (so an `actions/cache`
//! hit skips all work); pass `--force` to re-record regardless.
//!
//! `--print-key` prints a single cache-key line derived from the format
//! version and every workload's program hash — exactly the inputs that
//! invalidate a recording — and exits without recording anything.
//!
//! Usage: `record_trace [--dir DIR] [--force] [--print-key]`

use polyprof_bench::{replay_workloads, JsonObj};
use polyprof_core::polyrec::{program_hash, TraceReader, FORMAT_VERSION};
use polyprof_core::{try_profile_with, ProfileConfig};
use std::path::{Path, PathBuf};

/// One FNV-1a-64 over the format version and the per-workload hashes: the
/// replay-gate cache key.
fn cache_key(workloads: &[(&'static str, polyir::Program)]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&FORMAT_VERSION.to_le_bytes());
    for (name, prog) in workloads {
        eat(name.as_bytes());
        eat(&program_hash(prog).to_le_bytes());
    }
    format!("polyrec-v{FORMAT_VERSION}-{h:016x}")
}

/// An existing recording is fresh when it opens under the current format
/// version and its header hash matches the program we would re-record.
fn is_fresh(path: &Path, prog: &polyir::Program) -> bool {
    match TraceReader::open(path) {
        Ok(reader) => reader.meta().program_hash == program_hash(prog),
        Err(_) => false,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = PathBuf::from("traces");
    let mut force = false;
    let mut print_key = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => {
                i += 1;
                dir = PathBuf::from(args.get(i).expect("--dir needs a value"));
            }
            "--force" => force = true,
            "--print-key" => print_key = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: record_trace [--dir DIR] [--force] [--print-key]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let workloads = replay_workloads();
    if print_key {
        println!("{}", cache_key(&workloads));
        return;
    }

    std::fs::create_dir_all(&dir).expect("create trace directory");
    for (name, prog) in &workloads {
        let path = dir.join(format!("{name}.ptrace"));
        if !force && is_fresh(&path, prog) {
            let mut j = JsonObj::new();
            j.str_field("workload", name)
                .str_field("trace", &path.display().to_string())
                .str_field("status", "fresh");
            println!("{}", j.render());
            continue;
        }
        let cfg = ProfileConfig::new()
            .with_fold_threads(4)
            .with_record_to(&path);
        let report = match try_profile_with(prog, &cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("record_trace: {name}: {e}");
                std::process::exit(1);
            }
        };
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let mut j = JsonObj::new();
        j.str_field("workload", name)
            .str_field("trace", &path.display().to_string())
            .str_field("status", "recorded")
            .int_field("bytes", bytes)
            .int_field("dyn_ops", report.folded_stats.2);
        println!("{}", j.render());
    }
}
