//! Regenerates **Table 1** (the dependency input stream of the Fig. 6
//! backprop kernel) and **Table 2** (its folded output).

use polyddg::{profile_collected, DepKind};
use rodinia::paper_examples::fig6_kernel;

fn main() {
    // Paper sizes: cj ranges over 15 outer iterations, ck over 42 inner.
    let p = fig6_kernel(42, 15);
    let (sink, interner, _structure) = profile_collected(&p);

    // Identify the statements I1 (load conn row ptr), I2 (indirect load),
    // I4 (the float accumulation) by instruction shape inside the inner
    // loop body (depth-3 statements of main).
    // The paper's I4 is the fused `sum = sum + tmp2*tmp3`; in our ISA that
    // is an FMul followed by an FAdd, so both count as I4.
    let mut i1 = None;
    let mut i2 = None;
    let mut i4m = None; // the multiply half of I4
    let mut i4 = None; // the accumulate half of I4
    for (id, info) in interner.stmts() {
        if info.depth != 3 {
            continue;
        }
        let ins = p.instr(info.instr);
        match ins {
            polyir::Instr::Load { base, .. } => {
                if matches!(base, polyir::Operand::ImmI(_)) {
                    // loads with immediate base: I1 (&conn + k) or I3 (&l1 + k)
                    if info.instr.idx == 0 {
                        i1 = Some(id);
                    }
                } else if i2.is_none() {
                    i2 = Some(id); // register base: tmp1 + j
                }
            }
            polyir::Instr::FOp {
                op: polyir::FBinOp::Mul,
                ..
            } => i4m = Some(id),
            polyir::Instr::FOp {
                op: polyir::FBinOp::Add,
                ..
            } => i4 = Some(id),
            _ => {}
        }
    }
    let (i1, i2, i4m, i4) = (
        i1.expect("I1"),
        i2.expect("I2"),
        i4m.expect("I4 mul"),
        i4.expect("I4"),
    );
    let name = move |s: polyiiv::context::StmtId| -> &'static str {
        if s == i1 {
            "I1"
        } else if s == i2 {
            "I2"
        } else if s == i4 || s == i4m {
            "I4"
        } else {
            "I?"
        }
    };

    println!("=== Table 1: dependency input stream (first instances) ===\n");
    for (src, dst) in [(i1, i2), (i2, i4m), (i4, i4)] {
        println!("  {} -> {}", name(src), name(dst));
        println!("    (cj,ck)   (cj',ck')");
        let mut shown = 0;
        for (kind, s, sc, d, dc) in &sink.deps {
            if *kind == DepKind::Reg && *s == src && *d == dst && shown < 3 {
                // coordinates: (root, cj, ck) — print the loop dims
                println!("    ({}, {})    ({}, {})", dc[1], dc[2], sc[1], sc[2]);
                shown += 1;
            }
        }
        println!("    ...");
    }

    println!("\n=== Table 2: folded dependence relations ===\n");
    let (mut ddg, _interner2, _) = polyfold::fold_program(&p);
    // NB: keep SCEVs here — Table 2 lists the register deps pre-removal;
    // the folded I5/I8 rows are what the SCEV filter then deletes.
    println!(
        "  {:<8} {:<56} label expression",
        "dep", "polyhedron (over c0, cj, ck)"
    );
    for (src, dst) in [(i1, i2), (i2, i4m), (i4, i4)] {
        for dep in &ddg.deps {
            if dep.kind == DepKind::Reg && dep.src == src && dep.dst == dst {
                let row = polyfold::display_dep(dep, &["c0", "cj", "ck"], &["c0'", "cj'", "ck'"]);
                println!("  {:<8} {}", format!("{}->{}", name(src), name(dst)), row);
            }
        }
    }

    println!("\n=== SCEV recognition (I5/I8 analogues) ===\n");
    let scevs = ddg.scev_stmts().len();
    let (sr, dr) = ddg.remove_scevs();
    println!(
        "  {} SCEV statements recognized; removed {} statements and {} dependences",
        scevs, sr, dr
    );
    println!(
        "  statements remaining for the polyhedral back-end: {}",
        ddg.n_stmts()
    );
}
