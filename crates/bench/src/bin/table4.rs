//! Regenerates **Table 4**: the GemsFDTD case study — tiling feedback on
//! the update kernels plus the measured tiled+parallel speedup.

use kernels::gemsfdtd as native;
use polyprof_bench::{pct, speedup_line, time_runs};
use polyprof_core::profile;

fn main() {
    println!("=== Table 4: GemsFDTD case study ===\n");

    let w = rodinia::gemsfdtd::build();
    let report = profile(&w.program);
    println!(
        "{:<24} {:>6} {:>8} {:>10} {:>10}",
        "Fat region", "%op", "TileD", "%Tilops", "parallel"
    );
    for r in report.feedback.regions.iter().take(2) {
        println!(
            "{:<24} {:>6} {:>7}D {:>10} {:>10}",
            r.name,
            pct(r.pct_ops),
            r.tile_depth,
            pct(r.pct_tilops),
            pct(r.pct_parallel),
        );
        println!("    suggestions: {}", r.suggestions.join("; "));
    }
    println!(
        "\npaper Table 4: update.F90:106 tile {{106,107,121}} → 2.6x; \
         update.F90:240 tile {{240,241,244}} → 1.9x\n"
    );

    // Measured: original vs tiled+parallel on the host.
    let n = 96;
    let steps = 2;
    let reps = 5;
    let t_orig = time_runs(reps, || {
        let mut g = native::Grid::new(n);
        native::run_original(&mut g, steps);
        std::hint::black_box(g.ex[0]);
    });
    let t_tr = time_runs(reps, || {
        let mut g = native::Grid::new(n);
        native::run_transformed(&mut g, steps);
        std::hint::black_box(g.ex[0]);
    });
    println!("measured (grid {n}³, {steps} steps):");
    println!(
        "{}",
        speedup_line("updateH/updateE tiled + outer-parallel", t_orig, t_tr)
    );
    println!("\n(paper: 1.9–2.6x on a 2×6-core Xeon — shape target: tiled+parallel wins)");
}
