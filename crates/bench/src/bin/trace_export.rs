//! Export Chrome trace-event timelines from full profiling runs — the CI
//! `timeline-gate`.
//!
//! Usage: `trace_export [--threads K[,K...]] [--out DIR] [WORKLOAD...]`
//!
//! For every workload × shard count, runs the profiler at
//! `MetricsLevel::Trace` and writes `<workload>_k<K>.trace.json`
//! (Perfetto / `chrome://tracing` loadable). Each export is then gated:
//!
//! * the file must be syntactically valid JSON;
//! * every span name must have begin count == end count (well-formed
//!   nesting is asserted separately by `tests/timeline.rs`);
//! * `fold-chunk` ends must equal the `chunks_folded` counter and
//!   `chunk-send` instants must equal `chunk_recycled + chunk_fresh` —
//!   the timeline and the counters are two views of one run and may not
//!   disagree;
//! * a journal overflow (`trace_dropped > 0`) fails the gate outright:
//!   these fixture-sized runs must fit their journals.
//!
//! Defaults: the `backprop` Rodinia fixture at K ∈ {1, 4}.

use polyprof_bench::sentinel::validate_json;
use polyprof_core::polytrace::{Counter, TraceEventKind};
use polyprof_core::{profile_with, MetricsLevel, ProfileConfig};
use std::collections::BTreeMap;
use std::process::exit;

fn main() {
    let mut threads: Vec<usize> = vec![1, 4];
    let mut out_dir = ".".to_string();
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                let v = args.next().unwrap_or_default();
                threads = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("--threads takes K[,K...]"))
                    .collect();
            }
            "--out" => out_dir = args.next().expect("--out takes a directory"),
            w => names.push(w.to_string()),
        }
    }
    if names.is_empty() {
        names.push("backprop".to_string());
    }

    let registry = polyprof_bench::replay_workloads();
    let mut failures = 0u32;
    for name in &names {
        let Some((_, prog)) = registry.iter().find(|(n, _)| n == name) else {
            eprintln!("trace_export: unknown workload {name:?}");
            exit(2);
        };
        for &k in &threads {
            let cfg = ProfileConfig::new()
                .with_metrics(MetricsLevel::Trace)
                .with_fold_threads(k);
            let report = profile_with(prog, &cfg);
            let m = report.metrics.as_ref().expect("Trace run has metrics");
            let json = report
                .timeline_json()
                .expect("Trace run exports a timeline");

            let path = format!("{out_dir}/{name}_k{k}.trace.json");
            std::fs::write(&path, &json).expect("write trace file");
            let mut ok = true;

            if let Err(e) = validate_json(&json) {
                eprintln!("trace_export: {path}: INVALID JSON: {e}");
                ok = false;
            }
            if m.trace_dropped > 0 {
                eprintln!(
                    "trace_export: {path}: journal overflow dropped {} events",
                    m.trace_dropped
                );
                ok = false;
            }

            // Begin/end parity per span name.
            let mut begins: BTreeMap<&str, i64> = BTreeMap::new();
            for ev in &m.timeline {
                match ev.kind {
                    TraceEventKind::Begin => *begins.entry(ev.name).or_default() += 1,
                    TraceEventKind::End => *begins.entry(ev.name).or_default() -= 1,
                    TraceEventKind::Instant => {}
                }
            }
            for (span, balance) in &begins {
                if *balance != 0 {
                    eprintln!("trace_export: {path}: span {span:?} unbalanced by {balance}");
                    ok = false;
                }
            }

            // Timeline ↔ counter reconciliation.
            let fold_ends = m.timeline_count("fold-chunk", TraceEventKind::End);
            let chunks_folded = m.counter(Counter::ChunksFolded);
            if fold_ends != chunks_folded {
                eprintln!(
                    "trace_export: {path}: fold-chunk ends {fold_ends} != chunks_folded {chunks_folded}"
                );
                ok = false;
            }
            let sends = m.timeline_count("chunk-send", TraceEventKind::Instant);
            let chunks_sent = m.counter(Counter::ChunkRecycled) + m.counter(Counter::ChunkFresh);
            if sends != chunks_sent {
                eprintln!(
                    "trace_export: {path}: chunk-send instants {sends} != chunks shipped {chunks_sent}"
                );
                ok = false;
            }
            if k == 1 && (fold_ends != 0 || sends != 0) {
                eprintln!("trace_export: {path}: serial run must have no chunk events");
                ok = false;
            }

            println!(
                "trace_export: {} {path}: {} events, {} fold-chunk spans, {} chunk-sends",
                if ok { "OK  " } else { "FAIL" },
                m.timeline.len(),
                fold_ends,
                sends
            );
            if !ok {
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("trace_export: {failures} export(s) failed the timeline gate");
        exit(1);
    }
}
