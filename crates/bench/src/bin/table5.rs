//! Regenerates **Table 5**: summary statistics over all 19 Rodinia
//! workloads — measured by this reproduction, with the paper's reference
//! values printed underneath each row for comparison.

use polyfeedback::report::{table5_header, table5_row};
use polyprof_bench::pct;
use polyprof_core::{profile_suite, MetricsLevel, ProfileConfig};

fn main() {
    println!("=== Table 5: Rodinia 3.1 summary (measured by poly-prof-rs) ===\n");
    println!("{}", table5_header());
    // Profile all 19 workloads across threads; reports come back in suite
    // order, so the rows print exactly as the serial loop did. The suite
    // driver logs per-workload wall time (and, with POLYPROF_METRICS set,
    // peak event-chunk depth) to stderr, keeping the table on stdout clean.
    let workloads = rodinia::all_rodinia();
    let cfg = ProfileConfig::new().with_metrics(MetricsLevel::from_env());
    let progs: Vec<&polyprof_core::polyir::Program> =
        workloads.iter().map(|w| &w.program).collect();
    let reports = profile_suite(&progs, &cfg);
    let mut rows = Vec::new();
    for (w, report) in workloads.into_iter().zip(reports) {
        let region = report
            .feedback
            .regions
            .first()
            .cloned()
            .expect("every workload has a region");
        println!("{}", table5_row(&report.feedback, &region, w.paper.ld_src));
        let polly = report.static_report.summary();
        println!(
            "  measured: polly-fails={:<8} skew={}  | paper: %Aff={} polly={} skew={} %||ops={} %simd={} ld={}D/{}D tileD={}D",
            polly,
            if region.skew { "Y" } else { "N" },
            pct(w.paper.pct_aff),
            w.paper.polly_reasons,
            if w.paper.skew { "Y" } else { "N" },
            pct(w.paper.pct_parallel),
            pct(w.paper.pct_simd),
            w.paper.ld_src,
            w.paper.ld_bin,
            w.paper.tile_d,
        );
        rows.push((w, report, region));
    }

    // Shape summary: which comparisons hold.
    println!("\n=== shape checks (paper vs measured) ===");
    let mut ok = 0;
    let mut total = 0;
    for (w, report, region) in &rows {
        // 1. affine-heavy stays affine-heavy, irregular stays irregular.
        // heartwall/hotspot/lud are exempt: the paper attributes their low
        // %Aff to its own folding "not supporting lattices" (modulo-
        // linearized indexing) — our folder handles those dynamically, so
        // a *higher* measured %Aff is the expected improvement there.
        let lattice_limited = ["heartwall", "hotspot", "lud"].contains(&w.name);
        total += 1;
        let aff_shape = if lattice_limited {
            report.feedback.pct_aff >= w.paper.pct_aff
        } else if w.paper.pct_aff >= 0.5 {
            report.feedback.pct_aff >= 0.5
        } else {
            report.feedback.pct_aff < 0.9
        };
        if aff_shape {
            ok += 1;
        } else {
            println!(
                "  %Aff mismatch {}: paper {} vs measured {}",
                w.name,
                pct(w.paper.pct_aff),
                pct(report.feedback.pct_aff)
            );
        }
        // 2. Polly must fail whenever the paper says it fails
        total += 1;
        if w.paper.polly_reasons == "-" || !report.static_report.all_modeled() {
            ok += 1;
        } else {
            println!("  static baseline unexpectedly modeled {}", w.name);
        }
        // 3. parallelism: paper ≥90% ⇒ measured ≥ 60%
        if w.paper.pct_parallel.is_finite() {
            total += 1;
            if w.paper.pct_parallel < 0.9 || region.pct_parallel >= 0.6 {
                ok += 1;
            } else {
                println!(
                    "  %||ops mismatch {}: paper {} vs measured {}",
                    w.name,
                    pct(w.paper.pct_parallel),
                    pct(region.pct_parallel)
                );
            }
        }
    }
    println!("  {ok}/{total} shape checks hold");
}
