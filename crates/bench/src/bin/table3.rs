//! Regenerates **Table 3**: the backprop case study — per-region feedback
//! (interchange+SIMD, parallel, permutable, stride statistics) plus the
//! *measured* speedup of the suggested transformation on the host CPU.

use kernels::backprop as native;
use polyprof_bench::{pct, speedup_line, time_runs};
use polyprof_core::profile;

fn main() {
    println!("=== Table 3: backprop case study ===\n");

    // Feedback side: profile the IR workload.
    let w = rodinia::backprop::build();
    let report = profile(&w.program);
    println!(
        "{:<26} {:>6} {:>12} {:>10} {:>12} {:>16}",
        "Fat region", "%Ops", "interchange", "parallel", "permutable", "%stride 0/1"
    );
    for r in report.feedback.regions.iter().take(2) {
        let interchange = r.suggestions.iter().any(|s| s.contains("interchange"));
        println!(
            "{:<26} {:>6} {:>12} {:>10} {:>12} {:>7} → {:>6}",
            r.name,
            pct(r.pct_ops),
            if interchange { "(yes)" } else { "(no)" },
            if r.outer_parallel { "yes" } else { "no" },
            if r.tile_depth >= 2 {
                "yes,yes"
            } else {
                "partial"
            },
            pct(r.pct_reuse),
            pct(r.pct_preuse),
        );
        println!("    suggestions: {}", r.suggestions.join("; "));
    }
    println!(
        "\npaper Table 3: L_layer (yes,no | yes,yes | 100%,50%) speedup 5.3x; \
         L_adjust (yes,yes | yes,yes | 100%,50%) speedup 7.8x\n"
    );

    // Speedup side: run the native kernels.
    let (n1, n2) = (1024, 1024);
    let (conn, l1, l2) = native::make_inputs(n1, n2);
    let reps = 10;

    let mut out_a = l2.clone();
    let t_orig = time_runs(reps, || {
        native::layerforward_original(&l1, &mut out_a, &conn, n1, n2)
    });
    let mut out_b = l2.clone();
    let t_ix = time_runs(reps, || {
        native::layerforward_interchanged(&l1, &mut out_b, &conn, n1, n2)
    });
    let mut out_c = l2.clone();
    let t_par = time_runs(reps, || {
        native::layerforward_parallel(&l1, &mut out_c, &conn, n1, n2)
    });
    assert!(kernels::max_abs_diff(&out_a, &out_b) < 1e-9);
    assert!(kernels::max_abs_diff(&out_a, &out_c) < 1e-9);
    println!("measured speedups (n1 = n2 = {n1}):");
    println!(
        "{}",
        speedup_line("bpnn_layerforward interchange+SIMD", t_orig, t_ix)
    );
    println!(
        "{}",
        speedup_line("bpnn_layerforward + parallel", t_orig, t_par)
    );

    let ld = n2 + 1;
    let delta: Vec<f64> = (0..ld).map(|i| (i % 9) as f64 * 0.01).collect();
    let ly: Vec<f64> = (0..=n1).map(|i| (i % 5) as f64 * 0.1).collect();
    let w0: Vec<f64> = (0..(n1 + 1) * ld).map(|i| (i % 11) as f64 * 0.1).collect();
    let o0: Vec<f64> = (0..(n1 + 1) * ld).map(|i| (i % 7) as f64 * 0.1).collect();
    let (mut w1, mut o1) = (w0.clone(), o0.clone());
    let t_aw_orig = time_runs(reps, || {
        native::adjust_weights_original(&delta, n2, &ly, n1, &mut w1, &mut o1)
    });
    let (mut w2, mut o2) = (w0, o0);
    let t_aw_tr = time_runs(reps, || {
        native::adjust_weights_transformed(&delta, n2, &ly, n1, &mut w2, &mut o2)
    });
    println!(
        "{}",
        speedup_line(
            "bpnn_adjust_weights interchange+parallel",
            t_aw_orig,
            t_aw_tr
        )
    );
    println!("\n(paper: 5.3x / 7.8x on a 2×6-core Xeon with icc — shape target: transformed wins by a factor of a few)");
}
