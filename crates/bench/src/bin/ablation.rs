//! Ablation study over the design choices DESIGN.md calls out:
//!
//! 1. **SCEV removal** (§5) — without it, induction-variable chains
//!    serialize every loop;
//! 2. **carried-class splitting** (union-of-relations dependence folding) —
//!    without it, piecewise-affine dependences collapse into one
//!    over-approximated relation and wavefront codes lose their structure.
//!
//! Prints `%||ops`, `%simdops` and tile depth for representative workloads
//! under each configuration.

use polyfold::{FoldOptions, FoldingSink};
use polyprof_bench::pct;
use polysched::Analysis;

struct Config {
    name: &'static str,
    split_classes: bool,
    remove_scevs: bool,
}

fn run(prog: &polyir::Program, cfg: &Config) -> (f64, f64, usize) {
    let mut rec = polycfg::StructureRecorder::new();
    polyvm::Vm::new(prog).run(&[], &mut rec).unwrap();
    let structure = polycfg::StaticStructure::analyze(prog, rec);
    let sink = FoldingSink::with_options(FoldOptions {
        split_classes: cfg.split_classes,
        ..Default::default()
    });
    let mut prof = polyddg::DdgProfiler::new(prog, &structure, sink);
    polyvm::Vm::new(prog).run(&[], &mut prof).unwrap();
    let (sink, interner) = prof.finish();
    let mut ddg = sink.finalize(prog, &interner);
    if cfg.remove_scevs {
        ddg.remove_scevs();
    }
    let analysis = Analysis::analyze(&ddg, &interner);
    let fr = analysis.op_fractions(&ddg);
    (fr.parallel, fr.simd, analysis.max_tile_depth(&ddg))
}

/// Synthetic memory-scalar reduction `m[0] += a[i][j]` over a 2-D nest:
/// the SAME store→load statement pair carries dependences at BOTH loop
/// levels (distance (0,1) within a row, (1,1−m) across rows). Folding the
/// two classes into one relation masks the inner carried level and wrongly
/// reports the inner loop parallel — the soundness case for the split.
fn memreduce() -> rodinia::Workload {
    use polyir::build::ProgramBuilder;
    let n = 10i64;
    let mut pb = ProgramBuilder::new("memreduce2d");
    let a = pb.array_f64(&(0..n * n).map(|i| (i % 7) as f64).collect::<Vec<_>>());
    let acc = pb.alloc(1);
    let mut f = pb.func("main", 0);
    f.for_loop("Li", 0i64, n, 1, |f, i| {
        f.for_loop("Lj", 0i64, n, 1, |f, j| {
            let row = f.mul(i, n);
            let idx = f.add(row, j);
            let v = f.load(a as i64, idx);
            let t = f.load(acc as i64, 0i64);
            let s = f.fadd(t, v);
            f.store(acc as i64, 0i64, s);
        });
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);
    rodinia::Workload {
        name: "memreduce2d",
        program: pb.finish(),
        description: "synthetic 2-D memory reduction",
        paper: rodinia::PaperRow {
            pct_aff: 1.0,
            polly_reasons: "-",
            skew: false,
            pct_parallel: 0.0,
            pct_simd: 0.0,
            ld_src: 2,
            ld_bin: 2,
            tile_d: 2,
            interproc: false,
        },
    }
}

fn main() {
    let configs = [
        Config {
            name: "full pipeline",
            split_classes: true,
            remove_scevs: true,
        },
        Config {
            name: "no class split",
            split_classes: false,
            remove_scevs: true,
        },
        Config {
            name: "no SCEV removal",
            split_classes: true,
            remove_scevs: false,
        },
        Config {
            name: "neither",
            split_classes: false,
            remove_scevs: false,
        },
    ];
    let workloads = [
        rodinia::backprop::build(),
        rodinia::hotspot::build(),
        rodinia::nw::build(),
        rodinia::pathfinder::build(),
        rodinia::gemsfdtd::build(),
        memreduce(),
    ];
    println!("=== ablation: SCEV removal × carried-class splitting ===\n");
    println!(
        "{:<14} {:<18} {:>8} {:>10} {:>7}",
        "workload", "config", "%||ops", "%simdops", "TileD"
    );
    // Fan the full (workload × config) grid across threads, then print
    // serially in grid order.
    let jobs: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|wi| (0..configs.len()).map(move |ci| (wi, ci)))
        .collect();
    let results = polyprof_core::profile_all_with(&jobs, |&(wi, ci)| {
        run(&workloads[wi].program, &configs[ci])
    });
    for (wi, w) in workloads.iter().enumerate() {
        for (ci, cfg) in configs.iter().enumerate() {
            let (par, simd, tile) = results[wi * configs.len() + ci];
            println!(
                "{:<14} {:<18} {:>8} {:>10} {:>6}D",
                w.name,
                cfg.name,
                pct(par),
                pct(simd),
                tile
            );
        }
        println!();
    }
    println!(
        "Expected shape: the full pipeline dominates; dropping SCEV removal\n\
         drives %||ops toward 0 everywhere (induction chains serialize).\n\
         Dropping the class split is a SOUNDNESS ablation: on memreduce2d the\n\
         same statement pair carries dependences at both levels, and the\n\
         merged relation masks the inner carried level — %||ops goes UP\n\
         (wrongly), which is why the split is on by default."
    );
}
