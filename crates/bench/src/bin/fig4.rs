//! Regenerates **Figure 4**: schedule trees and Kelly mappings for the
//! fused and fissioned 2-D nests.

use polycfg::LoopForest;
use polyiiv::kelly::{display, instantiate, kelly_vector};
use polyir::LocalBlockId;
use std::collections::BTreeSet;

fn forest(blocks: &[u32], edges: &[(u32, u32)], entry: u32) -> LoopForest {
    let bs: BTreeSet<LocalBlockId> = blocks.iter().map(|&b| LocalBlockId(b)).collect();
    let es: BTreeSet<(LocalBlockId, LocalBlockId)> = edges
        .iter()
        .map(|&(u, v)| (LocalBlockId(u), LocalBlockId(v)))
        .collect();
    LoopForest::build(&bs, &es, LocalBlockId(entry))
}

fn main() {
    println!("=== Figure 4: Kelly's mapping / iteration vectors ===\n");

    // Fused: for i { for j { S; T } }
    // CFG: 0 → 1(Li hdr) → 2(Lj hdr) → 3(S) → 4(T) → 2, 4 → 1, 1 → 5
    println!("fused nest  (for i {{ for j {{ S; T }} }}):");
    let f = forest(
        &[0, 1, 2, 3, 4, 5],
        &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 2), (4, 1), (1, 5)],
        0,
    );
    let ks = kelly_vector(&f, LocalBlockId(3)).unwrap();
    let kt = kelly_vector(&f, LocalBlockId(4)).unwrap();
    println!("  S -> {}   (paper: [0, i, 0, j, 0])", display(&ks));
    println!("  T -> {}   (paper: [0, i, 0, j, 1])", display(&kt));
    println!(
        "  order check: S(0,1)={:?} < T(0,1)={:?} < S(1,0)={:?}",
        instantiate(&ks, &[0, 1]),
        instantiate(&kt, &[0, 1]),
        instantiate(&ks, &[1, 0])
    );

    // Fissioned: for i { for j { S } }; for i' { for j' { T } }
    println!("\nfissioned nests (S-nest then T-nest):");
    let g = forest(
        &[0, 1, 2, 3, 4, 5, 6, 7],
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 2),
            (3, 1),
            (1, 4),
            (4, 5),
            (5, 6),
            (6, 5),
            (6, 4),
            (4, 7),
        ],
        0,
    );
    let ks2 = kelly_vector(&g, LocalBlockId(3)).unwrap();
    let kt2 = kelly_vector(&g, LocalBlockId(6)).unwrap();
    println!("  S -> {}   (paper: [0, i, 0, j, 0])", display(&ks2));
    println!("  T -> {}   (paper: [1, i', 0, j', 0])", display(&kt2));
    println!(
        "  order check: last S instance {:?} < first T instance {:?}",
        instantiate(&ks2, &[9, 9]),
        instantiate(&kt2, &[0, 0])
    );
    println!("\nLexicographic order of instantiated vectors = original execution order.");
}
