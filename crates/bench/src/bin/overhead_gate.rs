//! Telemetry overhead gate: prove the observability tiers stay within
//! their wall-time budgets on the Rodinia fixture.
//!
//! Usage: `overhead_gate [--reps N] [--limit-timing PCT] [--limit-trace PCT] [--record-only]`
//!
//! Profiles `backprop` end-to-end at `Off`, `Timing`, and `Trace`
//! (interleaved rounds, best-of-N per level so scheduler noise cancels)
//! and fails when `Timing` exceeds its overhead budget (default +5%) or
//! `Trace` exceeds its (default +15%) relative to `Off`. `--record-only`
//! reports the ratios without gating (for noisy dev machines).

use polyprof_core::{profile_with, MetricsLevel, ProfileConfig};
use std::process::exit;
use std::time::Instant;

fn main() {
    let mut reps = 3usize;
    let mut limit_timing = 0.05f64;
    let mut limit_trace = 0.15f64;
    let mut record_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => reps = args.next().unwrap().parse().expect("--reps N"),
            "--limit-timing" => {
                limit_timing = args
                    .next()
                    .unwrap()
                    .trim_end_matches('%')
                    .parse::<f64>()
                    .unwrap()
                    / 100.0
            }
            "--limit-trace" => {
                limit_trace = args
                    .next()
                    .unwrap()
                    .trim_end_matches('%')
                    .parse::<f64>()
                    .unwrap()
                    / 100.0
            }
            "--record-only" => record_only = true,
            other => {
                eprintln!("overhead_gate: unknown arg {other:?}");
                exit(2);
            }
        }
    }

    let prog = rodinia::backprop::build().program;
    let levels = [MetricsLevel::Off, MetricsLevel::Timing, MetricsLevel::Trace];
    let mut best = [f64::INFINITY; 3];

    // Warm-up (page in code + allocator pools), then interleaved rounds.
    let _ = profile_with(&prog, &ProfileConfig::new());
    for _ in 0..reps {
        for (i, level) in levels.iter().enumerate() {
            let cfg = ProfileConfig::new().with_metrics(*level);
            let t0 = Instant::now();
            let r = profile_with(&prog, &cfg);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(&r);
            if dt < best[i] {
                best[i] = dt;
            }
        }
    }

    let over = |lvl: usize| best[lvl] / best[0] - 1.0;
    println!(
        "overhead_gate: best-of-{reps} wall  off {:.4}s  timing {:.4}s (+{:.1}%)  trace {:.4}s (+{:.1}%)",
        best[0],
        best[1],
        100.0 * over(1),
        best[2],
        100.0 * over(2),
    );

    let mut failed = false;
    if over(1) > limit_timing {
        eprintln!(
            "overhead_gate: Timing overhead {:.1}% exceeds budget {:.0}%",
            100.0 * over(1),
            100.0 * limit_timing
        );
        failed = true;
    }
    if over(2) > limit_trace {
        eprintln!(
            "overhead_gate: Trace overhead {:.1}% exceeds budget {:.0}%",
            100.0 * over(2),
            100.0 * limit_trace
        );
        failed = true;
    }
    if failed && !record_only {
        exit(1);
    }
    if failed {
        println!("overhead_gate: over budget, but --record-only set");
    }
}
