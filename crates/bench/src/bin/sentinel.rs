//! Bench-trajectory regression sentinel (CI post-bench step).
//!
//! Usage: `sentinel [--limit PCT] [TRAJECTORY_FILE]`
//!
//! Reads the JSONL trajectory appended by `bench_pipeline` (default
//! `BENCH_trajectory.json`), groups runs by `(bench, cpus, smoke)`, and
//! compares each group's newest ns/event figures against the median of the
//! previous five matching runs. Exits non-zero when any group regressed by
//! more than the limit (default 15%); groups with a short history are
//! records-only. A missing trajectory file is not an error — the history
//! has to start somewhere.

use polyprof_bench::sentinel::{check_trajectory, Verdict, DEFAULT_WORSE_LIMIT};
use std::process::exit;

fn main() {
    let mut limit = DEFAULT_WORSE_LIMIT;
    let mut path = "BENCH_trajectory.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--limit" => {
                let v = args.next().unwrap_or_default();
                limit = v.trim_end_matches('%').parse::<f64>().unwrap_or_else(|_| {
                    eprintln!("sentinel: bad --limit {v:?}");
                    exit(2);
                }) / 100.0;
            }
            other => path = other.to_string(),
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(_) => {
            println!("sentinel: no trajectory at {path}; nothing to check (records-only)");
            return;
        }
    };

    let checks = check_trajectory(&text, limit);
    if checks.is_empty() {
        println!("sentinel: {path} holds no parsable runs; nothing to check");
        return;
    }

    let mut failed = false;
    for c in &checks {
        let id = format!("{} cpus={} smoke={}", c.bench, c.cpus, c.smoke);
        match &c.verdict {
            Verdict::Pass => {
                println!(
                    "sentinel: PASS        {id} ({} runs, within {:.0}%)",
                    c.runs,
                    limit * 100.0
                )
            }
            Verdict::RecordOnly { have } => {
                println!("sentinel: RECORD-ONLY {id} ({have} prior runs, need 5)")
            }
            Verdict::Regressed {
                metric,
                new,
                median,
            } => {
                failed = true;
                println!(
                    "sentinel: REGRESSED   {id}: {metric} {new:.1} ns/event vs median {median:.1} (+{:.1}%, limit {:.0}%)",
                    100.0 * (new / median - 1.0),
                    limit * 100.0
                );
            }
        }
    }
    if failed {
        exit(1);
    }
}
