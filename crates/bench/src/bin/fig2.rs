//! Regenerates **Figure 2**: the example CFG with its loop-nesting tree and
//! the example CG with its recursive-component set.

use polycfg::{LoopForest, RecursiveComponentSet};
use polyir::{FuncId, LocalBlockId};
use std::collections::BTreeSet;

fn main() {
    println!("=== Figure 2 (a/b): CFG and loop-nesting-tree ===\n");
    // Fig. 2a: A=0, B=1, C=2, D=3, E=4 with back-edges (D,B) and (D,C).
    let names = ["A", "B", "C", "D", "E"];
    let blocks: BTreeSet<LocalBlockId> = (0..5).map(LocalBlockId).collect();
    let edges: BTreeSet<(LocalBlockId, LocalBlockId)> =
        [(0, 1), (1, 2), (1, 3), (2, 3), (3, 2), (3, 1), (2, 4)]
            .into_iter()
            .map(|(u, v)| (LocalBlockId(u), LocalBlockId(v)))
            .collect();
    println!("CFG edges:");
    for (u, v) in &edges {
        println!("  {} -> {}", names[u.0 as usize], names[v.0 as usize]);
    }
    let forest = LoopForest::build(&blocks, &edges, LocalBlockId(0));
    println!("\nLoop-nesting-tree:");
    for (i, l) in forest.loops.iter().enumerate() {
        let members: Vec<&str> = l.blocks.iter().map(|b| names[b.0 as usize]).collect();
        let backs: Vec<String> = l
            .back_edges
            .iter()
            .map(|(u, v)| format!("({},{})", names[u.0 as usize], names[v.0 as usize]))
            .collect();
        println!(
            "  L{} (depth {}): header {}, region {{{}}}, back-edges {}",
            i + 1,
            l.depth,
            names[l.header.0 as usize],
            members.join(", "),
            backs.join(" ")
        );
    }

    println!("\n=== Figure 2 (c/d): CG and recursive-component-set ===\n");
    // CG with component {B, C}: M→B, B→C, C→B, C→C.
    let fnames = ["M", "B", "C"];
    let funcs: BTreeSet<FuncId> = (0..3).map(FuncId).collect();
    let cg: BTreeSet<(FuncId, FuncId)> = [(0, 1), (1, 2), (2, 1), (2, 2)]
        .into_iter()
        .map(|(u, v)| (FuncId(u), FuncId(v)))
        .collect();
    println!("CG edges:");
    for (u, v) in &cg {
        println!("  {} -> {}", fnames[u.0 as usize], fnames[v.0 as usize]);
    }
    let rcs = RecursiveComponentSet::build(&funcs, &cg, FuncId(0));
    println!("\nRecursive components:");
    for (i, c) in rcs.components.iter().enumerate() {
        let f = |s: &BTreeSet<FuncId>| {
            s.iter()
                .map(|f| fnames[f.0 as usize])
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "  component {}: members {{{}}}, entries {{{}}}, headers {{{}}}",
            i,
            f(&c.members),
            f(&c.entries),
            f(&c.headers)
        );
    }
    println!("\n(paper: components = {{L}}, L.entries = {{B}}, L.headers = {{B, C}})");
}
