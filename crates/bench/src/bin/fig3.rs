//! Regenerates **Figure 3**: for Ex. 1 (interprocedural nesting) and Ex. 2
//! (recursion), print the trace of loop events with the dynamic IIV after
//! each step (panels d/i), and the folded statement domains (panel k).

use polycfg::{LoopEvent, LoopEventGen, StaticStructure, StructureRecorder};
use polyiiv::IivTracker;
use polyir::{BlockRef, FuncId, Program};
use polyprof_bench::ctx_namer;
use polyvm::{EventSink, Vm};

/// Prints a Fig. 3d/3i-style table row per control event.
struct TracePrinter<'p> {
    gen: LoopEventGen<'p>,
    iiv: IivTracker,
    prog: &'p Program,
    structure: &'p StaticStructure,
    step: usize,
    buf: Vec<LoopEvent>,
}

impl<'p> TracePrinter<'p> {
    fn new(prog: &'p Program, structure: &'p StaticStructure) -> Self {
        let entry = prog.entry.unwrap();
        TracePrinter {
            gen: LoopEventGen::new(structure),
            iiv: IivTracker::new(BlockRef {
                func: entry,
                block: prog.func(entry).entry(),
            }),
            prog,
            structure,
            step: 0,
            buf: Vec::new(),
        }
    }

    fn flush(&mut self) {
        let namer = ctx_namer(self.prog, self.structure);
        for ev in self.buf.drain(..).collect::<Vec<_>>() {
            self.iiv.apply(&ev);
            self.step += 1;
            let evs = match ev {
                LoopEvent::Enter { block, .. } => {
                    format!("E(L, {})", namer(&polyiiv::CtxElem::Block(block)))
                }
                LoopEvent::EnterRec { block, .. } => {
                    format!("Ec(L, {})", namer(&polyiiv::CtxElem::Block(block)))
                }
                LoopEvent::Iter { block, .. } => {
                    format!("I(L, {})", namer(&polyiiv::CtxElem::Block(block)))
                }
                LoopEvent::IterCall { block, .. } => {
                    format!("Ic(L, {})", namer(&polyiiv::CtxElem::Block(block)))
                }
                LoopEvent::IterRet { block, .. } => {
                    format!("Ir(L, {})", namer(&polyiiv::CtxElem::Block(block)))
                }
                LoopEvent::Exit { block, .. } => {
                    format!("X(L, {})", namer(&polyiiv::CtxElem::Block(block)))
                }
                LoopEvent::ExitRec { block, .. } => {
                    format!("Xr(L, {})", namer(&polyiiv::CtxElem::Block(block)))
                }
                LoopEvent::Block(b) => format!("N({})", namer(&polyiiv::CtxElem::Block(b))),
                LoopEvent::Call { block, .. } => {
                    format!("C({})", namer(&polyiiv::CtxElem::Block(block)))
                }
                LoopEvent::Ret(b) => format!("R({})", namer(&polyiiv::CtxElem::Block(b))),
            };
            println!(
                "  {:>3}: {:<14} {}",
                self.step,
                evs,
                self.iiv.display_with(&namer)
            );
        }
    }
}

impl EventSink for TracePrinter<'_> {
    fn local_jump(&mut self, from: BlockRef, to: BlockRef) {
        self.gen.on_jump(from, to, &mut self.buf);
        self.flush();
    }
    fn call(&mut self, callsite: BlockRef, callee: FuncId, entry: BlockRef) {
        self.gen.on_call(callsite, callee, entry, &mut self.buf);
        self.flush();
    }
    fn ret(&mut self, from: FuncId, to: Option<BlockRef>) {
        self.gen.on_ret(from, to, &mut self.buf);
        self.flush();
    }
}

fn trace(p: &Program, title: &str) {
    println!("=== {title} ===\n  step  event          dynamic IIV");
    let mut rec = StructureRecorder::new();
    Vm::new(p).run(&[], &mut rec).unwrap();
    let structure = StaticStructure::analyze(p, rec);
    let mut tp = TracePrinter::new(p, &structure);
    Vm::new(p).run(&[], &mut tp).unwrap();

    // Folded domains (Fig. 3k analogue).
    println!("\n  folded statement domains:");
    let (mut ddg, interner, _) = polyfold::fold_program(p);
    ddg.remove_scevs();
    let namer = ctx_namer(p, &structure);
    let mut rows: Vec<(String, String)> = ddg
        .stmts
        .values()
        .map(|s| {
            let info = interner.stmt_info(s.stmt);
            let path = interner
                .flat_path(info.path)
                .iter()
                .map(&namer)
                .collect::<Vec<_>>()
                .join("/");
            let names: Vec<String> = (0..s.domain.dim).map(|i| format!("i{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            (path, s.domain.poly.display(&name_refs))
        })
        .collect();
    rows.sort();
    rows.dedup();
    for (path, dom) in rows.iter().take(12) {
        println!("    {{ {path} : {dom} }}");
    }
    if rows.len() > 12 {
        println!("    … and {} more", rows.len() - 12);
    }
    println!();
}

fn main() {
    trace(
        &rodinia::paper_examples::fig3_example1(2, 2),
        "Figure 3 Ex. 1 (loops across calls)",
    );
    trace(
        &rodinia::paper_examples::fig3_example2(3),
        "Figure 3 Ex. 2 (recursion folds to one dimension)",
    );
}
