//! # polyprof-bench — experiment harness
//!
//! One binary per paper artifact (`fig2`, `fig3`, `fig4`, `fig7`,
//! `table1_2`, `table3`, `table4`, `table5`) regenerates the corresponding
//! table or figure from the reproduction, and Criterion benches measure the
//! case-study kernels (original vs transformed) and the profiling pipeline
//! itself. Shared helpers live here.

use polyiiv::CtxElem;
use polyir::Program;
use std::time::Instant;

/// Human-readable names for context elements given the program (used by the
/// fig3 trace printer and flame graphs).
pub fn ctx_namer<'p>(
    prog: &'p Program,
    structure: &'p polycfg::StaticStructure,
) -> impl Fn(&CtxElem) -> String + 'p {
    move |e: &CtxElem| match e {
        CtxElem::Block(b) => {
            let f = prog.func(b.func);
            format!("{}{}", f.name, b.block.0)
        }
        CtxElem::Loop(polycfg::LoopRef::Cfg(f, l)) => {
            let func = prog.func(*f);
            let header = structure.forest(*f).info(*l).header;
            format!("L[{}:{}]", func.name, func.block(header).name)
        }
        CtxElem::Loop(polycfg::LoopRef::Rec(c)) => format!("Lrec{}", c.0),
    }
}

/// Wall-time of `reps` runs of `f` (after one warm-up), in seconds.
pub fn time_runs(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Format a speedup comparison line.
pub fn speedup_line(label: &str, base: f64, improved: f64) -> String {
    format!(
        "{label:<42} {base:>10.4}s → {improved:>10.4}s   speedup {:.2}x",
        base / improved
    )
}

/// Percent formatter.
pub fn pct(x: f64) -> String {
    if x.is_nan() {
        "-".into()
    } else {
        format!("{:.0}%", 100.0 * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        assert_eq!(pct(0.5), "50%");
        assert_eq!(pct(f64::NAN), "-");
        let s = speedup_line("x", 2.0, 1.0);
        assert!(s.contains("2.00x"));
        let t = time_runs(2, || {
            std::hint::black_box(1 + 1);
        });
        assert!(t >= 0.0);
    }
}
