//! # polyprof-bench — experiment harness
//!
//! One binary per paper artifact (`fig2`, `fig3`, `fig4`, `fig7`,
//! `table1_2`, `table3`, `table4`, `table5`) regenerates the corresponding
//! table or figure from the reproduction, and Criterion benches measure the
//! case-study kernels (original vs transformed) and the profiling pipeline
//! itself. Shared helpers live here.

pub mod sentinel;
pub mod trace;

use polyiiv::CtxElem;
use polyir::Program;
use std::time::Instant;

/// True when the `BENCH_SMOKE` environment variable is set: benches shrink
/// their workloads/repetitions to CI-smoke size (same assertions, smaller
/// traces).
pub fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

/// The fixed workload set the trace-recording binaries (`record_trace`,
/// `refold`) and the CI replay gate operate on: four Rodinia kernels plus
/// the paper's Fig. 6 running example, at small deterministic sizes so the
/// `.ptrace` fixtures stay cache-friendly. Sizes are *not* `BENCH_SMOKE`-
/// dependent — a recording must mean the same thing whichever environment
/// replays it.
pub fn replay_workloads() -> Vec<(&'static str, Program)> {
    vec![
        ("backprop", rodinia::backprop::build().program),
        ("pathfinder", rodinia::pathfinder::build().program),
        ("nw", rodinia::nw::build().program),
        ("hotspot", rodinia::hotspot::build().program),
        ("fig6", rodinia::paper_examples::fig6_kernel(16, 8)),
    ]
}

/// Human-readable names for context elements given the program (used by the
/// fig3 trace printer and flame graphs).
pub fn ctx_namer<'p>(
    prog: &'p Program,
    structure: &'p polycfg::StaticStructure,
) -> impl Fn(&CtxElem) -> String + 'p {
    move |e: &CtxElem| match e {
        CtxElem::Block(b) => {
            let f = prog.func(b.func);
            format!("{}{}", f.name, b.block.0)
        }
        CtxElem::Loop(polycfg::LoopRef::Cfg(f, l)) => {
            let func = prog.func(*f);
            let header = structure.forest(*f).info(*l).header;
            format!("L[{}:{}]", func.name, func.block(header).name)
        }
        CtxElem::Loop(polycfg::LoopRef::Rec(c)) => format!("Lrec{}", c.0),
    }
}

/// Wall-time of `reps` runs of `f` (after one warm-up), in seconds.
pub fn time_runs(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Format a speedup comparison line.
pub fn speedup_line(label: &str, base: f64, improved: f64) -> String {
    format!(
        "{label:<42} {base:>10.4}s → {improved:>10.4}s   speedup {:.2}x",
        base / improved
    )
}

/// Percent formatter.
pub fn pct(x: f64) -> String {
    if x.is_nan() {
        "-".into()
    } else {
        format!("{:.0}%", 100.0 * x)
    }
}

/// Minimal hand-rolled JSON object builder for machine-readable bench
/// artifacts (`BENCH_pipeline.json`): flat or one-level-nested objects of
/// strings and numbers. String values go through `polytrace::json_escape`,
/// so quote- or control-character-bearing workload names stay valid JSON.
#[derive(Debug, Default)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

impl JsonObj {
    /// Empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, k: &str, raw: String) -> &mut Self {
        self.fields.push((k.to_string(), raw));
        self
    }

    /// Add a string field (fully escaped — quotes, backslashes, controls).
    pub fn str_field(&mut self, k: &str, v: &str) -> &mut Self {
        let escaped = polytrace::json_escape(v);
        self.push(k, format!("\"{escaped}\""))
    }

    /// Add an integer field.
    pub fn int_field(&mut self, k: &str, v: u64) -> &mut Self {
        self.push(k, v.to_string())
    }

    /// Add a float field (JSON has no NaN/Inf; those render as null).
    pub fn num_field(&mut self, k: &str, v: f64) -> &mut Self {
        if v.is_finite() {
            self.push(k, format!("{v}"))
        } else {
            self.push(k, "null".to_string())
        }
    }

    /// Add a pre-rendered JSON value verbatim (e.g. a
    /// `polytrace::RunMetrics::to_json` object). The caller guarantees it
    /// is valid JSON.
    pub fn raw_field(&mut self, k: &str, raw: &str) -> &mut Self {
        self.push(k, raw.trim().to_string())
    }

    /// Add a nested object field.
    pub fn obj_field(&mut self, k: &str, f: impl FnOnce(&mut JsonObj)) -> &mut Self {
        let mut inner = JsonObj::new();
        f(&mut inner);
        let rendered = inner.render();
        self.push(k, rendered)
    }

    /// Render as a JSON object string.
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", polytrace::json_escape(k)))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression pin: a workload name carrying quotes, backslashes, and
    /// control characters must render as valid JSON (previously only `"` and
    /// `\` were escaped — a newline in a name produced a broken artifact).
    #[test]
    fn str_field_escapes_quotes_and_controls() {
        let mut o = JsonObj::new();
        o.str_field("workload", "back\"prop\"\n\t\\v1\u{1}");
        let s = o.render();
        assert_eq!(s, "{\"workload\": \"back\\\"prop\\\"\\n\\t\\\\v1\\u0001\"}");
        assert!(!s.contains('\n'), "raw control chars must not leak");
        sentinel::validate_json(&s).expect("escaped output must be valid JSON");
    }

    #[test]
    fn helpers() {
        assert_eq!(pct(0.5), "50%");
        assert_eq!(pct(f64::NAN), "-");
        let s = speedup_line("x", 2.0, 1.0);
        assert!(s.contains("2.00x"));
        let t = time_runs(2, || {
            std::hint::black_box(1 + 1);
        });
        assert!(t >= 0.0);
    }
}
