//! Bench-trajectory regression sentinel.
//!
//! `bench_pipeline` appends one flat JSON object per run to
//! `BENCH_trajectory.json` (JSONL). The sentinel groups that history by
//! run identity — `(bench, cpus, smoke)` — and compares the newest run's
//! ns/event figures against the **median of the previous five** matching
//! runs. A run more than `worse_limit` (default 15%) slower on any tracked
//! metric fails the gate; groups with fewer than five prior runs are
//! records-only (the history is still growing).
//!
//! The parser is deliberately tolerant: it extracts known keys from flat
//! JSON lines by scanning, skips lines it cannot read, and never fails on
//! unknown keys — old and future trajectory schemas coexist in one file.
//!
//! A minimal recursive-descent JSON validator ([`validate_json`]) lives
//! here too: the timeline gate uses it to prove exported Chrome traces are
//! syntactically valid without pulling a JSON dependency into the tree.

/// The per-event latency metrics the sentinel tracks, by trajectory key.
pub const TRACKED_METRICS: [&str; 2] = ["profiler_ns_per_event", "with_folding_ns_per_event"];

/// Prior matching runs required before the gate arms.
pub const MIN_HISTORY: usize = 5;

/// Default tolerated slowdown vs. the history median (0.15 = +15%).
pub const DEFAULT_WORSE_LIMIT: f64 = 0.15;

/// One parsed trajectory line (unknown keys ignored).
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEntry {
    /// Bench name (`"bench_pipeline"`).
    pub bench: String,
    /// CPU count the run saw.
    pub cpus: u64,
    /// Whether the run was `BENCH_SMOKE`-sized.
    pub smoke: bool,
    /// `(metric key, ns/event)` for every tracked metric present.
    pub metrics: Vec<(&'static str, f64)>,
}

/// What the sentinel concluded for one `(bench, cpus, smoke)` group.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Newest run within tolerance of the history median on every metric.
    Pass,
    /// Not enough history to judge — recorded, not gated.
    RecordOnly {
        /// Prior matching runs found (< [`MIN_HISTORY`]).
        have: usize,
    },
    /// Newest run regressed past the tolerance on at least one metric.
    Regressed {
        /// The offending metric key.
        metric: &'static str,
        /// Newest run's value.
        new: f64,
        /// Median of the last [`MIN_HISTORY`] prior runs.
        median: f64,
    },
}

/// Sentinel outcome for one run-identity group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupCheck {
    /// Bench name.
    pub bench: String,
    /// CPU count of the group.
    pub cpus: u64,
    /// Smoke-sized group?
    pub smoke: bool,
    /// Runs seen in this group (including the newest).
    pub runs: usize,
    /// The verdict.
    pub verdict: Verdict,
}

/// Extract a JSON string value for `key` from a flat object line.
pub fn extract_str(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = line.find(&needle)?;
    let rest = line[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start().strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let v = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extract a JSON numeric (or boolean, as 1/0) value for `key`.
pub fn extract_num(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = line.find(&needle)?;
    let rest = line[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    if let Some(r) = rest.strip_prefix("true") {
        let _ = r;
        return Some(1.0);
    }
    if rest.starts_with("false") {
        return Some(0.0);
    }
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse a JSONL trajectory; unreadable lines are skipped, not fatal.
pub fn parse_trajectory(text: &str) -> Vec<TrajectoryEntry> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() {
                return None;
            }
            let bench = extract_str(line, "bench")?;
            let cpus = extract_num(line, "cpus")? as u64;
            let smoke = extract_num(line, "smoke")
                .map(|v| v != 0.0)
                .unwrap_or(false);
            let metrics = TRACKED_METRICS
                .iter()
                .filter_map(|&m| extract_num(line, m).map(|v| (m, v)))
                .collect();
            Some(TrajectoryEntry {
                bench,
                cpus,
                smoke,
                metrics,
            })
        })
        .collect()
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Run the sentinel over a trajectory file's text. Each `(bench, cpus,
/// smoke)` group's **last** entry is the candidate; the up-to-five entries
/// before it are its history.
pub fn check_trajectory(text: &str, worse_limit: f64) -> Vec<GroupCheck> {
    let entries = parse_trajectory(text);
    // Group keys in first-seen order (no HashMap: keep output deterministic).
    let mut keys: Vec<(String, u64, bool)> = Vec::new();
    for e in &entries {
        let k = (e.bench.clone(), e.cpus, e.smoke);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    keys.into_iter()
        .map(|(bench, cpus, smoke)| {
            let group: Vec<&TrajectoryEntry> = entries
                .iter()
                .filter(|e| e.bench == bench && e.cpus == cpus && e.smoke == smoke)
                .collect();
            let runs = group.len();
            let (newest, history) = group.split_last().expect("group is non-empty");
            let verdict = if history.len() < MIN_HISTORY {
                Verdict::RecordOnly {
                    have: history.len(),
                }
            } else {
                let window = &history[history.len() - MIN_HISTORY..];
                let mut verdict = Verdict::Pass;
                for &(metric, new) in &newest.metrics {
                    let mut vals: Vec<f64> = window
                        .iter()
                        .filter_map(|e| {
                            e.metrics
                                .iter()
                                .find(|(m, _)| *m == metric)
                                .map(|(_, v)| *v)
                        })
                        .collect();
                    if vals.len() < MIN_HISTORY {
                        continue; // metric too young to gate
                    }
                    vals.sort_by(|a, b| a.total_cmp(b));
                    let med = median(&vals);
                    if med > 0.0 && new > med * (1.0 + worse_limit) {
                        verdict = Verdict::Regressed {
                            metric,
                            new,
                            median: med,
                        };
                        break;
                    }
                }
                verdict
            };
            GroupCheck {
                bench,
                cpus,
                smoke,
                runs,
                verdict,
            }
        })
        .collect()
}

/// Validate that `s` is one syntactically well-formed JSON value. Used by
/// the timeline gate on exported Chrome traces (structure only — no schema).
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    if *i >= b.len() {
        return Err("unexpected end of input".into());
    }
    match b[*i] {
        b'{' => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                string(b, i)?;
                skip_ws(b, i);
                expect(b, i, b':')?;
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        b'[' => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        b'"' => string(b, i),
        b't' => literal(b, i, b"true"),
        b'f' => literal(b, i, b"false"),
        b'n' => literal(b, i, b"null"),
        b'-' | b'0'..=b'9' => number(b, i),
        c => Err(format!("unexpected byte {c:#x} at {i}")),
    }
}

fn expect(b: &[u8], i: &mut usize, want: u8) -> Result<(), String> {
    if b.get(*i) == Some(&want) {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {i}", want as char))
    }
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *i + lit.len() && &b[*i..*i + lit.len()] == lit {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    expect(b, i, b'"')?;
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'u') => {
                        if b.len() < *i + 5 || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {i}"));
                        }
                        *i += 5;
                    }
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control char in string at byte {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while *i < b.len()
        && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *i += 1;
    }
    let text = std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(bench: &str, cpus: u64, smoke: bool, prof: f64, fold: f64) -> String {
        format!(
            "{{\"bench\": \"{bench}\", \"cpus\": {cpus}, \"smoke\": {smoke}, \
             \"profiler_ns_per_event\": {prof}, \"with_folding_ns_per_event\": {fold}}}"
        )
    }

    #[test]
    fn short_history_is_record_only() {
        let text: String = (0..4)
            .map(|_| line("bench_pipeline", 1, true, 100.0, 50.0) + "\n")
            .collect();
        let checks = check_trajectory(&text, DEFAULT_WORSE_LIMIT);
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].verdict, Verdict::RecordOnly { have: 3 });
    }

    #[test]
    fn within_tolerance_passes_and_regression_fails() {
        let mut text: String = (0..5)
            .map(|_| line("bench_pipeline", 1, true, 100.0, 50.0) + "\n")
            .collect();
        // +10% on profiler ns/event: within the 15% gate.
        text.push_str(&line("bench_pipeline", 1, true, 110.0, 50.0));
        let checks = check_trajectory(&text, DEFAULT_WORSE_LIMIT);
        assert_eq!(checks[0].verdict, Verdict::Pass);

        // +30%: past the gate.
        let mut text: String = (0..5)
            .map(|_| line("bench_pipeline", 1, true, 100.0, 50.0) + "\n")
            .collect();
        text.push_str(&line("bench_pipeline", 1, true, 130.0, 50.0));
        let checks = check_trajectory(&text, DEFAULT_WORSE_LIMIT);
        match &checks[0].verdict {
            Verdict::Regressed {
                metric,
                new,
                median,
            } => {
                assert_eq!(*metric, "profiler_ns_per_event");
                assert_eq!(*new, 130.0);
                assert_eq!(*median, 100.0);
            }
            v => panic!("expected regression, got {v:?}"),
        }
    }

    #[test]
    fn groups_are_identity_separated() {
        // A fast 4-cpu history must not mask a slow 1-cpu run.
        let mut text = String::new();
        for _ in 0..5 {
            text.push_str(&(line("bench_pipeline", 1, true, 100.0, 50.0) + "\n"));
            text.push_str(&(line("bench_pipeline", 4, true, 30.0, 20.0) + "\n"));
        }
        text.push_str(&(line("bench_pipeline", 1, true, 200.0, 50.0) + "\n"));
        text.push_str(&(line("bench_pipeline", 4, true, 30.0, 20.0) + "\n"));
        let checks = check_trajectory(&text, DEFAULT_WORSE_LIMIT);
        assert_eq!(checks.len(), 2);
        assert!(matches!(checks[0].verdict, Verdict::Regressed { .. }));
        assert_eq!(checks[1].verdict, Verdict::Pass);
    }

    #[test]
    fn tolerant_parse_skips_junk_lines() {
        let text = format!(
            "not json at all\n{}\n{{\"unrelated\": 1}}\n",
            line("bench_pipeline", 1, false, 10.0, 5.0)
        );
        let entries = parse_trajectory(&text);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].cpus, 1);
        assert!(!entries[0].smoke);
        assert_eq!(entries[0].metrics.len(), 2);
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        validate_json("{\"a\": [1, 2.5, -3e2, true, null, \"x\\n\"]}").unwrap();
        validate_json("  {}  ").unwrap();
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("{\"a\": 1,}").is_err());
        assert!(validate_json("[1 2]").is_err());
        assert!(validate_json("{\"a\": \"\u{1}\"}").is_err(), "raw control");
        assert!(validate_json("{} trailing").is_err());
    }

    #[test]
    fn extractors_handle_escapes_and_numbers() {
        let l = "{\"bench\": \"a\\\"b\", \"cpus\": 4, \"x\": -1.5e3, \"smoke\": false}";
        assert_eq!(extract_str(l, "bench").as_deref(), Some("a\"b"));
        assert_eq!(extract_num(l, "cpus"), Some(4.0));
        assert_eq!(extract_num(l, "x"), Some(-1500.0));
        assert_eq!(extract_num(l, "smoke"), Some(0.0));
        assert_eq!(extract_num(l, "absent"), None);
    }
}
