//! Criterion benches for the shadow memory (the dominant §8 overhead
//! source): write/read throughput under dense and sparse address patterns.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use polyddg::shadow::{ShadowMemory, Writer};
use polyiiv::context::StmtId;
use std::hint::black_box;

fn writer(stmt: u32, c: i64) -> Writer {
    Writer { stmt: StmtId(stmt), coords: vec![0, c].into_boxed_slice() }
}

fn bench_shadow(c: &mut Criterion) {
    let mut g = c.benchmark_group("shadow");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));

    g.bench_function("dense_writes", |b| {
        b.iter(|| {
            let mut s = ShadowMemory::new();
            for a in 0..n {
                s.record_write(a, writer(1, a as i64));
            }
            black_box(s.resident_pages())
        })
    });

    g.bench_function("sparse_writes", |b| {
        b.iter(|| {
            let mut s = ShadowMemory::new();
            let mut x = 0x9e3779b97f4a7c15u64;
            for i in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                s.record_write(x % (1 << 30), writer(1, i as i64));
            }
            black_box(s.resident_pages())
        })
    });

    g.bench_function("write_read_pairs", |b| {
        b.iter(|| {
            let mut s = ShadowMemory::new();
            let mut hits = 0u64;
            for a in 0..n {
                s.record_write(a % 4096, writer(1, a as i64));
                if s.last_write((a + 1) % 4096).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_shadow);
criterion_main!(benches);
