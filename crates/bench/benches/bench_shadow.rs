//! Shadow-memory microbenchmark (the dominant §8 overhead source):
//! write/read throughput of the production combined-cell, MRU-cached
//! [`ShadowMemory`] against the retained two-table
//! [`baseline::NaiveShadowMemory`], under dense, sparse, and mixed
//! write/read address patterns.
//!
//! Plain `harness = false` main: each pattern prints baseline vs production
//! time and the speedup.

use polyddg::baseline::{NaiveShadowMemory, NaiveWriter};
use polyddg::coords::{CoordArena, CoordSnap};
use polyddg::shadow::{ShadowMemory, Writer};
use polyiiv::context::StmtId;
use polyprof_bench::{speedup_line, time_runs};
use std::hint::black_box;

const N: u64 = 400_000;
const REPS: usize = 5;

fn naive_writer(stmt: u32, c: i64) -> NaiveWriter {
    NaiveWriter {
        stmt: StmtId(stmt),
        coords: vec![0, c].into_boxed_slice(),
    }
}

fn writer(arena: &mut CoordArena, stmt: u32, c: i64) -> Writer {
    Writer {
        stmt: StmtId(stmt),
        coords: CoordSnap::capture(&[0, c], arena),
    }
}

fn main() {
    println!("=== shadow memory: naive (two-table, boxed) vs production (combined cell, MRU) ===");
    println!("    {N} events per pattern, best-effort mean of {REPS} runs\n");

    // Dense ascending addresses: the MRU cache hits on all but one access
    // per page.
    let naive = time_runs(REPS, || {
        let mut s = NaiveShadowMemory::new();
        for a in 0..N {
            s.record_write(a, naive_writer(1, a as i64));
        }
        black_box(s.resident_pages());
    });
    let fast = time_runs(REPS, || {
        let mut s = ShadowMemory::new();
        let mut arena = CoordArena::new();
        for a in 0..N {
            s.record_write(a, writer(&mut arena, 1, a as i64));
        }
        black_box(s.resident_pages());
    });
    println!("{}", speedup_line("dense_writes", naive, fast));

    // Sparse pseudo-random addresses over a 1 Mi-word footprint (256 pages):
    // the MRU cache misses ~99.6% of the time, so page switches dominate and
    // the single hash probe per event is what's being measured. (A working
    // set of hundreds of distinct pages is the realistic regime — paged
    // shadow memory deliberately trades space for time, so an address range
    // far beyond the traced program's footprint measures the allocator, not
    // the lookup path.)
    let naive = time_runs(REPS, || {
        let mut s = NaiveShadowMemory::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..N {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            s.record_write(x % (1 << 20), naive_writer(1, i as i64));
        }
        black_box(s.resident_pages());
    });
    let fast = time_runs(REPS, || {
        let mut s = ShadowMemory::new();
        let mut arena = CoordArena::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..N {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            s.record_write(x % (1 << 20), writer(&mut arena, 1, i as i64));
        }
        black_box(s.resident_pages());
    });
    println!("{}", speedup_line("sparse_writes", naive, fast));

    // Mixed write + read probes within one hot page (the stage-2 write-event
    // shape: prev-writer/prev-reader query + update).
    let naive = time_runs(REPS, || {
        let mut s = NaiveShadowMemory::new();
        let mut hits = 0u64;
        for a in 0..N {
            s.record_read(a % 4096, naive_writer(2, a as i64));
            s.record_write(a % 4096, naive_writer(1, a as i64));
            if s.last_write((a + 1) % 4096).is_some() {
                hits += 1;
            }
        }
        black_box(hits);
    });
    let fast = time_runs(REPS, || {
        let mut s = ShadowMemory::new();
        let mut arena = CoordArena::new();
        let mut hits = 0u64;
        for a in 0..N {
            s.record_read(a % 4096, writer(&mut arena, 2, a as i64));
            s.record_write(a % 4096, writer(&mut arena, 1, a as i64));
            if s.last_write((a + 1) % 4096).is_some() {
                hits += 1;
            }
        }
        black_box(hits);
    });
    println!("{}", speedup_line("write_read_pairs", naive, fast));
}
