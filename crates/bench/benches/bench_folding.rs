//! Criterion benches for the folding stage in isolation: throughput of the
//! fit-and-verify stream folder on affine, triangular and non-affine point
//! streams (the §5 compression engine).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use polyfold::StreamFolder;
use std::hint::black_box;

fn bench_folding(c: &mut Criterion) {
    let mut g = c.benchmark_group("folding");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));

    g.bench_function("rect_2d_exact", |b| {
        b.iter(|| {
            let mut f = StreamFolder::new(2);
            let side = (n as i64).isqrt();
            for i in 0..side {
                for j in 0..side {
                    f.push(black_box(&[i, j]), None);
                }
            }
            black_box(f.finalize())
        })
    });

    g.bench_function("rect_2d_affine_labels", |b| {
        b.iter(|| {
            let mut f = StreamFolder::new(2);
            let side = (n as i64).isqrt();
            for i in 0..side {
                for j in 0..side {
                    f.push(black_box(&[i, j]), Some(&[3 * i - j + 1]));
                }
            }
            black_box(f.finalize())
        })
    });

    g.bench_function("triangle_2d_exact", |b| {
        b.iter(|| {
            let mut f = StreamFolder::new(2);
            let side = ((2 * n) as f64).sqrt() as i64;
            for i in 0..side {
                for j in 0..=i {
                    f.push(black_box(&[i, j]), None);
                }
            }
            black_box(f.finalize())
        })
    });

    g.bench_function("nonaffine_labels_range", |b| {
        b.iter(|| {
            let mut f = StreamFolder::new(1);
            for i in 0..n as i64 {
                f.push(black_box(&[i]), Some(&[(i * i) % 1_000_003]));
            }
            black_box(f.finalize())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_folding);
criterion_main!(benches);
