//! Criterion benches for the GemsFDTD case-study kernels (Table 4):
//! tiled + outer-parallel stencils vs the original triple loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kernels::gemsfdtd::*;
use std::hint::black_box;

fn bench_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4/gemsfdtd");
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(10);
    for &n in &[48usize, 96] {
        g.bench_with_input(BenchmarkId::new("original", n), &n, |b, &n| {
            let mut grid = Grid::new(n);
            b.iter(|| {
                update_h_original(&mut grid);
                update_e_original(&mut grid);
                black_box(grid.ex[0]);
            })
        });
        g.bench_with_input(BenchmarkId::new("tiled_parallel", n), &n, |b, &n| {
            let mut grid = Grid::new(n);
            b.iter(|| {
                update_h_transformed(&mut grid);
                update_e_transformed(&mut grid);
                black_box(grid.ex[0]);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
