//! Single-trace fold-scaling benchmark: one profiling run, spread over the
//! staged pipeline, at K ∈ {1, 2, 4, 8} folding shards vs the serial
//! in-line path.
//!
//! Both sides run the *whole* pass 2 — VM interpretation, IIV/interning,
//! shadow resolution, folding, finalize — over the same precomputed stage-1
//! structure, so the comparison is end-to-end trace time, the number a user
//! actually waits on. Results go to `BENCH_fold_scaling.json`.
//!
//! The ≥ 1.3x @ 4-thread floor is asserted only when the machine actually
//! has ≥ 4 CPUs (the CI runners do): pipeline parallelism cannot beat
//! serial on a single core, and pretending to measure scaling there would
//! only produce noise. The JSON records the measurement and whether the
//! gate was enforced either way.

use polyddg::DdgProfiler;
use polyfold::adaptive;
use polyfold::pipeline::{fold_pipelined, fold_pipelined_pruned, PipelineConfig};
use polyfold::{FoldOptions, FoldingSink};
use polyprof_bench::trace::{big_backprop, Recorder};
use polyprof_bench::{smoke, JsonObj};
use polytrace::{Collector, Counter, MetricsLevel};
use polyvm::Vm;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in seconds (one warm-up run first).
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

const SPEEDUP_FLOOR: f64 = 1.3;
const GATE_THREADS: usize = 4;

/// Unconditional floor for the adaptive executor vs serial: "never lose".
/// When the calibration picks the inline executor it runs the *identical*
/// code as the serial reference, so anything below 1.0x is pure timer
/// noise; the 5% allowance covers exactly that and nothing else.
const ADAPTIVE_FLOOR: f64 = 0.95;

fn main() {
    let (layers, reps) = if smoke() { (48, 2) } else { (96, 3) };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let prog = big_backprop(layers, layers);
    let mut rec = polycfg::StructureRecorder::new();
    Vm::new(&prog).run(&[], &mut rec).expect("pass 1");
    let structure = polycfg::StaticStructure::analyze(&prog, rec);
    let mut recorder = Recorder::default();
    Vm::new(&prog)
        .run(&[], &mut recorder)
        .expect("trace recording");
    let n_events = recorder.events.len() as u64;
    drop(recorder);

    println!("=== single-trace fold scaling: serial vs K-shard pipeline ===");
    println!("  workload backprop_big({layers},{layers}), {n_events} events, {cpus} cpu(s)");

    // Serial reference: the in-line DdgProfiler→FoldingSink→finalize path.
    let mut serial_ops = 0u64;
    let serial_s = best_of(reps, || {
        let mut prof = DdgProfiler::new(&prog, &structure, FoldingSink::new());
        Vm::new(&prog).run(&[], &mut prof).expect("pass 2");
        let (sink, interner) = prof.finish();
        let ddg = sink.finalize(&prog, &interner);
        serial_ops = ddg.total_ops;
        black_box(ddg);
    });
    println!(
        "  serial         {serial_s:>9.4}s   {:.1} Mev/s",
        n_events as f64 / serial_s / 1e6
    );

    let ks = [1usize, 2, 4, 8];
    let mut speedups = Vec::with_capacity(ks.len());
    for &k in &ks {
        let cfg = PipelineConfig {
            fold_threads: k,
            chunk_events: 4096,
            ..Default::default()
        };
        let mut piped_ops = 0u64;
        let t = best_of(reps, || {
            let (ddg, _interner) = fold_pipelined(&prog, &structure, &cfg);
            piped_ops = ddg.total_ops;
            black_box(ddg);
        });
        assert_eq!(
            piped_ops, serial_ops,
            "pipelined run folded a different trace at K={k}"
        );
        let speedup = serial_s / t;
        speedups.push((k, t, speedup));
        println!(
            "  {k} shard(s)     {t:>9.4}s   {:.1} Mev/s   speedup {speedup:.2}x",
            n_events as f64 / t / 1e6
        );
    }

    // Adaptive executor: let the calibration pick inline vs pipelined at
    // each requested K and time whatever it chose. The decision must never
    // lose to serial — that is the whole point of deciding by measurement —
    // so this gate is enforced on every machine, 1 CPU included. The serial
    // reference is re-timed *interleaved* with each adaptive measurement:
    // comparing against a serial time taken minutes earlier would gate on
    // machine-load drift, not on the executor.
    println!("  --- adaptive executor (calibrated decision) ---");
    let run_serial = |ops: &mut u64| {
        let mut prof = DdgProfiler::new(&prog, &structure, FoldingSink::new());
        Vm::new(&prog).run(&[], &mut prof).expect("pass 2");
        let (sink, interner) = prof.finish();
        let ddg = sink.finalize(&prog, &interner);
        *ops = ddg.total_ops;
        black_box(ddg);
    };
    let mut adaptive_results = Vec::with_capacity(ks.len());
    for &k in &ks {
        let d = adaptive::decide(k, 4096, FoldOptions::default());
        let run_adaptive = |ops: &mut u64| {
            if d.fold_threads <= 1 {
                run_serial(ops);
            } else {
                let cfg = PipelineConfig {
                    fold_threads: d.fold_threads,
                    chunk_events: 4096,
                    ..Default::default()
                };
                let (ddg, _interner) = fold_pipelined(&prog, &structure, &cfg);
                *ops = ddg.total_ops;
                black_box(ddg);
            }
        };
        let mut ops = 0u64;
        run_adaptive(&mut ops); // warm-up
        let mut ser_best = f64::INFINITY;
        let mut ada_best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            run_serial(&mut ops);
            ser_best = ser_best.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            run_adaptive(&mut ops);
            ada_best = ada_best.min(t0.elapsed().as_secs_f64());
        }
        assert_eq!(
            ops, serial_ops,
            "adaptive run folded a different trace at requested K={k}"
        );
        let speedup = ser_best / ada_best;
        adaptive_results.push((k, d.fold_threads, ada_best, speedup));
        println!(
            "  adaptive K={k}   {ada_best:>9.4}s   {:.1} Mev/s   chose {} shard(s)   speedup {speedup:.2}x",
            n_events as f64 / ada_best / 1e6,
            d.fold_threads,
        );
    }

    let gate_speedup = speedups
        .iter()
        .find(|(k, ..)| *k == GATE_THREADS)
        .map(|&(_, _, s)| s)
        .expect("gate thread count measured");
    let enforced = cpus >= GATE_THREADS;

    let mut j = JsonObj::new();
    j.str_field("workload", &format!("backprop_big({layers},{layers})"))
        .int_field("events", n_events)
        .int_field("cpus", cpus as u64)
        .obj_field("serial", |o| {
            o.num_field("seconds", serial_s)
                .num_field("events_per_sec", n_events as f64 / serial_s);
        });
    for &(k, t, s) in &speedups {
        j.obj_field(&format!("threads_{k}"), |o| {
            o.num_field("seconds", t)
                .num_field("events_per_sec", n_events as f64 / t)
                .num_field("speedup", s);
        });
    }
    for &(k, chosen, t, s) in &adaptive_results {
        j.obj_field(&format!("adaptive_{k}"), |o| {
            o.int_field("chosen_threads", chosen as u64)
                .num_field("seconds", t)
                .num_field("events_per_sec", n_events as f64 / t)
                .num_field("speedup", s);
        });
    }
    j.obj_field("gate", |o| {
        o.num_field("floor", SPEEDUP_FLOOR)
            .int_field("at_threads", GATE_THREADS as u64)
            .str_field("enforced", if enforced { "true" } else { "false" })
            .num_field("measured", gate_speedup);
    });
    j.obj_field("adaptive_gate", |o| {
        o.num_field("floor", ADAPTIVE_FLOOR)
            .str_field("enforced", "true")
            .num_field(
                "worst",
                adaptive_results
                    .iter()
                    .map(|&(_, _, _, s)| s)
                    .fold(f64::INFINITY, f64::min),
            );
    });

    // One instrumented run at the gate shard count: channel stall time and
    // shard balance explain *why* a scaling number moved, so they ride
    // along in the JSON (and as the standalone CI metrics artifact).
    let col = Arc::new(Collector::new(MetricsLevel::Timing));
    let cfg = PipelineConfig {
        fold_threads: GATE_THREADS,
        chunk_events: 4096,
        ..Default::default()
    };
    // The instrumented run also installs the static prune mask so the
    // artifact records the PrunedEvents counter alongside the stall clocks.
    let mask = polystatic::dataflow::StaticSummary::analyze(&prog).prune_mask();
    let t0 = Instant::now();
    let (ddg, _interner, _pruned) =
        fold_pipelined_pruned(&prog, &structure, &cfg, Some(&col), Some(mask));
    black_box(ddg);
    let m = col.snapshot(t0.elapsed().as_nanos() as u64);
    let metrics_json = m.to_json();
    println!(
        "  instrumented @{GATE_THREADS}: send stall {:.1} ms, recv stall {:.1} ms, shard balance {:.2}",
        m.counter(Counter::SendStallNs) as f64 / 1e6,
        m.counter(Counter::RecvStallNs) as f64 / 1e6,
        m.shard_balance()
    );
    j.raw_field("metrics", &metrics_json);
    let mpath = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../metrics_fold_scaling.json"
    );
    std::fs::write(mpath, metrics_json + "\n").expect("write metrics_fold_scaling.json");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fold_scaling.json");
    std::fs::write(path, j.render() + "\n").expect("write BENCH_fold_scaling.json");
    println!("  wrote {path} and {mpath}");

    // Unconditional: the adaptive executor never loses to serial, whatever
    // the hardware — on 1 CPU it must have picked the inline path.
    for &(k, chosen, _, s) in &adaptive_results {
        assert!(
            s >= ADAPTIVE_FLOOR,
            "adaptive executor lost to serial at requested K={k} \
             (chose {chosen} shard(s)): {s:.2}x < {ADAPTIVE_FLOOR}x"
        );
    }
    if enforced {
        assert!(
            gate_speedup >= SPEEDUP_FLOOR,
            "fold pipeline must be ≥{SPEEDUP_FLOOR}x serial at {GATE_THREADS} threads, \
             measured {gate_speedup:.2}x"
        );
        let adaptive_at_gate = adaptive_results
            .iter()
            .find(|(k, ..)| *k == GATE_THREADS)
            .map(|&(_, _, _, s)| s)
            .expect("gate thread count measured");
        assert!(
            adaptive_at_gate >= SPEEDUP_FLOOR,
            "adaptive executor must be ≥{SPEEDUP_FLOOR}x serial at K={GATE_THREADS} \
             on a ≥{GATE_THREADS}-CPU machine, measured {adaptive_at_gate:.2}x"
        );
    } else {
        println!(
            "  gate skipped: {cpus} cpu(s) < {GATE_THREADS} — scaling is not measurable here \
             (pipeline threads time-slice one core); CI enforces the {SPEEDUP_FLOOR}x floor \
             (adaptive ≥ serial was still enforced above)"
        );
    }
}
