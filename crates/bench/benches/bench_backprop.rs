//! Criterion benches for the backprop case-study kernels (Table 3): the
//! suggested interchange+SIMD (+ parallel) transformation vs the original.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kernels::backprop::*;
use std::hint::black_box;

fn bench_layerforward(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3/layerforward");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[256usize, 1024] {
        let (conn, l1, l2) = make_inputs(n, n);
        let mut out = l2.clone();
        g.bench_with_input(BenchmarkId::new("original", n), &n, |b, &n| {
            b.iter(|| layerforward_original(black_box(&l1), &mut out, black_box(&conn), n, n))
        });
        let mut out2 = l2.clone();
        g.bench_with_input(BenchmarkId::new("interchanged", n), &n, |b, &n| {
            b.iter(|| layerforward_interchanged(black_box(&l1), &mut out2, black_box(&conn), n, n))
        });
        let mut out3 = l2;
        g.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, &n| {
            b.iter(|| layerforward_parallel(black_box(&l1), &mut out3, black_box(&conn), n, n))
        });
    }
    g.finish();
}

fn bench_adjust(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3/adjust_weights");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[256usize, 1024] {
        let ld = n + 1;
        let delta: Vec<f64> = (0..ld).map(|i| (i % 9) as f64 * 0.01).collect();
        let ly: Vec<f64> = (0..=n).map(|i| (i % 5) as f64 * 0.1).collect();
        let w0: Vec<f64> = (0..(n + 1) * ld).map(|i| (i % 11) as f64 * 0.1).collect();
        let o0 = w0.clone();
        let (mut w1, mut o1) = (w0.clone(), o0.clone());
        g.bench_with_input(BenchmarkId::new("original", n), &n, |b, &n| {
            b.iter(|| {
                adjust_weights_original(black_box(&delta), n, black_box(&ly), n, &mut w1, &mut o1)
            })
        });
        let (mut w2, mut o2) = (w0, o0);
        g.bench_with_input(BenchmarkId::new("transformed", n), &n, |b, &n| {
            b.iter(|| {
                adjust_weights_transformed(
                    black_box(&delta),
                    n,
                    black_box(&ly),
                    n,
                    &mut w2,
                    &mut o2,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_layerforward, bench_adjust);
criterion_main!(benches);
