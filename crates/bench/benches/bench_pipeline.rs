//! Pipeline benchmark — the paper's §8 scalability claim, measured two ways:
//!
//! 1. **Stage timings** (hotspot, srad_v2): un-instrumented VM, stage-1
//!    structure recording, and the full pipeline.
//! 2. **Profiler event throughput** (a backprop-class program with scaled-up
//!    layer sizes): the event stream of one stage-2 run is recorded once,
//!    then replayed straight into the retained
//!    [`baseline::NaiveDdgProfiler`] and the production interned-coordinate
//!    [`DdgProfiler`] — isolating profiler cost from both interpreter cost
//!    and the (identical) folding-finalization cost. The comparison is
//!    asserted (≥ 1.5×) and written to `BENCH_pipeline.json` at the
//!    workspace root for machine-readable trend tracking.

use polyddg::baseline::NaiveDdgProfiler;
use polyddg::DdgProfiler;
use polyfold::{FoldOptions, FoldingSink};
use polyir::Program;
use polyprof_bench::trace::{big_backprop, replay, Ev, Recorder};
use polyprof_bench::{smoke, time_runs, JsonObj};
use polyprof_core::{profile_with, MetricsLevel, ProfileConfig};
use polyvm::{EventSink, NullSink, Vm};
use std::hint::black_box;
use std::time::Instant;

/// Fold sink that consumes the profiler's output streams for free: used to
/// measure the profiler layer itself, since the (shared) folding stage costs
/// the same for both profiler implementations and would otherwise dominate.
struct NullFold {
    points: u64,
    deps: u64,
    accesses: u64,
}

impl polyddg::FoldSink for NullFold {
    fn instr_point(&mut self, _stmt: polyiiv::context::StmtId, coords: &[i64], _v: Option<i64>) {
        self.points += 1;
        black_box(coords);
    }
    fn mem_access(
        &mut self,
        _stmt: polyiiv::context::StmtId,
        coords: &[i64],
        _addr: u64,
        _w: bool,
    ) {
        self.accesses += 1;
        black_box(coords);
    }
    fn dependence(
        &mut self,
        _kind: polyddg::DepKind,
        _src: polyiiv::context::StmtId,
        src_coords: &[i64],
        _dst: polyiiv::context::StmtId,
        dst_coords: &[i64],
    ) {
        self.deps += 1;
        black_box((src_coords, dst_coords));
    }
}

/// Best-of-`reps` wall time of replaying `events` into a fresh profiler —
/// the timer brackets *only* the replay loop, so constructor cost and the
/// (identical for both profilers) folding finalization stay outside the
/// event-throughput figure.
fn replay_time<S: EventSink>(
    events: &[Ev],
    reps: usize,
    mut mk: impl FnMut() -> S,
    mut done: impl FnMut(S),
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut sink = mk();
        let t0 = Instant::now();
        replay(events, &mut sink);
        best = best.min(t0.elapsed().as_secs_f64());
        done(sink);
    }
    best
}

fn stage_timings(prog: &Program, name: &str) {
    let reps = 3;
    let vm = time_runs(reps, || {
        Vm::new(prog).run(&[], &mut NullSink).unwrap();
    });
    let stage1 = time_runs(reps, || {
        let mut rec = polycfg::StructureRecorder::new();
        Vm::new(prog).run(&[], &mut rec).unwrap();
        black_box(polycfg::StaticStructure::analyze(prog, rec));
    });
    let full = time_runs(reps, || {
        black_box(polyprof_core::profile(prog));
    });
    println!(
        "{name:<12} vm {vm:>9.4}s   stage1 {stage1:>9.4}s ({:.2}x)   full {full:>9.4}s ({:.2}x)",
        stage1 / vm,
        full / vm
    );
}

fn main() {
    // Smoke mode (BENCH_SMOKE=1, the CI bench-smoke job): smaller trace and
    // fewer reps, same assertions — the 1.5x floor is an algorithmic ratio,
    // not a machine-speed measurement, so it holds at smoke size too.
    let (layers, reps) = if smoke() { (48, 2) } else { (96, 5) };

    if !smoke() {
        println!("=== pipeline stage timings (overhead over the bare VM) ===");
        for build in [rodinia::hotspot::build, rodinia::srad::build_v2] {
            let w = build();
            stage_timings(&w.program, w.name);
        }
    }

    println!(
        "\n=== stage-2 profiler event throughput: naive vs interned (backprop-class trace) ==="
    );
    let prog = big_backprop(layers, layers);
    let mut rec = polycfg::StructureRecorder::new();
    Vm::new(&prog).run(&[], &mut rec).expect("pass 1");
    let structure = polycfg::StaticStructure::analyze(&prog, rec);
    let mut recorder = Recorder::default();
    Vm::new(&prog)
        .run(&[], &mut recorder)
        .expect("trace recording");
    let events = recorder.events;
    let n_events = events.len() as u64;

    // Profiler layer alone (null fold sink): this is where the interning /
    // MRU / pooling work lives, and what the ≥1.5× criterion is asserted on.
    let null_fold = || NullFold {
        points: 0,
        deps: 0,
        accesses: 0,
    };
    let naive_s = replay_time(
        &events,
        reps,
        || NaiveDdgProfiler::new(&prog, &structure, null_fold()),
        |prof| {
            black_box(prof.finish());
        },
    );
    let mut resident_pages = 0usize;
    let mut arena_bytes = 0usize;
    let fast_s = replay_time(
        &events,
        reps,
        || DdgProfiler::new(&prog, &structure, null_fold()),
        |prof| {
            resident_pages = prof.resident_shadow_pages();
            arena_bytes = prof.arena_bytes();
            black_box(prof.finish());
        },
    );
    let speedup = naive_s / fast_s;
    println!(
        "  profiler layer:  {n_events} events: naive {:.1} Mev/s ({:.1} ns/ev)  interned {:.1} Mev/s ({:.1} ns/ev)  speedup {speedup:.2}x",
        n_events as f64 / naive_s / 1e6,
        naive_s * 1e9 / n_events as f64,
        n_events as f64 / fast_s / 1e6,
        fast_s * 1e9 / n_events as f64,
    );
    println!(
        "  resident shadow pages: {resident_pages}, spilled-coordinate arena: {arena_bytes} B"
    );

    // End-to-end with the folding sink attached. The baseline is the naive
    // profiler feeding the *rational-only* folder — the pre-fast-path
    // configuration — against the production pair: interned profiler +
    // integer fast-path fit verification. This is the with-folding
    // throughput criterion (≥5x; ≥3x on a 1-CPU box, where the calibration
    // headroom the fast path banks on is smaller).
    let rational_fold = FoldOptions {
        fast_fit: false,
        ..Default::default()
    };
    let naive_fold_s = replay_time(
        &events,
        reps,
        || NaiveDdgProfiler::new(&prog, &structure, FoldingSink::with_options(rational_fold)),
        |prof| {
            black_box(prof.finish());
        },
    );
    let fast_fold_s = replay_time(
        &events,
        reps,
        || DdgProfiler::new(&prog, &structure, FoldingSink::new()),
        |prof| {
            black_box(prof.finish());
        },
    );
    let fold_speedup = naive_fold_s / fast_fold_s;
    println!(
        "  with folding:    {n_events} events: naive+rational {:.1} Mev/s ({:.1} ns/ev)  interned+fast {:.1} Mev/s ({:.1} ns/ev)  speedup {fold_speedup:.2}x",
        n_events as f64 / naive_fold_s / 1e6,
        naive_fold_s * 1e9 / n_events as f64,
        n_events as f64 / fast_fold_s / 1e6,
        fast_fold_s * 1e9 / n_events as f64,
    );

    let mut j = JsonObj::new();
    j.str_field("workload", &format!("backprop_big({layers},{layers})"))
        .int_field("events", n_events)
        .obj_field("naive", |o| {
            o.num_field("seconds", naive_s)
                .num_field("events_per_sec", n_events as f64 / naive_s)
                .num_field("ns_per_event", naive_s * 1e9 / n_events as f64);
        })
        .obj_field("interned", |o| {
            o.num_field("seconds", fast_s)
                .num_field("events_per_sec", n_events as f64 / fast_s)
                .num_field("ns_per_event", fast_s * 1e9 / n_events as f64)
                .int_field("resident_shadow_pages", resident_pages as u64)
                .int_field("arena_bytes", arena_bytes as u64);
        })
        .num_field("speedup", speedup)
        .obj_field("with_folding", |o| {
            o.num_field("naive_seconds", naive_fold_s)
                .num_field("interned_seconds", fast_fold_s)
                .num_field("naive_ns_per_event", naive_fold_s * 1e9 / n_events as f64)
                .num_field("interned_ns_per_event", fast_fold_s * 1e9 / n_events as f64)
                .num_field("speedup", fold_speedup);
        });

    // Self-profiling telemetry snapshot of one full end-to-end run on the
    // same workload: per-stage wall times and hot-path counters ride along
    // in the JSON so the bench trajectory records *where* time went, not
    // just how much. The standalone copy is the CI metrics artifact.
    // Pruning + lint are on so the artifact also records the static
    // pre-pass counters (StaticScevStmts / PrunedStmts / PrunedEvents /
    // LintChecks / LintViolations).
    let report = profile_with(
        &prog,
        &ProfileConfig::new()
            .with_metrics(MetricsLevel::Timing)
            .with_static_prune(true)
            .with_lint(true),
    );
    let metrics_json = report.metrics_json().expect("metrics requested");
    j.raw_field("metrics", &metrics_json);
    println!("\n=== self-profile of one full run ===");
    print!("{}", report.metrics.as_ref().unwrap());
    let mpath = concat!(env!("CARGO_MANIFEST_DIR"), "/../../metrics_pipeline.json");
    std::fs::write(mpath, metrics_json + "\n").expect("write metrics_pipeline.json");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, j.render() + "\n").expect("write BENCH_pipeline.json");

    // Per-run trajectory line: one appended JSON object per bench run, so
    // the artifact history shows the ns/event trend across PRs without
    // diffing whole snapshots. (CI uploads every BENCH_*.json.) Each line
    // carries the machine and run identity (CPU count, smoke flag, commit)
    // that a number is meaningless without.
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let git_sha = std::env::var("GITHUB_SHA").unwrap_or_else(|_| "unknown".into());
    let mut traj = JsonObj::new();
    traj.str_field("bench", "pipeline")
        .int_field("cpus", cpus as u64)
        .raw_field(
            "smoke",
            if polyprof_bench::smoke() {
                "true"
            } else {
                "false"
            },
        )
        .str_field("git_sha", &git_sha)
        .int_field("events", n_events)
        .num_field("profiler_ns_per_event", fast_s * 1e9 / n_events as f64)
        .num_field(
            "with_folding_ns_per_event",
            fast_fold_s * 1e9 / n_events as f64,
        )
        .num_field("with_folding_speedup", fold_speedup);
    let tpath = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trajectory.json");
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(tpath)
            .expect("open BENCH_trajectory.json");
        writeln!(f, "{}", traj.render()).expect("append trajectory line");
    }
    println!("  wrote {path}, {mpath}; appended {tpath}");

    assert!(
        speedup >= 1.5,
        "interned profiler must be ≥1.5x the naive baseline, measured {speedup:.2}x"
    );
    let fold_floor = if cpus < 2 { 3.0 } else { 5.0 };
    assert!(
        fold_speedup >= fold_floor,
        "with-folding throughput must be ≥{fold_floor}x the rational-fold baseline \
         ({cpus} CPUs), measured {fold_speedup:.2}x"
    );
}
