//! Criterion benches for the profiling pipeline itself — the paper's §8
//! scalability claim (full Rodinia profiled in bounded time). Measures the
//! un-instrumented VM, stage 1 (structure recording), and the full
//! pipeline, per workload.

use criterion::{criterion_group, criterion_main, Criterion};
use polyvm::{NullSink, Vm};

fn bench_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(10);
    for build in [rodinia::hotspot::build, rodinia::srad::build_v2] {
        let w = build();
        let name = w.name;
        g.bench_function(format!("{name}/vm_uninstrumented"), |b| {
            b.iter(|| {
                Vm::new(&w.program).run(&[], &mut NullSink).unwrap();
            })
        });
        g.bench_function(format!("{name}/stage1_structure"), |b| {
            b.iter(|| {
                let mut rec = polycfg::StructureRecorder::new();
                Vm::new(&w.program).run(&[], &mut rec).unwrap();
                polycfg::StaticStructure::analyze(&w.program, rec)
            })
        });
        g.bench_function(format!("{name}/full_pipeline"), |b| {
            b.iter(|| polyprof_core::profile(&w.program))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
