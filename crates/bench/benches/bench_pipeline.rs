//! Pipeline benchmark — the paper's §8 scalability claim, measured two ways:
//!
//! 1. **Stage timings** (hotspot, srad_v2): un-instrumented VM, stage-1
//!    structure recording, and the full pipeline.
//! 2. **Profiler event throughput** (a backprop-class program with scaled-up
//!    layer sizes): the event stream of one stage-2 run is recorded once,
//!    then replayed straight into the retained
//!    [`baseline::NaiveDdgProfiler`] and the production interned-coordinate
//!    [`DdgProfiler`] — isolating profiler cost from both interpreter cost
//!    and the (identical) folding-finalization cost. The comparison is
//!    asserted (≥ 1.5×) and written to `BENCH_pipeline.json` at the
//!    workspace root for machine-readable trend tracking.

use polyddg::baseline::NaiveDdgProfiler;
use polyddg::DdgProfiler;
use polyfold::FoldingSink;
use polyir::build::ProgramBuilder;
use polyir::{BlockRef, FBinOp, FuncId, InstrRef, Operand, Program, UnOp, Value};
use polyprof_bench::{time_runs, JsonObj};
use polyvm::{EventSink, NullSink, Vm};
use std::hint::black_box;
use std::time::Instant;

/// One recorded instrumentation event.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Jump(BlockRef, BlockRef),
    Call(BlockRef, FuncId, BlockRef),
    Ret(FuncId, Option<BlockRef>),
    Exec(InstrRef, Option<Value>),
    Mem(InstrRef, u64, bool),
}

/// Records the full event stream of one execution for later replay.
#[derive(Debug, Default)]
struct Recorder {
    events: Vec<Ev>,
}

impl EventSink for Recorder {
    fn local_jump(&mut self, from: BlockRef, to: BlockRef) {
        self.events.push(Ev::Jump(from, to));
    }
    fn call(&mut self, callsite: BlockRef, callee: FuncId, entry: BlockRef) {
        self.events.push(Ev::Call(callsite, callee, entry));
    }
    fn ret(&mut self, from: FuncId, to: Option<BlockRef>) {
        self.events.push(Ev::Ret(from, to));
    }
    fn exec(&mut self, instr: InstrRef, value: Option<Value>) {
        self.events.push(Ev::Exec(instr, value));
    }
    fn mem(&mut self, instr: InstrRef, addr: u64, is_write: bool) {
        self.events.push(Ev::Mem(instr, addr, is_write));
    }
}

fn replay<S: EventSink>(events: &[Ev], sink: &mut S) {
    for ev in events {
        match *ev {
            Ev::Jump(a, b) => sink.local_jump(a, b),
            Ev::Call(a, b, c) => sink.call(a, b, c),
            Ev::Ret(a, b) => sink.ret(a, b),
            Ev::Exec(a, b) => sink.exec(a, b),
            Ev::Mem(a, b, c) => sink.mem(a, b, c),
        }
    }
}

/// A backprop-class program (the shape of `rodinia::backprop` — 2-D column-
/// stride reduction kernel + 2-D elementwise update, both behind calls) with
/// parametric layer sizes, so the recorded trace is long enough that
/// steady-state event cost dominates fixed setup/finalization cost.
fn big_backprop(n1: i64, n2: i64) -> Program {
    let mut pb = ProgramBuilder::new("backprop_big");
    let conn = pb.array_f64(&vec![0.1; ((n1 + 1) * (n2 + 1)) as usize]);
    let l1 = pb.array_f64(&vec![0.5; (n1 + 1) as usize]);
    let l2 = pb.alloc((n2 + 1) as u64);
    let delta = pb.array_f64(&vec![0.01; (n2 + 1) as usize]);
    let oldw = pb.array_f64(&vec![0.2; ((n1 + 1) * (n2 + 1)) as usize]);
    let w = pb.array_f64(&vec![0.3; ((n1 + 1) * (n2 + 1)) as usize]);

    let mut sq = pb.func("squash", 1);
    let x = sq.param(0);
    let s = sq.un(UnOp::Sigmoid, x);
    sq.ret(Some(s.into()));
    let squash = sq.finish();

    let mut lf = pb.func("bpnn_layerforward", 5);
    {
        let (l1p, l2p, connp, pn1, pn2) = (
            lf.param(0),
            lf.param(1),
            lf.param(2),
            lf.param(3),
            lf.param(4),
        );
        lf.for_loop("Lj", 1i64, pn2, 1, |f, j| {
            let sum = f.const_f(0.0);
            f.for_loop("Lk", 0i64, pn1, 1, |f, k| {
                let row = f.mul(k, n2 + 1);
                let idx = f.add(row, j);
                let wv = f.load(connp, idx);
                let xv = f.load(l1p, k);
                let prod = f.fmul(wv, xv);
                f.fop_to(sum, FBinOp::Add, sum, prod);
            });
            let out = f.call(squash, &[sum.into()]);
            f.store(l2p, j, out);
        });
        lf.ret(None);
    }
    let layerforward = lf.finish();

    let mut aw = pb.func("bpnn_adjust_weights", 4);
    {
        let (deltap, lyp, wp, oldwp) = (aw.param(0), aw.param(1), aw.param(2), aw.param(3));
        aw.for_loop("Lj", 1i64, n2, 1, |f, j| {
            f.for_loop("Lk", 0i64, n1, 1, |f, k| {
                let row = f.mul(k, n2 + 1);
                let idx = f.add(row, j);
                let d = f.load(deltap, j);
                let y = f.load(lyp, k);
                let old = f.load(oldwp, idx);
                let eta = f.fmul(d, 0.3f64);
                let t1 = f.fmul(eta, y);
                let t2 = f.fmul(old, 0.3f64);
                let upd = f.fadd(t1, t2);
                let cur = f.load(wp, idx);
                let neww = f.fadd(cur, upd);
                f.store(wp, idx, neww);
                f.store(oldwp, idx, upd);
            });
        });
        aw.ret(None);
    }
    let adjust = aw.finish();

    let mut m = pb.func("main", 0);
    m.call_void(
        layerforward,
        &[
            Operand::ImmI(l1 as i64),
            Operand::ImmI(l2 as i64),
            Operand::ImmI(conn as i64),
            Operand::ImmI(n1),
            Operand::ImmI(n2),
        ],
    );
    m.call_void(
        adjust,
        &[
            Operand::ImmI(delta as i64),
            Operand::ImmI(l1 as i64),
            Operand::ImmI(w as i64),
            Operand::ImmI(oldw as i64),
        ],
    );
    m.ret(None);
    let mid = m.finish();
    pb.set_entry(mid);
    pb.finish()
}

/// Fold sink that consumes the profiler's output streams for free: used to
/// measure the profiler layer itself, since the (shared) folding stage costs
/// the same for both profiler implementations and would otherwise dominate.
struct NullFold {
    points: u64,
    deps: u64,
    accesses: u64,
}

impl polyddg::FoldSink for NullFold {
    fn instr_point(&mut self, _stmt: polyiiv::context::StmtId, coords: &[i64], _v: Option<i64>) {
        self.points += 1;
        black_box(coords);
    }
    fn mem_access(
        &mut self,
        _stmt: polyiiv::context::StmtId,
        coords: &[i64],
        _addr: u64,
        _w: bool,
    ) {
        self.accesses += 1;
        black_box(coords);
    }
    fn dependence(
        &mut self,
        _kind: polyddg::DepKind,
        _src: polyiiv::context::StmtId,
        src_coords: &[i64],
        _dst: polyiiv::context::StmtId,
        dst_coords: &[i64],
    ) {
        self.deps += 1;
        black_box((src_coords, dst_coords));
    }
}

/// Best-of-`reps` wall time of replaying `events` into a fresh profiler —
/// the timer brackets *only* the replay loop, so constructor cost and the
/// (identical for both profilers) folding finalization stay outside the
/// event-throughput figure.
fn replay_time<S: EventSink>(
    events: &[Ev],
    reps: usize,
    mut mk: impl FnMut() -> S,
    mut done: impl FnMut(S),
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut sink = mk();
        let t0 = Instant::now();
        replay(events, &mut sink);
        best = best.min(t0.elapsed().as_secs_f64());
        done(sink);
    }
    best
}

fn stage_timings(prog: &Program, name: &str) {
    let reps = 3;
    let vm = time_runs(reps, || {
        Vm::new(prog).run(&[], &mut NullSink).unwrap();
    });
    let stage1 = time_runs(reps, || {
        let mut rec = polycfg::StructureRecorder::new();
        Vm::new(prog).run(&[], &mut rec).unwrap();
        black_box(polycfg::StaticStructure::analyze(prog, rec));
    });
    let full = time_runs(reps, || {
        black_box(polyprof_core::profile(prog));
    });
    println!(
        "{name:<12} vm {vm:>9.4}s   stage1 {stage1:>9.4}s ({:.2}x)   full {full:>9.4}s ({:.2}x)",
        stage1 / vm,
        full / vm
    );
}

fn main() {
    println!("=== pipeline stage timings (overhead over the bare VM) ===");
    for build in [rodinia::hotspot::build, rodinia::srad::build_v2] {
        let w = build();
        stage_timings(&w.program, w.name);
    }

    println!(
        "\n=== stage-2 profiler event throughput: naive vs interned (backprop-class trace) ==="
    );
    let prog = big_backprop(96, 96);
    let mut rec = polycfg::StructureRecorder::new();
    Vm::new(&prog).run(&[], &mut rec).expect("pass 1");
    let structure = polycfg::StaticStructure::analyze(&prog, rec);
    let mut recorder = Recorder::default();
    Vm::new(&prog)
        .run(&[], &mut recorder)
        .expect("trace recording");
    let events = recorder.events;
    let n_events = events.len() as u64;

    let reps = 5;
    // Profiler layer alone (null fold sink): this is where the interning /
    // MRU / pooling work lives, and what the ≥1.5× criterion is asserted on.
    let null_fold = || NullFold {
        points: 0,
        deps: 0,
        accesses: 0,
    };
    let naive_s = replay_time(
        &events,
        reps,
        || NaiveDdgProfiler::new(&prog, &structure, null_fold()),
        |prof| {
            black_box(prof.finish());
        },
    );
    let mut resident_pages = 0usize;
    let mut arena_bytes = 0usize;
    let fast_s = replay_time(
        &events,
        reps,
        || DdgProfiler::new(&prog, &structure, null_fold()),
        |prof| {
            resident_pages = prof.resident_shadow_pages();
            arena_bytes = prof.arena_bytes();
            black_box(prof.finish());
        },
    );
    let speedup = naive_s / fast_s;
    println!(
        "  profiler layer:  {n_events} events: naive {:.1} Mev/s ({:.1} ns/ev)  interned {:.1} Mev/s ({:.1} ns/ev)  speedup {speedup:.2}x",
        n_events as f64 / naive_s / 1e6,
        naive_s * 1e9 / n_events as f64,
        n_events as f64 / fast_s / 1e6,
        fast_s * 1e9 / n_events as f64,
    );
    println!(
        "  resident shadow pages: {resident_pages}, spilled-coordinate arena: {arena_bytes} B"
    );

    // End-to-end with the (shared) folding sink attached, for context: the
    // per-point affine fit-and-verify dominates here, identically for both.
    let naive_fold_s = replay_time(
        &events,
        reps,
        || NaiveDdgProfiler::new(&prog, &structure, FoldingSink::new()),
        |prof| {
            black_box(prof.finish());
        },
    );
    let fast_fold_s = replay_time(
        &events,
        reps,
        || DdgProfiler::new(&prog, &structure, FoldingSink::new()),
        |prof| {
            black_box(prof.finish());
        },
    );
    let fold_speedup = naive_fold_s / fast_fold_s;
    println!(
        "  with folding:    {n_events} events: naive {:.1} Mev/s ({:.1} ns/ev)  interned {:.1} Mev/s ({:.1} ns/ev)  speedup {fold_speedup:.2}x",
        n_events as f64 / naive_fold_s / 1e6,
        naive_fold_s * 1e9 / n_events as f64,
        n_events as f64 / fast_fold_s / 1e6,
        fast_fold_s * 1e9 / n_events as f64,
    );

    let mut j = JsonObj::new();
    j.str_field("workload", "backprop_big(96,96)")
        .int_field("events", n_events)
        .obj_field("naive", |o| {
            o.num_field("seconds", naive_s)
                .num_field("events_per_sec", n_events as f64 / naive_s)
                .num_field("ns_per_event", naive_s * 1e9 / n_events as f64);
        })
        .obj_field("interned", |o| {
            o.num_field("seconds", fast_s)
                .num_field("events_per_sec", n_events as f64 / fast_s)
                .num_field("ns_per_event", fast_s * 1e9 / n_events as f64)
                .int_field("resident_shadow_pages", resident_pages as u64)
                .int_field("arena_bytes", arena_bytes as u64);
        })
        .num_field("speedup", speedup)
        .obj_field("with_folding", |o| {
            o.num_field("naive_seconds", naive_fold_s)
                .num_field("interned_seconds", fast_fold_s)
                .num_field("naive_ns_per_event", naive_fold_s * 1e9 / n_events as f64)
                .num_field("interned_ns_per_event", fast_fold_s * 1e9 / n_events as f64)
                .num_field("speedup", fold_speedup);
        });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, j.render() + "\n").expect("write BENCH_pipeline.json");
    println!("  wrote {path}");

    assert!(
        speedup >= 1.5,
        "interned profiler must be ≥1.5x the naive baseline, measured {speedup:.2}x"
    );
}
