//! Property tests for the polyhedral substrate: Fourier–Motzkin soundness,
//! projection correctness, counting/specialization agreement, and rational
//! arithmetic laws.

use polylib::{AffineExpr, Bound, Polyhedron, Rat};
use proptest::prelude::*;

/// A random small polyhedron in 2 variables built from bound constraints
/// plus one random half-space, guaranteed non-degenerate coefficients.
fn small_poly() -> impl Strategy<Value = Polyhedron> {
    (
        -4i64..4,
        1i64..6,
        -4i64..4,
        1i64..6,
        -2i64..=2,
        -2i64..=2,
        -8i64..=8,
    )
        .prop_map(|(l0, e0, l1, e1, a, b, c)| {
            let mut p = Polyhedron::universe(2);
            p.add_var_bounds(
                0,
                &AffineExpr::constant(2, l0),
                &AffineExpr::constant(2, l0 + e0),
            );
            p.add_var_bounds(
                1,
                &AffineExpr::constant(2, l1),
                &AffineExpr::constant(2, l1 + e1),
            );
            p.add_ge(&AffineExpr::new(vec![a, b], c));
            p
        })
}

proptest! {
    /// Emptiness is consistent with exhaustive membership over the box.
    #[test]
    fn emptiness_agrees_with_enumeration(p in small_poly()) {
        let mut any = false;
        for x in -12..12 {
            for y in -12..12 {
                if p.contains(&[x, y]) {
                    any = true;
                }
            }
        }
        if any {
            prop_assert!(!p.is_empty(), "found integer points but is_empty()");
        }
        // (rational-nonempty with no integer points is allowed: is_empty is
        // a rational relaxation)
    }

    /// count_points equals brute-force enumeration.
    #[test]
    fn counting_agrees_with_enumeration(p in small_poly()) {
        let mut n = 0u64;
        for x in -12..12 {
            for y in -12..12 {
                if p.contains(&[x, y]) {
                    n += 1;
                }
            }
        }
        if let Some(c) = p.count_points(100_000) {
            prop_assert_eq!(c, n);
        }
    }

    /// Extrema bound every contained point's value of a random affine form.
    #[test]
    fn extrema_sound(p in small_poly(), a in -3i64..=3, b in -3i64..=3, c in -5i64..=5) {
        let f = AffineExpr::new(vec![a, b], c);
        let min = p.min_of(&f);
        let max = p.max_of(&f);
        for x in -12..12 {
            for y in -12..12 {
                if p.contains(&[x, y]) {
                    let v = Rat::int(f.eval(&[x, y]) as i128);
                    match min {
                        Bound::Finite(m) => prop_assert!(m <= v, "min {m} > value {v}"),
                        Bound::Empty => prop_assert!(false, "point in 'empty' polyhedron"),
                        Bound::Unbounded => {}
                    }
                    match max {
                        Bound::Finite(m) => prop_assert!(m >= v),
                        Bound::Empty => prop_assert!(false),
                        Bound::Unbounded => {}
                    }
                }
            }
        }
    }

    /// Projection (eliminate) is an over-approximation of the shadow: any
    /// contained point stays contained after eliminating a variable.
    #[test]
    fn elimination_preserves_membership(p in small_poly()) {
        let q = p.eliminate(1);
        for x in -12..12 {
            for y in -12..12 {
                if p.contains(&[x, y]) {
                    prop_assert!(q.contains(&[x, y]), "projection lost ({x},{y})");
                    // and the projected var is now free
                    prop_assert!(q.contains(&[x, 999]));
                }
            }
        }
    }

    /// Specialization commutes with membership.
    #[test]
    fn specialize_matches_membership(p in small_poly(), v in -10i64..10) {
        let s = p.specialize(0, v);
        for y in -12..12 {
            prop_assert_eq!(p.contains(&[v, y]), s.contains(&[v, y]));
            // the specialized polyhedron ignores coordinate 0
            prop_assert_eq!(s.contains(&[v, y]), s.contains(&[12345, y]));
        }
    }

    /// Rational arithmetic: field laws on random small fractions.
    #[test]
    fn rat_field_laws(
        an in -20i128..20, ad in 1i128..10,
        bn in -20i128..20, bd in 1i128..10,
        cn in -20i128..20, cd in 1i128..10,
    ) {
        let a = Rat::new(an, ad);
        let b = Rat::new(bn, bd);
        let c = Rat::new(cn, cd);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Rat::ZERO);
        if b != Rat::ZERO {
            prop_assert_eq!((a / b) * b, a);
        }
        // floor/ceil sandwich
        prop_assert!(Rat::int(a.floor()) <= a);
        prop_assert!(Rat::int(a.ceil()) >= a);
    }

    /// Affine fit round-trip through the solver used by folding.
    #[test]
    fn fit_affine_roundtrip(
        a in -5i64..=5, b in -5i64..=5, c in -50i64..=50,
        pts in proptest::collection::vec((-10i64..10, -10i64..10), 3..20),
    ) {
        let samples: Vec<(Vec<i64>, i64)> = pts
            .iter()
            .map(|&(x, y)| (vec![x, y], a * x + b * y + c))
            .collect();
        let (coeffs, cc) = polylib::linsolve::fit_affine(&samples)
            .expect("affine data always fits");
        for (p, v) in &samples {
            let mut acc = cc;
            for (i, &x) in p.iter().enumerate() {
                acc = acc + coeffs[i] * Rat::int(x as i128);
            }
            prop_assert_eq!(acc, Rat::int(*v as i128));
        }
    }
}
