//! # polylib — a compact integer-set library (the paper's isl substitute)
//!
//! Poly-Prof leans on isl for representing folded iteration domains and
//! dependence relations and on rational linear algebra for affine fitting.
//! This crate provides exactly that subset, self-contained:
//!
//! * [`rat::Rat`] — exact rational arithmetic over `i128`;
//! * [`affine::AffineExpr`] — affine forms `Σ aᵢ·xᵢ + c`;
//! * [`poly::Polyhedron`] — conjunctions of affine inequalities with
//!   Fourier–Motzkin projection, emptiness, affine min/max, membership and
//!   (small-domain) integer point counting;
//! * [`poly::UnionPoly`] — finite unions of polyhedra;
//! * [`linsolve`] — rational Gaussian elimination, used by the folding
//!   stage to fit affine label functions and loop bounds.
//!
//! Soundness posture: emptiness and min/max answer over the *rational
//! relaxation*, which is conservative for the legality questions the
//! scheduler asks (a dependence that only exists rationally is treated as
//! real, never the other way around).

pub mod affine;
pub mod linsolve;
pub mod poly;
pub mod rat;

pub use affine::AffineExpr;
pub use linsolve::{solve_rational, IncrementalFit};
pub use poly::{Bound, Constraint, Polyhedron, UnionPoly};
pub use rat::Rat;
