//! Affine expressions `Σ aᵢ·xᵢ + c` with integer coefficients.
//!
//! These appear in three roles across the pipeline: folded *label functions*
//! (the value / producer-coordinate an instruction yields as a function of
//! its iteration vector), folded *loop bounds* (affine in outer dimensions),
//! and *access functions* (addresses as affine functions of IVs — the SCEVs
//! of §5).

use crate::rat::Rat;
use std::fmt;

/// An affine expression over `n` variables: `coeffs · x + c`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    /// Per-variable integer coefficients.
    pub coeffs: Vec<i64>,
    /// Constant term.
    pub c: i64,
}

impl AffineExpr {
    /// The constant expression `c` over `n` variables.
    pub fn constant(n: usize, c: i64) -> AffineExpr {
        AffineExpr {
            coeffs: vec![0; n],
            c,
        }
    }

    /// The variable `xᵢ` over `n` variables.
    pub fn var(n: usize, i: usize) -> AffineExpr {
        let mut coeffs = vec![0; n];
        coeffs[i] = 1;
        AffineExpr { coeffs, c: 0 }
    }

    /// Build from parts.
    pub fn new(coeffs: Vec<i64>, c: i64) -> AffineExpr {
        AffineExpr { coeffs, c }
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluate at an integer point.
    pub fn eval(&self, x: &[i64]) -> i64 {
        debug_assert_eq!(x.len(), self.coeffs.len());
        let mut acc = self.c as i128;
        for (a, v) in self.coeffs.iter().zip(x) {
            acc += *a as i128 * *v as i128;
        }
        acc as i64
    }

    /// Evaluate at a rational point.
    pub fn eval_rat(&self, x: &[Rat]) -> Rat {
        let mut acc = Rat::int(self.c as i128);
        for (a, v) in self.coeffs.iter().zip(x) {
            acc = acc + Rat::int(*a as i128) * *v;
        }
        acc
    }

    /// True if all variable coefficients are zero.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&a| a == 0)
    }

    /// Pointwise sum.
    pub fn add(&self, o: &AffineExpr) -> AffineExpr {
        debug_assert_eq!(self.dim(), o.dim());
        AffineExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&o.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
            c: self.c + o.c,
        }
    }

    /// Pointwise difference.
    pub fn sub(&self, o: &AffineExpr) -> AffineExpr {
        debug_assert_eq!(self.dim(), o.dim());
        AffineExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&o.coeffs)
                .map(|(a, b)| a - b)
                .collect(),
            c: self.c - o.c,
        }
    }

    /// Scale by an integer.
    pub fn scale(&self, k: i64) -> AffineExpr {
        AffineExpr {
            coeffs: self.coeffs.iter().map(|a| a * k).collect(),
            c: self.c * k,
        }
    }

    /// Extend with zero coefficients to `n` variables.
    pub fn extended(&self, n: usize) -> AffineExpr {
        assert!(n >= self.dim());
        let mut coeffs = self.coeffs.clone();
        coeffs.resize(n, 0);
        AffineExpr { coeffs, c: self.c }
    }

    /// Render with variable names `names` (falling back to `x0…`).
    pub fn display(&self, names: &[&str]) -> String {
        let mut parts = Vec::new();
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let name = names
                .get(i)
                .copied()
                .map(str::to_string)
                .unwrap_or(format!("x{i}"));
            parts.push(match a {
                1 => name,
                -1 => format!("-{name}"),
                _ => format!("{a}{name}"),
            });
        }
        if self.c != 0 || parts.is_empty() {
            parts.push(self.c.to_string());
        }
        let mut s = String::new();
        for (i, p) in parts.iter().enumerate() {
            if i > 0 && !p.starts_with('-') {
                s.push_str(" + ");
            } else if i > 0 {
                s.push(' ');
            }
            s.push_str(p);
        }
        s
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display(&[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic() {
        // 2x + 3y - 1
        let e = AffineExpr::new(vec![2, 3], -1);
        assert_eq!(e.eval(&[1, 1]), 4);
        assert_eq!(e.eval(&[0, 0]), -1);
        assert_eq!(e.eval(&[-2, 5]), 10);
    }

    #[test]
    fn arithmetic_ops() {
        let a = AffineExpr::new(vec![1, 0], 2);
        let b = AffineExpr::new(vec![0, 1], -2);
        assert_eq!(a.add(&b), AffineExpr::new(vec![1, 1], 0));
        assert_eq!(a.sub(&b), AffineExpr::new(vec![1, -1], 4));
        assert_eq!(a.scale(3), AffineExpr::new(vec![3, 0], 6));
    }

    #[test]
    fn constructors() {
        assert!(AffineExpr::constant(3, 7).is_constant());
        let v = AffineExpr::var(3, 1);
        assert_eq!(v.eval(&[9, 4, 2]), 4);
        assert_eq!(v.extended(5).dim(), 5);
    }

    #[test]
    fn display_pretty() {
        let e = AffineExpr::new(vec![1, -1, 0], 3);
        assert_eq!(e.display(&["cj", "ck", "cl"]), "cj -ck + 3");
        assert_eq!(AffineExpr::constant(2, 0).display(&[]), "0");
    }

    #[test]
    fn eval_rat_matches_int() {
        let e = AffineExpr::new(vec![2, -5], 7);
        let r = e.eval_rat(&[Rat::int(3), Rat::int(2)]);
        assert_eq!(r, Rat::int(e.eval(&[3, 2]) as i128));
    }
}
