//! Polyhedra as conjunctions of affine constraints, with Fourier–Motzkin
//! elimination — the workhorse behind emptiness, projection, affine min/max
//! and small-domain point counting.

use crate::affine::AffineExpr;
use crate::rat::{gcd, Rat};
use std::collections::HashSet;
use std::fmt;

/// One constraint `coeffs · x + c ⋈ 0` where `⋈` is `>=` (or `==` when
/// `eq` is set).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Variable coefficients.
    pub coeffs: Vec<i128>,
    /// Constant term.
    pub c: i128,
    /// Equality instead of `>= 0`.
    pub eq: bool,
}

impl Constraint {
    fn eval(&self, x: &[i64]) -> i128 {
        let mut acc = self.c;
        for (a, v) in self.coeffs.iter().zip(x) {
            acc += a * *v as i128;
        }
        acc
    }

    fn holds(&self, x: &[i64]) -> bool {
        let v = self.eval(x);
        if self.eq {
            v == 0
        } else {
            v >= 0
        }
    }

    /// Normalize by the gcd of all coefficients and the constant (rationally
    /// sound for both equalities and inequalities).
    fn normalize(&mut self) {
        let mut g = 0i128;
        for &a in &self.coeffs {
            g = gcd(g, a);
        }
        g = gcd(g, self.c);
        if g > 1 {
            for a in &mut self.coeffs {
                *a /= g;
            }
            self.c /= g;
        }
    }

    fn is_trivial(&self) -> bool {
        self.coeffs.iter().all(|&a| a == 0) && if self.eq { self.c == 0 } else { self.c >= 0 }
    }

    fn is_contradiction(&self) -> bool {
        self.coeffs.iter().all(|&a| a == 0) && if self.eq { self.c != 0 } else { self.c < 0 }
    }
}

/// Result of bounding an affine form over a polyhedron.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// The polyhedron is empty.
    Empty,
    /// A finite rational bound.
    Finite(Rat),
    /// No bound in that direction.
    Unbounded,
}

impl Bound {
    /// The finite value, if any.
    pub fn finite(self) -> Option<Rat> {
        match self {
            Bound::Finite(r) => Some(r),
            _ => None,
        }
    }
}

/// A (possibly unbounded) convex integer polyhedron in `dim` variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Polyhedron {
    dim: usize,
    /// The constraints (conjunction).
    pub cons: Vec<Constraint>,
}

impl Polyhedron {
    /// The whole space.
    pub fn universe(dim: usize) -> Polyhedron {
        Polyhedron {
            dim,
            cons: Vec::new(),
        }
    }

    /// Dimension (number of variables).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Add `expr >= 0`.
    pub fn add_ge(&mut self, expr: &AffineExpr) {
        assert_eq!(expr.dim(), self.dim);
        let mut c = Constraint {
            coeffs: expr.coeffs.iter().map(|&a| a as i128).collect(),
            c: expr.c as i128,
            eq: false,
        };
        c.normalize();
        self.cons.push(c);
    }

    /// Add `expr <= 0`.
    pub fn add_le(&mut self, expr: &AffineExpr) {
        self.add_ge(&expr.scale(-1));
    }

    /// Add `expr == 0`.
    pub fn add_eq(&mut self, expr: &AffineExpr) {
        assert_eq!(expr.dim(), self.dim);
        let mut c = Constraint {
            coeffs: expr.coeffs.iter().map(|&a| a as i128).collect(),
            c: expr.c as i128,
            eq: true,
        };
        c.normalize();
        self.cons.push(c);
    }

    /// Add `lb <= x_var` and `x_var <= ub` (both affine in all variables).
    pub fn add_var_bounds(&mut self, var: usize, lb: &AffineExpr, ub: &AffineExpr) {
        let v = AffineExpr::var(self.dim, var);
        self.add_ge(&v.sub(lb)); // x - lb >= 0
        self.add_ge(&ub.sub(&v)); // ub - x >= 0
    }

    /// Integer membership test.
    pub fn contains(&self, x: &[i64]) -> bool {
        assert_eq!(x.len(), self.dim);
        self.cons.iter().all(|c| c.holds(x))
    }

    /// Conjunction of two polyhedra of equal dimension.
    pub fn intersect(&self, other: &Polyhedron) -> Polyhedron {
        assert_eq!(self.dim, other.dim);
        let mut cons = self.cons.clone();
        cons.extend(other.cons.iter().cloned());
        Polyhedron {
            dim: self.dim,
            cons,
        }
    }

    /// Expand equalities into pairs of inequalities.
    fn inequalities(&self) -> Vec<Constraint> {
        let mut out = Vec::with_capacity(self.cons.len());
        for c in &self.cons {
            if c.eq {
                out.push(Constraint {
                    coeffs: c.coeffs.clone(),
                    c: c.c,
                    eq: false,
                });
                out.push(Constraint {
                    coeffs: c.coeffs.iter().map(|a| -a).collect(),
                    c: -c.c,
                    eq: false,
                });
            } else {
                out.push(c.clone());
            }
        }
        out
    }

    /// One Fourier–Motzkin step: eliminate variable `var` from a set of
    /// inequalities (coefficients of `var` become zero).
    fn fm_eliminate(cons: &[Constraint], var: usize) -> Vec<Constraint> {
        let mut zero = Vec::new();
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for c in cons {
            match c.coeffs[var].signum() {
                0 => zero.push(c.clone()),
                1 => pos.push(c.clone()),
                _ => neg.push(c.clone()),
            }
        }
        let mut seen: HashSet<(Vec<i128>, i128)> = HashSet::new();
        let mut out = Vec::new();
        for c in zero {
            if c.is_trivial() {
                continue;
            }
            if seen.insert((c.coeffs.clone(), c.c)) {
                out.push(c);
            }
        }
        for p in &pos {
            let alpha = p.coeffs[var];
            for n in &neg {
                let beta = -n.coeffs[var];
                // beta * p + alpha * n eliminates var.
                let mut comb = Constraint {
                    coeffs: p
                        .coeffs
                        .iter()
                        .zip(&n.coeffs)
                        .map(|(a, b)| beta * a + alpha * b)
                        .collect(),
                    c: beta * p.c + alpha * n.c,
                    eq: false,
                };
                comb.normalize();
                if comb.is_trivial() {
                    continue;
                }
                if seen.insert((comb.coeffs.clone(), comb.c)) {
                    out.push(comb);
                }
            }
        }
        out
    }

    /// Project out `var` (rational projection; the result's coefficients on
    /// `var` are zero but the dimension is preserved for index stability).
    pub fn eliminate(&self, var: usize) -> Polyhedron {
        let cons = Self::fm_eliminate(&self.inequalities(), var);
        Polyhedron {
            dim: self.dim,
            cons,
        }
    }

    /// Emptiness of the rational relaxation (conservative for integers:
    /// `false` may still mean integer-empty, but `true` is definitive).
    pub fn is_empty(&self) -> bool {
        let mut cons = self.inequalities();
        for v in 0..self.dim {
            if cons.iter().any(|c| c.is_contradiction()) {
                return true;
            }
            cons = Self::fm_eliminate(&cons, v);
        }
        cons.iter().any(|c| c.is_contradiction())
    }

    /// Minimum of `expr` over the rational relaxation.
    pub fn min_of(&self, expr: &AffineExpr) -> Bound {
        self.extremum(expr, true)
    }

    /// Maximum of `expr` over the rational relaxation.
    pub fn max_of(&self, expr: &AffineExpr) -> Bound {
        self.extremum(expr, false)
    }

    fn extremum(&self, expr: &AffineExpr, minimum: bool) -> Bound {
        assert_eq!(expr.dim(), self.dim);
        if self.is_empty() {
            return Bound::Empty;
        }
        // Append t = expr as two inequalities over dim+1 variables, then
        // eliminate the original variables and read bounds on t.
        let nd = self.dim + 1;
        let mut cons: Vec<Constraint> = self
            .inequalities()
            .into_iter()
            .map(|mut c| {
                c.coeffs.push(0);
                c
            })
            .collect();
        let mut te: Vec<i128> = expr.coeffs.iter().map(|&a| -(a as i128)).collect();
        te.push(1);
        cons.push(Constraint {
            coeffs: te.clone(),
            c: -(expr.c as i128),
            eq: false,
        }); // t - e >= 0
        cons.push(Constraint {
            coeffs: te.iter().map(|a| -a).collect(),
            c: expr.c as i128,
            eq: false,
        }); // e - t >= 0
        for v in 0..self.dim {
            cons = Self::fm_eliminate(&cons, v);
        }
        let t = nd - 1;
        let mut best: Option<Rat> = None;
        for c in &cons {
            let a = c.coeffs[t];
            if minimum && a > 0 {
                // a·t + c >= 0  →  t >= -c/a
                let b = Rat::new(-c.c, a);
                best = Some(match best {
                    Some(x) => x.max(b),
                    None => b,
                });
            } else if !minimum && a < 0 {
                // a·t + c >= 0  →  t <= c/(-a)
                let b = Rat::new(c.c, -a);
                best = Some(match best {
                    Some(x) => x.min(b),
                    None => b,
                });
            }
        }
        match best {
            Some(r) => Bound::Finite(r),
            None => Bound::Unbounded,
        }
    }

    /// Substitute `x_var = value`, producing a polyhedron where `var` is
    /// fixed (coefficients folded into the constant).
    pub fn specialize(&self, var: usize, value: i64) -> Polyhedron {
        let cons = self
            .cons
            .iter()
            .map(|c| {
                let mut n = c.clone();
                n.c += n.coeffs[var] * value as i128;
                n.coeffs[var] = 0;
                n
            })
            .collect();
        Polyhedron {
            dim: self.dim,
            cons,
        }
    }

    /// Count integer points, up to `cap` (None if unbounded or cap blown).
    pub fn count_points(&self, cap: u64) -> Option<u64> {
        fn rec(p: &Polyhedron, var: usize, cap: u64, acc: &mut u64) -> bool {
            if *acc > cap {
                return false;
            }
            if var == p.dim() {
                if !p.is_empty() {
                    *acc += 1;
                }
                return true;
            }
            let v = AffineExpr::var(p.dim(), var);
            let lo = match p.min_of(&v) {
                Bound::Finite(r) => r.ceil(),
                Bound::Empty => return true,
                Bound::Unbounded => return false,
            };
            let hi = match p.max_of(&v) {
                Bound::Finite(r) => r.floor(),
                Bound::Empty => return true,
                Bound::Unbounded => return false,
            };
            if hi < lo {
                return true;
            }
            if (hi - lo) as u64 > cap {
                return false;
            }
            for val in lo..=hi {
                if !rec(&p.specialize(var, val as i64), var + 1, cap, acc) {
                    return false;
                }
            }
            true
        }
        let mut acc = 0;
        if rec(self, 0, cap, &mut acc) && acc <= cap {
            Some(acc)
        } else {
            None
        }
    }

    /// Rational bounding box `[(lo, hi); dim]`; `None` entries are
    /// unbounded directions.
    pub fn bounding_box(&self) -> Vec<(Option<Rat>, Option<Rat>)> {
        (0..self.dim)
            .map(|v| {
                let e = AffineExpr::var(self.dim, v);
                (self.min_of(&e).finite(), self.max_of(&e).finite())
            })
            .collect()
    }

    /// Render with variable names, e.g. `{ cj >= 0, -cj + 14 >= 0 }`.
    pub fn display(&self, names: &[&str]) -> String {
        let parts: Vec<String> = self
            .cons
            .iter()
            .map(|c| {
                let e = AffineExpr::new(c.coeffs.iter().map(|&a| a as i64).collect(), c.c as i64);
                format!("{} {} 0", e.display(names), if c.eq { "=" } else { ">=" })
            })
            .collect();
        format!("{{ {} }}", parts.join(", "))
    }
}

impl fmt::Display for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display(&[]))
    }
}

/// A finite union of polyhedra of equal dimension.
#[derive(Debug, Clone, Default)]
pub struct UnionPoly {
    /// Disjuncts.
    pub parts: Vec<Polyhedron>,
}

impl UnionPoly {
    /// Empty union.
    pub fn empty() -> UnionPoly {
        UnionPoly { parts: Vec::new() }
    }

    /// Add a disjunct.
    pub fn push(&mut self, p: Polyhedron) {
        self.parts.push(p);
    }

    /// Membership in any disjunct.
    pub fn contains(&self, x: &[i64]) -> bool {
        self.parts.iter().any(|p| p.contains(x))
    }

    /// True when all disjuncts are empty.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.is_empty())
    }

    /// Sum of per-disjunct point counts (over-counts overlaps).
    pub fn count_points(&self, cap: u64) -> Option<u64> {
        let mut total = 0u64;
        for p in &self.parts {
            total += p.count_points(cap.checked_sub(total)?)?;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 <= x < 10, 0 <= y <= x — the triangular domain of the paper's
    /// Fig. 4 example.
    fn triangle() -> Polyhedron {
        let mut p = Polyhedron::universe(2);
        let x = AffineExpr::var(2, 0);
        let y = AffineExpr::var(2, 1);
        p.add_ge(&x); // x >= 0
        p.add_le(&x.sub(&AffineExpr::constant(2, 9))); // x <= 9
        p.add_ge(&y); // y >= 0
        p.add_ge(&x.sub(&y)); // y <= x
        p
    }

    #[test]
    fn membership() {
        let p = triangle();
        assert!(p.contains(&[0, 0]));
        assert!(p.contains(&[9, 9]));
        assert!(p.contains(&[5, 3]));
        assert!(!p.contains(&[10, 0]));
        assert!(!p.contains(&[3, 4]));
        assert!(!p.contains(&[-1, 0]));
    }

    #[test]
    fn emptiness() {
        let mut p = Polyhedron::universe(1);
        let x = AffineExpr::var(1, 0);
        p.add_ge(&x.sub(&AffineExpr::constant(1, 5))); // x >= 5
        p.add_le(&x.sub(&AffineExpr::constant(1, 3))); // x <= 3
        assert!(p.is_empty());
        assert!(!triangle().is_empty());
        assert!(!Polyhedron::universe(3).is_empty());
    }

    #[test]
    fn extrema() {
        let p = triangle();
        let x = AffineExpr::var(2, 0);
        let y = AffineExpr::var(2, 1);
        assert_eq!(p.min_of(&x), Bound::Finite(Rat::int(0)));
        assert_eq!(p.max_of(&x), Bound::Finite(Rat::int(9)));
        assert_eq!(p.max_of(&y), Bound::Finite(Rat::int(9)));
        // x + y maximal at (9,9)
        assert_eq!(p.max_of(&x.add(&y)), Bound::Finite(Rat::int(18)));
        // x - y minimal at y = x
        assert_eq!(p.min_of(&x.sub(&y)), Bound::Finite(Rat::int(0)));
    }

    #[test]
    fn unbounded_directions() {
        let mut p = Polyhedron::universe(1);
        let x = AffineExpr::var(1, 0);
        p.add_ge(&x); // x >= 0 only
        assert_eq!(p.min_of(&x), Bound::Finite(Rat::int(0)));
        assert_eq!(p.max_of(&x), Bound::Unbounded);
    }

    #[test]
    fn empty_extremum() {
        let mut p = Polyhedron::universe(1);
        let x = AffineExpr::var(1, 0);
        p.add_ge(&x.sub(&AffineExpr::constant(1, 5)));
        p.add_le(&x.sub(&AffineExpr::constant(1, 3)));
        assert_eq!(p.min_of(&x), Bound::Empty);
    }

    #[test]
    fn point_counting_triangle() {
        // Σ_{x=0..9} (x+1) = 55
        assert_eq!(triangle().count_points(1000), Some(55));
        // cap blows
        assert_eq!(triangle().count_points(10), None);
    }

    #[test]
    fn counting_unbounded_is_none() {
        let mut p = Polyhedron::universe(1);
        p.add_ge(&AffineExpr::var(1, 0));
        assert_eq!(p.count_points(100), None);
    }

    #[test]
    fn equalities() {
        let mut p = Polyhedron::universe(2);
        let x = AffineExpr::var(2, 0);
        let y = AffineExpr::var(2, 1);
        p.add_eq(&x.sub(&y)); // x == y
        p.add_ge(&x);
        p.add_le(&x.sub(&AffineExpr::constant(2, 4))); // x <= 4
        assert!(p.contains(&[2, 2]));
        assert!(!p.contains(&[2, 3]));
        assert_eq!(p.count_points(100), Some(5));
        assert_eq!(p.max_of(&y), Bound::Finite(Rat::int(4)));
    }

    #[test]
    fn eliminate_projects() {
        let p = triangle();
        // Projecting out y leaves 0 <= x <= 9.
        let q = p.eliminate(1);
        assert!(q.contains(&[5, 100])); // y is free now
        assert!(!q.contains(&[10, 0]));
        assert!(!q.contains(&[-1, 0]));
    }

    #[test]
    fn intersect_composes() {
        let p = triangle();
        let mut half = Polyhedron::universe(2);
        let x = AffineExpr::var(2, 0);
        half.add_ge(&x.sub(&AffineExpr::constant(2, 5))); // x >= 5
        let q = p.intersect(&half);
        assert!(q.contains(&[5, 0]));
        assert!(!q.contains(&[4, 0]));
        assert_eq!(q.count_points(1000), Some(40)); // Σ_{x=5..9}(x+1) = 6+7+8+9+10
    }

    #[test]
    fn specialize_fixes_variable() {
        let p = triangle().specialize(0, 4);
        // now 0 <= y <= 4 regardless of x coordinate value
        assert!(p.contains(&[0, 4]));
        assert!(!p.contains(&[0, 5]));
    }

    #[test]
    fn bounding_box() {
        let bb = triangle().bounding_box();
        assert_eq!(bb[0], (Some(Rat::int(0)), Some(Rat::int(9))));
        assert_eq!(bb[1], (Some(Rat::int(0)), Some(Rat::int(9))));
    }

    #[test]
    fn union_membership_and_count() {
        let mut u = UnionPoly::empty();
        let mut a = Polyhedron::universe(1);
        let x = AffineExpr::var(1, 0);
        a.add_ge(&x);
        a.add_le(&x.sub(&AffineExpr::constant(1, 2))); // [0,2]
        let mut b = Polyhedron::universe(1);
        b.add_ge(&x.sub(&AffineExpr::constant(1, 10)));
        b.add_le(&x.sub(&AffineExpr::constant(1, 11))); // [10,11]
        u.push(a);
        u.push(b);
        assert!(u.contains(&[1]));
        assert!(u.contains(&[10]));
        assert!(!u.contains(&[5]));
        assert_eq!(u.count_points(100), Some(5));
        assert!(!u.is_empty());
        assert!(UnionPoly::empty().is_empty());
    }

    #[test]
    fn display_readable() {
        let p = triangle();
        let s = p.display(&["i", "j"]);
        assert!(s.contains("i >= 0"), "{s}");
    }
}
