//! Rational Gaussian elimination — the fit half of the folding stage's
//! fit-and-verify affine recognition.
//!
//! Given sample rows `(x, y)` the folding stage asks: is there an affine
//! function `f(x) = a·x + b` matching all samples? [`fit_affine`] solves the
//! induced linear system exactly over rationals; the caller then *verifies*
//! the candidate on every further point.

use crate::rat::Rat;

/// Solve `A x = b` over the rationals (A is `rows × cols`, row-major).
///
/// Returns one solution if the system is consistent (free variables are set
/// to zero), `None` if inconsistent.
#[allow(clippy::needless_range_loop)] // row elimination needs two rows of `m` at once
pub fn solve_rational(a: &[Vec<Rat>], b: &[Rat]) -> Option<Vec<Rat>> {
    let rows = a.len();
    if rows == 0 {
        return Some(Vec::new());
    }
    let cols = a[0].len();
    // Augmented matrix.
    let mut m: Vec<Vec<Rat>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            assert_eq!(row.len(), cols, "ragged matrix");
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    let mut pivot_of_col: Vec<Option<usize>> = vec![None; cols];
    let mut rank = 0usize;
    for col in 0..cols {
        // Find a pivot.
        let Some(p) = (rank..rows).find(|&r| m[r][col] != Rat::ZERO) else {
            continue;
        };
        m.swap(rank, p);
        let inv = Rat::ONE / m[rank][col];
        for v in m[rank].iter_mut() {
            *v = *v * inv;
        }
        for r in 0..rows {
            if r != rank && m[r][col] != Rat::ZERO {
                let f = m[r][col];
                for cc in 0..=cols {
                    let sub = m[rank][cc] * f;
                    m[r][cc] = m[r][cc] - sub;
                }
            }
        }
        pivot_of_col[col] = Some(rank);
        rank += 1;
        if rank == rows {
            break;
        }
    }
    // Inconsistency: zero row with non-zero rhs.
    for row in m.iter().take(rows).skip(rank) {
        if row[..cols].iter().all(|&v| v == Rat::ZERO) && row[cols] != Rat::ZERO {
            return None;
        }
    }
    let mut x = vec![Rat::ZERO; cols];
    for (col, p) in pivot_of_col.iter().enumerate() {
        if let Some(r) = p {
            x[col] = m[*r][cols];
        }
    }
    Some(x)
}

/// Fit an affine function `f(p) = a·p + b` through integer samples
/// `(point, value)`. Returns `(a, b)` if a consistent affine fit exists for
/// *all* given samples, `None` otherwise.
pub fn fit_affine(samples: &[(Vec<i64>, i64)]) -> Option<(Vec<Rat>, Rat)> {
    let (first, _) = samples.first()?;
    let d = first.len();
    let a: Vec<Vec<Rat>> = samples
        .iter()
        .map(|(p, _)| {
            let mut row: Vec<Rat> = p.iter().map(|&v| Rat::int(v as i128)).collect();
            row.push(Rat::ONE); // the constant column
            row
        })
        .collect();
    let b: Vec<Rat> = samples.iter().map(|&(_, v)| Rat::int(v as i128)).collect();
    let sol = solve_rational(&a, &b)?;
    // Verify every sample (solve_rational guarantees consistency already,
    // but keep the check cheap and explicit).
    for (p, v) in samples {
        let mut acc = sol[d];
        for (i, &x) in p.iter().enumerate() {
            acc = acc + sol[i] * Rat::int(x as i128);
        }
        if acc != Rat::int(*v as i128) {
            return None;
        }
    }
    Some((sol[..d].to_vec(), sol[d]))
}

/// Incrementally maintained affine fit: the reduced row-echelon form of the
/// augmented sample system `[x | 1 | y]` is cached across pushes, so adding
/// one sample after a contradiction costs one row reduction (O(dim²))
/// instead of re-eliminating every retained sample from scratch
/// (O(samples · dim²)) the way repeated [`fit_affine`] calls do.
///
/// The RREF of a matrix is unique, so [`solution`](Self::solution) returns
/// exactly the free-variables-zero solution [`solve_rational`] would produce
/// for the same rows, and [`rank`](Self::rank) equals the rank
/// `affine_rank`-style re-elimination would report (while consistent, the
/// augmented rank equals the coefficient rank).
#[derive(Debug, Clone)]
pub struct IncrementalFit {
    /// Columns of the coefficient matrix: `dim` variables + the constant.
    cols: usize,
    /// RREF pivot rows of the augmented system, each `cols + 1` long,
    /// ordered by pivot column.
    rows: Vec<Vec<Rat>>,
    /// Pivot column of each row (ascending).
    pivot_cols: Vec<usize>,
    inconsistent: bool,
}

impl IncrementalFit {
    /// Empty system over `dim`-dimensional points.
    pub fn new(dim: usize) -> Self {
        IncrementalFit {
            cols: dim + 1,
            rows: Vec::new(),
            pivot_cols: Vec::new(),
            inconsistent: false,
        }
    }

    /// Rank of the coefficient matrix `[x | 1]` accumulated so far (valid
    /// while the system is consistent).
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// False once a pushed sample contradicted the accumulated system.
    pub fn is_consistent(&self) -> bool {
        !self.inconsistent
    }

    /// Drop all cached rows (frees memory; the fit is no longer usable).
    pub fn clear(&mut self) {
        self.rows = Vec::new();
        self.pivot_cols = Vec::new();
    }

    /// Add one sample row `a·x + b = y`. Returns `false` (latching
    /// inconsistency) when the row contradicts the accumulated system;
    /// redundant rows are dropped without growing the RREF.
    pub fn push(&mut self, x: &[i64], y: i64) -> bool {
        if self.inconsistent {
            return false;
        }
        let cols = self.cols;
        debug_assert_eq!(x.len() + 1, cols, "sample dimensionality changed");
        let mut row: Vec<Rat> = Vec::with_capacity(cols + 1);
        row.extend(x.iter().map(|&v| Rat::int(v as i128)));
        row.push(Rat::ONE);
        row.push(Rat::int(y as i128));
        // Reduce against the cached pivot rows. Each stored row is 1 at its
        // pivot and 0 at every other pivot, so order does not matter.
        for (r, &pc) in self.rows.iter().zip(&self.pivot_cols) {
            let f = row[pc];
            if f != Rat::ZERO {
                for c in pc..=cols {
                    let s = r[c] * f;
                    row[c] = row[c] - s;
                }
            }
        }
        let Some(pc) = (0..cols).find(|&c| row[c] != Rat::ZERO) else {
            if row[cols] != Rat::ZERO {
                self.inconsistent = true;
                return false;
            }
            return true; // redundant row
        };
        let inv = Rat::ONE / row[pc];
        for v in row.iter_mut() {
            *v = *v * inv;
        }
        // Back-substitute the new pivot into the cached rows to keep RREF.
        for r in self.rows.iter_mut() {
            let f = r[pc];
            if f != Rat::ZERO {
                for c in pc..=cols {
                    let s = row[c] * f;
                    r[c] = r[c] - s;
                }
            }
        }
        let at = self.pivot_cols.partition_point(|&c| c < pc);
        self.rows.insert(at, row);
        self.pivot_cols.insert(at, pc);
        true
    }

    /// The free-variables-zero solution `(coeffs, constant)` of the
    /// accumulated system — identical to what [`fit_affine`] returns for the
    /// same samples. `None` if inconsistent or empty.
    pub fn solution(&self) -> Option<(Vec<Rat>, Rat)> {
        if self.inconsistent || self.rows.is_empty() {
            return None;
        }
        let d = self.cols - 1;
        let mut sol = vec![Rat::ZERO; self.cols];
        for (r, &pc) in self.rows.iter().zip(&self.pivot_cols) {
            sol[pc] = r[self.cols];
        }
        Some((sol[..d].to_vec(), sol[d]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i128) -> Rat {
        Rat::int(v)
    }

    #[test]
    fn solves_square_system() {
        // x + y = 3, x - y = 1  →  x = 2, y = 1
        let a = vec![vec![r(1), r(1)], vec![r(1), r(-1)]];
        let b = vec![r(3), r(1)];
        assert_eq!(solve_rational(&a, &b), Some(vec![r(2), r(1)]));
    }

    #[test]
    fn detects_inconsistency() {
        // x + y = 1, x + y = 2
        let a = vec![vec![r(1), r(1)], vec![r(1), r(1)]];
        let b = vec![r(1), r(2)];
        assert_eq!(solve_rational(&a, &b), None);
    }

    #[test]
    fn underdetermined_picks_zero_free_vars() {
        // x + y = 4 with y free → x = 4, y = 0
        let a = vec![vec![r(1), r(1)]];
        let b = vec![r(4)];
        assert_eq!(solve_rational(&a, &b), Some(vec![r(4), r(0)]));
    }

    #[test]
    fn rational_solution() {
        // 2x = 1 → x = 1/2
        let a = vec![vec![r(2)]];
        let b = vec![r(1)];
        assert_eq!(solve_rational(&a, &b), Some(vec![Rat::new(1, 2)]));
    }

    #[test]
    fn fit_affine_exact() {
        // f(i, j) = 3i - 2j + 5
        let f = |i: i64, j: i64| 3 * i - 2 * j + 5;
        let samples: Vec<(Vec<i64>, i64)> = [(0, 0), (1, 0), (0, 1), (2, 3), (7, 7)]
            .iter()
            .map(|&(i, j)| (vec![i, j], f(i, j)))
            .collect();
        let (coeffs, c) = fit_affine(&samples).unwrap();
        assert_eq!(coeffs, vec![r(3), r(-2)]);
        assert_eq!(c, r(5));
    }

    #[test]
    fn fit_affine_rejects_nonaffine() {
        // f(i) = i²
        let samples: Vec<(Vec<i64>, i64)> = (0..5).map(|i| (vec![i], i * i)).collect();
        assert_eq!(fit_affine(&samples), None);
    }

    #[test]
    fn fit_affine_constant() {
        let samples: Vec<(Vec<i64>, i64)> = (0..4).map(|i| (vec![i], 7)).collect();
        let (coeffs, c) = fit_affine(&samples).unwrap();
        assert_eq!(coeffs, vec![r(0)]);
        assert_eq!(c, r(7));
    }

    #[test]
    fn fit_affine_empty_is_none() {
        assert_eq!(fit_affine(&[]), None);
    }

    #[test]
    fn fit_single_point_is_constant() {
        let (coeffs, c) = fit_affine(&[(vec![3, 4], 9)]).unwrap();
        // One sample: free coefficients default to 0, constant picks up
        // whatever the pivot chose — verify the fit holds.
        let acc = coeffs[0] * r(3) + coeffs[1] * r(4) + c;
        assert_eq!(acc, r(9));
    }

    /// The incremental RREF solution matches a from-scratch `fit_affine`
    /// after every push, on consistent affine samples.
    #[test]
    fn incremental_matches_batch_fit() {
        let f = |i: i64, j: i64| 3 * i - 2 * j + 5;
        let pts = [(0, 0), (1, 0), (0, 1), (2, 3), (7, 7)];
        let mut inc = IncrementalFit::new(2);
        let mut samples: Vec<(Vec<i64>, i64)> = Vec::new();
        for &(i, j) in &pts {
            samples.push((vec![i, j], f(i, j)));
            assert!(inc.push(&[i, j], f(i, j)));
            assert_eq!(Some(inc.solution().unwrap()), {
                let (a, b) = fit_affine(&samples).unwrap();
                Some((a, b))
            });
        }
        assert_eq!(inc.rank(), 3);
        assert_eq!(inc.solution(), Some((vec![r(3), r(-2)], r(5))));
    }

    /// Inconsistency latches: a contradicting row fails, and so does every
    /// later push.
    #[test]
    fn incremental_detects_inconsistency() {
        let mut inc = IncrementalFit::new(1);
        assert!(inc.push(&[0], 1));
        assert!(inc.push(&[1], 2));
        assert_eq!(inc.rank(), 2); // unique: v = i + 1
        assert!(!inc.push(&[2], 99));
        assert!(!inc.is_consistent());
        assert_eq!(inc.solution(), None);
        assert!(!inc.push(&[3], 4));
    }

    /// Redundant rows neither grow the rank nor perturb the solution.
    #[test]
    fn incremental_drops_redundant_rows() {
        let mut inc = IncrementalFit::new(2);
        assert!(inc.push(&[1, 1], 2));
        assert!(inc.push(&[2, 2], 4)); // v = i + j fits; row independent
        let rank = inc.rank();
        let sol = inc.solution();
        assert!(inc.push(&[1, 1], 2)); // exact duplicate: redundant
        assert_eq!(inc.rank(), rank);
        assert_eq!(inc.solution(), sol);
    }

    /// Rational solutions survive the incremental path (2x = 1 → x = 1/2).
    #[test]
    fn incremental_rational_solution() {
        let mut inc = IncrementalFit::new(1);
        assert!(inc.push(&[0], 0));
        assert!(inc.push(&[2], 1));
        let (coeffs, c) = inc.solution().unwrap();
        assert_eq!(coeffs, vec![Rat::new(1, 2)]);
        assert_eq!(c, Rat::ZERO);
    }
}
