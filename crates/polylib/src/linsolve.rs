//! Rational Gaussian elimination — the fit half of the folding stage's
//! fit-and-verify affine recognition.
//!
//! Given sample rows `(x, y)` the folding stage asks: is there an affine
//! function `f(x) = a·x + b` matching all samples? [`fit_affine`] solves the
//! induced linear system exactly over rationals; the caller then *verifies*
//! the candidate on every further point.

use crate::rat::Rat;

/// Solve `A x = b` over the rationals (A is `rows × cols`, row-major).
///
/// Returns one solution if the system is consistent (free variables are set
/// to zero), `None` if inconsistent.
#[allow(clippy::needless_range_loop)] // row elimination needs two rows of `m` at once
pub fn solve_rational(a: &[Vec<Rat>], b: &[Rat]) -> Option<Vec<Rat>> {
    let rows = a.len();
    if rows == 0 {
        return Some(Vec::new());
    }
    let cols = a[0].len();
    // Augmented matrix.
    let mut m: Vec<Vec<Rat>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            assert_eq!(row.len(), cols, "ragged matrix");
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    let mut pivot_of_col: Vec<Option<usize>> = vec![None; cols];
    let mut rank = 0usize;
    for col in 0..cols {
        // Find a pivot.
        let Some(p) = (rank..rows).find(|&r| m[r][col] != Rat::ZERO) else {
            continue;
        };
        m.swap(rank, p);
        let inv = Rat::ONE / m[rank][col];
        for v in m[rank].iter_mut() {
            *v = *v * inv;
        }
        for r in 0..rows {
            if r != rank && m[r][col] != Rat::ZERO {
                let f = m[r][col];
                for cc in 0..=cols {
                    let sub = m[rank][cc] * f;
                    m[r][cc] = m[r][cc] - sub;
                }
            }
        }
        pivot_of_col[col] = Some(rank);
        rank += 1;
        if rank == rows {
            break;
        }
    }
    // Inconsistency: zero row with non-zero rhs.
    for row in m.iter().take(rows).skip(rank) {
        if row[..cols].iter().all(|&v| v == Rat::ZERO) && row[cols] != Rat::ZERO {
            return None;
        }
    }
    let mut x = vec![Rat::ZERO; cols];
    for (col, p) in pivot_of_col.iter().enumerate() {
        if let Some(r) = p {
            x[col] = m[*r][cols];
        }
    }
    Some(x)
}

/// Fit an affine function `f(p) = a·p + b` through integer samples
/// `(point, value)`. Returns `(a, b)` if a consistent affine fit exists for
/// *all* given samples, `None` otherwise.
pub fn fit_affine(samples: &[(Vec<i64>, i64)]) -> Option<(Vec<Rat>, Rat)> {
    let (first, _) = samples.first()?;
    let d = first.len();
    let a: Vec<Vec<Rat>> = samples
        .iter()
        .map(|(p, _)| {
            let mut row: Vec<Rat> = p.iter().map(|&v| Rat::int(v as i128)).collect();
            row.push(Rat::ONE); // the constant column
            row
        })
        .collect();
    let b: Vec<Rat> = samples.iter().map(|&(_, v)| Rat::int(v as i128)).collect();
    let sol = solve_rational(&a, &b)?;
    // Verify every sample (solve_rational guarantees consistency already,
    // but keep the check cheap and explicit).
    for (p, v) in samples {
        let mut acc = sol[d];
        for (i, &x) in p.iter().enumerate() {
            acc = acc + sol[i] * Rat::int(x as i128);
        }
        if acc != Rat::int(*v as i128) {
            return None;
        }
    }
    Some((sol[..d].to_vec(), sol[d]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i128) -> Rat {
        Rat::int(v)
    }

    #[test]
    fn solves_square_system() {
        // x + y = 3, x - y = 1  →  x = 2, y = 1
        let a = vec![vec![r(1), r(1)], vec![r(1), r(-1)]];
        let b = vec![r(3), r(1)];
        assert_eq!(solve_rational(&a, &b), Some(vec![r(2), r(1)]));
    }

    #[test]
    fn detects_inconsistency() {
        // x + y = 1, x + y = 2
        let a = vec![vec![r(1), r(1)], vec![r(1), r(1)]];
        let b = vec![r(1), r(2)];
        assert_eq!(solve_rational(&a, &b), None);
    }

    #[test]
    fn underdetermined_picks_zero_free_vars() {
        // x + y = 4 with y free → x = 4, y = 0
        let a = vec![vec![r(1), r(1)]];
        let b = vec![r(4)];
        assert_eq!(solve_rational(&a, &b), Some(vec![r(4), r(0)]));
    }

    #[test]
    fn rational_solution() {
        // 2x = 1 → x = 1/2
        let a = vec![vec![r(2)]];
        let b = vec![r(1)];
        assert_eq!(solve_rational(&a, &b), Some(vec![Rat::new(1, 2)]));
    }

    #[test]
    fn fit_affine_exact() {
        // f(i, j) = 3i - 2j + 5
        let f = |i: i64, j: i64| 3 * i - 2 * j + 5;
        let samples: Vec<(Vec<i64>, i64)> = [(0, 0), (1, 0), (0, 1), (2, 3), (7, 7)]
            .iter()
            .map(|&(i, j)| (vec![i, j], f(i, j)))
            .collect();
        let (coeffs, c) = fit_affine(&samples).unwrap();
        assert_eq!(coeffs, vec![r(3), r(-2)]);
        assert_eq!(c, r(5));
    }

    #[test]
    fn fit_affine_rejects_nonaffine() {
        // f(i) = i²
        let samples: Vec<(Vec<i64>, i64)> = (0..5).map(|i| (vec![i], i * i)).collect();
        assert_eq!(fit_affine(&samples), None);
    }

    #[test]
    fn fit_affine_constant() {
        let samples: Vec<(Vec<i64>, i64)> = (0..4).map(|i| (vec![i], 7)).collect();
        let (coeffs, c) = fit_affine(&samples).unwrap();
        assert_eq!(coeffs, vec![r(0)]);
        assert_eq!(c, r(7));
    }

    #[test]
    fn fit_affine_empty_is_none() {
        assert_eq!(fit_affine(&[]), None);
    }

    #[test]
    fn fit_single_point_is_constant() {
        let (coeffs, c) = fit_affine(&[(vec![3, 4], 9)]).unwrap();
        // One sample: free coefficients default to 0, constant picks up
        // whatever the pivot chose — verify the fit holds.
        let acc = coeffs[0] * r(3) + coeffs[1] * r(4) + c;
        assert_eq!(acc, r(9));
    }
}
