//! Exact rational numbers over `i128`, normalized (gcd-reduced, positive
//! denominator). Panics on overflow in debug builds; the library keeps
//! magnitudes small by normalizing constraints after every operation.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Greatest common divisor (non-negative).
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// A normalized rational number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Construct `num/den`; panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// From an integer.
    pub fn int(v: i128) -> Rat {
        Rat { num: v, den: 1 }
    }

    /// Numerator (normalized).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (normalized, > 0).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// True iff this is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Truncate toward negative infinity.
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Round toward positive infinity.
    pub fn ceil(&self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Sign: -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum() as i32
    }

    /// Approximate as f64 (display / heuristics only).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, o: Rat) -> Rat {
        Rat::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, o: Rat) -> Rat {
        Rat::new(self.num * o.den - o.num * self.den, self.den * o.den)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, o: Rat) -> Rat {
        Rat::new(self.num * o.num, self.den * o.den)
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, o: Rat) -> Rat {
        assert!(o.num != 0, "division by zero rational");
        Rat::new(self.num * o.den, self.den * o.num)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, o: &Rat) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}

impl Ord for Rat {
    fn cmp(&self, o: &Rat) -> Ordering {
        (self.num * o.den).cmp(&(o.num * self.den))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::int(v as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
    }

    #[test]
    fn ordering_and_rounding() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::int(-1) < Rat::ZERO);
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 1).to_string(), "3");
        assert_eq!(Rat::new(-1, 2).to_string(), "-1/2");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }
}
