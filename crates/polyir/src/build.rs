//! Ergonomic construction of [`Program`]s.
//!
//! [`ProgramBuilder`] manages the function table, forward declarations
//! (needed for mutual recursion, e.g. the paper's Fig. 3 Ex. 2), and the
//! initial data segment with a simple bump allocator. [`FuncBuilder`] builds
//! one function: it tracks a *current block*, offers one method per opcode,
//! and provides the structured [`FuncBuilder::for_loop`] /
//! [`FuncBuilder::while_loop`] helpers used pervasively by the `rodinia`
//! workload crate.

use crate::*;

/// Builds a [`Program`] incrementally.
#[derive(Debug)]
pub struct ProgramBuilder {
    prog: Program,
    /// Bump pointer for [`ProgramBuilder::alloc`]; starts past address 0 so
    /// that "null" (0) is never a valid array base.
    next_addr: u64,
}

impl ProgramBuilder {
    /// Create an empty program with the given name.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            prog: Program {
                name: name.to_string(),
                ..Program::default()
            },
            next_addr: 0x1000,
        }
    }

    /// Forward-declare a function (for mutual recursion / out-of-order
    /// definition). The placeholder traps if executed before definition.
    pub fn declare(&mut self, name: &str, n_params: u32) -> FuncId {
        let id = FuncId(self.prog.funcs.len() as u32);
        self.prog.funcs.push(Function {
            name: name.to_string(),
            n_params,
            n_regs: n_params,
            blocks: vec![Block {
                name: "entry".into(),
                instrs: vec![],
                term: Terminator::Unreachable,
                src_line: 0,
            }],
            src_file: format!("{}.c", self.prog.name),
        });
        id
    }

    /// Start building a new function (or the body of a previously declared
    /// one with the same name). Finish it with [`FuncBuilder::finish`].
    pub fn func(&mut self, name: &str, n_params: u32) -> FuncBuilder<'_> {
        let id = match self.prog.func_by_name(name) {
            Some(id) => {
                assert_eq!(
                    self.prog.func(id).n_params,
                    n_params,
                    "re-definition of {name} with different arity"
                );
                id
            }
            None => self.declare(name, n_params),
        };
        let src_file = self.prog.func(id).src_file.clone();
        FuncBuilder {
            pb: self,
            id,
            func: Function {
                name: name.to_string(),
                n_params,
                n_regs: n_params,
                blocks: vec![Block {
                    name: "entry".into(),
                    instrs: vec![],
                    term: Terminator::Unreachable,
                    src_line: 0,
                }],
                src_file,
            },
            cur: LocalBlockId(0),
            line: 1,
        }
    }

    /// Set the program entry point.
    pub fn set_entry(&mut self, f: FuncId) {
        self.prog.entry = Some(f);
    }

    /// Reserve `len` words of memory; returns the base address.
    pub fn alloc(&mut self, len: u64) -> u64 {
        let base = self.next_addr;
        self.next_addr += len.max(1);
        base
    }

    /// Reserve memory and initialize it with float data.
    pub fn array_f64(&mut self, data: &[f64]) -> u64 {
        let base = self.alloc(data.len() as u64);
        for (i, &v) in data.iter().enumerate() {
            self.prog.data.push((base + i as u64, Value::F64(v)));
        }
        base
    }

    /// Reserve memory and initialize it with integer data.
    pub fn array_i64(&mut self, data: &[i64]) -> u64 {
        let base = self.alloc(data.len() as u64);
        for (i, &v) in data.iter().enumerate() {
            self.prog.data.push((base + i as u64, Value::I64(v)));
        }
        base
    }

    /// Finalize and return the program.
    pub fn finish(self) -> Program {
        self.prog
    }
}

/// Builds one [`Function`]; created by [`ProgramBuilder::func`].
#[derive(Debug)]
pub struct FuncBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    id: FuncId,
    func: Function,
    cur: LocalBlockId,
    line: u32,
}

impl<'a> FuncBuilder<'a> {
    /// The id this function will have in the program (valid immediately, so
    /// recursive calls can target it while the body is being built).
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// The entry block (block 0, created automatically).
    pub fn entry_block(&self) -> LocalBlockId {
        LocalBlockId(0)
    }

    /// Create a new, empty block and return its id (does not switch to it).
    pub fn block(&mut self, name: &str) -> LocalBlockId {
        let id = LocalBlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block {
            name: name.to_string(),
            instrs: vec![],
            term: Terminator::Unreachable,
            src_line: self.line,
        });
        id
    }

    /// Make `b` the current block: subsequent instructions append to it.
    pub fn switch_to(&mut self, b: LocalBlockId) {
        self.cur = b;
    }

    /// The current block.
    pub fn current(&self) -> LocalBlockId {
        self.cur
    }

    /// Set the "source line" attribution for subsequently created blocks
    /// (debug-info stand-in used by feedback reports).
    pub fn at_line(&mut self, line: u32) {
        self.line = line;
        self.func.blocks[self.cur.0 as usize].src_line = line;
    }

    /// Allocate a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.func.n_regs);
        self.func.n_regs += 1;
        r
    }

    /// Parameter register `i` (parameters occupy registers `0..n_params`).
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.func.n_params, "parameter index out of range");
        Reg(i)
    }

    /// Append a raw instruction to the current block.
    pub fn raw_instr(&mut self, i: Instr) {
        self.func.blocks[self.cur.0 as usize].instrs.push(i);
    }

    /// `dst = value` into a fresh register.
    pub fn const_i(&mut self, v: i64) -> Reg {
        let dst = self.reg();
        self.raw_instr(Instr::Const {
            dst,
            value: Value::I64(v),
        });
        dst
    }

    /// `dst = value` (float) into a fresh register.
    pub fn const_f(&mut self, v: f64) -> Reg {
        let dst = self.reg();
        self.raw_instr(Instr::Const {
            dst,
            value: Value::F64(v),
        });
        dst
    }

    /// Copy an operand into a fresh register.
    pub fn mov(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.raw_instr(Instr::Move {
            dst,
            src: src.into(),
        });
        dst
    }

    /// Copy an operand into an existing register.
    pub fn mov_to(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.raw_instr(Instr::Move {
            dst,
            src: src.into(),
        });
    }

    /// Integer binary operation into a fresh register.
    pub fn iop(&mut self, op: IBinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.raw_instr(Instr::IOp {
            dst,
            op,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Integer binary operation into an existing register.
    pub fn iop_to(&mut self, dst: Reg, op: IBinOp, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.raw_instr(Instr::IOp {
            dst,
            op,
            a: a.into(),
            b: b.into(),
        });
    }

    /// `a + b` (integers).
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.iop(IBinOp::Add, a, b)
    }

    /// `a - b` (integers).
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.iop(IBinOp::Sub, a, b)
    }

    /// `a * b` (integers).
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.iop(IBinOp::Mul, a, b)
    }

    /// `a % b` (integers).
    pub fn rem(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.iop(IBinOp::Rem, a, b)
    }

    /// `a / b` (integers).
    pub fn div(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.iop(IBinOp::Div, a, b)
    }

    /// Float binary operation into a fresh register.
    pub fn fop(&mut self, op: FBinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.raw_instr(Instr::FOp {
            dst,
            op,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Float binary operation into an existing register.
    pub fn fop_to(&mut self, dst: Reg, op: FBinOp, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.raw_instr(Instr::FOp {
            dst,
            op,
            a: a.into(),
            b: b.into(),
        });
    }

    /// `a + b` (floats).
    pub fn fadd(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.fop(FBinOp::Add, a, b)
    }

    /// `a * b` (floats).
    pub fn fmul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.fop(FBinOp::Mul, a, b)
    }

    /// `a - b` (floats).
    pub fn fsub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.fop(FBinOp::Sub, a, b)
    }

    /// `a / b` (floats).
    pub fn fdiv(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.fop(FBinOp::Div, a, b)
    }

    /// Integer comparison producing 0/1.
    pub fn icmp(&mut self, op: CmpOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.raw_instr(Instr::ICmp {
            dst,
            op,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Float comparison producing 0/1.
    pub fn fcmp(&mut self, op: CmpOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.raw_instr(Instr::FCmp {
            dst,
            op,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Unary operation / intrinsic.
    pub fn un(&mut self, op: UnOp, a: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.raw_instr(Instr::Un {
            dst,
            op,
            a: a.into(),
        });
        dst
    }

    /// `mem[base + offset]` into a fresh register.
    pub fn load(&mut self, base: impl Into<Operand>, offset: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.raw_instr(Instr::Load {
            dst,
            base: base.into(),
            offset: offset.into(),
        });
        dst
    }

    /// `mem[base + offset] = src`.
    pub fn store(
        &mut self,
        base: impl Into<Operand>,
        offset: impl Into<Operand>,
        src: impl Into<Operand>,
    ) {
        self.raw_instr(Instr::Store {
            base: base.into(),
            offset: offset.into(),
            src: src.into(),
        });
    }

    /// Call with a return value.
    pub fn call(&mut self, func: FuncId, args: &[Operand]) -> Reg {
        let dst = self.reg();
        self.raw_instr(Instr::Call {
            dst: Some(dst),
            func,
            args: args.to_vec(),
        });
        dst
    }

    /// Call ignoring any return value.
    pub fn call_void(&mut self, func: FuncId, args: &[Operand]) {
        self.raw_instr(Instr::Call {
            dst: None,
            func,
            args: args.to_vec(),
        });
    }

    /// Terminate the current block with an unconditional jump.
    pub fn jump(&mut self, to: LocalBlockId) {
        self.func.blocks[self.cur.0 as usize].term = Terminator::Jump(to);
    }

    /// Terminate the current block with a conditional branch.
    pub fn br(&mut self, cond: impl Into<Operand>, then_: LocalBlockId, else_: LocalBlockId) {
        self.func.blocks[self.cur.0 as usize].term = Terminator::Br {
            cond: cond.into(),
            then_,
            else_,
        };
    }

    /// Terminate the current block with a return.
    pub fn ret(&mut self, v: Option<Operand>) {
        self.func.blocks[self.cur.0 as usize].term = Terminator::Ret(v);
    }

    /// Structured counted loop: `for (iv = lo; iv < hi; iv += step) body`.
    ///
    /// Emits the canonical header/body/latch/exit diamond the paper's loop
    /// detector expects from compiled code. The closure receives the builder
    /// positioned inside the body block plus the induction-variable register;
    /// afterwards the builder is positioned at the exit block. Returns the
    /// induction variable register (whose final value is `>= hi`).
    pub fn for_loop(
        &mut self,
        name: &str,
        lo: impl Into<Operand>,
        hi: impl Into<Operand>,
        step: i64,
        body: impl FnOnce(&mut Self, Reg),
    ) -> Reg {
        let hi = hi.into();
        let iv = self.mov(lo);
        let header = self.block(&format!("{name}.header"));
        let body_b = self.block(&format!("{name}.body"));
        let latch = self.block(&format!("{name}.latch"));
        let exit = self.block(&format!("{name}.exit"));
        self.jump(header);
        self.switch_to(header);
        let c = self.icmp(CmpOp::Lt, iv, hi);
        self.br(c, body_b, exit);
        self.switch_to(body_b);
        body(self, iv);
        self.jump(latch);
        self.switch_to(latch);
        self.iop_to(iv, IBinOp::Add, iv, step);
        self.jump(header);
        self.switch_to(exit);
        iv
    }

    /// Structured while loop: the `cond` closure (run in the header block)
    /// must return the condition register; `body` runs in the body block.
    /// The builder ends positioned at the exit block.
    pub fn while_loop(
        &mut self,
        name: &str,
        cond: impl FnOnce(&mut Self) -> Reg,
        body: impl FnOnce(&mut Self),
    ) {
        let header = self.block(&format!("{name}.header"));
        let body_b = self.block(&format!("{name}.body"));
        let exit = self.block(&format!("{name}.exit"));
        self.jump(header);
        self.switch_to(header);
        let c = cond(self);
        self.br(c, body_b, exit);
        self.switch_to(body_b);
        body(self);
        self.jump(header);
        self.switch_to(exit);
    }

    /// Structured if-then(-else). Each closure builds one arm; the builder
    /// ends positioned at the join block.
    pub fn if_else(
        &mut self,
        cond: impl Into<Operand>,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let t = self.block("if.then");
        let e = self.block("if.else");
        let join = self.block("if.join");
        self.br(cond, t, e);
        self.switch_to(t);
        then_body(self);
        self.jump(join);
        self.switch_to(e);
        else_body(self);
        self.jump(join);
        self.switch_to(join);
    }

    /// Install the finished function into the program; returns its id.
    pub fn finish(self) -> FuncId {
        let FuncBuilder { pb, id, func, .. } = self;
        pb.prog.funcs[id.0 as usize] = func;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build `sum = Σ_{i<10} i` and check the structure.
    #[test]
    fn for_loop_structure() {
        let mut pb = ProgramBuilder::new("loops");
        let mut f = pb.func("main", 0);
        let acc = f.const_i(0);
        f.for_loop("L1", 0i64, 10i64, 1, |f, iv| {
            f.iop_to(acc, IBinOp::Add, acc, iv);
        });
        f.ret(Some(acc.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        assert!(p.validate().is_empty(), "{:?}", p.validate());
        // entry + header + body + latch + exit
        assert_eq!(p.func(fid).blocks.len(), 5);
        // header has a conditional branch with two successors
        let header = &p.func(fid).blocks[1];
        assert!(matches!(header.term, Terminator::Br { .. }));
    }

    #[test]
    fn nested_loops_share_registers() {
        let mut pb = ProgramBuilder::new("loops");
        let mut f = pb.func("main", 0);
        let acc = f.const_i(0);
        f.for_loop("Li", 0i64, 4i64, 1, |f, i| {
            f.for_loop("Lj", 0i64, 4i64, 1, |f, j| {
                let t = f.mul(i, j);
                f.iop_to(acc, IBinOp::Add, acc, t);
            });
        });
        f.ret(Some(acc.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        assert!(p.validate().is_empty());
        assert_eq!(p.func(fid).blocks.len(), 9);
    }

    #[test]
    fn forward_declared_recursion() {
        let mut pb = ProgramBuilder::new("rec");
        let fib = pb.declare("fib", 1);
        let mut f = pb.func("fib", 1);
        assert_eq!(f.id(), fib);
        let n = f.param(0);
        let base = f.icmp(CmpOp::Lt, n, 2i64);
        let then_b = f.block("base");
        let else_b = f.block("rec");
        f.br(base, then_b, else_b);
        f.switch_to(then_b);
        f.ret(Some(n.into()));
        f.switch_to(else_b);
        let n1 = f.sub(n, 1i64);
        let n2 = f.sub(n, 2i64);
        let a = f.call(fib, &[n1.into()]);
        let b = f.call(fib, &[n2.into()]);
        let s = f.add(a, b);
        f.ret(Some(s.into()));
        f.finish();
        let mut m = pb.func("main", 0);
        let ten = m.const_i(10);
        let r = m.call(fib, &[ten.into()]);
        m.ret(Some(r.into()));
        let mid = m.finish();
        pb.set_entry(mid);
        let p = pb.finish();
        assert!(p.validate().is_empty(), "{:?}", p.validate());
    }

    #[test]
    fn if_else_structure() {
        let mut pb = ProgramBuilder::new("cond");
        let mut f = pb.func("main", 0);
        let x = f.const_i(5);
        let c = f.icmp(CmpOp::Gt, x, 3i64);
        let out = f.const_i(0);
        f.if_else(c, |f| f.mov_to(out, 1i64), |f| f.mov_to(out, 2i64));
        f.ret(Some(out.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        assert!(p.validate().is_empty());
        assert_eq!(p.func(fid).blocks.len(), 4);
    }

    #[test]
    fn data_segment_alloc() {
        let mut pb = ProgramBuilder::new("data");
        let a = pb.array_f64(&[1.0, 2.0, 3.0]);
        let b = pb.array_i64(&[7, 8]);
        assert!(b >= a + 3);
        let mut f = pb.func("main", 0);
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        assert_eq!(p.data.len(), 5);
        assert_eq!(p.data[0], (a, Value::F64(1.0)));
        assert_eq!(p.data[3], (b, Value::I64(7)));
    }
}
