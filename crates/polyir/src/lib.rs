//! # polyir — the PolyVM intermediate representation
//!
//! This crate is the "binary program" substrate of poly-prof-rs. The PPoPP'19
//! paper profiles x86 binaries through QEMU; everything the profiler observes
//! is (a) control transfers (jump / call / return), (b) the values produced by
//! instructions, and (c) the memory addresses they touch. `polyir` defines a
//! compact register-machine ISA with exactly those observables so the rest of
//! the pipeline (loop-forest construction, dynamic IIVs, shadow memory,
//! folding) runs unchanged on real dynamic behaviour.
//!
//! A [`Program`] is a set of [`Function`]s made of [`Block`]s holding
//! [`Instr`]uctions and one [`Terminator`] each. Programs are conveniently
//! constructed with [`build::ProgramBuilder`] / [`build::FuncBuilder`].
//!
//! Memory is word-addressed: every address names one 64-bit cell, so an
//! access stride of `1` is the "stride-1 / unit-stride" of the paper.

pub mod build;
pub mod display;

use std::fmt;

/// Identifier of a function within a [`Program`] (index into `Program::funcs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifier of a basic block within one function (index into `Function::blocks`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalBlockId(pub u32);

/// Globally unique reference to a basic block: function + local block index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockRef {
    /// Owning function.
    pub func: FuncId,
    /// Block index within the function.
    pub block: LocalBlockId,
}

impl BlockRef {
    /// Convenience constructor.
    pub fn new(func: FuncId, block: u32) -> Self {
        BlockRef {
            func,
            block: LocalBlockId(block),
        }
    }
}

/// Globally unique reference to a (static) instruction.
///
/// Indices are positions inside the owning block's instruction list. The
/// block terminator is *not* an instruction (it produces no value and touches
/// no memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrRef {
    /// Owning block.
    pub block: BlockRef,
    /// Index within the block.
    pub idx: u32,
}

/// A virtual register, local to a function frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

/// A runtime value: 64-bit integer or IEEE-754 double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Signed 64-bit integer (also used for addresses and booleans 0/1).
    I64(i64),
    /// Double-precision float.
    F64(f64),
}

impl Value {
    /// Interpret as integer; floats are truncated.
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            Value::F64(v) => v as i64,
        }
    }
    /// Interpret as float; integers are converted.
    pub fn as_f64(self) -> f64 {
        match self {
            Value::I64(v) => v as f64,
            Value::F64(v) => v,
        }
    }
    /// True iff non-zero (integers) / non-zero and non-NaN (floats).
    pub fn is_truthy(self) -> bool {
        match self {
            Value::I64(v) => v != 0,
            Value::F64(v) => v != 0.0 && !v.is_nan(),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

/// An instruction operand: a register read or an immediate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Read a register of the current frame.
    Reg(Reg),
    /// Integer immediate.
    ImmI(i64),
    /// Float immediate.
    ImmF(f64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}
impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::ImmI(v)
    }
}
impl From<f64> for Operand {
    fn from(v: f64) -> Self {
        Operand::ImmF(v)
    }
}

/// Integer binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IBinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (defined as 0 on divide-by-zero to keep the VM total).
    Div,
    /// Remainder (0 on divide-by-zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (shift amount masked to 0..64).
    Shl,
    /// Arithmetic right shift (shift amount masked to 0..64).
    Shr,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Float binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Comparison predicates (shared by integer and float compares).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

/// Unary operators / math intrinsics (stand-ins for libm calls the paper's
/// binaries make — these are *not* `Call`s and thus do not perturb the CG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm (of the absolute value; 0 maps to 0).
    Log,
    /// Absolute value.
    Abs,
    /// Negation.
    Neg,
    /// Logistic sigmoid `1/(1+e^-x)` (backprop's `squash`).
    Sigmoid,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Float-to-int truncation.
    F2I,
    /// Int-to-float conversion.
    I2F,
}

/// A non-terminator instruction.
///
/// The `Load`/`Store` address is `base + offset` where both are evaluated as
/// integers; addresses are in words (one 64-bit cell per address).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = imm`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: Value,
    },
    /// `dst = src` (register move / copy of an operand).
    Move {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = a <iop> b` on integers.
    IOp {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: IBinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = a <fop> b` on floats.
    FOp {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: FBinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = (a <cmp> b) ? 1 : 0` on integers.
    ICmp {
        /// Destination register.
        dst: Reg,
        /// Predicate.
        op: CmpOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = (a <cmp> b) ? 1 : 0` on floats.
    FCmp {
        /// Destination register.
        dst: Reg,
        /// Predicate.
        op: CmpOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = op(a)`.
    Un {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: UnOp,
        /// Operand.
        a: Operand,
    },
    /// `dst = mem[base + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address operand.
        base: Operand,
        /// Offset operand (added to base).
        offset: Operand,
    },
    /// `mem[base + offset] = src`.
    Store {
        /// Base address operand.
        base: Operand,
        /// Offset operand (added to base).
        offset: Operand,
        /// Value stored.
        src: Operand,
    },
    /// Call `func(args...)`; if the callee returns a value it lands in `dst`.
    Call {
        /// Destination register for the return value, if used.
        dst: Option<Reg>,
        /// Callee.
        func: FuncId,
        /// Argument operands (one per callee parameter).
        args: Vec<Operand>,
    },
}

impl Instr {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Move { dst, .. }
            | Instr::IOp { dst, .. }
            | Instr::FOp { dst, .. }
            | Instr::ICmp { dst, .. }
            | Instr::FCmp { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Load { dst, .. } => Some(*dst),
            Instr::Store { .. } => None,
            Instr::Call { dst, .. } => *dst,
        }
    }

    /// All registers read by this instruction, in operand order.
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        self.for_each_use(|r| v.push(r));
        v
    }

    /// Visit every register read by this instruction, in operand order,
    /// without allocating (the hot-path form of [`Instr::uses`]).
    #[inline]
    pub fn for_each_use(&self, mut f: impl FnMut(Reg)) {
        let mut visit = |o: &Operand| {
            if let Operand::Reg(r) = o {
                f(*r);
            }
        };
        match self {
            Instr::Const { .. } => {}
            Instr::Move { src, .. } => visit(src),
            Instr::IOp { a, b, .. }
            | Instr::FOp { a, b, .. }
            | Instr::ICmp { a, b, .. }
            | Instr::FCmp { a, b, .. } => {
                visit(a);
                visit(b);
            }
            Instr::Un { a, .. } => visit(a),
            Instr::Load { base, offset, .. } => {
                visit(base);
                visit(offset);
            }
            Instr::Store { base, offset, src } => {
                visit(base);
                visit(offset);
                visit(src);
            }
            Instr::Call { args, .. } => {
                for a in args {
                    visit(a);
                }
            }
        }
    }

    /// True for `Load`/`Store`.
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// True for floating-point arithmetic (FOp, FCmp, float intrinsics).
    pub fn is_fp(&self) -> bool {
        matches!(
            self,
            Instr::FOp { .. }
                | Instr::FCmp { .. }
                | Instr::Un {
                    op: UnOp::Sqrt | UnOp::Exp | UnOp::Log | UnOp::Sigmoid | UnOp::Sin | UnOp::Cos,
                    ..
                }
        )
    }

    /// True for `Call`.
    pub fn is_call(&self) -> bool {
        matches!(self, Instr::Call { .. })
    }
}

/// A block terminator (control transfer).
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump to a block of the same function.
    Jump(LocalBlockId),
    /// Conditional branch: to `then_` if `cond` is truthy, else `else_`.
    Br {
        /// Branch condition.
        cond: Operand,
        /// Taken target.
        then_: LocalBlockId,
        /// Fallthrough target.
        else_: LocalBlockId,
    },
    /// Return from the current function, optionally with a value.
    Ret(Option<Operand>),
    /// Trap / abort execution (used for unreachable paths).
    Unreachable,
}

impl Terminator {
    /// Local successors of this terminator.
    pub fn successors(&self) -> Vec<LocalBlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Br { then_, else_, .. } => vec![*then_, *else_],
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone)]
pub struct Block {
    /// Optional human-readable label (used in dumps and feedback).
    pub name: String,
    /// Straight-line body.
    pub instrs: Vec<Instr>,
    /// Control transfer out of the block.
    pub term: Terminator,
    /// Source line attribution ("debug info"): used by the feedback stage to
    /// report `file:line` regions exactly like the paper's Tables 3–5.
    pub src_line: u32,
}

/// A function: a register frame plus a CFG of blocks; block 0 is the entry.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name (shows up in flame graphs and region reports).
    pub name: String,
    /// Number of parameters; parameters arrive in registers `0..n_params`.
    pub n_params: u32,
    /// Total registers in the frame (>= n_params).
    pub n_regs: u32,
    /// Basic blocks; index 0 is the entry block.
    pub blocks: Vec<Block>,
    /// Source file attribution for debug-info style reporting.
    pub src_file: String,
}

impl Function {
    /// The entry block of the function.
    pub fn entry(&self) -> LocalBlockId {
        LocalBlockId(0)
    }

    /// Look up a block.
    pub fn block(&self, b: LocalBlockId) -> &Block {
        &self.blocks[b.0 as usize]
    }
}

/// A whole program: functions plus an entry point and initial data segment.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// All functions.
    pub funcs: Vec<Function>,
    /// Entry function id (`main`).
    pub entry: Option<FuncId>,
    /// Initial memory image: `(address, value)` pairs written before execution.
    pub data: Vec<(u64, Value)>,
    /// Program name (benchmark name in reports).
    pub name: String,
}

impl Program {
    /// Look up a function.
    pub fn func(&self, f: FuncId) -> &Function {
        &self.funcs[f.0 as usize]
    }

    /// Look up a block by global reference.
    pub fn block(&self, b: BlockRef) -> &Block {
        self.func(b.func).block(b.block)
    }

    /// Look up an instruction by global reference.
    pub fn instr(&self, i: InstrRef) -> &Instr {
        &self.block(i.block).instrs[i.idx as usize]
    }

    /// Find a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Total static instruction count (excludes terminators).
    pub fn static_instr_count(&self) -> usize {
        self.funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .map(|b| b.instrs.len())
            .sum()
    }

    /// Strict IR verifier. Checks, per function:
    ///
    /// * structure — every referenced block / register / function exists,
    ///   calls match callee arities;
    /// * **definite assignment** — on every path from the function entry,
    ///   each register is written before it is read (forward dataflow,
    ///   intersection over predecessors; parameters count as assigned,
    ///   unreachable blocks are skipped). The VM zero-initializes frames,
    ///   so a violation is not UB — but it is always a workload bug, and
    ///   the static affine pre-pass assumes the discipline;
    /// * **branch typing** — a `Br` condition must be integer-valued
    ///   (a float immediate can never be a truth value);
    /// * **return-arity consistency** — a function must not mix `Ret(Some)`
    ///   and `Ret(None)`, and a `Call` writing a destination register must
    ///   target a function that actually returns a value.
    ///
    /// Returns a list of violations (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        // Return arity per function: (has value-returns, has void-returns).
        let ret_arity: Vec<(bool, bool)> = self
            .funcs
            .iter()
            .map(|f| {
                let mut some = false;
                let mut none = false;
                for b in &f.blocks {
                    match &b.term {
                        Terminator::Ret(Some(_)) => some = true,
                        Terminator::Ret(None) => none = true,
                        _ => {}
                    }
                }
                (some, none)
            })
            .collect();
        for (fi, f) in self.funcs.iter().enumerate() {
            if f.n_params > f.n_regs {
                errs.push(format!("{}: n_params > n_regs", f.name));
            }
            if f.blocks.is_empty() {
                errs.push(format!("{}: no blocks", f.name));
            }
            let check_reg = |r: Reg, errs: &mut Vec<String>| {
                if r.0 >= f.n_regs {
                    errs.push(format!("{}: register r{} out of range", f.name, r.0));
                }
            };
            let check_op = |o: &Operand, errs: &mut Vec<String>| {
                if let Operand::Reg(r) = o {
                    if r.0 >= f.n_regs {
                        errs.push(format!("{}: register r{} out of range", f.name, r.0));
                    }
                }
            };
            for b in &f.blocks {
                for ins in &b.instrs {
                    if let Some(d) = ins.def() {
                        check_reg(d, &mut errs);
                    }
                    for u in ins.uses() {
                        check_reg(u, &mut errs);
                    }
                    if let Instr::Call { dst, func, args } = ins {
                        if func.0 as usize >= self.funcs.len() {
                            errs.push(format!("{}: call to missing function #{}", f.name, func.0));
                        } else {
                            let callee = self.func(*func);
                            if args.len() != callee.n_params as usize {
                                errs.push(format!(
                                    "{}: call to {} with {} args (expects {})",
                                    f.name,
                                    callee.name,
                                    args.len(),
                                    callee.n_params
                                ));
                            }
                            let (some, none) = ret_arity[func.0 as usize];
                            if dst.is_some() && none && !some {
                                errs.push(format!(
                                    "{}: call to {} expects a value but callee only returns void",
                                    f.name, callee.name
                                ));
                            }
                        }
                    }
                }
                match &b.term {
                    Terminator::Jump(t) if t.0 as usize >= f.blocks.len() => {
                        errs.push(format!("{}: jump to missing block b{}", f.name, t.0));
                    }
                    Terminator::Br { cond, then_, else_ } => {
                        check_op(cond, &mut errs);
                        if matches!(cond, Operand::ImmF(_)) {
                            errs.push(format!("{}: branch condition is a float immediate", f.name));
                        }
                        for t in [then_, else_] {
                            if t.0 as usize >= f.blocks.len() {
                                errs.push(format!("{}: branch to missing block b{}", f.name, t.0));
                            }
                        }
                    }
                    Terminator::Ret(Some(op)) => check_op(op, &mut errs),
                    _ => {}
                }
            }
            let (ret_some, ret_none) = ret_arity[fi];
            if ret_some && ret_none {
                errs.push(format!("{}: mixes value and void returns", f.name));
            }
            self.verify_definite_assignment(f, &mut errs);
        }
        if let Some(e) = self.entry {
            if e.0 as usize >= self.funcs.len() {
                errs.push("entry function out of range".into());
            }
        } else {
            errs.push("no entry function".into());
        }
        errs
    }

    /// Definite-assignment dataflow for one function (see [`Program::validate`]).
    ///
    /// Forward bitset dataflow: a register is *definitely assigned* at a
    /// program point if it is written on every path from the entry to that
    /// point. `in[entry]` holds only the parameters; every other block starts
    /// at ⊤ (all registers) and is refined by intersecting its predecessors'
    /// out-sets until a fixpoint. Blocks not reachable from the entry are
    /// skipped — they keep the ⊤ in-set and never execute anyway.
    fn verify_definite_assignment(&self, f: &Function, errs: &mut Vec<String>) {
        let nb = f.blocks.len();
        if nb == 0 {
            return;
        }
        let words = (f.n_regs as usize).div_ceil(64).max(1);
        // Predecessors and reachability over the local CFG.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
        let mut reachable = vec![false; nb];
        let mut stack = vec![0usize];
        reachable[0] = true;
        while let Some(b) = stack.pop() {
            for s in f.blocks[b].term.successors() {
                let s = s.0 as usize;
                if s >= nb {
                    continue; // structural error, reported elsewhere
                }
                preds[s].push(b);
                if !reachable[s] {
                    reachable[s] = true;
                    stack.push(s);
                }
            }
        }
        let set = |bits: &mut [u64], r: Reg| {
            if (r.0 as usize) < f.n_regs as usize {
                bits[r.0 as usize / 64] |= 1u64 << (r.0 % 64);
            }
        };
        let get = |bits: &[u64], r: Reg| {
            (r.0 as usize) < f.n_regs as usize && bits[r.0 as usize / 64] >> (r.0 % 64) & 1 == 1
        };
        // in-sets: entry = parameters, everything else ⊤.
        let mut in_sets = vec![vec![u64::MAX; words]; nb];
        in_sets[0] = vec![0u64; words];
        for p in 0..f.n_params {
            set(&mut in_sets[0], Reg(p));
        }
        // out[b] = in[b] ∪ defs(b); iterate in[b] = ∩ preds' out to fixpoint.
        let block_out = |in_set: &[u64], b: &Block| {
            let mut out = in_set.to_vec();
            for ins in &b.instrs {
                if let Some(d) = ins.def() {
                    set(&mut out, d);
                }
            }
            out
        };
        let mut outs: Vec<Vec<u64>> = (0..nb)
            .map(|b| block_out(&in_sets[b], &f.blocks[b]))
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for b in 1..nb {
                if !reachable[b] {
                    continue;
                }
                let mut new_in = vec![u64::MAX; words];
                for &p in &preds[b] {
                    for (w, o) in new_in.iter_mut().zip(&outs[p]) {
                        *w &= o;
                    }
                }
                if new_in != in_sets[b] {
                    outs[b] = block_out(&new_in, &f.blocks[b]);
                    in_sets[b] = new_in;
                    changed = true;
                }
            }
        }
        // Linear re-scan of each reachable block, reporting first use of each
        // not-definitely-assigned register (once per register per function).
        let mut reported = vec![false; f.n_regs as usize];
        let mut complain = |r: Reg, bi: usize, errs: &mut Vec<String>| {
            if (r.0 as usize) < reported.len() && !reported[r.0 as usize] {
                reported[r.0 as usize] = true;
                errs.push(format!(
                    "{}: register r{} may be read before assignment (block b{bi})",
                    f.name, r.0
                ));
            }
        };
        for (bi, b) in f.blocks.iter().enumerate() {
            if !reachable[bi] {
                continue;
            }
            let mut live = in_sets[bi].clone();
            for ins in &b.instrs {
                for u in ins.uses() {
                    if !get(&live, u) {
                        complain(u, bi, errs);
                    }
                }
                if let Some(d) = ins.def() {
                    set(&mut live, d);
                }
            }
            let term_use = match &b.term {
                Terminator::Br {
                    cond: Operand::Reg(r),
                    ..
                } => Some(*r),
                Terminator::Ret(Some(Operand::Reg(r))) => Some(*r),
                _ => None,
            };
            if let Some(r) = term_use {
                if !get(&live, r) {
                    complain(r, bi, errs);
                }
            }
        }
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for LocalBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.func, self.block)
    }
}

impl fmt::Display for InstrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.block, self.idx)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::I64(3).as_f64(), 3.0);
        assert_eq!(Value::F64(3.7).as_i64(), 3);
        assert!(Value::I64(1).is_truthy());
        assert!(!Value::I64(0).is_truthy());
        assert!(!Value::F64(0.0).is_truthy());
        assert!(!Value::F64(f64::NAN).is_truthy());
    }

    #[test]
    fn instr_def_use() {
        let i = Instr::IOp {
            dst: Reg(3),
            op: IBinOp::Add,
            a: Operand::Reg(Reg(1)),
            b: Operand::ImmI(4),
        };
        assert_eq!(i.def(), Some(Reg(3)));
        assert_eq!(i.uses(), vec![Reg(1)]);
        let s = Instr::Store {
            base: Operand::Reg(Reg(0)),
            offset: Operand::Reg(Reg(1)),
            src: Operand::Reg(Reg(2)),
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![Reg(0), Reg(1), Reg(2)]);
        assert!(s.is_mem());
        assert!(!s.is_fp());
    }

    #[test]
    fn fp_classification() {
        let f = Instr::FOp {
            dst: Reg(0),
            op: FBinOp::Mul,
            a: Operand::ImmF(1.0),
            b: Operand::ImmF(2.0),
        };
        assert!(f.is_fp());
        let e = Instr::Un {
            dst: Reg(0),
            op: UnOp::Exp,
            a: Operand::ImmF(1.0),
        };
        assert!(e.is_fp());
        let n = Instr::Un {
            dst: Reg(0),
            op: UnOp::I2F,
            a: Operand::ImmI(1),
        };
        assert!(!n.is_fp());
    }

    #[test]
    fn validate_catches_bad_register() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.func("main", 0);
        f.raw_instr(Instr::Move {
            dst: Reg(999),
            src: Operand::ImmI(0),
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        assert!(!p.validate().is_empty());
    }

    #[test]
    fn validate_ok_program() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.func("main", 0);
        let r = f.const_i(7);
        f.ret(Some(r.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        assert!(p.validate().is_empty(), "{:?}", p.validate());
    }

    #[test]
    fn validate_catches_bad_arity() {
        let mut pb = ProgramBuilder::new("t");
        let mut callee = pb.func("callee", 2);
        callee.ret(None);
        let callee_id = callee.finish();
        let mut f = pb.func("main", 0);
        f.raw_instr(Instr::Call {
            dst: None,
            func: callee_id,
            args: vec![Operand::ImmI(1)],
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        assert!(p.validate().iter().any(|e| e.contains("expects 2")));
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(
            Terminator::Jump(LocalBlockId(2)).successors(),
            vec![LocalBlockId(2)]
        );
        assert_eq!(Terminator::Ret(None).successors(), vec![]);
        let br = Terminator::Br {
            cond: Operand::ImmI(1),
            then_: LocalBlockId(0),
            else_: LocalBlockId(1),
        };
        assert_eq!(br.successors().len(), 2);
    }
}
