//! Textual dump of [`Program`]s — the `objdump`-style view the paper's
//! feedback maps back to. Useful for debugging workloads and in reports.

use crate::*;
use std::fmt::Write as _;

fn op_str(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => format!("r{}", r.0),
        Operand::ImmI(v) => format!("{v}"),
        Operand::ImmF(v) => format!("{v:?}"),
    }
}

fn instr_str(p: &Program, i: &Instr) -> String {
    match i {
        Instr::Const { dst, value } => format!("r{} = const {}", dst.0, value),
        Instr::Move { dst, src } => format!("r{} = {}", dst.0, op_str(src)),
        Instr::IOp { dst, op, a, b } => {
            format!("r{} = {:?}.i {}, {}", dst.0, op, op_str(a), op_str(b))
        }
        Instr::FOp { dst, op, a, b } => {
            format!("r{} = {:?}.f {}, {}", dst.0, op, op_str(a), op_str(b))
        }
        Instr::ICmp { dst, op, a, b } => {
            format!("r{} = cmp.{:?}.i {}, {}", dst.0, op, op_str(a), op_str(b))
        }
        Instr::FCmp { dst, op, a, b } => {
            format!("r{} = cmp.{:?}.f {}, {}", dst.0, op, op_str(a), op_str(b))
        }
        Instr::Un { dst, op, a } => format!("r{} = {:?} {}", dst.0, op, op_str(a)),
        Instr::Load { dst, base, offset } => {
            format!("r{} = load [{} + {}]", dst.0, op_str(base), op_str(offset))
        }
        Instr::Store { base, offset, src } => {
            format!(
                "store [{} + {}] = {}",
                op_str(base),
                op_str(offset),
                op_str(src)
            )
        }
        Instr::Call { dst, func, args } => {
            let args = args.iter().map(op_str).collect::<Vec<_>>().join(", ");
            let name = &p.func(*func).name;
            match dst {
                Some(d) => format!("r{} = call {name}({args})", d.0),
                None => format!("call {name}({args})"),
            }
        }
    }
}

fn term_str(t: &Terminator) -> String {
    match t {
        Terminator::Jump(b) => format!("jump b{}", b.0),
        Terminator::Br { cond, then_, else_ } => {
            format!("br {} ? b{} : b{}", op_str(cond), then_.0, else_.0)
        }
        Terminator::Ret(Some(v)) => format!("ret {}", op_str(v)),
        Terminator::Ret(None) => "ret".into(),
        Terminator::Unreachable => "unreachable".into(),
    }
}

/// Render the whole program as pseudo-assembly text.
pub fn dump_program(p: &Program) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "; program {}", p.name);
    for (fi, f) in p.funcs.iter().enumerate() {
        let _ = writeln!(
            s,
            "\nfunc {} (f{fi}, {} params, {} regs)  ; {}",
            f.name, f.n_params, f.n_regs, f.src_file
        );
        for (bi, b) in f.blocks.iter().enumerate() {
            let _ = writeln!(s, "  b{bi} <{}>  ; line {}", b.name, b.src_line);
            for i in &b.instrs {
                let _ = writeln!(s, "    {}", instr_str(p, i));
            }
            let _ = writeln!(s, "    {}", term_str(&b.term));
        }
    }
    s
}

/// Render one instruction (by reference) as text.
pub fn dump_instr(p: &Program, i: InstrRef) -> String {
    instr_str(p, p.instr(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;

    #[test]
    fn dump_contains_expected_mnemonics() {
        let mut pb = ProgramBuilder::new("d");
        let base = pb.array_f64(&[0.0; 4]);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 4i64, 1, |f, i| {
            let v = f.load(base as i64, i);
            let w = f.fmul(v, 2.0f64);
            f.store(base as i64, i, w);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let text = dump_program(&p);
        assert!(text.contains("load ["));
        assert!(text.contains("store ["));
        assert!(text.contains("Mul.f"));
        assert!(text.contains("br "));
        assert!(text.contains("func main"));
    }

    #[test]
    fn dump_instr_by_ref() {
        let mut pb = ProgramBuilder::new("d");
        let mut f = pb.func("main", 0);
        let r = f.const_i(42);
        f.ret(Some(r.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let iref = InstrRef {
            block: BlockRef::new(fid, 0),
            idx: 0,
        };
        assert!(dump_instr(&p, iref).contains("const 42"));
    }
}
