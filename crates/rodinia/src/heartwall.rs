//! `heartwall` — heart-wall tracking (Table 5 row 5, main.c:536).
//!
//! Deep nest (the paper reports 7-D source loops): frames × points ×
//! template rows × template cols correlation, with *hand-linearized* index
//! arithmetic using modulo expressions — the reason the paper gives for
//! heartwall's low 1% `%Aff` ("not supporting lattices at folding time")
//! and Polly's **RCBF** failure (helper call, early bail, modulo bounds,
//! non-affine accesses).

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::{CmpOp, Operand};

/// Frames processed.
pub const FRAMES: i64 = 2;
/// Tracking points.
pub const POINTS: i64 = 4;
/// Template edge.
pub const TPL: i64 = 5;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("heartwall");
    let img = pb.array_f64(
        &(0..(TPL * TPL * 4))
            .map(|i| (i % 9) as f64 * 0.1)
            .collect::<Vec<_>>(),
    );
    let tpl = pb.array_f64(&vec![0.3; (TPL * TPL) as usize]);
    let out = pb.alloc((FRAMES * POINTS) as u64);

    // helper called per point (Polly: R)
    let mut h = pb.func("normalize", 1);
    let x = h.param(0);
    let s = h.un(polyir::UnOp::Sqrt, x);
    h.ret(Some(s.into()));
    let norm = h.finish();

    let mut f = pb.func("main", 0);
    f.at_line(536);
    f.for_loop("Lframe", 0i64, FRAMES, 1, |f, fr| {
        f.for_loop("Lpoint", 0i64, POINTS, 1, |f, pt| {
            let acc = f.const_f(0.0);
            f.for_loop("Lrow", 0i64, TPL, 1, |f, r| {
                f.for_loop("Lcol", 0i64, TPL, 1, |f, c| {
                    // hand-linearized with modulo (the lattice pattern)
                    let lin = f.mul(r, TPL);
                    let lin2 = f.add(lin, c);
                    let shift = f.add(lin2, pt);
                    let wrapped = f.rem(shift, TPL * TPL); // modulo indexing
                    let frame_off = f.mul(fr, TPL * TPL);
                    let idx = f.add(frame_off, wrapped);
                    let iv = f.load(img as i64, idx);
                    let tidx = f.add(lin, c);
                    let tv = f.load(tpl as i64, tidx);
                    let p = f.fmul(iv, tv);
                    f.fop_to(acc, polyir::FBinOp::Add, acc, p);
                    // early bail when correlation is already hopeless (C)
                    let bad = f.fcmp(CmpOp::Lt, acc, -1.0e6f64);
                    let bail = f.block("bail");
                    let cont = f.block("cont");
                    f.br(bad, bail, cont);
                    f.switch_to(bail);
                    f.ret(None); // early return from deep inside the nest
                    f.switch_to(cont);
                });
            });
            let n = f.call(norm, &[Operand::Reg(acc)]);
            let oidx = f.mul(fr, POINTS);
            let oidx2 = f.add(oidx, pt);
            f.store(out as i64, oidx2, n);
        });
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);

    Workload {
        name: "heartwall",
        program: pb.finish(),
        description: "frames × points × template correlation with modulo-linearized \
                      indexing, early bail, helper call (Polly: RCBF; %Aff ≈ 1%)",
        paper: PaperRow {
            pct_aff: 0.01,
            polly_reasons: "RCBF",
            skew: false,
            pct_parallel: 1.0,
            pct_simd: 0.0,
            ld_src: 7,
            ld_bin: 6,
            tile_d: 5,
            interproc: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn heartwall_runs() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        vm.run(&[], &mut NullSink).unwrap();
        let out_base = 0x1000 + (TPL * TPL * 4) as u64 + (TPL * TPL) as u64;
        let v = vm.mem.read(out_base).as_f64();
        assert!(v > 0.0, "correlation output must be positive, got {v}");
    }
}
