//! `nn` — nearest neighbors (Table 5 row 13, nn_openmp.c:119).
//!
//! A single 1-D loop over records computing a Euclidean distance with a
//! `sqrt` call and tracking the running minimum (a loop-carried min
//! reduction). Polly: **R** (the distance call) and **F** (records loaded
//! through a struct-of-pointers layout). The paper's row is the outlier:
//! 1-D, no tiling beyond 1D, and the min reduction serializes the loop
//! (`%||ops` low).

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::{CmpOp, Operand};

/// Number of records.
pub const RECORDS: i64 = 128;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("nn");
    // records are (lat, lng) pairs reached through a per-record pointer
    // table, like the hurricane-record structs of the Rodinia source — the
    // paper's F failure code and its ~1% %Aff come from this layout
    let mut recs = Vec::new();
    for i in 0..RECORDS {
        let lat = ((i * 23) % 90) as f64;
        let lng = ((i * 41) % 180) as f64;
        recs.push(pb.array_f64(&[lat, lng]) as i64);
        // irregular allocator padding: record addresses are not an affine
        // function of the record index (heap-allocated structs)
        pb.alloc(((i * 7) % 3 + 1) as u64);
    }
    let rectab = pb.array_i64(&recs);
    let best_out = pb.alloc(2);

    let mut d = pb.func("distance", 2);
    {
        let (a, b) = (d.param(0), d.param(1));
        let s1 = d.fmul(a, a);
        let s2 = d.fmul(b, b);
        let s = d.fadd(s1, s2);
        let r = d.un(polyir::UnOp::Sqrt, s);
        d.ret(Some(r.into()));
    }
    let dist = d.finish();

    let mut f = pb.func("main", 0);
    f.at_line(119);
    let target_lat = f.const_f(30.0);
    let target_lng = f.const_f(90.0);
    let best = f.const_f(1.0e30);
    let best_i = f.const_i(-1);
    f.for_loop("Lrec", 0i64, RECORDS, 1, |f, i| {
        let rec = f.load(rectab as i64, i); // record pointer
        let la = f.load(rec, 0i64);
        let lo = f.load(rec, 1i64);
        let dla = f.fsub(la, target_lat);
        let dlo = f.fsub(lo, target_lng);
        let dd = f.call(dist, &[Operand::Reg(dla), Operand::Reg(dlo)]);
        let closer = f.fcmp(CmpOp::Lt, dd, best);
        f.if_else(
            closer,
            |f| {
                f.mov_to(best, dd);
                f.mov_to(best_i, i);
            },
            |_| {},
        );
    });
    f.store(best_out as i64, 0i64, best);
    f.store(best_out as i64, 1i64, best_i);
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);

    Workload {
        name: "nn",
        program: pb.finish(),
        description: "1-D nearest-neighbor scan with sqrt call and running-min \
                      reduction (Polly: RF; 1D, min-reduction serializes)",
        paper: PaperRow {
            pct_aff: 0.01,
            polly_reasons: "RF",
            skew: false,
            pct_parallel: 0.0,
            pct_simd: 0.0,
            ld_src: 1,
            ld_bin: 1,
            tile_d: 1,
            interproc: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn finds_a_neighbor() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        vm.run(&[], &mut NullSink).unwrap();
        // best_out was allocated right after the last record + padding and
        // before the table; recover it by scanning from the table backwards:
        // simplest robust check — find the stored index in memory.
        let base = {
            let mut found = None;
            for a in 0x1000..0x4000u64 {
                let v0 = vm.mem.read(a).as_f64();
                let v1 = vm.mem.read(a + 1).as_i64();
                if v0 > 0.0 && v0 < 1.0e29 && (0..RECORDS).contains(&v1) && v1 != 0 {
                    // distance then index pair
                    found = Some(a);
                    break;
                }
            }
            found.expect("best_out pair present")
        };
        let best = vm.mem.read(base).as_f64();
        let idx = vm.mem.read(base + 1).as_i64();
        assert!(best < 1.0e30, "no neighbor found");
        assert!((0..RECORDS).contains(&idx));
    }
}
