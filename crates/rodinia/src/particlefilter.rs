//! `particlefilter` — particle filter tracking (Table 5 row 15,
//! ex_particle_seq.c:593).
//!
//! One predict/weight/resample round: likelihood evaluation per particle
//! (parallel), a prefix-sum of weights (serial scan), and the resampling
//! step that *searches* the CDF per output particle with an early-exit scan
//! (**C**) and gathers via the found index (**F**). Matches the paper's
//! 27% `%Aff`, CF failure codes.

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::CmpOp;

/// Particles.
pub const NPARTICLES: i64 = 32;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("particlefilter");
    let xs: Vec<f64> = (0..NPARTICLES).map(|i| (i % 8) as f64 * 0.5).collect();
    let x = pb.array_f64(&xs);
    let weights = pb.alloc(NPARTICLES as u64);
    let cdf = pb.alloc(NPARTICLES as u64);
    let newx = pb.alloc(NPARTICLES as u64);
    let us: Vec<f64> = (0..NPARTICLES)
        .map(|i| (i as f64 + 0.5) / NPARTICLES as f64)
        .collect();
    let u = pb.array_f64(&us);

    let mut f = pb.func("main", 0);
    f.at_line(593);
    // 1. likelihood weights (parallel)
    let target = f.const_f(2.0);
    let total = f.const_f(0.0);
    f.for_loop("Lweight", 0i64, NPARTICLES, 1, |f, i| {
        let xi = f.load(x as i64, i);
        let d = f.fsub(xi, target);
        let d2 = f.fmul(d, d);
        let nd2 = f.un(polyir::UnOp::Neg, d2);
        let wv = f.un(polyir::UnOp::Exp, nd2);
        f.store(weights as i64, i, wv);
        f.fop_to(total, polyir::FBinOp::Add, total, wv);
    });
    // 2. normalized prefix sum (serial scan — carried dependence)
    let run = f.const_f(0.0);
    f.for_loop("Lscan", 0i64, NPARTICLES, 1, |f, i| {
        let wv = f.load(weights as i64, i);
        let nw = f.fdiv(wv, total);
        f.fop_to(run, polyir::FBinOp::Add, run, nw);
        f.store(cdf as i64, i, run);
    });
    // 3. systematic resampling: scan the CDF per output with early exit
    f.for_loop("Lresample", 0i64, NPARTICLES, 1, |f, i| {
        let ui = f.load(u as i64, i);
        let pick = f.const_i(NPARTICLES - 1);
        let j = f.const_i(0);
        let searching = f.const_i(1);
        f.while_loop(
            "Lsearch",
            |f| {
                let in_range = f.icmp(CmpOp::Lt, j, NPARTICLES);
                f.iop(polyir::IBinOp::And, in_range, searching)
            },
            |f| {
                let c = f.load(cdf as i64, j);
                let ge = f.fcmp(CmpOp::Ge, c, ui);
                f.if_else(
                    ge,
                    |f| {
                        f.mov_to(pick, j);
                        f.mov_to(searching, 0i64); // break
                    },
                    |_| {},
                );
                f.iop_to(j, polyir::IBinOp::Add, j, 1i64);
            },
        );
        let xv = f.load(x as i64, pick); // gather via found index
        f.store(newx as i64, i, xv);
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);

    Workload {
        name: "particlefilter",
        program: pb.finish(),
        description: "weight → prefix-sum → CDF-search resampling: early-exit scan \
                      and data-dependent gather (Polly: CF)",
        paper: PaperRow {
            pct_aff: 0.27,
            polly_reasons: "CF",
            skew: false,
            pct_parallel: 0.99,
            pct_simd: 0.55,
            ld_src: 3,
            ld_bin: 3,
            tile_d: 2,
            interproc: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn resampling_concentrates_near_target() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        vm.run(&[], &mut NullSink).unwrap();
        let newx_base = 0x1000 + 3 * NPARTICLES as u64;
        let mut mean = 0.0;
        for i in 0..NPARTICLES as u64 {
            mean += vm.mem.read(newx_base + i).as_f64();
        }
        mean /= NPARTICLES as f64;
        // particles concentrate near the target (2.0) after resampling;
        // the prior mean is ~1.75, so expect a shift toward 2.0
        assert!(mean > 1.5 && mean < 2.5, "resampled mean {mean}");
    }
}
