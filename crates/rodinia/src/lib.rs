//! # rodinia — the evaluation workloads (paper §7–8)
//!
//! PolyVM-IR re-implementations of the 19 Rodinia 3.1 CPU benchmarks the
//! paper evaluates in Table 5, plus the GemsFDTD kernels of Table 4 and the
//! worked examples of Figs. 3 and 6. Each kernel is scaled down but
//! preserves what the paper's metrics depend on: loop nesting depth,
//! dependence pattern (parallel / reduction / wavefront / indirect), access
//! strides, call structure, and the specific non-affinity that defeats
//! static modeling (the R/C/B/F/A/P codes of Experiment II).
//!
//! Every workload records the paper's reference row of Table 5 so the bench
//! harness can print paper-vs-measured side by side.

pub mod backprop;
pub mod bfs;
pub mod btree;
pub mod cfd;
pub mod gemsfdtd;
pub mod heartwall;
pub mod hotspot;
pub mod hotspot3d;
pub mod kmeans;
pub mod lavamd;
pub mod leukocyte;
pub mod lud;
pub mod myocyte;
pub mod nn;
pub mod nw;
pub mod paper_examples;
pub mod particlefilter;
pub mod pathfinder;
pub mod srad;
pub mod streamcluster;

use polyir::Program;

/// Reference values from the paper's Table 5 for one benchmark (the *shape*
/// targets the reproduction is checked against).
#[derive(Debug, Clone)]
pub struct PaperRow {
    /// `%Aff` reported by the paper.
    pub pct_aff: f64,
    /// Reasons-why-Polly-failed string (e.g. "RCBF"), "-" if modeled.
    pub polly_reasons: &'static str,
    /// Skew used in the proposed transformation.
    pub skew: bool,
    /// `%||ops`.
    pub pct_parallel: f64,
    /// `%simdops`.
    pub pct_simd: f64,
    /// Source loop depth (`ld-src`).
    pub ld_src: usize,
    /// Binary loop depth (`ld-bin`).
    pub ld_bin: usize,
    /// Tiling depth.
    pub tile_d: usize,
    /// Region is interprocedural.
    pub interproc: bool,
}

/// One workload: a runnable PolyVM program plus metadata.
pub struct Workload {
    /// Benchmark name (Table 5 row).
    pub name: &'static str,
    /// The program (entry set, data segment loaded).
    pub program: Program,
    /// One-line description of what is being modeled.
    pub description: &'static str,
    /// Paper reference values.
    pub paper: PaperRow,
}

/// All Table 5 workloads, in the paper's row order.
pub fn all_rodinia() -> Vec<Workload> {
    vec![
        backprop::build(),
        bfs::build(),
        btree::build(),
        cfd::build(),
        heartwall::build(),
        hotspot::build(),
        hotspot3d::build(),
        kmeans::build(),
        lavamd::build(),
        leukocyte::build(),
        lud::build(),
        myocyte::build(),
        nn::build(),
        nw::build(),
        particlefilter::build(),
        pathfinder::build(),
        srad::build_v1(),
        srad::build_v2(),
        streamcluster::build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    /// Every workload must validate and execute to completion.
    #[test]
    fn all_workloads_validate_and_run() {
        for w in all_rodinia() {
            let errs = w.program.validate();
            assert!(errs.is_empty(), "{}: {:?}", w.name, errs);
            let mut vm = Vm::new(&w.program);
            let out = vm
                .run(&[], &mut NullSink)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            assert!(out.dyn_instrs > 100, "{} too trivial", w.name);
            assert!(
                out.dyn_instrs < 20_000_000,
                "{} too big for the harness: {}",
                w.name,
                out.dyn_instrs
            );
        }
    }

    #[test]
    fn gemsfdtd_runs() {
        let w = gemsfdtd::build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        assert!(vm.run(&[], &mut NullSink).is_ok());
    }

    #[test]
    fn names_match_paper_rows() {
        let names: Vec<&str> = all_rodinia().iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 19);
        assert_eq!(names[0], "backprop");
        assert!(names.contains(&"srad_v1"));
        assert!(names.contains(&"srad_v2"));
        assert!(names.contains(&"streamcluster"));
    }
}
