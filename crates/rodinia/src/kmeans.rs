//! `kmeans` — clustering (Table 5 row 8, kmeans_clustering.c:160).
//!
//! One assignment + recentering iteration: for each point, compute the
//! distance to every cluster (through a `euclid_dist_2` call — Polly **R**),
//! pick the argmin, then scatter into per-cluster sums *indexed by the
//! computed membership* (indirect store — **F**); points/clusters passed as
//! pointer parameters (**A**). The point loop is parallel; the paper
//! reports ~97% `%Aff`.

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::{CmpOp, Operand};

/// Points.
pub const NPOINTS: i64 = 32;
/// Clusters.
pub const NCLUSTERS: i64 = 4;
/// Feature dimensions.
pub const NDIMS: i64 = 4;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("kmeans");
    let feats: Vec<f64> = (0..NPOINTS * NDIMS)
        .map(|i| ((i * 37) % 19) as f64 * 0.5)
        .collect();
    let features = pb.array_f64(&feats);
    let clusters = pb.array_f64(
        &(0..NCLUSTERS * NDIMS)
            .map(|i| (i % 7) as f64)
            .collect::<Vec<_>>(),
    );
    let membership = pb.alloc(NPOINTS as u64);
    let new_centers = pb.alloc((NCLUSTERS * NDIMS) as u64);
    let new_counts = pb.alloc(NCLUSTERS as u64);

    // euclid_dist_2(feat_ptr, clust_ptr): squared distance over NDIMS.
    let mut d = pb.func("euclid_dist_2", 2);
    {
        let (fp, cp) = (d.param(0), d.param(1));
        let acc = d.const_f(0.0);
        d.for_loop("Ld", 0i64, NDIMS, 1, |f, k| {
            let a = f.load(fp, k);
            let b = f.load(cp, k);
            let diff = f.fsub(a, b);
            let sq = f.fmul(diff, diff);
            f.fop_to(acc, polyir::FBinOp::Add, acc, sq);
        });
        d.ret(Some(acc.into()));
    }
    let dist = d.finish();

    let mut f = pb.func("kmeans_clustering", 2);
    {
        let (featp, clustp) = (f.param(0), f.param(1));
        f.at_line(160);
        f.for_loop("Lpt", 0i64, NPOINTS, 1, |f, pt| {
            let foff = f.mul(pt, NDIMS);
            let fptr = f.add(featp, foff);
            let best = f.const_f(1.0e30);
            let best_c = f.const_i(0);
            f.for_loop("Lc", 0i64, NCLUSTERS, 1, |f, c| {
                let coff = f.mul(c, NDIMS);
                let cptr = f.add(clustp, coff);
                let dd = f.call(dist, &[fptr.into(), cptr.into()]);
                let closer = f.fcmp(CmpOp::Lt, dd, best);
                f.if_else(
                    closer,
                    |f| {
                        f.mov_to(best, dd);
                        f.mov_to(best_c, c);
                    },
                    |_| {},
                );
            });
            f.store(membership as i64, pt, best_c);
            // scatter into the chosen cluster's running sums (indirect)
            let cbase = f.mul(best_c, NDIMS);
            f.for_loop("Lacc", 0i64, NDIMS, 1, |f, k| {
                let fi = f.add(foff, k);
                let v = f.load(featp, fi);
                let ci = f.add(cbase, k);
                let cur = f.load(new_centers as i64, ci);
                let s = f.fadd(cur, v);
                f.store(new_centers as i64, ci, s);
            });
            let cnt = f.load(new_counts as i64, best_c);
            let cnt1 = f.add(cnt, 1i64);
            f.store(new_counts as i64, best_c, cnt1);
        });
        f.ret(None);
    }
    let kmeans = f.finish();

    let mut m = pb.func("main", 0);
    m.call_void(
        kmeans,
        &[
            Operand::ImmI(features as i64),
            Operand::ImmI(clusters as i64),
        ],
    );
    m.ret(None);
    let mid = m.finish();
    pb.set_entry(mid);

    Workload {
        name: "kmeans",
        program: pb.finish(),
        description: "k-means assignment + scatter: distance call per cluster, \
                      membership-indexed accumulation (Polly: RFA)",
        paper: PaperRow {
            pct_aff: 0.97,
            polly_reasons: "RFA",
            skew: false,
            pct_parallel: 1.0,
            pct_simd: 0.46,
            ld_src: 4,
            ld_bin: 4,
            tile_d: 4,
            interproc: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn kmeans_assigns_all_points() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        vm.run(&[], &mut NullSink).unwrap();
        let mem_base = 0x1000 + (NPOINTS * NDIMS) as u64 + (NCLUSTERS * NDIMS) as u64;
        for i in 0..NPOINTS as u64 {
            let c = vm.mem.read(mem_base + i).as_i64();
            assert!((0..NCLUSTERS).contains(&c), "bad membership {c}");
        }
        // counts sum to NPOINTS
        let counts_base = mem_base + NPOINTS as u64 + (NCLUSTERS * NDIMS) as u64;
        let total: i64 = (0..NCLUSTERS as u64)
            .map(|i| vm.mem.read(counts_base + i).as_i64())
            .sum();
        assert_eq!(total, NPOINTS);
    }
}
