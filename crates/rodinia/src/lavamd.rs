//! `lavaMD` — molecular dynamics over boxed particles (Table 5 row 9,
//! kernel_cpu.c:123).
//!
//! For each home box, loop over its neighbor list (*indices loaded from a
//! neighbor table* — Polly **F**), then the all-pairs particle interaction
//! with an exp() cutoff. The paper reports 0% `%Aff` (neighbor indirection
//! everywhere) yet 100% parallel ops — the home-box loop is independent.

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;

/// Boxes per side (1-D box lattice for compactness).
pub const NBOXES: i64 = 6;
/// Particles per box.
pub const PERBOX: i64 = 4;
/// Neighbors per box.
pub const NNEI: i64 = 3;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("lavaMD");
    let pos: Vec<f64> = (0..NBOXES * PERBOX)
        .map(|i| ((i * 13) % 11) as f64 * 0.3)
        .collect();
    let positions = pb.array_f64(&pos);
    let charges = pb.array_f64(&vec![0.8; (NBOXES * PERBOX) as usize]);
    // neighbor table: irregular box ids
    let nei: Vec<i64> = (0..NBOXES * NNEI).map(|i| (i * 5 + 2) % NBOXES).collect();
    let neighbors = pb.array_i64(&nei);
    let forces = pb.alloc((NBOXES * PERBOX) as u64);

    let mut f = pb.func("main", 0);
    f.at_line(123);
    f.for_loop("Lbox", 0i64, NBOXES, 1, |f, b| {
        let home_base = f.mul(b, PERBOX);
        f.for_loop("Lnei", 0i64, NNEI, 1, |f, k| {
            let ni = f.mul(b, NNEI);
            let nidx = f.add(ni, k);
            let nb = f.load(neighbors as i64, nidx); // indirect box id
            let nb_base = f.mul(nb, PERBOX);
            f.for_loop("Li", 0i64, PERBOX, 1, |f, i| {
                let ii = f.add(home_base, i);
                let xi = f.load(positions as i64, ii);
                let acc = f.const_f(0.0);
                f.for_loop("Lj", 0i64, PERBOX, 1, |f, j| {
                    let jj = f.add(nb_base, j);
                    let xj = f.load(positions as i64, jj);
                    let qj = f.load(charges as i64, jj);
                    let dx = f.fsub(xi, xj);
                    let r2 = f.fmul(dx, dx);
                    let nr2 = f.un(polyir::UnOp::Neg, r2);
                    let e = f.un(polyir::UnOp::Exp, nr2);
                    let contrib = f.fmul(e, qj);
                    f.fop_to(acc, polyir::FBinOp::Add, acc, contrib);
                });
                let cur = f.load(forces as i64, ii);
                let nf = f.fadd(cur, acc);
                f.store(forces as i64, ii, nf);
            });
        });
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);

    Workload {
        name: "lavaMD",
        program: pb.finish(),
        description: "boxed MD: neighbor-table indirection around an all-pairs \
                      interaction (Polly: BF; paper %Aff 0%)",
        paper: PaperRow {
            pct_aff: 0.0,
            polly_reasons: "BF",
            skew: false,
            pct_parallel: 1.0,
            pct_simd: 0.0,
            ld_src: 4,
            ld_bin: 4,
            tile_d: 3,
            interproc: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn forces_accumulate() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        vm.run(&[], &mut NullSink).unwrap();
        let forces_base = 0x1000 + 2 * (NBOXES * PERBOX) as u64 + (NBOXES * NNEI) as u64;
        let v = vm.mem.read(forces_base).as_f64();
        assert!(v > 0.0, "gaussian-weighted force must be positive: {v}");
    }
}
