//! `b+tree` — B+-tree range queries (Table 5 row 3, main.c:2345).
//!
//! A batch of key lookups, each descending the tree through *node pointers
//! loaded from memory* (pointer chasing). Statically hopeless (Polly: **B**
//! unknown trip counts, **F** indirection); dynamically the query loop is
//! parallel — queries are independent — which is what the paper's 100%
//! `%||ops` reflects.

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::{CmpOp, IBinOp};

/// Number of queries in the batch.
pub const QUERIES: i64 = 48;
/// Keys per inner node.
pub const FANOUT: i64 = 4;
/// Tree height.
pub const HEIGHT: i64 = 3;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("b+tree");

    // Node layout: FANOUT keys, then FANOUT child pointers (leaf children 0).
    // Build a perfect tree bottom-up.
    let node_words = (2 * FANOUT) as u64;
    let mut level_nodes: Vec<i64> = Vec::new();
    // leaves: keys are consecutive ranges
    let leaves = FANOUT.pow((HEIGHT - 1) as u32);
    let mut key = 0i64;
    for _ in 0..leaves {
        let mut words = Vec::new();
        for _ in 0..FANOUT {
            words.push(key);
            key += 1;
        }
        words.extend(std::iter::repeat_n(0, FANOUT as usize));
        level_nodes.push(pb.array_i64(&words) as i64);
    }
    let mut level = level_nodes;
    while level.len() > 1 {
        let mut next = Vec::new();
        for group in level.chunks(FANOUT as usize) {
            let mut words = Vec::new();
            // separator keys: first key of each child (read back not possible;
            // recompute: children cover contiguous ranges)
            for ci in 0..FANOUT as usize {
                words.push((ci as i64) * 10_000); // placeholder separators
            }
            for ci in 0..FANOUT as usize {
                words.push(*group.get(ci).unwrap_or(&0));
            }
            next.push(pb.array_i64(&words) as i64);
        }
        level = next;
    }
    let root = level[0];
    let _ = node_words;

    let queries: Vec<i64> = (0..QUERIES).map(|q| (q * 13) % (leaves * FANOUT)).collect();
    let qarr = pb.array_i64(&queries);
    let results = pb.alloc(QUERIES as u64);

    let mut f = pb.func("main", 0);
    f.at_line(2345);
    f.for_loop("Lq", 0i64, QUERIES, 1, |f, q| {
        let target = f.load(qarr as i64, q);
        let cur = f.mov(root);
        let lvl = f.const_i(0);
        f.while_loop(
            "Ldescend",
            |f| f.icmp(CmpOp::Lt, lvl, HEIGHT - 1),
            |f| {
                // pick child by scanning keys (simplified: arithmetic pick)
                let span = f.const_i(1);
                let rem = f.sub(HEIGHT - 2, lvl);
                // span = FANOUT^rem keys per child at this level
                let i = f.const_i(0);
                f.while_loop(
                    "Lpow",
                    |f| f.icmp(CmpOp::Lt, i, rem),
                    |f| {
                        f.iop_to(span, IBinOp::Mul, span, FANOUT);
                        f.iop_to(i, IBinOp::Add, i, 1i64);
                    },
                );
                let child_span = f.mul(span, FANOUT);
                let pick0 = f.div(target, child_span);
                let pick = f.rem(pick0, FANOUT);
                let slot = f.add(pick, FANOUT);
                let next = f.load(cur, slot); // pointer chase
                f.mov_to(cur, next);
                f.iop_to(lvl, IBinOp::Add, lvl, 1i64);
            },
        );
        // scan the leaf for the key
        let found = f.const_i(-1);
        f.for_loop("Lscan", 0i64, FANOUT, 1, |f, s| {
            let k = f.load(cur, s);
            let hit = f.icmp(CmpOp::Eq, k, target);
            f.if_else(hit, |f| f.mov_to(found, 1i64), |_| {});
        });
        f.store(results as i64, q, found);
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);

    Workload {
        name: "b+tree",
        program: pb.finish(),
        description: "batched B+-tree lookups: parallel query loop over pointer-chasing \
                      descents (Polly: BF)",
        paper: PaperRow {
            pct_aff: 0.49,
            polly_reasons: "BF",
            skew: false,
            pct_parallel: 1.0,
            pct_simd: 0.44,
            ld_src: 3,
            ld_bin: 3,
            tile_d: 3,
            interproc: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn btree_runs() {
        let w = build();
        assert!(
            w.program.validate().is_empty(),
            "{:?}",
            w.program.validate()
        );
        let mut vm = Vm::new(&w.program);
        let out = vm.run(&[], &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 1000);
    }
}
