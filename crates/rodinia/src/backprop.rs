//! `backprop` — supervised neural-network training (paper case study I,
//! Tables 1–3).
//!
//! Two 2-D kernels, both called from `main` (the `facetrain.c:25` region of
//! Table 5):
//!
//! * `bpnn_layerforward` — Fig. 6's kernel: `l2[j] = squash(Σ_k conn[k][j]
//!   · l1[k])`. Column-major access to `conn` (stride n2 along the inner k
//!   loop), an inner *reduction* into `sum`, and a `squash` call. The
//!   paper's suggested transformation: interchange + SIMD, outer loop
//!   parallel.
//! * `bpnn_adjust_weights` — elementwise 2-D update, fully parallel, also
//!   interchange+SIMD material.
//!
//! Arrays are passed as pointer parameters, so static analysis must assume
//! aliasing — the paper's Polly failure code **A** for this benchmark.

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::{FBinOp, Operand, UnOp};

/// Layer sizes (paper: n2 = 16 for the interesting call).
pub const N1: i64 = 16;
/// Output layer size.
pub const N2: i64 = 16;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("backprop");

    // conn[k][j] row-major (n1+1 rows × n2+1 cols), l1[n1+1], l2[n2+1],
    // delta[n2+1], oldw similarly.
    let conn = pb.array_f64(&vec![0.1; ((N1 + 1) * (N2 + 1)) as usize]);
    let l1 = pb.array_f64(&vec![0.5; (N1 + 1) as usize]);
    let l2 = pb.alloc((N2 + 1) as u64);
    let delta = pb.array_f64(&vec![0.01; (N2 + 1) as usize]);
    let oldw = pb.array_f64(&vec![0.2; ((N1 + 1) * (N2 + 1)) as usize]);
    let w = pb.array_f64(&vec![0.3; ((N1 + 1) * (N2 + 1)) as usize]);

    // squash(x) = 1/(1+e^-x): a real function so the region is
    // interprocedural (Polly, however, can handle such "simple" calls — the
    // paper reports only A for backprop, so the static baseline sees the
    // sigmoid as an intrinsic inside squash, not an opaque call chain).
    let mut sq = pb.func("squash", 1);
    let x = sq.param(0);
    let s = sq.un(UnOp::Sigmoid, x);
    sq.ret(Some(s.into()));
    let squash = sq.finish();

    // bpnn_layerforward(l1, l2, conn, n1, n2)
    let mut lf = pb.func("bpnn_layerforward", 5);
    {
        let (l1p, l2p, connp, n1, n2) = (
            lf.param(0),
            lf.param(1),
            lf.param(2),
            lf.param(3),
            lf.param(4),
        );
        lf.at_line(253);
        lf.for_loop("Lj", 1i64, n2, 1, |f, j| {
            let sum = f.const_f(0.0);
            f.at_line(254);
            f.for_loop("Lk", 0i64, n1, 1, |f, k| {
                // conn[k][j]: stride n2+1 along k (column access)
                let row = f.mul(k, N2 + 1);
                let idx = f.add(row, j);
                let wv = f.load(connp, idx);
                let xv = f.load(l1p, k);
                let prod = f.fmul(wv, xv);
                f.fop_to(sum, FBinOp::Add, sum, prod);
            });
            let out = f.call(squash, &[sum.into()]);
            f.store(l2p, j, out);
        });
        lf.ret(None);
    }
    let layerforward = lf.finish();

    // bpnn_adjust_weights(delta, ndelta, ly, nly, w, oldw)
    let mut aw = pb.func("bpnn_adjust_weights", 4);
    {
        let (deltap, lyp, wp, oldwp) = (aw.param(0), aw.param(1), aw.param(2), aw.param(3));
        aw.at_line(320);
        aw.for_loop("Lj", 1i64, N2, 1, |f, j| {
            f.at_line(322);
            f.for_loop("Lk", 0i64, N1, 1, |f, k| {
                let row = f.mul(k, N2 + 1);
                let idx = f.add(row, j);
                let d = f.load(deltap, j);
                let y = f.load(lyp, k);
                let old = f.load(oldwp, idx);
                let eta = f.fmul(d, 0.3f64);
                let t1 = f.fmul(eta, y);
                let t2 = f.fmul(old, 0.3f64);
                let upd = f.fadd(t1, t2);
                let cur = f.load(wp, idx);
                let neww = f.fadd(cur, upd);
                f.store(wp, idx, neww);
                f.store(oldwp, idx, upd);
            });
        });
        aw.ret(None);
    }
    let adjust = aw.finish();

    let mut m = pb.func("main", 0);
    m.at_line(25);
    m.call_void(
        layerforward,
        &[
            Operand::ImmI(l1 as i64),
            Operand::ImmI(l2 as i64),
            Operand::ImmI(conn as i64),
            Operand::ImmI(N1),
            Operand::ImmI(N2),
        ],
    );
    m.call_void(
        adjust,
        &[
            Operand::ImmI(delta as i64),
            Operand::ImmI(l1 as i64),
            Operand::ImmI(w as i64),
            Operand::ImmI(oldw as i64),
        ],
    );
    m.ret(None);
    let mid = m.finish();
    pb.set_entry(mid);

    Workload {
        name: "backprop",
        program: pb.finish(),
        description: "NN training: 2-D reduction kernel + 2-D elementwise update, \
                      pointer-parameter arrays (Polly: A), interchange+SIMD potential",
        paper: PaperRow {
            pct_aff: 0.85,
            polly_reasons: "A",
            skew: false,
            pct_parallel: 1.0,
            pct_simd: 1.0,
            ld_src: 2,
            ld_bin: 2,
            tile_d: 2,
            interproc: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{sinks::CountingSink, Vm};

    #[test]
    fn runs_and_produces_output() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        let mut c = CountingSink::default();
        vm.run(&[], &mut c).unwrap();
        assert!(c.calls >= 2 + (N2 as u64 - 1)); // two kernels + squash per j
                                                 // l2[1] holds a sigmoid output in (0.5, 1): sigmoid(Σ 16·0.1·0.5) ≈ 0.69.
                                                 // conn starts at 0x1000 with (N1+1)*(N2+1) cells, l1 after, l2 after l1.
        let l2_addr = 0x1000 + ((N1 + 1) * (N2 + 1)) as u64 + (N1 + 1) as u64 + 1;
        let v = vm.mem.read(l2_addr).as_f64();
        assert!(v > 0.5 && v < 1.0, "sigmoid output expected, got {v}");
    }
}
