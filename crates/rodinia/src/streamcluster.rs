//! `streamcluster` — online clustering (Table 5 row 19,
//! streamcluster_omp.cpp:1269).
//!
//! The `pgain` kernel: for a candidate center, compute for every point the
//! cost delta of switching to it (distance call per pair — **R**), with
//! early exits (**C**), membership gathers (**F**), points passed as a
//! pointer table (**P**/**A**), and data-dependent loop bounds (**B**).
//! The paper's row notes streamcluster exhausted scheduler memory at full
//! scale (52 components!); at our scale the pipeline completes, which we
//! record in EXPERIMENTS.md as the expected deviation.

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::{CmpOp, Operand};

/// Points.
pub const NPOINTS: i64 = 24;
/// Dimensions.
pub const DIMS: i64 = 3;
/// Candidate centers tried.
pub const CANDIDATES: i64 = 4;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("streamcluster");
    // per-point coordinate rows via a pointer table (P)
    let mut rows = Vec::new();
    for i in 0..NPOINTS {
        let row: Vec<f64> = (0..DIMS).map(|d| ((i * 7 + d * 3) % 9) as f64).collect();
        rows.push(pb.array_f64(&row) as i64);
    }
    let ptable = pb.array_i64(&rows);
    let assign = pb.array_i64(&(0..NPOINTS).map(|i| i % 2).collect::<Vec<_>>());
    let costs = pb.array_f64(&vec![5.0; NPOINTS as usize]);
    let gains = pb.alloc(CANDIDATES as u64);

    let mut d = pb.func("dist", 2);
    {
        let (pa, pc) = (d.param(0), d.param(1));
        let acc = d.const_f(0.0);
        d.for_loop("Ld", 0i64, DIMS, 1, |f, k| {
            let a = f.load(pa, k);
            let b = f.load(pc, k);
            let df = f.fsub(a, b);
            let sq = f.fmul(df, df);
            f.fop_to(acc, polyir::FBinOp::Add, acc, sq);
        });
        d.ret(Some(acc.into()));
    }
    let dist = d.finish();

    // pgain(candidate_row_ptr) -> total gain
    let mut pg = pb.func("pgain", 1);
    {
        let cand = pg.param(0);
        pg.at_line(1269);
        let gain = pg.const_f(0.0);
        pg.for_loop("Lpt", 0i64, NPOINTS, 1, |f, i| {
            let prow = f.load(ptable as i64, i); // pointer gather (P)
            let dd = f.call(dist, &[prow.into(), cand.into()]);
            let cur = f.load(costs as i64, i);
            let delta = f.fsub(cur, dd);
            let profitable = f.fcmp(CmpOp::Gt, delta, 0.0f64);
            f.if_else(
                profitable,
                |f| {
                    f.fop_to(gain, polyir::FBinOp::Add, gain, delta);
                    // membership gather + update (F)
                    let a = f.load(assign as i64, i);
                    let bump = f.load(costs as i64, a);
                    let nb = f.fadd(bump, 0.0f64);
                    f.store(costs as i64, a, nb);
                },
                |_| {},
            );
        });
        pg.ret(Some(gain.into()));
    }
    let pgain = pg.finish();

    let mut m = pb.func("main", 0);
    m.for_loop("Lcand", 0i64, CANDIDATES, 1, |f, c| {
        let cand_idx = f.rem(c, NPOINTS);
        let cand_row = f.load(ptable as i64, cand_idx);
        let g = f.call(pgain, &[Operand::Reg(cand_row)]);
        f.store(gains as i64, c, g);
    });
    m.ret(None);
    let mid = m.finish();
    pb.set_entry(mid);

    Workload {
        name: "streamcluster",
        program: pb.finish(),
        description: "pgain: per-point cost-delta with distance calls, conditional \
                      gains, pointer-table points (Polly: RCBFAP)",
        paper: PaperRow {
            pct_aff: 0.97,
            polly_reasons: "RCBFAP",
            skew: false,
            pct_parallel: f64::NAN, // paper: scheduler ran out of memory
            pct_simd: f64::NAN,
            ld_src: 6,
            ld_bin: 6,
            tile_d: 0,
            interproc: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn pgain_computes_gains() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        let out = vm.run(&[], &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 1000);
    }
}
