//! `hotspot3D` — 3-D thermal simulation (Table 5 row 7, 3D.c:261).
//!
//! The 3-D 7-point stencil version of hotspot, time-stepped with explicit
//! buffer swap. The inner grid avoids boundary clamping (interior sweep),
//! so the kernel folds almost fully affine (paper: 99% `%Aff`); Polly still
//! fails on the linearized 3-D indexing arithmetic and the flattened array
//! views (**B**, **F**).

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;

/// Grid edge.
pub const N: i64 = 8;
/// Time steps.
pub const STEPS: i64 = 2;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("hotspot3D");
    let a = pb.array_f64(
        &(0..N * N * N)
            .map(|i| 300.0 + (i % 5) as f64)
            .collect::<Vec<_>>(),
    );
    let b = pb.alloc((N * N * N) as u64);
    let power = pb.array_f64(&vec![0.02; (N * N * N) as usize]);

    let mut f = pb.func("main", 0);
    f.at_line(261);
    f.for_loop("Lt", 0i64, STEPS, 1, |f, t| {
        let parity = f.rem(t, 2i64);
        let src = f.mov(a as i64);
        let dst = f.mov(b as i64);
        f.if_else(
            parity,
            |f| {
                f.mov_to(src, b as i64);
                f.mov_to(dst, a as i64);
            },
            |_| {},
        );
        f.for_loop("Lz", 1i64, N - 1, 1, |f, z| {
            f.for_loop("Ly", 1i64, N - 1, 1, |f, y| {
                f.for_loop("Lx", 1i64, N - 1, 1, |f, x| {
                    let plane = f.mul(z, N * N);
                    let row = f.mul(y, N);
                    let pr = f.add(plane, row);
                    let idx = f.add(pr, x);
                    let c = f.load(src, idx);
                    let e = {
                        let i = f.add(idx, 1i64);
                        f.load(src, i)
                    };
                    let w = {
                        let i = f.sub(idx, 1i64);
                        f.load(src, i)
                    };
                    let n_ = {
                        let i = f.add(idx, N);
                        f.load(src, i)
                    };
                    let s = {
                        let i = f.sub(idx, N);
                        f.load(src, i)
                    };
                    let u = {
                        let i = f.add(idx, N * N);
                        f.load(src, i)
                    };
                    let d = {
                        let i = f.sub(idx, N * N);
                        f.load(src, i)
                    };
                    let p = f.load(power as i64, idx);
                    let s1 = f.fadd(e, w);
                    let s2 = f.fadd(n_, s);
                    let s3 = f.fadd(u, d);
                    let s12 = f.fadd(s1, s2);
                    let nb = f.fadd(s12, s3);
                    let c6 = f.fmul(c, 6.0f64);
                    let lap = f.fsub(nb, c6);
                    let dl = f.fmul(lap, 0.05f64);
                    let wp = f.fadd(dl, p);
                    let newt = f.fadd(c, wp);
                    f.store(dst, idx, newt);
                });
            });
        });
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);

    Workload {
        name: "hotspot3D",
        program: pb.finish(),
        description: "time-stepped interior 3-D 7-point stencil with buffer swap \
                      (Polly: BF; paper %Aff 99%)",
        paper: PaperRow {
            pct_aff: 0.99,
            polly_reasons: "BF",
            skew: false,
            pct_parallel: 1.0,
            pct_simd: 0.99,
            ld_src: 4,
            ld_bin: 4,
            tile_d: 3,
            interproc: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn hotspot3d_runs() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        let out = vm.run(&[], &mut NullSink).unwrap();
        assert!(out.dyn_instrs > 5_000);
    }
}
