//! `GemsFDTD` — finite-difference time-domain solver (paper case study II,
//! Table 4).
//!
//! The paper's regions of interest are the five hottest loop nests inside
//! `updateH_homo` / `updateE_homo` (update.F90:106 / update.F90:240): 3-D
//! stencils swept by an outer time loop. Poly-Prof annotates them *fully
//! parallel and tilable*; the suggested transformation is tiling all
//! dimensions (size 32) plus OMP PARALLEL DO on the outermost loop, for a
//! 1.9–2.6× speedup.
//!
//! Here: staggered-grid E/H updates over an N³ grid, T time steps, arrays
//! passed as pointer parameters (Fortran arrays are alias-free, so the
//! static baseline is *expected* to model the kernels when given the same
//! no-alias guarantee — the paper does not list GemsFDTD in Table 5).

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::Operand;

/// Grid edge.
pub const N: i64 = 6;
/// Time steps.
pub const T: i64 = 3;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("gemsfdtd");
    let cells = (N * N * N) as usize;
    let hx = pb.array_f64(&vec![0.0; cells]);
    let hy = pb.array_f64(&vec![0.0; cells]);
    let ex = pb.array_f64(&(0..cells).map(|i| (i % 5) as f64 * 0.2).collect::<Vec<_>>());
    let ey = pb.array_f64(&(0..cells).map(|i| (i % 3) as f64 * 0.3).collect::<Vec<_>>());

    // updateH_homo(hx, hy, ex, ey): H += c·(∂E) — 3-D stencil, all spatial
    // dims parallel.
    let mut uh = pb.func("updateH_homo", 4);
    {
        let (hxp, hyp, exp_, eyp) = (uh.param(0), uh.param(1), uh.param(2), uh.param(3));
        uh.at_line(106);
        uh.for_loop("Li", 0i64, N - 1, 1, |f, i| {
            f.at_line(107);
            f.for_loop("Lj", 0i64, N - 1, 1, |f, j| {
                f.at_line(121);
                f.for_loop("Lk", 0i64, N - 1, 1, |f, k| {
                    let plane = f.mul(i, N * N);
                    let row = f.mul(j, N);
                    let pr = f.add(plane, row);
                    let idx = f.add(pr, k);
                    let idx_k1 = f.add(idx, 1i64);
                    let idx_j1 = f.add(idx, N);
                    let e0 = f.load(exp_, idx);
                    let e1 = f.load(exp_, idx_k1);
                    let de = f.fsub(e1, e0);
                    let h = f.load(hxp, idx);
                    let d = f.fmul(de, 0.5f64);
                    let hn = f.fadd(h, d);
                    f.store(hxp, idx, hn);
                    let f0 = f.load(eyp, idx);
                    let f1 = f.load(eyp, idx_j1);
                    let df = f.fsub(f1, f0);
                    let h2 = f.load(hyp, idx);
                    let d2 = f.fmul(df, 0.5f64);
                    let h2n = f.fadd(h2, d2);
                    f.store(hyp, idx, h2n);
                });
            });
        });
        uh.ret(None);
    }
    let update_h = uh.finish();

    // updateE_homo(ex, ey, hx, hy): E += c·(∂H).
    let mut ue = pb.func("updateE_homo", 4);
    {
        let (exp_, eyp, hxp, hyp) = (ue.param(0), ue.param(1), ue.param(2), ue.param(3));
        ue.at_line(240);
        ue.for_loop("Li", 1i64, N, 1, |f, i| {
            f.at_line(241);
            f.for_loop("Lj", 1i64, N, 1, |f, j| {
                f.at_line(244);
                f.for_loop("Lk", 1i64, N, 1, |f, k| {
                    let plane = f.mul(i, N * N);
                    let row = f.mul(j, N);
                    let pr = f.add(plane, row);
                    let idx = f.add(pr, k);
                    let idx_k1 = f.sub(idx, 1i64);
                    let idx_j1 = f.sub(idx, N);
                    let h0 = f.load(hxp, idx);
                    let h1 = f.load(hxp, idx_k1);
                    let dh = f.fsub(h0, h1);
                    let e = f.load(exp_, idx);
                    let d = f.fmul(dh, 0.5f64);
                    let en = f.fadd(e, d);
                    f.store(exp_, idx, en);
                    let g0 = f.load(hyp, idx);
                    let g1 = f.load(hyp, idx_j1);
                    let dg = f.fsub(g0, g1);
                    let e2 = f.load(eyp, idx);
                    let d2 = f.fmul(dg, 0.5f64);
                    let e2n = f.fadd(e2, d2);
                    f.store(eyp, idx, e2n);
                });
            });
        });
        ue.ret(None);
    }
    let update_e = ue.finish();

    let mut m = pb.func("main", 0);
    m.for_loop("Lt", 0i64, T, 1, |f, _t| {
        f.call_void(
            update_h,
            &[
                Operand::ImmI(hx as i64),
                Operand::ImmI(hy as i64),
                Operand::ImmI(ex as i64),
                Operand::ImmI(ey as i64),
            ],
        );
        f.call_void(
            update_e,
            &[
                Operand::ImmI(ex as i64),
                Operand::ImmI(ey as i64),
                Operand::ImmI(hx as i64),
                Operand::ImmI(hy as i64),
            ],
        );
    });
    m.ret(None);
    let mid = m.finish();
    pb.set_entry(mid);

    Workload {
        name: "gemsfdtd",
        program: pb.finish(),
        description: "FDTD E/H staggered 3-D stencils under a time loop: fully \
                      parallel spatial dims, 3-D tiling + OMP parallel (Table 4)",
        paper: PaperRow {
            pct_aff: 0.95,
            polly_reasons: "A",
            skew: false,
            pct_parallel: 1.0,
            pct_simd: 1.0,
            ld_src: 4,
            ld_bin: 4,
            tile_d: 3,
            interproc: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn stencil_updates_fields() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        vm.run(&[], &mut NullSink).unwrap();
        // hx base is the first array: some interior cell must have moved
        // away from its initial 0.0.
        let mut changed = false;
        for a in 0x1000..0x1000 + (N * N * N) as u64 {
            if vm.mem.read(a).as_f64() != 0.0 {
                changed = true;
                break;
            }
        }
        assert!(changed, "H field must be updated by the stencil");
    }
}
