//! `hotspot` — thermal simulation (Table 5 row 6, hotspot_openmp.cpp:318).
//!
//! Time-stepped 5-point stencil on a 2-D grid whose source hand-linearizes
//! the grid with modulo/boundary arithmetic — the paper reports 0% `%Aff`
//! for exactly this reason, Polly failing with **B** (the boundary clamps
//! are data-dependent min/max conditionals in the source; here modeled as
//! `min`/`max` index clamping, non-affine statically). All spatial ops are
//! nevertheless parallel, which Poly-Prof's dynamic view exposes.

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::IBinOp;

/// Grid edge.
pub const N: i64 = 12;
/// Time steps.
pub const STEPS: i64 = 3;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("hotspot");
    let temp = pb.array_f64(
        &(0..N * N)
            .map(|i| 320.0 + (i % 7) as f64)
            .collect::<Vec<_>>(),
    );
    let power = pb.array_f64(&vec![0.05; (N * N) as usize]);
    let result = pb.alloc((N * N) as u64);

    let mut f = pb.func("main", 0);
    f.at_line(318);
    f.for_loop("Lt", 0i64, STEPS, 1, |f, t| {
        // ping-pong between temp and result based on parity (linearized
        // buffer switch — non-affine base selection for static analysis)
        let parity = f.rem(t, 2i64);
        let src = f.mov(temp as i64);
        let dst = f.mov(result as i64);
        f.if_else(
            parity,
            |f| {
                f.mov_to(src, result as i64);
                f.mov_to(dst, temp as i64);
            },
            |_| {},
        );
        f.for_loop("Lr", 0i64, N, 1, |f, r| {
            f.for_loop("Lc", 0i64, N, 1, |f, c| {
                // clamped neighbors (boundary handling via min/max)
                let rm0 = f.sub(r, 1i64);
                let rm = f.iop(IBinOp::Max, rm0, 0i64);
                let rp0 = f.add(r, 1i64);
                let rp = f.iop(IBinOp::Min, rp0, N - 1);
                let cm0 = f.sub(c, 1i64);
                let cm = f.iop(IBinOp::Max, cm0, 0i64);
                let cp0 = f.add(c, 1i64);
                let cp = f.iop(IBinOp::Min, cp0, N - 1);
                let row = f.mul(r, N);
                let idx = f.add(row, c);
                let i_n = {
                    let rr = f.mul(rm, N);
                    f.add(rr, c)
                };
                let i_s = {
                    let rr = f.mul(rp, N);
                    f.add(rr, c)
                };
                let i_w = f.add(row, cm);
                let i_e = f.add(row, cp);
                let center = f.load(src, idx);
                let tn = f.load(src, i_n);
                let ts = f.load(src, i_s);
                let tw = f.load(src, i_w);
                let te = f.load(src, i_e);
                let p = f.load(power as i64, idx);
                let sum1 = f.fadd(tn, ts);
                let sum2 = f.fadd(tw, te);
                let sum = f.fadd(sum1, sum2);
                let c4 = f.fmul(center, 4.0f64);
                let lap = f.fsub(sum, c4);
                let d = f.fmul(lap, 0.1f64);
                let withp = f.fadd(d, p);
                let newt = f.fadd(center, withp);
                f.store(dst, idx, newt);
            });
        });
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);

    Workload {
        name: "hotspot",
        program: pb.finish(),
        description: "time-stepped 5-point stencil with clamped boundaries and \
                      parity buffer switch (Polly: B; paper %Aff 0%)",
        paper: PaperRow {
            pct_aff: 0.0,
            polly_reasons: "B",
            skew: true,
            pct_parallel: 1.0,
            pct_simd: 1.0,
            ld_src: 4,
            ld_bin: 4,
            tile_d: 2,
            interproc: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn hotspot_diffuses_heat() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        vm.run(&[], &mut NullSink).unwrap();
        // After an odd number of half-steps the freshest data is in
        // `result` (STEPS=3: writes go temp→result, result→temp,
        // temp→result). Check values stay in a physical range.
        let result_base = 0x1000 + 2 * (N * N) as u64;
        let v = vm.mem.read(result_base).as_f64();
        assert!(v > 100.0 && v < 1000.0, "temperature {v} out of range");
    }
}
