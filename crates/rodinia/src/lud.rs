//! `lud` — blocked LU decomposition (Table 5 row 11, lud.c:121).
//!
//! The classic 3-D Gaussian-elimination nest `a[i][j] -= a[i][k]·a[k][j]`
//! with *hand-linearized* indexing through a single flat buffer — the
//! modulo/offset arithmetic of the blocked Rodinia source is why the paper
//! reports only 4% `%Aff` and Polly **BF**. Polly modeled the inner 3-D
//! nest but not the outer block loop; our static baseline sees the same
//! structure.

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;

/// Matrix edge.
pub const N: i64 = 10;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("lud");
    // diagonally dominant matrix to keep the elimination stable
    let a: Vec<f64> = (0..N * N)
        .map(|i| {
            let (r, c) = (i / N, i % N);
            if r == c {
                10.0
            } else {
                ((r * 7 + c * 3) % 5) as f64 * 0.2
            }
        })
        .collect();
    let mat = pb.array_f64(&a);

    let mut f = pb.func("main", 0);
    f.at_line(121);
    f.for_loop("Lk", 0i64, N, 1, |f, k| {
        // scale the pivot column below the diagonal
        let k1 = f.add(k, 1i64);
        f.for_loop("Li", k1, N, 1, |f, i| {
            let ik = {
                let r = f.mul(i, N);
                f.add(r, k)
            };
            let kk = {
                let r = f.mul(k, N);
                f.add(r, k)
            };
            let aik = f.load(mat as i64, ik);
            let akk = f.load(mat as i64, kk);
            let l = f.fdiv(aik, akk);
            f.store(mat as i64, ik, l);
            f.for_loop("Lj", k1, N, 1, |f, j| {
                // the Rodinia source hand-linearizes block offsets with
                // modulo arithmetic — statically non-affine (Polly: F),
                // dynamically semantically the identity at this scale
                let ij = {
                    let r = f.mul(i, N);
                    let lin = f.add(r, j);
                    f.rem(lin, N * N)
                };
                let kj = {
                    let r = f.mul(k, N);
                    f.add(r, j)
                };
                let aij = f.load(mat as i64, ij);
                let akj = f.load(mat as i64, kj);
                let prod = f.fmul(l, akj);
                let upd = f.fsub(aij, prod);
                f.store(mat as i64, ij, upd);
            });
        });
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);

    Workload {
        name: "lud",
        program: pb.finish(),
        description: "in-place LU elimination: triangular 3-D nest, i/j loops \
                      parallel per k step (Polly: BF; paper %Aff 4%)",
        paper: PaperRow {
            pct_aff: 0.04,
            polly_reasons: "BF",
            skew: false,
            pct_parallel: 0.99,
            pct_simd: 0.98,
            ld_src: 5,
            ld_bin: 5,
            tile_d: 3,
            interproc: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn lud_factors_in_place() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        vm.run(&[], &mut NullSink).unwrap();
        // L·U must reproduce the original matrix; spot-check a[1][0]·a[0][1]
        // + a[1][1]-after = a[1][1]-before … simpler: multipliers below the
        // diagonal are small (diagonally dominant).
        let a10 = vm.mem.read(0x1000 + N as u64).as_f64();
        assert!(a10.abs() < 1.0, "multiplier out of range: {a10}");
        // diagonal stays positive
        for d in 0..N as u64 {
            let v = vm.mem.read(0x1000 + d * N as u64 + d).as_f64();
            assert!(v > 0.0, "pivot {d} not positive: {v}");
        }
    }
}
