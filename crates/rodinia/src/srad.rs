//! `srad` v1 and v2 — speckle-reducing anisotropic diffusion (Table 5 rows
//! 17–18, main.c:241 / srad.cpp:114).
//!
//! Both versions: a sweep computing diffusion coefficients from local
//! gradients (with an `exp`/division helper call in v1 — Polly **R**) and a
//! second sweep applying them. The two image sweeps are fully parallel;
//! the paper reports ~99% `%Aff`, 3-D regions (iteration × 2-D image),
//! tiling depth 2. v2 differs by inlining the coefficient computation and
//! using precomputed neighbor index arrays (**F** stays: the Rodinia source
//! indexes via `iN[i]`, `iS[i]` arrays — indirection).

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::Operand;

/// Image edge.
pub const N: i64 = 10;
/// Diffusion iterations.
pub const ITER: i64 = 2;

fn build_common(name: &'static str, v1: bool) -> Workload {
    let mut pb = ProgramBuilder::new(name);
    let img: Vec<f64> = (0..N * N)
        .map(|i| 1.0 + ((i * 31) % 17) as f64 * 0.1)
        .collect();
    let image = pb.array_f64(&img);
    let coeff = pb.alloc((N * N) as u64);
    // v2-style neighbor index arrays (clamped): iN[i] = max(i-1,0) etc.
    let in_idx: Vec<i64> = (0..N).map(|i| (i - 1).max(0)).collect();
    let is_idx: Vec<i64> = (0..N).map(|i| (i + 1).min(N - 1)).collect();
    let i_n = pb.array_i64(&in_idx);
    let i_s = pb.array_i64(&is_idx);

    // v1's helper: c = 1 / (1 + g)
    let mut h = pb.func("diff_coef", 1);
    let g = h.param(0);
    let d = h.fadd(1.0f64, g);
    let c = h.fdiv(1.0f64, d);
    h.ret(Some(c.into()));
    let helper = h.finish();

    let mut f = pb.func("main", 0);
    f.at_line(if v1 { 241 } else { 114 });
    f.for_loop("Liter", 0i64, ITER, 1, |f, _it| {
        // sweep 1: coefficients from gradient magnitude
        f.for_loop("Li", 0i64, N, 1, |f, i| {
            f.for_loop("Lj", 0i64, N, 1, |f, j| {
                let ni = f.load(i_n as i64, i); // indirection via index array
                let si = f.load(i_s as i64, i);
                let row = f.mul(i, N);
                let idx = f.add(row, j);
                let nidx = {
                    let r = f.mul(ni, N);
                    f.add(r, j)
                };
                let sidx = {
                    let r = f.mul(si, N);
                    f.add(r, j)
                };
                let c0 = f.load(image as i64, idx);
                let cn = f.load(image as i64, nidx);
                let cs = f.load(image as i64, sidx);
                let dn = f.fsub(cn, c0);
                let ds = f.fsub(cs, c0);
                let g1 = f.fmul(dn, dn);
                let g2 = f.fmul(ds, ds);
                let g = f.fadd(g1, g2);
                let cv = if v1 {
                    f.call(helper, &[Operand::Reg(g)])
                } else {
                    let d = f.fadd(1.0f64, g);
                    f.fdiv(1.0f64, d)
                };
                f.store(coeff as i64, idx, cv);
            });
        });
        // sweep 2: apply diffusion
        f.for_loop("Li2", 0i64, N, 1, |f, i| {
            f.for_loop("Lj2", 0i64, N, 1, |f, j| {
                let si = f.load(i_s as i64, i);
                let row = f.mul(i, N);
                let idx = f.add(row, j);
                let sidx = {
                    let r = f.mul(si, N);
                    f.add(r, j)
                };
                let c0 = f.load(coeff as i64, idx);
                let cs = f.load(coeff as i64, sidx);
                let v0 = f.load(image as i64, idx);
                let vs = f.load(image as i64, sidx);
                let dvs = f.fsub(vs, v0);
                let cc = f.fadd(c0, cs);
                let flux = f.fmul(cc, dvs);
                let upd = f.fmul(flux, 0.05f64);
                let nv = f.fadd(v0, upd);
                f.store(image as i64, idx, nv);
            });
        });
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);

    Workload {
        name,
        program: pb.finish(),
        description: if v1 {
            "SRAD v1: gradient → coefficient (helper call) → diffusion sweeps \
             with neighbor index arrays (Polly: RF)"
        } else {
            "SRAD v2: inlined coefficients, same index-array indirection \
             (Polly: RF)"
        },
        paper: PaperRow {
            pct_aff: if v1 { 0.99 } else { 0.98 },
            polly_reasons: "RF",
            skew: false,
            pct_parallel: 1.0,
            pct_simd: if v1 { 0.18 } else { 0.14 },
            ld_src: 3,
            ld_bin: 3,
            tile_d: 2,
            interproc: v1,
        },
    }
}

/// SRAD version 1 (with the coefficient helper call).
pub fn build_v1() -> Workload {
    build_common("srad_v1", true)
}

/// SRAD version 2 (inlined coefficients).
pub fn build_v2() -> Workload {
    build_common("srad_v2", false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn diffusion_smooths_image() {
        for w in [build_v1(), build_v2()] {
            assert!(w.program.validate().is_empty(), "{}", w.name);
            let mut vm = Vm::new(&w.program);
            vm.run(&[], &mut NullSink).unwrap();
            // variance must not explode; all pixels finite and positive
            for a in 0x1000..0x1000 + (N * N) as u64 {
                let v = vm.mem.read(a).as_f64();
                assert!(v.is_finite() && v > 0.0, "{}: pixel {v}", w.name);
            }
        }
    }
}
