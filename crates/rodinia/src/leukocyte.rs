//! `leukocyte` — cell detection & tracking (Table 5 row 10,
//! detect_main.c:51).
//!
//! The worst case for static modeling: per-cell GICOV computation calling
//! helpers (sin/cos via call — **R**), early termination (**C**),
//! data-dependent bounds (**B**), matrix accesses through row pointers
//! (**P**, **F**) and aliased parameter arrays (**A**). The paper reports
//! RCBFAP with 39% `%Aff`, still finding 100% parallel ops across cells.

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::{CmpOp, Operand};

/// Candidate cells.
pub const CELLS: i64 = 6;
/// Sample directions per cell.
pub const DIRS: i64 = 8;
/// Points per direction.
pub const PTS: i64 = 5;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("leukocyte");
    // image rows accessed through a row-pointer table (P)
    let mut rows = Vec::new();
    for r in 0..16 {
        let row = pb.array_f64(
            &(0..16)
                .map(|c| ((r * 16 + c) % 13) as f64 * 0.2)
                .collect::<Vec<_>>(),
        );
        rows.push(row as i64);
    }
    let rowtab = pb.array_i64(&rows);
    let out = pb.alloc(CELLS as u64);

    // helper: grad_m(x) — called per sample point (R)
    let mut g = pb.func("grad_m", 1);
    let x = g.param(0);
    let s = g.un(polyir::UnOp::Sin, x);
    let a = g.un(polyir::UnOp::Abs, s);
    g.ret(Some(a.into()));
    let grad = g.finish();

    // gicov(rowtab, out): the detection kernel, arrays via params (A)
    let mut k = pb.func("gicov_kernel", 2);
    {
        let (tab, outp) = (k.param(0), k.param(1));
        k.at_line(51);
        k.for_loop("Lcell", 0i64, CELLS, 1, |f, cell| {
            let best = f.const_f(0.0);
            f.for_loop("Ldir", 0i64, DIRS, 1, |f, d| {
                let acc = f.const_f(0.0);
                f.for_loop("Lpt", 0i64, PTS, 1, |f, t| {
                    // sample coordinates: data-dependent walk
                    let rr = {
                        let a = f.mul(cell, 2i64);
                        let b = f.add(a, d);
                        f.rem(b, 16i64)
                    };
                    let cc = {
                        let a = f.mul(t, 3i64);
                        let b = f.add(a, d);
                        f.rem(b, 16i64)
                    };
                    let rowp = f.load(tab, rr); // row pointer (P)
                    let v = f.load(rowp, cc);
                    let gv = f.call(grad, &[Operand::Reg(v)]);
                    f.fop_to(acc, polyir::FBinOp::Add, acc, gv);
                    // early bail on hopeless direction (C)
                    let hopeless = f.fcmp(CmpOp::Lt, acc, -1.0f64);
                    let bail = f.block("bail");
                    let cont = f.block("cont");
                    f.br(hopeless, bail, cont);
                    f.switch_to(bail);
                    f.ret(None);
                    f.switch_to(cont);
                });
                let better = f.fcmp(CmpOp::Gt, acc, best);
                f.if_else(better, |f| f.mov_to(best, acc), |_| {});
            });
            f.store(outp, cell, best);
        });
        k.ret(None);
    }
    let kern = k.finish();

    let mut m = pb.func("main", 0);
    m.call_void(
        kern,
        &[Operand::ImmI(rowtab as i64), Operand::ImmI(out as i64)],
    );
    m.ret(None);
    let mid = m.finish();
    pb.set_entry(mid);

    Workload {
        name: "leukocyte",
        program: pb.finish(),
        description: "per-cell GICOV with helper calls, early bail, modulo sampling, \
                      row-pointer image (Polly: RCBFAP)",
        paper: PaperRow {
            pct_aff: 0.39,
            polly_reasons: "RCBFAP",
            skew: false,
            pct_parallel: 1.0,
            pct_simd: 0.63,
            ld_src: 4,
            ld_bin: 4,
            tile_d: 3,
            interproc: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn leukocyte_scores_cells() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        vm.run(&[], &mut NullSink).unwrap();
        // out sits after 16 rows of 16 and the 16-entry pointer table
        let out_base = 0x1000 + 16 * 16 + 16;
        let v = vm.mem.read(out_base).as_f64();
        assert!(v >= 0.0, "GICOV score must be non-negative: {v}");
    }
}
