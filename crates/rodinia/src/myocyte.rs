//! `myocyte` — cardiac myocyte ODE integration (Table 5 row 12, main.c:283).
//!
//! Explicit time integration of a small ODE system: a time loop around a
//! per-equation update that branches on equation kind (conditional control
//! — **C**), uses exp/log kernels (**B** non-affine conditions), with state
//! arrays passed by pointer (**A**). Sequential in time, parallel across
//! equations — matching the paper's 47% simd / 100% parallel row.

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::Operand;

/// ODE system size.
pub const EQS: i64 = 16;
/// Time steps.
pub const STEPS: i64 = 20;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("myocyte");
    let y = pb.array_f64(&(0..EQS).map(|i| 0.1 * (i + 1) as f64).collect::<Vec<_>>());
    let dy = pb.alloc(EQS as u64);
    let params = pb.array_f64(&vec![0.01; EQS as usize]);

    // the RHS evaluation for one equation
    let mut r = pb.func("rhs", 3);
    {
        let (yp, pp, i) = (r.param(0), r.param(1), r.param(2));
        let v = r.load(yp, i);
        let p = r.load(pp, i);
        // branch on equation kind: gating vs concentration
        let parity = r.rem(i, 2i64);
        let out = r.const_f(0.0);
        r.if_else(
            parity,
            |f| {
                let nv = f.un(polyir::UnOp::Neg, v);
                let e = f.un(polyir::UnOp::Exp, nv);
                let one_m = f.fsub(1.0f64, e);
                let d = f.fmul(one_m, p);
                f.mov_to(out, d);
            },
            |f| {
                let d = f.fmul(v, p);
                let nd = f.un(polyir::UnOp::Neg, d);
                f.mov_to(out, nd);
            },
        );
        r.ret(Some(out.into()));
    }
    let rhs = r.finish();

    // integrate(y, dy, params): forward Euler
    let mut g = pb.func("integrate", 3);
    {
        let (yp, dyp, pp) = (g.param(0), g.param(1), g.param(2));
        g.at_line(283);
        g.for_loop("Lt", 0i64, STEPS, 1, |f, _t| {
            f.for_loop("Leq", 0i64, EQS, 1, |f, i| {
                let d = f.call(rhs, &[yp.into(), pp.into(), i.into()]);
                f.store(dyp, i, d);
            });
            f.for_loop("Lupd", 0i64, EQS, 1, |f, i| {
                let v = f.load(yp, i);
                let d = f.load(dyp, i);
                let dt = f.fmul(d, 0.05f64);
                let nv = f.fadd(v, dt);
                f.store(yp, i, nv);
            });
        });
        g.ret(None);
    }
    let integrate = g.finish();

    let mut m = pb.func("main", 0);
    m.call_void(
        integrate,
        &[
            Operand::ImmI(y as i64),
            Operand::ImmI(dy as i64),
            Operand::ImmI(params as i64),
        ],
    );
    m.ret(None);
    let mid = m.finish();
    pb.set_entry(mid);

    Workload {
        name: "myocyte",
        program: pb.finish(),
        description: "forward-Euler ODE integration: sequential time loop, parallel \
                      equation loops, kind-branching RHS (Polly: CBA)",
        paper: PaperRow {
            pct_aff: 0.89,
            polly_reasons: "CBA",
            skew: false,
            pct_parallel: 1.0,
            pct_simd: 0.47,
            ld_src: 4,
            ld_bin: 3,
            tile_d: 1,
            interproc: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn state_evolves_bounded() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        vm.run(&[], &mut NullSink).unwrap();
        for i in 0..EQS as u64 {
            let v = vm.mem.read(0x1000 + i).as_f64();
            assert!(v.is_finite() && v.abs() < 100.0, "eq {i} diverged: {v}");
        }
    }
}
