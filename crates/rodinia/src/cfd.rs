//! `cfd` — Euler solver on an unstructured mesh (Table 5 row 4,
//! euler3d_cpu.cpp:480).
//!
//! `compute_flux`: per element, loop over the 4 faces, gather neighbor
//! state through an *index array* (unstructured mesh → indirection, Polly
//! **F**), then per-variable flux updates. The element and variable loops
//! are parallel; the paper reports 98% affine (the gather is a small part)
//! and an unrolled source dimension (`ld-src 5D` vs `ld-bin 4D` — the
//! compiler fully unrolled the variables loop; we mirror that by unrolling
//! the 5-variable update in the "binary").

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;

/// Mesh elements.
pub const NELR: i64 = 48;
/// Faces per element.
pub const NFACES: i64 = 4;
/// Conserved variables (density, 3 momentum, energy).
pub const NVAR: i64 = 5;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("cfd");
    let variables = pb.array_f64(&vec![1.0; (NELR * NVAR) as usize]);
    let fluxes = pb.alloc((NELR * NVAR) as u64);
    // neighbor table: irregular but valid element ids
    let nb: Vec<i64> = (0..NELR * NFACES)
        .map(|i| ((i * 31 + 7) % NELR) * NVAR)
        .collect();
    let neighbors = pb.array_i64(&nb);
    let normals = pb.array_f64(&vec![0.25; (NELR * NFACES) as usize]);

    let mut f = pb.func("compute_flux", 4);
    {
        let (varp, fluxp, nbp, nrmp) = (f.param(0), f.param(1), f.param(2), f.param(3));
        f.at_line(480);
        f.for_loop("Lelem", 0i64, NELR, 1, |f, el| {
            let base = f.mul(el, NVAR);
            // accumulators per variable (unrolled "binary" form)
            let acc: Vec<_> = (0..NVAR).map(|_| f.const_f(0.0)).collect();
            f.for_loop("Lface", 0i64, NFACES, 1, |f, face| {
                let fi = f.mul(el, NFACES);
                let fidx = f.add(fi, face);
                let nb_base = f.load(nbp, fidx); // indirection: neighbor id
                let w = f.load(nrmp, fidx);
                for v in 0..NVAR {
                    let my_idx = f.add(base, v);
                    let their_idx = f.add(nb_base, v);
                    let mine = f.load(varp, my_idx);
                    let theirs = f.load(varp, their_idx);
                    let d = f.fsub(theirs, mine);
                    let contrib = f.fmul(d, w);
                    f.fop_to(
                        acc[v as usize],
                        polyir::FBinOp::Add,
                        acc[v as usize],
                        contrib,
                    );
                }
            });
            for v in 0..NVAR {
                let idx = f.add(base, v);
                f.store(fluxp, idx, acc[v as usize]);
            }
        });
        f.ret(None);
    }
    let flux = f.finish();

    let mut m = pb.func("main", 0);
    // two sweep iterations (RK steps)
    m.for_loop("Lrk", 0i64, 2i64, 1, |f, _| {
        f.call_void(
            flux,
            &[
                polyir::Operand::ImmI(variables as i64),
                polyir::Operand::ImmI(fluxes as i64),
                polyir::Operand::ImmI(neighbors as i64),
                polyir::Operand::ImmI(normals as i64),
            ],
        );
    });
    m.ret(None);
    let mid = m.finish();
    pb.set_entry(mid);

    Workload {
        name: "cfd",
        program: pb.finish(),
        description: "unstructured-mesh flux kernel: parallel element loop, indirect \
                      neighbor gather, unrolled variable dimension (Polly: F)",
        paper: PaperRow {
            pct_aff: 0.98,
            polly_reasons: "F",
            skew: false,
            pct_parallel: 1.0,
            pct_simd: 0.18,
            ld_src: 5,
            ld_bin: 4,
            tile_d: 3,
            interproc: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn cfd_runs_and_writes_fluxes() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        vm.run(&[], &mut NullSink).unwrap();
        // all variables equal ⇒ all fluxes must be 0 — a semantic check of
        // the gather.
        let flux_base = 0x1000 + (NELR * NVAR) as u64;
        for i in 0..(NELR * NVAR) as u64 {
            assert_eq!(vm.mem.read(flux_base + i).as_f64(), 0.0);
        }
    }
}
