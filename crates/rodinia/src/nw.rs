//! `nw` — Needleman-Wunsch sequence alignment (Table 5 row 14,
//! needle.cpp:308).
//!
//! The Rodinia source iterates the DP matrix by *anti-diagonals* (its own
//! hand-made wavefront): for each diagonal, the cells along it update from
//! the north, west and north-west neighbors. In diagonal coordinates the
//! dependence distances are (1,0), (1,−1) and (2,−1) — tiling the nest
//! requires a skew, which is exactly why the paper's Table 5 marks `skew =
//! Y` for nw. Polly fails with **RF** (the max3 helper call + the
//! diagonal-linearized accesses).

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::{IBinOp, Operand};

/// Sequence length (DP matrix is (N+1)²).
pub const N: i64 = 10;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("nw");
    let dim = N + 1;
    // reference similarity matrix and gap penalty
    let sims: Vec<f64> = (0..dim * dim)
        .map(|i| {
            if (i / dim) % 3 == (i % dim) % 3 {
                2.0
            } else {
                -1.0
            }
        })
        .collect();
    let sim = pb.array_f64(&sims);
    // DP score matrix with initialized first row/column
    let mut init = vec![0.0f64; (dim * dim) as usize];
    for i in 0..dim {
        init[(i * dim) as usize] = -(i as f64);
        init[i as usize] = -(i as f64);
    }
    let score = pb.array_f64(&init);

    let mut mx = pb.func("max3", 3);
    {
        let (a, b, c) = (mx.param(0), mx.param(1), mx.param(2));
        let m1 = mx.fop(polyir::FBinOp::Max, a, b);
        let m2 = mx.fop(polyir::FBinOp::Max, m1, c);
        mx.ret(Some(m2.into()));
    }
    let max3 = mx.finish();

    let mut f = pb.func("main", 0);
    f.at_line(308);
    // top-left triangle of anti-diagonals: d = 2..=2N, cells (i, d-i)
    f.for_loop("Ldiag", 2i64, 2 * N + 1, 1, |f, d| {
        // i from max(1, d-N) to min(N, d-1)
        let d_minus_n = f.sub(d, N);
        let lo = f.iop(IBinOp::Max, 1i64, d_minus_n);
        let d_minus_1 = f.sub(d, 1i64);
        let hi = f.iop(IBinOp::Min, N, d_minus_1);
        let hi1 = f.add(hi, 1i64);
        f.for_loop("Lcell", lo, hi1, 1, |f, i| {
            let j = f.sub(d, i);
            let idx = {
                let r = f.mul(i, dim);
                f.add(r, j)
            };
            let nw_ = {
                let x = f.sub(idx, dim);
                f.sub(x, 1i64)
            };
            let north = f.sub(idx, dim);
            let west = f.sub(idx, 1i64);
            let s_nw = f.load(score as i64, nw_);
            let s_n = f.load(score as i64, north);
            let s_w = f.load(score as i64, west);
            let sv = f.load(sim as i64, idx);
            let diag = f.fadd(s_nw, sv);
            let up = f.fsub(s_n, 1.0f64);
            let left = f.fsub(s_w, 1.0f64);
            let best = f.call(
                max3,
                &[Operand::Reg(diag), Operand::Reg(up), Operand::Reg(left)],
            );
            f.store(score as i64, idx, best);
        });
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);

    Workload {
        name: "nw",
        program: pb.finish(),
        description: "Needleman-Wunsch DP swept by anti-diagonals: skewed wavefront \
                      dependences, max3 helper call (Polly: RF; skew = Y)",
        paper: PaperRow {
            pct_aff: 0.99,
            polly_reasons: "RF",
            skew: true,
            pct_parallel: 1.0,
            pct_simd: 0.77,
            ld_src: 4,
            ld_bin: 4,
            tile_d: 2,
            interproc: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn alignment_scores_filled() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        vm.run(&[], &mut NullSink).unwrap();
        let dim = (N + 1) as u64;
        let score_base = 0x1000 + dim * dim;
        // the final cell must have been written (non-zero for this input)
        let last = vm.mem.read(score_base + dim * dim - 1).as_f64();
        assert!(last != 0.0, "DP corner cell untouched");
        // matching diagonal scores dominate: score grows along the diagonal
        let mid = vm
            .mem
            .read(score_base + (dim + 1) * (N as u64 / 2))
            .as_f64();
        assert!(
            mid > -(N as f64),
            "unexpectedly bad mid-diagonal score {mid}"
        );
    }
}
