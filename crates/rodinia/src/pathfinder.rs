//! `pathfinder` — grid shortest path DP (Table 5 row 16, pathfinder.cpp:99).
//!
//! Row-by-row dynamic programming: `dst[j] = wall[t][j] + min(src[j-1],
//! src[j], src[j+1])`. The (1,−1) neighbor distance means tiling the
//! time×column nest needs a *skew* — the paper marks skew = Y and the
//! transformation is the classic trapezoid/diamond tiling of pathfinder.
//! Polly: **B** (boundary clamping conditionals) and **P** (the ping-pong
//! `src`/`dst` row pointers are swapped in the loop, so the base pointer is
//! not loop invariant).

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::IBinOp;

/// Grid columns.
pub const COLS: i64 = 24;
/// Grid rows (time steps).
pub const ROWS: i64 = 8;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("pathfinder");
    let wall: Vec<f64> = (0..ROWS * COLS)
        .map(|i| ((i * 29 + 5) % 10) as f64)
        .collect();
    let wallarr = pb.array_f64(&wall);
    let bufa = pb.array_f64(&wall[..COLS as usize]);
    let bufb = pb.alloc(COLS as u64);

    let mut f = pb.func("main", 0);
    f.at_line(99);
    f.for_loop("Lt", 1i64, ROWS, 1, |f, t| {
        // ping-pong buffers: base pointers swap with parity (P)
        let parity = f.rem(t, 2i64);
        let src = f.mov(bufa as i64);
        let dst = f.mov(bufb as i64);
        f.if_else(
            parity,
            |_| {},
            |f| {
                f.mov_to(src, bufb as i64);
                f.mov_to(dst, bufa as i64);
            },
        );
        f.for_loop("Lc", 0i64, COLS, 1, |f, c| {
            let cm0 = f.sub(c, 1i64);
            let cm = f.iop(IBinOp::Max, cm0, 0i64);
            let cp0 = f.add(c, 1i64);
            let cp = f.iop(IBinOp::Min, cp0, COLS - 1);
            let left = f.load(src, cm);
            let mid = f.load(src, c);
            let right = f.load(src, cp);
            let m1 = f.fop(polyir::FBinOp::Min, left, mid);
            let m = f.fop(polyir::FBinOp::Min, m1, right);
            let widx = {
                let r = f.mul(t, COLS);
                f.add(r, c)
            };
            let wv = f.load(wallarr as i64, widx);
            let total = f.fadd(m, wv);
            f.store(dst, c, total);
        });
    });
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);

    Workload {
        name: "pathfinder",
        program: pb.finish(),
        description: "row DP with 3-neighbor min: (1,±1) distances need skewed \
                      tiling; ping-pong base pointers (Polly: BP; skew = Y)",
        paper: PaperRow {
            pct_aff: 0.67,
            polly_reasons: "BP",
            skew: true,
            pct_parallel: 1.0,
            pct_simd: 0.0,
            ld_src: 2,
            ld_bin: 2,
            tile_d: 2,
            interproc: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn dp_costs_accumulate() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        vm.run(&[], &mut NullSink).unwrap();
        // after ROWS-1 updates, costs are ≥ number of accumulated rows' min
        // and bounded by 10·ROWS
        let bufa_base = 0x1000 + (ROWS * COLS) as u64;
        let v = vm.mem.read(bufa_base).as_f64();
        assert!(v >= 0.0 && v < 10.0 * ROWS as f64, "cost {v} out of range");
    }
}
