//! `bfs` — breadth-first search (Table 5 row 2).
//!
//! Level-synchronous BFS over a CSR graph: an outer `while` over frontier
//! levels, a middle loop over nodes, and an inner loop over each node's
//! edges with *indirect* neighbor accesses. Statically non-affine (Polly:
//! **B** data-dependent bounds, **F** indirection); dynamically Poly-Prof
//! still folds the node loop and finds the per-level parallelism the paper
//! reports (bfs.cpp:137).

use crate::{PaperRow, Workload};
use polyir::build::ProgramBuilder;
use polyir::{CmpOp, IBinOp};

/// Node count.
pub const NODES: i64 = 64;

/// Build the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new("bfs");

    // Ring-with-chords graph in CSR: each node i has edges to (i+1)%n and
    // (i*7+3)%n — connected, irregular enough to defeat affine fitting.
    let n = NODES;
    let mut offsets = Vec::new();
    let mut edges = Vec::new();
    for i in 0..n {
        offsets.push(edges.len() as i64);
        edges.push((i + 1) % n);
        edges.push((i * 7 + 3) % n);
    }
    offsets.push(edges.len() as i64);
    let off = pb.array_i64(&offsets);
    let edg = pb.array_i64(&edges);
    // cost[i] = -1 (unvisited); mask arrays like the Rodinia kernel.
    let mut cost_init = vec![-1i64; n as usize];
    cost_init[0] = 0;
    let cost = pb.array_i64(&cost_init);
    let mut mask_init = vec![0i64; n as usize];
    mask_init[0] = 1;
    let mask = pb.array_i64(&mask_init);
    let updating = pb.array_i64(&vec![0i64; n as usize]);

    let mut f = pb.func("main", 0);
    f.at_line(137);
    let stop = f.const_i(1);
    f.while_loop(
        "levels",
        |f| f.icmp(CmpOp::Ne, stop, 0i64),
        |f| {
            f.mov_to(stop, 0i64);
            // Kernel 1: expand the frontier.
            f.for_loop("Lnodes", 0i64, NODES, 1, |f, tid| {
                let m = f.load(mask as i64, tid);
                f.if_else(
                    m,
                    |f| {
                        f.store(mask as i64, tid, 0i64);
                        let my_cost = f.load(cost as i64, tid);
                        let lo = f.load(off as i64, tid);
                        let tid1 = f.add(tid, 1i64);
                        let hi = f.load(off as i64, tid1);
                        let e = f.mov(lo);
                        f.while_loop(
                            "Ledges",
                            |f| f.icmp(CmpOp::Lt, e, hi),
                            |f| {
                                let nb = f.load(edg as i64, e); // indirection
                                let nc = f.load(cost as i64, nb);
                                let unvisited = f.icmp(CmpOp::Lt, nc, 0i64);
                                f.if_else(
                                    unvisited,
                                    |f| {
                                        let c1 = f.add(my_cost, 1i64);
                                        f.store(cost as i64, nb, c1);
                                        f.store(updating as i64, nb, 1i64);
                                    },
                                    |_| {},
                                );
                                f.iop_to(e, IBinOp::Add, e, 1i64);
                            },
                        );
                    },
                    |_| {},
                );
            });
            // Kernel 2: commit the new frontier.
            f.for_loop("Lcommit", 0i64, NODES, 1, |f, tid| {
                let u = f.load(updating as i64, tid);
                f.if_else(
                    u,
                    |f| {
                        f.store(mask as i64, tid, 1i64);
                        f.store(updating as i64, tid, 0i64);
                        f.mov_to(stop, 1i64);
                    },
                    |_| {},
                );
            });
        },
    );
    f.ret(None);
    let fid = f.finish();
    pb.set_entry(fid);

    Workload {
        name: "bfs",
        program: pb.finish(),
        description: "level-synchronous BFS over CSR: while over levels, node loop, \
                      indirect edge loop (Polly: BF; low %Aff)",
        paper: PaperRow {
            pct_aff: 0.21,
            polly_reasons: "BF",
            skew: false,
            pct_parallel: 1.0,
            pct_simd: 0.01,
            ld_src: 3,
            ld_bin: 3,
            tile_d: 2,
            interproc: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyvm::{NullSink, Vm};

    #[test]
    fn bfs_labels_all_nodes() {
        let w = build();
        assert!(w.program.validate().is_empty());
        let mut vm = Vm::new(&w.program);
        vm.run(&[], &mut NullSink).unwrap();
        // cost array base: after offsets (n+1) and edges (2n).
        let cost_base = 0x1000 + (NODES + 1) as u64 + (2 * NODES) as u64;
        for i in 0..NODES as u64 {
            let c = vm.mem.read(cost_base + i).as_i64();
            assert!(c >= 0, "node {i} unreached");
            assert!(c <= NODES, "cost {c} out of range");
        }
    }
}
