//! Context interning: splitting the dynamic IIV into its non-numeric
//! *context* part and numeric *coordinates* (paper §5, "Folding interface").
//!
//! Folding operates per context, so every dynamic instruction must be mapped
//! to a dense *statement id* keyed by (context path, static instruction).
//! Context paths change only on loop events, so lookups are cached against
//! [`IivTracker::version`]; per-instruction cost is then one `HashMap` probe.

use crate::{CtxElem, IivTracker};
use polyir::InstrRef;
use std::collections::HashMap;

/// Dense id of an interned context path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxPathId(pub u32);

/// Dense id of a *statement*: one static instruction in one context path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

/// Everything known about one statement.
#[derive(Debug, Clone)]
pub struct StmtInfo {
    /// The context path the statement executes under.
    pub path: CtxPathId,
    /// The static instruction.
    pub instr: InstrRef,
    /// Number of IIV dimensions (coordinates) for this statement.
    pub depth: usize,
}

/// Interner for context paths and statements.
#[derive(Debug, Default)]
pub struct ContextInterner {
    paths: Vec<Vec<Vec<CtxElem>>>,
    /// Content hash of a path → candidate ids (collision bucket). Lookups
    /// hash the tracker's dims directly and compare against stored paths, so
    /// re-interning a known path never allocates — the version cache misses
    /// on every in-loop block transition, making this a per-iteration path.
    path_index: HashMap<u64, Vec<CtxPathId>>,
    stmts: Vec<StmtInfo>,
    stmt_map: HashMap<(CtxPathId, InstrRef), StmtId>,
    cache: Option<(u64, CtxPathId)>,
    /// Version-cache hit/miss tally (plain fields — one register increment
    /// per lookup; harvested into the `polytrace` collector at stage end).
    cache_hits: u64,
    cache_misses: u64,
}

impl ContextInterner {
    /// Fresh interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern the tracker's current context path (cached by version).
    pub fn current_path(&mut self, t: &IivTracker) -> CtxPathId {
        if let Some((v, id)) = self.cache {
            if v == t.version() {
                self.cache_hits += 1;
                return id;
            }
        }
        self.cache_misses += 1;
        let h = {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            for d in t.dims() {
                d.ctx.hash(&mut hasher);
            }
            hasher.finish()
        };
        let known = self.path_index.get(&h).and_then(|cands| {
            cands.iter().copied().find(|&id| {
                let p = &self.paths[id.0 as usize];
                p.len() == t.dims().len()
                    && p.iter().zip(t.dims()).all(|(stack, d)| *stack == d.ctx)
            })
        });
        let id = match known {
            Some(id) => id,
            None => {
                let key: Vec<Vec<CtxElem>> = t.dims().iter().map(|d| d.ctx.clone()).collect();
                let id = CtxPathId(self.paths.len() as u32);
                self.paths.push(key);
                self.path_index.entry(h).or_default().push(id);
                id
            }
        };
        self.cache = Some((t.version(), id));
        id
    }

    /// Intern a statement (context path + instruction).
    pub fn stmt(&mut self, path: CtxPathId, instr: InstrRef) -> StmtId {
        match self.stmt_map.get(&(path, instr)) {
            Some(&id) => id,
            None => {
                let id = StmtId(self.stmts.len() as u32);
                let depth = self.paths[path.0 as usize].len();
                self.stmts.push(StmtInfo { path, instr, depth });
                self.stmt_map.insert((path, instr), id);
                id
            }
        }
    }

    /// Statement lookup.
    pub fn stmt_info(&self, s: StmtId) -> &StmtInfo {
        &self.stmts[s.0 as usize]
    }

    /// Context path lookup: one context stack per IIV dimension.
    pub fn path(&self, p: CtxPathId) -> &[Vec<CtxElem>] {
        &self.paths[p.0 as usize]
    }

    /// The flattened context path (all stacks concatenated) — the spine the
    /// schedule tree hangs this statement's subtree on.
    pub fn flat_path(&self, p: CtxPathId) -> Vec<CtxElem> {
        self.paths[p.0 as usize].iter().flatten().copied().collect()
    }

    /// Number of interned statements.
    pub fn n_stmts(&self) -> usize {
        self.stmts.len()
    }

    /// Number of interned context paths.
    pub fn n_paths(&self) -> usize {
        self.paths.len()
    }

    /// Version-cache `(hits, misses)` since construction. Hits + misses
    /// equals total `current_path` lookups — the invariant the metrics
    /// consistency suite checks.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// Iterate all statements.
    pub fn stmts(&self) -> impl Iterator<Item = (StmtId, &StmtInfo)> {
        self.stmts
            .iter()
            .enumerate()
            .map(|(i, s)| (StmtId(i as u32), s))
    }

    /// Rebuild an interner from a serialized statement table (trace replay).
    ///
    /// Path and statement ids are positional, so `paths[i]` answers
    /// `CtxPathId(i)` and `stmts[i]` answers `StmtId(i)` — exactly the ids
    /// baked into a recorded event stream. The lookup indices are
    /// reconstructed with the same per-dimension hashing as
    /// [`current_path`](Self::current_path), so a replayed interner is
    /// indistinguishable from the live one that produced the table.
    pub fn from_parts(paths: Vec<Vec<Vec<CtxElem>>>, stmts: Vec<StmtInfo>) -> Self {
        use std::hash::{Hash, Hasher};
        let mut path_index: HashMap<u64, Vec<CtxPathId>> = HashMap::new();
        for (i, stacks) in paths.iter().enumerate() {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            for stack in stacks {
                stack.hash(&mut hasher);
            }
            path_index
                .entry(hasher.finish())
                .or_default()
                .push(CtxPathId(i as u32));
        }
        let stmt_map = stmts
            .iter()
            .enumerate()
            .map(|(i, s)| ((s.path, s.instr), StmtId(i as u32)))
            .collect();
        Self {
            paths,
            path_index,
            stmts,
            stmt_map,
            cache: None,
            cache_hits: 0,
            cache_misses: 0,
        }
    }
}

// Interned context snapshots cross thread boundaries in the sharded folding
// pipeline: `StmtId`/`CtxPathId` travel inside event chunks, and the shard
// workers finalize against one shared `&ContextInterner`. Everything here is
// owned data (no interior mutability), so these hold automatically — the
// assertions make the guarantee a compile-time contract instead of an
// accident.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ContextInterner>();
    assert_send_sync::<StmtInfo>();
    assert_send_sync::<CtxPathId>();
    assert_send_sync::<StmtId>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use polycfg::{LoopEvent, LoopIdx, LoopRef};
    use polyir::{BlockRef, FuncId, LocalBlockId};

    fn blk(f: u32, b: u32) -> BlockRef {
        BlockRef {
            func: FuncId(f),
            block: LocalBlockId(b),
        }
    }
    fn iref(f: u32, b: u32, i: u32) -> InstrRef {
        InstrRef {
            block: blk(f, b),
            idx: i,
        }
    }

    #[test]
    fn same_context_same_path() {
        let mut t = IivTracker::new(blk(0, 0));
        let mut int = ContextInterner::new();
        let p1 = int.current_path(&t);
        let l = LoopRef::Cfg(FuncId(0), LoopIdx(0));
        t.apply(&LoopEvent::Enter {
            l,
            block: blk(0, 1),
        });
        let p2 = int.current_path(&t);
        assert_ne!(p1, p2);
        // Iterating changes the IV but the ctx.last update is idempotent
        // after N; the path from the same header block stays interned once.
        t.apply(&LoopEvent::Iter {
            l,
            block: blk(0, 1),
        });
        let p3 = int.current_path(&t);
        assert_eq!(p2, p3);
        assert_eq!(int.n_paths(), 2);
    }

    #[test]
    fn statements_deduplicate() {
        let t = IivTracker::new(blk(0, 0));
        let mut int = ContextInterner::new();
        let p = int.current_path(&t);
        let s1 = int.stmt(p, iref(0, 0, 0));
        let s2 = int.stmt(p, iref(0, 0, 0));
        let s3 = int.stmt(p, iref(0, 0, 1));
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(int.n_stmts(), 2);
        assert_eq!(int.stmt_info(s1).depth, 1);
    }

    #[test]
    fn distinct_calling_contexts_distinct_paths() {
        // Same instruction reached through two different call sites must get
        // two different statement ids (the CCT disambiguation property).
        let mut t = IivTracker::new(blk(0, 0));
        let mut int = ContextInterner::new();
        t.apply(&LoopEvent::Call {
            callee: FuncId(2),
            block: blk(2, 0),
        });
        let p_a = int.current_path(&t);
        let s_a = int.stmt(p_a, iref(2, 0, 0));
        t.apply(&LoopEvent::Ret(blk(0, 0)));
        t.apply(&LoopEvent::Block(blk(0, 1)));
        t.apply(&LoopEvent::Call {
            callee: FuncId(2),
            block: blk(2, 0),
        });
        let p_b = int.current_path(&t);
        let s_b = int.stmt(p_b, iref(2, 0, 0));
        assert_ne!(p_a, p_b);
        assert_ne!(s_a, s_b);
    }

    #[test]
    fn flat_path_concatenates_dims() {
        let mut t = IivTracker::new(blk(0, 0));
        let mut int = ContextInterner::new();
        let l = LoopRef::Cfg(FuncId(0), LoopIdx(0));
        t.apply(&LoopEvent::Enter {
            l,
            block: blk(0, 1),
        });
        let p = int.current_path(&t);
        let flat = int.flat_path(p);
        assert_eq!(flat.len(), 2); // [Loop(L), Block(header)]
        assert!(matches!(flat[0], CtxElem::Loop(_)));
        assert!(matches!(flat[1], CtxElem::Block(_)));
    }
}
