//! Classic calling-context tree (Ammons–Ball–Larus), paper Fig. 3h / Fig. 5.
//!
//! Kept for comparison with the dynamic schedule tree: the CCT encodes call
//! contexts but no loops, and — the paper's key criticism — its *paths grow
//! linearly with recursion depth*, which the dynamic IIV avoids by folding
//! recursive components into a single dimension. The tests demonstrate
//! exactly that contrast.

use polyir::{BlockRef, FuncId, InstrRef, Value};
use std::collections::HashMap;

/// One CCT node: a function activated from a particular call site under a
/// particular parent context.
#[derive(Debug, Clone)]
pub struct CctNode {
    /// The function this node represents.
    pub func: FuncId,
    /// The call site (caller block), `None` for the root.
    pub call_site: Option<BlockRef>,
    /// Children in first-call order.
    pub children: Vec<usize>,
    /// Dynamic instructions executed directly in this context.
    pub weight: u64,
    index: HashMap<(BlockRef, FuncId), usize>,
}

/// Calling-context tree builder; implements [`polyvm::EventSink`] so it can
/// be attached directly to an instrumented run.
#[derive(Debug)]
pub struct Cct {
    nodes: Vec<CctNode>,
    stack: Vec<usize>,
}

impl Cct {
    /// Create a CCT rooted at the program entry function.
    pub fn new(root: FuncId) -> Self {
        Cct {
            nodes: vec![CctNode {
                func: root,
                call_site: None,
                children: Vec::new(),
                weight: 0,
                index: HashMap::new(),
            }],
            stack: vec![0],
        }
    }

    /// Node accessor (0 = root).
    pub fn node(&self, i: usize) -> &CctNode {
        &self.nodes[i]
    }

    /// Total number of contexts.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if only the root context exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Maximum context-path length (root = 1).
    pub fn max_depth(&self) -> usize {
        fn depth(c: &Cct, n: usize) -> usize {
            1 + c.nodes[n]
                .children
                .iter()
                .map(|&k| depth(c, k))
                .max()
                .unwrap_or(0)
        }
        depth(self, 0)
    }

    /// Current context depth during construction.
    pub fn current_depth(&self) -> usize {
        self.stack.len()
    }
}

impl polyvm::EventSink for Cct {
    fn call(&mut self, callsite: BlockRef, callee: FuncId, _entry: BlockRef) {
        let cur = *self.stack.last().expect("CCT stack never empty");
        let key = (callsite, callee);
        let child = match self.nodes[cur].index.get(&key) {
            Some(&c) => c,
            None => {
                let c = self.nodes.len();
                self.nodes.push(CctNode {
                    func: callee,
                    call_site: Some(callsite),
                    children: Vec::new(),
                    weight: 0,
                    index: HashMap::new(),
                });
                self.nodes[cur].children.push(c);
                self.nodes[cur].index.insert(key, c);
                c
            }
        };
        self.stack.push(child);
    }

    fn ret(&mut self, _from: FuncId, _to: Option<BlockRef>) {
        if self.stack.len() > 1 {
            self.stack.pop();
        }
    }

    fn exec(&mut self, _instr: InstrRef, _value: Option<Value>) {
        let cur = *self.stack.last().expect("CCT stack never empty");
        self.nodes[cur].weight += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyir::build::ProgramBuilder;
    use polyir::CmpOp;
    use polyvm::Vm;

    #[test]
    fn cct_disambiguates_call_sites() {
        let mut pb = ProgramBuilder::new("t");
        let mut h = pb.func("helper", 0);
        h.const_i(1);
        h.ret(None);
        let h_id = h.finish();
        let mut m = pb.func("main", 0);
        m.call_void(h_id, &[]); // site 1 (entry block)
        let b2 = m.block("second");
        m.jump(b2);
        m.switch_to(b2);
        m.call_void(h_id, &[]); // site 2 (different block)
        m.ret(None);
        let mid = m.finish();
        pb.set_entry(mid);
        let p = pb.finish();
        let mut cct = Cct::new(mid);
        Vm::new(&p).run(&[], &mut cct).unwrap();
        // root + two distinct helper contexts
        assert_eq!(cct.len(), 3);
        assert_eq!(cct.node(0).children.len(), 2);
    }

    /// The paper's complaint: CCT depth grows with recursion depth, while
    /// the dynamic IIV stays at a constant number of dimensions.
    #[test]
    fn cct_depth_grows_with_recursion() {
        for n in [3i64, 6, 9] {
            let mut pb = ProgramBuilder::new("rec");
            let r = pb.declare("r", 1);
            let mut f = pb.func("r", 1);
            let p0 = f.param(0);
            let c = f.icmp(CmpOp::Le, p0, 0i64);
            let done = f.block("done");
            let go = f.block("go");
            f.br(c, done, go);
            f.switch_to(done);
            f.ret(None);
            f.switch_to(go);
            let n1 = f.sub(p0, 1i64);
            f.call_void(r, &[n1.into()]);
            f.jump(done);
            f.finish();
            let mut m = pb.func("main", 0);
            let k = m.const_i(n);
            m.call_void(r, &[k.into()]);
            m.ret(None);
            let mid = m.finish();
            pb.set_entry(mid);
            let p = pb.finish();
            let mut cct = Cct::new(mid);
            Vm::new(&p).run(&[], &mut cct).unwrap();
            // depth = root + n+1 activations of r
            assert_eq!(cct.max_depth() as i64, 1 + n + 1);
        }
    }

    #[test]
    fn repeated_same_site_calls_share_a_node() {
        let mut pb = ProgramBuilder::new("t");
        let mut h = pb.func("helper", 0);
        h.const_i(1);
        h.ret(None);
        let h_id = h.finish();
        let mut m = pb.func("main", 0);
        m.for_loop("L", 0i64, 100i64, 1, |f, _| {
            f.call_void(h_id, &[]);
        });
        m.ret(None);
        let mid = m.finish();
        pb.set_entry(mid);
        let p = pb.finish();
        let mut cct = Cct::new(mid);
        Vm::new(&p).run(&[], &mut cct).unwrap();
        assert_eq!(
            cct.len(),
            2,
            "100 calls from one site fold into one context"
        );
        assert_eq!(
            cct.node(1).weight,
            100,
            "helper executes 1 instr × 100 calls"
        );
    }
}
