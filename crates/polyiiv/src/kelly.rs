//! Kelly's mapping (paper §4, Fig. 4): the static iteration-vector template
//! of a block, read off the decorated loop-nesting forest.
//!
//! For a block `b` nested in loops `L1 ⊃ L2 ⊃ …`, the Kelly vector
//! alternates the *static index* of each enclosing region node with a
//! canonical induction-variable slot, ending with the static index of the
//! block itself: `[idx(L1), i1, idx(L2), i2, …, idx(b)]`. The lexicographic
//! order of instantiated vectors is exactly the original execution order.

use polycfg::{LoopForest, LoopIdx, SchedNodeKey};
use polyir::LocalBlockId;

/// One element of a Kelly vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KellyElem {
    /// A static (scheduling) index among region siblings.
    Static(u32),
    /// The canonical induction variable of a loop.
    Iv(LoopIdx),
}

/// The Kelly vector (static template) of `block` in `forest`.
///
/// Returns `None` if the block was never observed (no static index).
pub fn kelly_vector(forest: &LoopForest, block: LocalBlockId) -> Option<Vec<KellyElem>> {
    // Collect enclosing loops, innermost first, then reverse.
    let mut chain = Vec::new();
    let mut cur = forest.innermost(block);
    while let Some(l) = cur {
        chain.push(l);
        cur = forest.info(l).parent;
    }
    chain.reverse();

    let mut v = Vec::with_capacity(chain.len() * 2 + 1);
    for &l in &chain {
        v.push(KellyElem::Static(
            forest.static_index_of(SchedNodeKey::Loop(l))?,
        ));
        v.push(KellyElem::Iv(l));
    }
    v.push(KellyElem::Static(
        forest.static_index_of(SchedNodeKey::Block(block))?,
    ));
    Some(v)
}

/// Instantiate a Kelly vector with concrete IV values (one per `Iv` slot),
/// producing the numeric iteration vector whose lexicographic order is the
/// execution order.
pub fn instantiate(template: &[KellyElem], ivs: &[i64]) -> Vec<i64> {
    let mut it = ivs.iter();
    template
        .iter()
        .map(|e| match e {
            KellyElem::Static(s) => *s as i64,
            KellyElem::Iv(_) => *it.next().expect("one IV value per Iv slot"),
        })
        .collect()
}

/// Render a Kelly vector like the paper's `[0, i, 0, j, 1]`, with `i`-style
/// names for IV slots.
pub fn display(template: &[KellyElem]) -> String {
    const NAMES: [&str; 6] = ["i", "j", "k", "l", "m", "n"];
    let mut depth = 0usize;
    let parts: Vec<String> = template
        .iter()
        .map(|e| match e {
            KellyElem::Static(s) => s.to_string(),
            KellyElem::Iv(_) => {
                let n = NAMES.get(depth).copied().unwrap_or("x").to_string();
                depth += 1;
                n
            }
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn bb(i: u32) -> LocalBlockId {
        LocalBlockId(i)
    }

    fn forest(blocks: &[u32], edges: &[(u32, u32)], entry: u32) -> LoopForest {
        let bs: BTreeSet<LocalBlockId> = blocks.iter().map(|&b| bb(b)).collect();
        let es: BTreeSet<(LocalBlockId, LocalBlockId)> =
            edges.iter().map(|&(u, v)| (bb(u), bb(v))).collect();
        LoopForest::build(&bs, &es, bb(entry))
    }

    /// Fig. 4 "fused": one 2-D nest holding S and T in the same body block
    /// region; S's block precedes T's block in the inner loop.
    /// CFG: 0 → 1 (Li hdr) → 2 (Lj hdr) → 3 (S) → 4 (T) → 2 (back), 4 → 1
    /// (back), 1 → 5 (exit).
    #[test]
    fn fused_nest_kelly_vectors() {
        let f = forest(
            &[0, 1, 2, 3, 4, 5],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 2), (4, 1), (1, 5)],
            0,
        );
        let ks = kelly_vector(&f, bb(3)).unwrap();
        let kt = kelly_vector(&f, bb(4)).unwrap();
        // Both are [idx(Li), i, idx(Lj), j, idx(block)] — 5 elements.
        assert_eq!(ks.len(), 5);
        assert_eq!(kt.len(), 5);
        // Same loops, S's block index < T's block index.
        assert_eq!(&ks[..4], &kt[..4]);
        let (KellyElem::Static(s_idx), KellyElem::Static(t_idx)) = (ks[4], kt[4]) else {
            panic!("leaf elements must be static indices");
        };
        assert!(s_idx < t_idx, "S scheduled before T in the fused nest");
        // Instantiation order is lexicographic execution order.
        let a = instantiate(&ks, &[0, 1]);
        let b = instantiate(&kt, &[0, 1]);
        let c = instantiate(&ks, &[1, 0]);
        assert!(a < b, "S(0,1) before T(0,1)");
        assert!(b < c, "T(0,1) before S(1,0)");
    }

    /// Fig. 4 "fissioned": two sequential 2-D nests; every instance of the
    /// first nest precedes every instance of the second.
    #[test]
    fn fissioned_nests_order() {
        // nest A: 1(hdr) → 2(hdr') → 3(S) → 2, 3 → 1; nest B: 4 → 5 → 6(T) → 5, 6 → 4
        let f = forest(
            &[0, 1, 2, 3, 4, 5, 6, 7],
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 2),
                (3, 1),
                (1, 4),
                (4, 5),
                (5, 6),
                (6, 5),
                (6, 4),
                (4, 7),
            ],
            0,
        );
        let ks = kelly_vector(&f, bb(3)).unwrap();
        let kt = kelly_vector(&f, bb(6)).unwrap();
        let (KellyElem::Static(la), KellyElem::Static(lb)) = (ks[0], kt[0]) else {
            panic!("outer elements must be static indices");
        };
        assert!(la < lb, "first nest scheduled before the second");
        // Last S instance still precedes first T instance.
        let s_last = instantiate(&ks, &[99, 99]);
        let t_first = instantiate(&kt, &[0, 0]);
        assert!(s_last < t_first);
    }

    #[test]
    fn display_uses_canonical_names() {
        let f = forest(
            &[0, 1, 2, 3, 4, 5],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 2), (4, 1), (1, 5)],
            0,
        );
        let k = kelly_vector(&f, bb(3)).unwrap();
        let d = display(&k);
        assert!(d.contains("i") && d.contains("j"), "{d}");
        assert!(d.starts_with('[') && d.ends_with(']'));
    }

    #[test]
    fn block_outside_loops_is_flat() {
        let f = forest(&[0, 1], &[(0, 1)], 0);
        let k = kelly_vector(&f, bb(1)).unwrap();
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn unknown_block_gives_none() {
        let f = forest(&[0, 1], &[(0, 1)], 0);
        assert!(kelly_vector(&f, bb(9)).is_none());
    }
}
