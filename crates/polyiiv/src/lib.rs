//! # polyiiv — dynamic interprocedural iteration vectors (paper §4)
//!
//! The dynamic IIV unifies Kelly's mapping (intraprocedural schedule trees)
//! with calling-context paths: it alternates *context* entries (a stack of
//! call-sites topped by the current loop/block) with *canonical induction
//! variables* that start at 0 and increment by 1 — including for recursive
//! loops, whose IV advances on both calls *to* and returns *from* component
//! headers so the indexing stays lexicographically increasing (the paper's
//! Fig. 3 Ex. 2, steps 10–21).
//!
//! Modules:
//! * [`IivTracker`] — the online Alg. 3 update driven by `polycfg` loop
//!   events;
//! * [`context`] — interning of (context-path, instruction) pairs into dense
//!   statement ids, splitting the IIV into the non-numeric *context* and the
//!   numeric *coordinates* that feed the folding stage;
//! * [`schedule_tree`] — the dynamic schedule tree and its flame-graph
//!   rendering (paper Figs. 3e/3j, 5, 7);
//! * [`cct`] — a classic calling-context tree for comparison (Fig. 3h);
//! * [`kelly`] — static Kelly mapping / iteration vectors (Fig. 4).

pub mod cct;
pub mod context;
pub mod kelly;
pub mod schedule_tree;

use polycfg::{LoopEvent, LoopRef};
use polyir::BlockRef;

/// One element of a context stack: a call-site/block or a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CtxElem {
    /// A basic block (call site or current block).
    Block(BlockRef),
    /// A loop (CFG loop or recursive component).
    Loop(LoopRef),
}

/// One dimension of a dynamic IIV: a context stack plus a canonical IV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dim {
    /// Canonical induction variable (starts at 0, increments by 1).
    pub iv: i64,
    /// Context stack: call-sites topped by the current loop or block.
    pub ctx: Vec<CtxElem>,
}

/// Online maintainer of the dynamic IIV — Algorithm 3 of the paper.
///
/// `dims` is ordered outermost → innermost; `version` increments whenever
/// the *context* part changes (used by [`context::ContextInterner`] to cache
/// statement-context lookups between context changes).
#[derive(Debug, Clone)]
pub struct IivTracker {
    dims: Vec<Dim>,
    version: u64,
}

impl IivTracker {
    /// Start tracking at the program entry block.
    pub fn new(entry: BlockRef) -> Self {
        IivTracker {
            dims: vec![Dim {
                iv: 0,
                ctx: vec![CtxElem::Block(entry)],
            }],
            version: 0,
        }
    }

    /// Current dimensions, outermost first.
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// Numeric part of the IIV (the coordinates), outermost first.
    pub fn coords(&self) -> Vec<i64> {
        self.dims.iter().map(|d| d.iv).collect()
    }

    /// Fill `out` with the coordinates without allocating.
    pub fn coords_into(&self, out: &mut Vec<i64>) {
        out.clear();
        out.extend(self.dims.iter().map(|d| d.iv));
    }

    /// Monotone counter bumped on every context change.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current loop depth (number of dimensions, including the root).
    pub fn depth(&self) -> usize {
        self.dims.len()
    }

    fn innermost(&mut self) -> &mut Dim {
        self.dims
            .last_mut()
            .expect("IIV always has a root dimension")
    }

    fn set_ctx_last(&mut self, e: CtxElem) {
        let dim = self.innermost();
        if dim.ctx.last() == Some(&e) {
            return; // common idempotent N(B) after E/I/X
        }
        *dim.ctx.last_mut().expect("non-empty context") = e;
        self.version += 1;
    }

    /// Apply one loop event (Alg. 3).
    pub fn apply(&mut self, ev: &LoopEvent) {
        match *ev {
            // C(B): push the callee entry block onto the innermost context.
            LoopEvent::Call { block, .. } => {
                self.innermost().ctx.push(CtxElem::Block(block));
                self.version += 1;
            }
            // Ec(L,B): push the recursive loop, then open a new dimension.
            LoopEvent::EnterRec { l, block } => {
                self.innermost().ctx.push(CtxElem::Loop(l));
                self.dims.push(Dim {
                    iv: 0,
                    ctx: vec![CtxElem::Block(block)],
                });
                self.version += 1;
            }
            // E(L,H): replace the current block with the loop id, then open
            // a new dimension whose context starts at the header.
            LoopEvent::Enter { l, block } => {
                self.set_ctx_last(CtxElem::Loop(l));
                self.dims.push(Dim {
                    iv: 0,
                    ctx: vec![CtxElem::Block(block)],
                });
                self.version += 1;
            }
            // X(L,B): close the dimension; execution continues at B. The
            // matching E replaced the context top in place, so X replaces it
            // back.
            LoopEvent::Exit { block, .. } => {
                self.dims.pop();
                assert!(!self.dims.is_empty(), "exited the root dimension");
                self.version += 1;
                self.set_ctx_last(CtxElem::Block(block));
            }
            // Xr(L,B): the matching Ec *pushed* the loop onto the context
            // (the entering call grew the stack), so Xr pops it — the final
            // return unwinds that call — before restoring the block.
            LoopEvent::ExitRec { block, .. } => {
                self.dims.pop();
                assert!(!self.dims.is_empty(), "exited the root dimension");
                let dim = self.innermost();
                dim.ctx.pop();
                assert!(!dim.ctx.is_empty(), "recursive exit past the root context");
                self.version += 1;
                self.set_ctx_last(CtxElem::Block(block));
            }
            // I/Ic/Ir(L,B): advance the canonical IV.
            LoopEvent::Iter { block, .. }
            | LoopEvent::IterCall { block, .. }
            | LoopEvent::IterRet { block, .. } => {
                self.innermost().iv += 1;
                self.set_ctx_last(CtxElem::Block(block));
            }
            // R(B): pop the call-site, back to the caller block.
            LoopEvent::Ret(block) => {
                let dim = self.innermost();
                dim.ctx.pop();
                assert!(!dim.ctx.is_empty(), "returned past the root context");
                self.version += 1;
                self.set_ctx_last(CtxElem::Block(block));
            }
            // N(B): plain block transition.
            LoopEvent::Block(block) => {
                self.set_ctx_last(CtxElem::Block(block));
            }
        }
    }

    /// Render in the paper's notation, e.g. `(M0/L1, 0, A1/L2, 1, B1)`,
    /// using a caller-provided naming function for context elements.
    pub fn display_with(&self, name: &dyn Fn(&CtxElem) -> String) -> String {
        let mut s = String::from("(");
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
                s.push_str(&d.iv.to_string());
                s.push_str(", ");
            }
            s.push_str(&d.ctx.iter().map(name).collect::<Vec<_>>().join("/"));
        }
        s.push(')');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polycfg::{LoopIdx, RecCompIdx};
    use polyir::{FuncId, LocalBlockId};

    fn blk(f: u32, b: u32) -> BlockRef {
        BlockRef {
            func: FuncId(f),
            block: LocalBlockId(b),
        }
    }
    fn cfg_loop(f: u32, l: u32) -> LoopRef {
        LoopRef::Cfg(FuncId(f), LoopIdx(l))
    }

    fn namer(e: &CtxElem) -> String {
        match e {
            CtxElem::Block(b) => format!("B{}_{}", b.func.0, b.block.0),
            CtxElem::Loop(LoopRef::Cfg(f, l)) => format!("L{}_{}", f.0, l.0),
            CtxElem::Loop(LoopRef::Rec(c)) => format!("R{}", c.0),
        }
    }

    /// Mirrors the paper's Fig. 3d (Ex. 1) shape: main calls A; A's loop L1
    /// calls B; B's loop L2 iterates.
    #[test]
    fn example1_iiv_shapes() {
        let mut t = IivTracker::new(blk(0, 0)); // (M0)
        assert_eq!(t.coords(), vec![0]);

        // C(A0): call into A
        t.apply(&LoopEvent::Call {
            callee: FuncId(1),
            block: blk(1, 0),
        });
        assert_eq!(t.dims()[0].ctx.len(), 2); // M0/A0

        // E(L1, A1): enter A's loop
        t.apply(&LoopEvent::Enter {
            l: cfg_loop(1, 0),
            block: blk(1, 1),
        });
        assert_eq!(t.depth(), 2);
        assert_eq!(t.coords(), vec![0, 0]);

        // C(B0): call into B from inside the loop
        t.apply(&LoopEvent::Call {
            callee: FuncId(2),
            block: blk(2, 0),
        });
        // E(L2, B1): B's loop
        t.apply(&LoopEvent::Enter {
            l: cfg_loop(2, 0),
            block: blk(2, 1),
        });
        assert_eq!(t.depth(), 3);
        assert_eq!(t.coords(), vec![0, 0, 0]);

        // I(L2, B1): iterate inner loop
        t.apply(&LoopEvent::Iter {
            l: cfg_loop(2, 0),
            block: blk(2, 1),
        });
        assert_eq!(t.coords(), vec![0, 0, 1]);

        // X(L2, B3): exit inner loop
        t.apply(&LoopEvent::Exit {
            l: cfg_loop(2, 0),
            block: blk(2, 3),
        });
        assert_eq!(t.depth(), 2);

        // R(A1): return to A
        t.apply(&LoopEvent::Ret(blk(1, 1)));
        // I(L1, A1): outer loop iterates
        t.apply(&LoopEvent::Iter {
            l: cfg_loop(1, 0),
            block: blk(1, 1),
        });
        assert_eq!(t.coords(), vec![0, 1]);
        let s = t.display_with(&namer);
        assert_eq!(s, "(B0_0/L1_0, 1, B1_1)");
    }

    /// Mirrors Fig. 3i (Ex. 2): recursion folds to one dimension whose IV
    /// advances on recursive calls AND returns.
    #[test]
    fn example2_recursion_folds() {
        let rec = LoopRef::Rec(RecCompIdx(0));
        let mut t = IivTracker::new(blk(0, 0)); // (M1)

        // Ec(L1, B0): first call to the component entry
        t.apply(&LoopEvent::EnterRec {
            l: rec,
            block: blk(1, 0),
        });
        assert_eq!(t.depth(), 2);
        assert_eq!(t.coords(), vec![0, 0]);
        // ctx of outer dim = M/L1
        assert_eq!(t.dims()[0].ctx.len(), 2);

        // N(B1), C(C0), R(B2): helper call inside the recursion
        t.apply(&LoopEvent::Block(blk(1, 1)));
        t.apply(&LoopEvent::Call {
            callee: FuncId(2),
            block: blk(2, 0),
        });
        assert_eq!(t.dims()[1].ctx.len(), 2); // B1/C0
        t.apply(&LoopEvent::Ret(blk(1, 2)));
        assert_eq!(t.dims()[1].ctx.len(), 1); // B2

        // Ic(L1, B0): recursive call — same depth, IV advances.
        t.apply(&LoopEvent::IterCall {
            l: rec,
            block: blk(1, 0),
        });
        assert_eq!(t.depth(), 2);
        assert_eq!(t.coords(), vec![0, 1]);

        // Ic again (deeper recursion): IV keeps increasing.
        t.apply(&LoopEvent::IterCall {
            l: rec,
            block: blk(1, 0),
        });
        assert_eq!(t.coords(), vec![0, 2]);

        // Ir on inner returns: IV still increases (paper steps 20–21).
        t.apply(&LoopEvent::IterRet {
            l: rec,
            block: blk(1, 5),
        });
        assert_eq!(t.coords(), vec![0, 3]);
        t.apply(&LoopEvent::IterRet {
            l: rec,
            block: blk(1, 5),
        });
        assert_eq!(t.coords(), vec![0, 4]);

        // Xr: loop exits; back to (M2).
        t.apply(&LoopEvent::ExitRec {
            l: rec,
            block: blk(0, 2),
        });
        assert_eq!(t.depth(), 1);
        assert_eq!(t.coords(), vec![0]);
        assert_eq!(t.display_with(&namer), "(B0_2)");
    }

    #[test]
    fn version_changes_only_on_context_changes() {
        let mut t = IivTracker::new(blk(0, 0));
        let v0 = t.version();
        // Same-block N is idempotent.
        t.apply(&LoopEvent::Block(blk(0, 0)));
        assert_eq!(t.version(), v0);
        t.apply(&LoopEvent::Block(blk(0, 1)));
        assert!(t.version() > v0);
    }

    #[test]
    fn iterate_keeps_depth() {
        let mut t = IivTracker::new(blk(0, 0));
        t.apply(&LoopEvent::Enter {
            l: cfg_loop(0, 0),
            block: blk(0, 1),
        });
        for i in 1..100 {
            t.apply(&LoopEvent::Iter {
                l: cfg_loop(0, 0),
                block: blk(0, 1),
            });
            assert_eq!(t.coords(), vec![0, i]);
        }
        assert_eq!(t.depth(), 2);
    }

    /// Dynamic IIVs are lexicographically non-decreasing along a trace of
    /// the same loop's events (the property the paper needs for folding).
    #[test]
    fn lexicographic_monotonicity_within_loop() {
        let mut t = IivTracker::new(blk(0, 0));
        t.apply(&LoopEvent::Enter {
            l: cfg_loop(0, 0),
            block: blk(0, 1),
        });
        let mut prev = t.coords();
        for _ in 0..10 {
            t.apply(&LoopEvent::Iter {
                l: cfg_loop(0, 0),
                block: blk(0, 1),
            });
            let cur = t.coords();
            assert!(cur > prev, "{cur:?} must be lex-greater than {prev:?}");
            prev = cur;
        }
    }
}
