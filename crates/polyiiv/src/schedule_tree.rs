//! The dynamic schedule tree (paper Figs. 3e/3j and 5) and its flame-graph
//! rendering (Figs. 5b and 7).
//!
//! The schedule tree is to dynamic IIVs what the calling-context tree is to
//! calling-context paths: a compact trie of the observed context paths, with
//! dynamic-operation weights on every node. Poly-Prof exposes it to the user
//! as a flame graph whose box widths are proportional to computation weight,
//! with non-interesting (non-affine / blacklisted) regions grayed out.

use crate::CtxElem;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::Hash;

/// One node of the schedule tree, generic over the label alphabet `L`
/// (context elements by default; the telemetry layer reuses the same trie
/// and renderers with its own stage-node labels).
#[derive(Debug, Clone)]
pub struct SchedTreeNode<L = CtxElem> {
    /// The context element this node represents (`None` only for the root).
    pub label: Option<L>,
    /// Children, in insertion (first-execution) order.
    pub children: Vec<usize>,
    /// Total dynamic weight (operation count) in this subtree.
    pub weight: u64,
    /// Weight attributed directly to this node (leaf statements).
    pub self_weight: u64,
    index: HashMap<L, usize>,
}

/// The dynamic schedule tree.
#[derive(Debug, Clone)]
pub struct SchedTree<L = CtxElem> {
    nodes: Vec<SchedTreeNode<L>>,
}

impl<L: Copy + Eq + Hash> Default for SchedTree<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: Copy + Eq + Hash> SchedTree<L> {
    /// An empty tree with just the root.
    pub fn new() -> Self {
        SchedTree {
            nodes: vec![SchedTreeNode {
                label: None,
                children: Vec::new(),
                weight: 0,
                self_weight: 0,
                index: HashMap::new(),
            }],
        }
    }

    /// Insert (or re-weight) the path `elems`, adding `weight` to every node
    /// along it and to the leaf's self-weight.
    pub fn add_path(&mut self, elems: &[L], weight: u64) {
        let mut cur = 0usize;
        self.nodes[0].weight += weight;
        for &e in elems {
            let next = match self.nodes[cur].index.get(&e) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(SchedTreeNode {
                        label: Some(e),
                        children: Vec::new(),
                        weight: 0,
                        self_weight: 0,
                        index: HashMap::new(),
                    });
                    self.nodes[cur].children.push(n);
                    self.nodes[cur].index.insert(e, n);
                    n
                }
            };
            self.nodes[next].weight += weight;
            cur = next;
        }
        self.nodes[cur].self_weight += weight;
    }

    /// Node accessor (0 = root).
    pub fn node(&self, i: usize) -> &SchedTreeNode<L> {
        &self.nodes[i]
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Maximum depth (root = 0).
    pub fn max_depth(&self) -> usize {
        fn depth<L: Copy + Eq + std::hash::Hash>(t: &SchedTree<L>, n: usize) -> usize {
            1 + t.nodes[n]
                .children
                .iter()
                .map(|&c| depth(t, c))
                .max()
                .unwrap_or(0)
        }
        depth(self, 0) - 1
    }

    /// Render in the standard *folded stacks* format consumed by flame-graph
    /// tooling: one `a;b;c weight` line per node with self-weight.
    pub fn render_folded(&self, name: &dyn Fn(&L) -> String) -> String {
        let mut out = String::new();
        let mut stack: Vec<String> = Vec::new();
        self.fold_rec(0, &mut stack, name, &mut out);
        out
    }

    fn fold_rec(
        &self,
        n: usize,
        stack: &mut Vec<String>,
        name: &dyn Fn(&L) -> String,
        out: &mut String,
    ) {
        let node = &self.nodes[n];
        if let Some(l) = &node.label {
            stack.push(name(l));
        }
        if node.self_weight > 0 && !stack.is_empty() {
            let _ = writeln!(out, "{} {}", stack.join(";"), node.self_weight);
        }
        for &c in &node.children {
            self.fold_rec(c, stack, name, out);
        }
        if node.label.is_some() {
            stack.pop();
        }
    }

    /// Render an SVG flame graph (root at the bottom, leaves on top, width ∝
    /// weight). `name` labels boxes; `color` returns a fill color per
    /// element — the paper grays out non-affine/blacklisted regions.
    pub fn render_svg(
        &self,
        title: &str,
        name: &dyn Fn(&L) -> String,
        color: &dyn Fn(&L) -> String,
    ) -> String {
        const W: f64 = 1200.0;
        const ROW: f64 = 18.0;
        let depth = self.max_depth().max(1);
        let h = (depth as f64 + 2.0) * ROW + 30.0;
        let total = self.nodes[0].weight.max(1) as f64;
        let mut s = String::new();
        let _ = writeln!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{h}" font-family="monospace" font-size="11">"#
        );
        let _ = writeln!(
            s,
            r#"<text x="8" y="16" font-size="14" font-weight="bold">{}</text>"#,
            xml_escape(title)
        );
        // Depth 0 row sits at the bottom.
        self.svg_rec(0, 0.0, W, 0, h - 30.0, ROW, total, name, color, &mut s);
        let _ = writeln!(s, "</svg>");
        s
    }

    #[allow(clippy::too_many_arguments)]
    fn svg_rec(
        &self,
        n: usize,
        x: f64,
        width: f64,
        depth: usize,
        base_y: f64,
        row: f64,
        total: f64,
        name: &dyn Fn(&L) -> String,
        color: &dyn Fn(&L) -> String,
        out: &mut String,
    ) {
        let node = &self.nodes[n];
        let y = base_y - depth as f64 * row;
        if let Some(l) = &node.label {
            let label = name(l);
            let fill = color(l);
            let _ = writeln!(
                out,
                r#"<g><title>{} ({} ops, {:.1}%)</title><rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{}" stroke="white"/>"#,
                xml_escape(&label),
                node.weight,
                100.0 * node.weight as f64 / total,
                x,
                y - row,
                width.max(0.5),
                row,
                fill
            );
            if width > 30.0 {
                let max_chars = (width / 6.5) as usize;
                let mut text = label;
                if text.len() > max_chars {
                    text.truncate(max_chars.saturating_sub(1));
                    text.push('…');
                }
                let _ = writeln!(
                    out,
                    r#"<text x="{:.2}" y="{:.2}">{}</text>"#,
                    x + 2.0,
                    y - 5.0,
                    xml_escape(&text)
                );
            }
            let _ = writeln!(out, "</g>");
        }
        // Lay out children proportionally to weight.
        let mut cx = x;
        let wsum: u64 = node.children.iter().map(|&c| self.nodes[c].weight).sum();
        let wsum = wsum.max(1) as f64;
        for &c in &node.children {
            let cw = width * (self.nodes[c].weight as f64 / wsum.max(node.weight as f64));
            self.svg_rec(
                c,
                cx,
                cw,
                if node.label.is_some() {
                    depth + 1
                } else {
                    depth
                },
                base_y,
                row,
                total,
                name,
                color,
                out,
            );
            cx += cw;
        }
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polycfg::{LoopIdx, LoopRef};
    use polyir::{BlockRef, FuncId};

    fn b(f: u32, blk: u32) -> CtxElem {
        CtxElem::Block(BlockRef::new(FuncId(f), blk))
    }
    fn l(f: u32, i: u32) -> CtxElem {
        CtxElem::Loop(LoopRef::Cfg(FuncId(f), LoopIdx(i)))
    }
    fn namer(e: &CtxElem) -> String {
        match e {
            CtxElem::Block(br) => format!("f{}b{}", br.func.0, br.block.0),
            CtxElem::Loop(LoopRef::Cfg(f, li)) => format!("f{}L{}", f.0, li.0),
            CtxElem::Loop(LoopRef::Rec(c)) => format!("rec{}", c.0),
        }
    }

    #[test]
    fn weights_accumulate_up_the_tree() {
        let mut t = SchedTree::new();
        t.add_path(&[b(0, 0), l(0, 0), b(0, 1)], 10);
        t.add_path(&[b(0, 0), l(0, 0), b(0, 2)], 5);
        t.add_path(&[b(0, 0)], 1);
        assert_eq!(t.node(0).weight, 16);
        // root child = b(0,0)
        let c0 = t.node(0).children[0];
        assert_eq!(t.node(c0).weight, 16);
        assert_eq!(t.node(c0).self_weight, 1);
        assert_eq!(t.max_depth(), 3);
    }

    #[test]
    fn shared_prefixes_merge() {
        let mut t = SchedTree::new();
        t.add_path(&[b(0, 0), b(1, 0)], 1);
        t.add_path(&[b(0, 0), b(2, 0)], 1);
        // root + b(0,0) + two leaves
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn folded_output_format() {
        let mut t = SchedTree::new();
        t.add_path(&[b(0, 0), l(0, 0), b(0, 1)], 42);
        let folded = t.render_folded(&namer);
        assert!(folded.contains("f0b0;f0L0;f0b1 42"), "{folded}");
    }

    #[test]
    fn svg_contains_boxes_and_title() {
        let mut t = SchedTree::new();
        t.add_path(&[b(0, 0), l(0, 0), b(0, 1)], 100);
        t.add_path(&[b(0, 0), b(0, 3)], 25);
        let svg = t.render_svg("backprop", &namer, &|_| "#e66".into());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("backprop"));
        assert!(svg.matches("<rect").count() >= 4);
        assert!(svg.contains("100 ops"));
    }

    #[test]
    fn empty_tree_is_fine() {
        let t = SchedTree::new();
        assert!(t.is_empty());
        assert_eq!(t.max_depth(), 0);
        let svg = t.render_svg("empty", &namer, &|_| "#ccc".into());
        assert!(svg.contains("</svg>"));
    }
}
