//! Static affine pre-pass over `polyir` (hybrid static/dynamic profiling).
//!
//! The folding stage classifies SCEV statements *after* paying full dynamic
//! cost; most of that structure is statically decidable. This module proves,
//! per instruction, membership in one of three categories that the dynamic
//! classifier in `polyfold::FoldingSink::finalize` is guaranteed to mark
//! `is_scev`:
//!
//! 1. **Compares** (`ICmp`/`FCmp`) — unconditionally SCEV dynamically (loop
//!    control overhead; the folded domain already carries their payload).
//! 2. **Self-increments** — `r = r ± const` recurrences, unconditionally
//!    SCEV dynamically (induction bookkeeping).
//! 3. **Affine values in canonical counted loops** — `Const`/`Move`/`IOp`
//!    instructions in a *runs-once* function whose produced value is a
//!    static affine form over the induction variables of its enclosing
//!    loops, when every enclosing loop is [`CountedLoop`]-canonical and the
//!    block has no execution holes (it dominates every back-edge source of
//!    every enclosing loop). These fold to exact domains with affine labels.
//!
//! The union feeds a [`PruneMask`]: the profilers skip register-dependence
//! tracking for masked instructions, and the folded DDG after
//! `remove_scevs()` is byte-identical with pruning on or off (the skipped
//! deps are exactly the ones SCEV removal retires). The same summary powers
//! the post-fold DDG lint (`crate::lint`), which checks the dynamic run
//! against every static claim made here.
//!
//! The analysis is deliberately conservative: every rule below errs toward
//! *not* proving. A statically-missed SCEV costs dynamic work (the status
//! quo); a wrongly-proven one would corrupt the folded DDG.

use crate::{classify_registers, eval_instr, eval_operand, Base, Sym};
use polycfg::loop_forest::{LoopForest, LoopIdx};
use polyddg::prune::PruneMask;
use polyir::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Immediate-dominator tree of one function's static CFG
/// (Cooper–Harvey–Kennedy over a reverse-postorder numbering).
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]`: immediate dominator; the entry points at itself;
    /// `None` for blocks unreachable from entry.
    idom: Vec<Option<u32>>,
    /// Reverse-postorder position per block (`u32::MAX` if unreachable).
    rpo_pos: Vec<u32>,
}

impl DomTree {
    /// Build the dominator tree for `f`.
    pub fn build(f: &Function) -> DomTree {
        let n = f.blocks.len();
        let entry = f.entry().0 as usize;
        // Iterative DFS postorder, reversed.
        let mut post: Vec<usize> = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        // Stack of (block, next successor index).
        let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
        seen[entry] = true;
        let succs: Vec<Vec<usize>> = f
            .blocks
            .iter()
            .map(|b| b.term.successors().iter().map(|s| s.0 as usize).collect())
            .collect();
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b].len() {
                let s = succs[b][*i];
                *i += 1;
                if !seen[s] {
                    seen[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<usize> = post.into_iter().rev().collect();
        let mut rpo_pos = vec![u32::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b] = i as u32;
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (b, ss) in succs.iter().enumerate() {
            if rpo_pos[b] == u32::MAX {
                continue;
            }
            for &s in ss {
                preds[s].push(b);
            }
        }
        let mut idom: Vec<Option<u32>> = vec![None; n];
        idom[entry] = Some(entry as u32);
        let intersect = |idom: &[Option<u32>], rpo_pos: &[u32], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_pos[a] > rpo_pos[b] {
                    a = idom[a].expect("processed") as usize;
                }
                while rpo_pos[b] > rpo_pos[a] {
                    b = idom[b].expect("processed") as usize;
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &preds[b] {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b] != Some(ni as u32) {
                        idom[b] = Some(ni as u32);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, rpo_pos }
    }

    /// Does `a` dominate `b`? Unreachable blocks dominate nothing and are
    /// dominated by nothing.
    pub fn dominates(&self, a: LocalBlockId, b: LocalBlockId) -> bool {
        let (a, mut cur) = (a.0 as usize, b.0 as usize);
        if self.rpo_pos[a] == u32::MAX || self.rpo_pos[cur] == u32::MAX {
            return false;
        }
        // idom chains walk strictly upward in RPO position.
        while self.rpo_pos[cur] > self.rpo_pos[a] {
            cur = self.idom[cur].expect("reachable") as usize;
        }
        cur == a
    }

    /// Is the block reachable from the function entry?
    pub fn reachable(&self, b: LocalBlockId) -> bool {
        self.rpo_pos[b.0 as usize] != u32::MAX
    }
}

/// SSA-lite reaching definitions: the def sites of every register. A
/// register with a *unique* def whose site dominates a use definitely
/// reaches it — the discipline the affine rules below build on.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// Def sites per register: `(block, instruction index)`.
    pub sites: Vec<Vec<(LocalBlockId, usize)>>,
}

impl ReachingDefs {
    /// Collect def sites for every register of `f`.
    pub fn build(f: &Function) -> ReachingDefs {
        let mut sites = vec![Vec::new(); f.n_regs as usize];
        for (bi, b) in f.blocks.iter().enumerate() {
            for (ii, ins) in b.instrs.iter().enumerate() {
                if let Some(d) = ins.def() {
                    sites[d.0 as usize].push((LocalBlockId(bi as u32), ii));
                }
            }
        }
        ReachingDefs { sites }
    }

    /// The unique def site of `r`, if it has exactly one.
    pub fn unique(&self, r: Reg) -> Option<(LocalBlockId, usize)> {
        match self.sites[r.0 as usize].as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }
}

/// Why an instruction is statically proven SCEV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScevKind {
    /// Integer or float compare (category 1).
    Cmp,
    /// `r = r ± const` recurrence (category 2).
    SelfIncrement,
    /// Affine value in a canonical counted nest (category 3).
    Affine,
}

/// A canonical counted loop: unique induction variable with a constant
/// step, header-only exit testing the IV against an invariant bound, init
/// and bound static constants (directly or via a `runs_once`-constant
/// parameter chain). The only loop shape category 3 trusts.
#[derive(Debug, Clone)]
pub struct CountedLoop {
    /// The loop in the static forest.
    pub idx: LoopIdx,
    /// Header block.
    pub header: LocalBlockId,
    /// The induction variable register.
    pub iv: Reg,
    /// Constant step per iteration.
    pub step: i64,
    /// Every value the IV can ever hold — including the final out-of-range
    /// value observable after exit — when init and bound are numeric
    /// constants. Drives the base-pointer interval partition.
    pub range: Option<(i64, i64)>,
}

/// A same-block `store → load` pair through syntactically identical
/// base/offset operands with no intervening redefinition, store, or call:
/// whenever the block executes, the load *must* incur a flow dependence
/// from the store. The DDG lint checks each pair against the folded graph.
#[derive(Debug, Clone, Copy)]
pub struct MustFlow {
    /// The producing store.
    pub store: InstrRef,
    /// The consuming load.
    pub load: InstrRef,
}

/// Per-function results of the pre-pass.
#[derive(Debug)]
pub struct FuncDataflow {
    /// Dominator tree of the static CFG.
    pub dom: DomTree,
    /// Static loop forest (full CFG, not just executed edges).
    pub forest: LoopForest,
    /// Canonical counted loops, keyed by header block.
    pub counted: BTreeMap<LocalBlockId, CountedLoop>,
    /// Does this function execute at most once per program run?
    pub runs_once: bool,
    /// Statically-proven SCEV instructions with their proof category.
    pub scev: BTreeMap<InstrRef, ScevKind>,
}

/// Whole-program static summary: SCEV proofs (and the prune mask they
/// justify), must-exist flow dependences, and the base-pointer partition.
#[derive(Debug)]
pub struct StaticSummary {
    /// Per-function analyses, indexed by `FuncId`.
    pub funcs: Vec<FuncDataflow>,
    /// Same-block store→load pairs that must fold to flow dependences.
    pub must_flow: Vec<MustFlow>,
    /// Base-pointer partition id per access site. Sites absent from the map
    /// have statically-unknown address ranges (⊤) and are never claimed
    /// disjoint from anything.
    pub partitions: BTreeMap<InstrRef, u32>,
    /// Number of distinct partitions.
    pub n_partitions: u32,
    mask: Arc<PruneMask>,
}

impl StaticSummary {
    /// Run the pre-pass over a whole program.
    pub fn analyze(prog: &Program) -> StaticSummary {
        let forests: Vec<LoopForest> = prog.funcs.iter().map(LoopForest::from_function).collect();
        let runs_once = compute_runs_once(prog, &forests);
        let mut funcs = Vec::with_capacity(prog.funcs.len());
        let mut must_flow = Vec::new();
        let mut intervals: Vec<(InstrRef, i64, i64)> = Vec::new();
        for (fi, f) in prog.funcs.iter().enumerate() {
            let fid = FuncId(fi as u32);
            let forest = forests[fi].clone();
            let dom = DomTree::build(f);
            let defs = ReachingDefs::build(f);
            let sym = classify_registers(f, &forest);
            let counted = find_counted_loops(f, &forest, &dom, &defs, &sym);
            let scev = prove_scevs(f, fid, &forest, &dom, &counted, &sym, runs_once[fi]);
            collect_must_flow(f, fid, &mut must_flow);
            collect_access_intervals(f, fid, &counted, &sym, &mut intervals);
            funcs.push(FuncDataflow {
                dom,
                forest,
                counted,
                runs_once: runs_once[fi],
                scev,
            });
        }
        let (partitions, n_partitions) = partition_intervals(intervals);
        let mask = Arc::new(PruneMask::from_fn(prog, |i| {
            funcs[i.block.func.0 as usize].scev.contains_key(&i)
        }));
        StaticSummary {
            funcs,
            must_flow,
            partitions,
            n_partitions,
            mask,
        }
    }

    /// The instrumentation prune mask (shared; cheap to clone).
    pub fn prune_mask(&self) -> Arc<PruneMask> {
        Arc::clone(&self.mask)
    }

    /// Number of instructions statically proven SCEV.
    pub fn n_scev(&self) -> usize {
        self.mask.marked()
    }

    /// Is this instruction statically proven SCEV?
    pub fn is_proven_scev(&self, i: InstrRef) -> bool {
        self.mask.contains(i)
    }

    /// The proof category for an instruction, if proven.
    pub fn scev_kind(&self, i: InstrRef) -> Option<ScevKind> {
        self.funcs[i.block.func.0 as usize].scev.get(&i).copied()
    }
}

/// Which functions execute at most once per program run: the entry (when
/// nothing calls it), and functions with exactly one static call site that
/// sits outside every loop of a runs-once caller.
fn compute_runs_once(prog: &Program, forests: &[LoopForest]) -> Vec<bool> {
    let n = prog.funcs.len();
    let mut sites: Vec<Vec<(usize, LocalBlockId)>> = vec![Vec::new(); n];
    for (fi, f) in prog.funcs.iter().enumerate() {
        for (bi, b) in f.blocks.iter().enumerate() {
            for ins in &b.instrs {
                if let Instr::Call { func, .. } = ins {
                    sites[func.0 as usize].push((fi, LocalBlockId(bi as u32)));
                }
            }
        }
    }
    let entry = prog.entry.map(|f| f.0 as usize);
    // Memoized DFS along the unique-caller chain; cycles (recursion) fail.
    let mut memo: Vec<Option<bool>> = vec![None; n];
    let mut visiting = vec![false; n];
    fn go(
        fi: usize,
        entry: Option<usize>,
        sites: &[Vec<(usize, LocalBlockId)>],
        forests: &[LoopForest],
        memo: &mut [Option<bool>],
        visiting: &mut [bool],
    ) -> bool {
        if let Some(v) = memo[fi] {
            return v;
        }
        if visiting[fi] {
            return false; // recursion
        }
        visiting[fi] = true;
        let v = if Some(fi) == entry {
            // The entry runs once as the entry; any call site could run it
            // again.
            sites[fi].is_empty()
        } else {
            match sites[fi].as_slice() {
                [] => true, // never called: zero runs
                [(caller, block)] => {
                    forests[*caller].innermost(*block).is_none()
                        && go(*caller, entry, sites, forests, memo, visiting)
                }
                _ => false,
            }
        };
        visiting[fi] = false;
        memo[fi] = Some(v);
        v
    }
    (0..n)
        .map(|fi| go(fi, entry, &sites, forests, &mut memo, &mut visiting))
        .collect()
}

/// The chain of loops enclosing `b`, innermost first.
fn loop_chain(forest: &LoopForest, b: LocalBlockId) -> Vec<LoopIdx> {
    let mut chain = Vec::new();
    let mut cur = forest.innermost(b);
    while let Some(l) = cur {
        chain.push(l);
        cur = forest.info(l).parent;
    }
    chain
}

/// Does `b` dominate every back-edge source of every loop in `chain`?
/// (The "no execution holes" condition: each completed iteration of each
/// enclosing loop passed through `b`.)
fn dominates_all_latches(
    dom: &DomTree,
    forest: &LoopForest,
    chain: &[LoopIdx],
    b: LocalBlockId,
) -> bool {
    chain.iter().all(|&l| {
        forest
            .info(l)
            .back_edges
            .iter()
            .all(|&(src, _)| dom.dominates(b, src))
    })
}

/// Recognize canonical counted loops (see [`CountedLoop`]).
fn find_counted_loops(
    f: &Function,
    forest: &LoopForest,
    dom: &DomTree,
    defs: &ReachingDefs,
    sym: &[Sym],
) -> BTreeMap<LocalBlockId, CountedLoop> {
    let mut counted = BTreeMap::new();
    for (li, l) in forest.loops.iter().enumerate() {
        let idx = LoopIdx(li as u32);
        let header = l.header;
        // Header-only exit: every non-header block stays inside the loop and
        // cannot leave the program (no Ret/Unreachable).
        let header_only_exits = l.blocks.iter().all(|&bid| {
            let term = &f.block(bid).term;
            if bid == header {
                matches!(term, Terminator::Br { .. })
            } else {
                match term {
                    Terminator::Jump(t) => l.blocks.contains(t),
                    Terminator::Br { then_, else_, .. } => {
                        l.blocks.contains(then_) && l.blocks.contains(else_)
                    }
                    Terminator::Ret(_) | Terminator::Unreachable => false,
                }
            }
        });
        if !header_only_exits {
            continue;
        }
        let Terminator::Br { cond, then_, else_ } = &f.block(header).term else {
            continue;
        };
        // Canonical polarity: true enters the body, false exits.
        if !l.blocks.contains(then_) || l.blocks.contains(else_) {
            continue;
        }
        let Operand::Reg(c) = cond else { continue };
        let Some((cb, ci)) = defs.unique(*c) else {
            continue;
        };
        if cb != header {
            continue;
        }
        let Instr::ICmp { op, a, b, .. } = &f.block(cb).instrs[ci] else {
            continue;
        };
        // One side is exactly an IV of this loop; the other is the bound.
        let is_loop_iv = |o: &Operand| match o {
            Operand::Reg(r) => matches!(&sym[r.0 as usize], Sym::Linear(m, 0)
                    if m.len() == 1 && m.get(&Base::Iv(header)) == Some(&1))
            .then_some(*r),
            _ => None,
        };
        let (iv, bound_op, iv_on_left) = match (is_loop_iv(a), is_loop_iv(b)) {
            (Some(r), None) => (r, b, true),
            (None, Some(r)) => (r, a, false),
            _ => continue,
        };
        // IV shape: exactly one self-increment (constant step, executing
        // exactly once per iteration) plus one init def whose value is fresh
        // on every entry to the loop.
        let iv_defs = &defs.sites[iv.0 as usize];
        let mut step: Option<(i64, LocalBlockId)> = None;
        let mut init: Option<(LocalBlockId, usize)> = None;
        let mut bad = false;
        for &(db, di) in iv_defs {
            let ins = &f.block(db).instrs[di];
            match ins {
                // Monotone increment: `iv = iv + imm` (either operand order)
                // or `iv = iv - imm` (iv on the left only — `imm - iv`
                // oscillates and is no induction).
                Instr::IOp {
                    dst,
                    op: op @ (IBinOp::Add | IBinOp::Sub),
                    a,
                    b,
                } if *dst == iv => {
                    let s = match (op, a, b) {
                        (IBinOp::Add, Operand::Reg(r), Operand::ImmI(v))
                        | (IBinOp::Add, Operand::ImmI(v), Operand::Reg(r))
                            if *r == iv =>
                        {
                            Some(*v)
                        }
                        (IBinOp::Sub, Operand::Reg(r), Operand::ImmI(v)) if *r == iv => Some(-*v),
                        _ => None,
                    };
                    match s {
                        Some(s) => {
                            if step.is_some() {
                                bad = true; // more than one increment site
                            }
                            step = Some((s, db));
                        }
                        None => bad = true,
                    }
                }
                Instr::Const { .. } | Instr::Move { .. } if init.is_none() => {
                    init = Some((db, di));
                }
                _ => bad = true,
            }
        }
        let (Some((step, step_block)), Some((init_block, init_idx))) = (step, init) else {
            continue;
        };
        if bad || step == 0 {
            continue;
        }
        // The increment belongs to this loop and runs exactly once per
        // iteration.
        if forest.innermost(step_block) != Some(idx)
            || !l
                .back_edges
                .iter()
                .all(|&(src, _)| dom.dominates(step_block, src))
        {
            continue;
        }
        // Step direction must agree with the exit test.
        let dir_ok = if iv_on_left {
            (step > 0 && matches!(op, CmpOp::Lt | CmpOp::Le))
                || (step < 0 && matches!(op, CmpOp::Gt | CmpOp::Ge))
        } else {
            (step > 0 && matches!(op, CmpOp::Gt | CmpOp::Ge))
                || (step < 0 && matches!(op, CmpOp::Lt | CmpOp::Le))
        };
        if !dir_ok {
            continue;
        }
        // Init freshness: the init def must dominate the header, sit outside
        // this loop in exactly the parent chain, and execute on every
        // enclosing iteration (no holes) — otherwise re-entry would start
        // the IV from its stale final value.
        let parent_chain: Vec<LoopIdx> = loop_chain(forest, header)
            .into_iter()
            .filter(|&x| x != idx)
            .collect();
        if !dom.dominates(init_block, header) {
            continue;
        }
        if loop_chain(forest, init_block) != parent_chain {
            continue;
        }
        if !dominates_all_latches(dom, forest, &parent_chain, init_block) {
            continue;
        }
        let init_sym = eval_instr(&f.block(init_block).instrs[init_idx], sym);
        if !matches!(init_sym, Sym::Const(_)) {
            continue;
        }
        // Bound invariance: an immediate, or a register with a unique
        // constant-valued def dominating the header.
        let bound_sym = match bound_op {
            Operand::ImmI(v) => Sym::Const(*v),
            Operand::Reg(rb) => {
                let Some((bb, _)) = defs.unique(*rb) else {
                    continue;
                };
                if !dom.dominates(bb, header) {
                    continue;
                }
                match &sym[rb.0 as usize] {
                    Sym::Const(v) => Sym::Const(*v),
                    _ => continue,
                }
            }
            Operand::ImmF(_) => continue,
        };
        // Widened IV value interval: all in-loop values plus the final
        // overshoot observable after exit.
        let range = match (&init_sym, &bound_sym) {
            (Sym::Const(i0), Sym::Const(bv)) => {
                let slack = match op {
                    CmpOp::Lt | CmpOp::Gt => step.abs() - 1,
                    CmpOp::Le | CmpOp::Ge => step.abs(),
                    _ => unreachable!("dir_ok filtered"),
                };
                if step > 0 {
                    Some((*i0, (*bv + slack).max(*i0)))
                } else {
                    Some(((*bv - slack).min(*i0), *i0))
                }
            }
            _ => None,
        };
        counted.insert(
            header,
            CountedLoop {
                idx,
                header,
                iv,
                step,
                range,
            },
        );
    }
    counted
}

/// Category-3 value check: the produced value is affine over the IVs of the
/// (all-counted) enclosing chain, plus constants.
fn affine_over_chain(v: &Sym, chain_headers: &BTreeSet<LocalBlockId>) -> bool {
    match v {
        Sym::Const(_) => true,
        Sym::Linear(m, _) => m.keys().all(|b| match b {
            Base::Iv(h) => chain_headers.contains(h),
            Base::Param(_) => false,
        }),
        _ => false,
    }
}

/// Prove SCEV membership per instruction (the three categories).
fn prove_scevs(
    f: &Function,
    fid: FuncId,
    forest: &LoopForest,
    dom: &DomTree,
    counted: &BTreeMap<LocalBlockId, CountedLoop>,
    sym: &[Sym],
    runs_once: bool,
) -> BTreeMap<InstrRef, ScevKind> {
    let mut out = BTreeMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        let bid = LocalBlockId(bi as u32);
        let chain = loop_chain(forest, bid);
        // Category-3 preconditions shared by all instructions of the block.
        let block_exact = runs_once
            && dom.reachable(bid)
            && chain
                .iter()
                .all(|&l| counted.contains_key(&forest.info(l).header))
            && dominates_all_latches(dom, forest, &chain, bid);
        let chain_headers: BTreeSet<LocalBlockId> =
            chain.iter().map(|&l| forest.info(l).header).collect();
        for (ii, ins) in b.instrs.iter().enumerate() {
            let iref = InstrRef {
                block: BlockRef::new(fid, bid.0),
                idx: ii as u32,
            };
            // Category 1: compares (mirrors `is_cmp` in the folder).
            if matches!(ins, Instr::ICmp { .. } | Instr::FCmp { .. }) {
                out.insert(iref, ScevKind::Cmp);
                continue;
            }
            // Category 2: self-increments (mirrors `is_self_increment`).
            let self_inc = matches!(
                ins,
                Instr::IOp {
                    dst,
                    op: IBinOp::Add | IBinOp::Sub,
                    a,
                    b,
                } if (*a == Operand::Reg(*dst) && matches!(b, Operand::ImmI(_)))
                    || (*b == Operand::Reg(*dst) && matches!(a, Operand::ImmI(_)))
            );
            if self_inc {
                out.insert(iref, ScevKind::SelfIncrement);
                continue;
            }
            // Category 3: affine integer value, exact domain.
            if !block_exact {
                continue;
            }
            let value = match ins {
                Instr::Const {
                    value: Value::I64(_),
                    ..
                } => eval_instr(ins, sym),
                Instr::Move { src, .. } => eval_operand(src, sym),
                Instr::IOp { .. } => eval_instr(ins, sym),
                _ => continue,
            };
            if affine_over_chain(&value, &chain_headers) {
                out.insert(iref, ScevKind::Affine);
            }
        }
    }
    out
}

/// Same-block must-flow pairs: track the latest store with a statically
/// identifiable address key (its syntactic base/offset operands); a later
/// load through the *same operands* with no intervening store, call, or
/// redefinition of the operand registers must read the stored value.
fn collect_must_flow(f: &Function, fid: FuncId, out: &mut Vec<MustFlow>) {
    for (bi, b) in f.blocks.iter().enumerate() {
        let mut last: Option<(Operand, Operand, usize)> = None;
        for (ii, ins) in b.instrs.iter().enumerate() {
            match ins {
                Instr::Store { base, offset, .. } => {
                    last = Some((*base, *offset, ii));
                }
                Instr::Call { .. } => last = None,
                Instr::Load { base, offset, .. } => {
                    if let Some((b0, o0, si)) = &last {
                        if b0 == base && o0 == offset {
                            out.push(MustFlow {
                                store: InstrRef {
                                    block: BlockRef::new(fid, bi as u32),
                                    idx: *si as u32,
                                },
                                load: InstrRef {
                                    block: BlockRef::new(fid, bi as u32),
                                    idx: ii as u32,
                                },
                            });
                        }
                    }
                }
                _ => {}
            }
            if let (Some(d), Some((b0, o0, _))) = (ins.def(), &last) {
                let touches = |o: &Operand| matches!(o, Operand::Reg(r) if *r == d);
                if touches(b0) || touches(o0) {
                    last = None;
                }
            }
        }
    }
}

/// Collect conservative `[lo, hi]` address intervals for access sites with
/// a constant base and an affine offset over constant-range counted IVs.
fn collect_access_intervals(
    f: &Function,
    fid: FuncId,
    counted: &BTreeMap<LocalBlockId, CountedLoop>,
    sym: &[Sym],
    out: &mut Vec<(InstrRef, i64, i64)>,
) {
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, ins) in b.instrs.iter().enumerate() {
            let (base, offset) = match ins {
                Instr::Load { base, offset, .. } | Instr::Store { base, offset, .. } => {
                    (base, offset)
                }
                _ => continue,
            };
            let Sym::Const(base_addr) = eval_operand(base, sym) else {
                continue;
            };
            let interval = match eval_operand(offset, sym) {
                Sym::Const(c) => Some((c, c)),
                Sym::Linear(m, c) => {
                    let mut lo = c as i128;
                    let mut hi = c as i128;
                    let mut ok = true;
                    for (bse, &coeff) in &m {
                        let Base::Iv(h) = bse else {
                            ok = false;
                            break;
                        };
                        let Some(cl) = counted.get(h) else {
                            ok = false;
                            break;
                        };
                        let Some((l, u)) = cl.range else {
                            ok = false;
                            break;
                        };
                        let (a, bb) = (coeff as i128 * l as i128, coeff as i128 * u as i128);
                        lo += a.min(bb);
                        hi += a.max(bb);
                    }
                    ok.then_some((lo, hi)).and_then(|(lo, hi)| {
                        Some((i64::try_from(lo).ok()?, i64::try_from(hi).ok()?))
                    })
                }
                _ => None,
            };
            if let Some((lo, hi)) = interval {
                let (Some(alo), Some(ahi)) = (base_addr.checked_add(lo), base_addr.checked_add(hi))
                else {
                    continue;
                };
                out.push((
                    InstrRef {
                        block: BlockRef::new(fid, bi as u32),
                        idx: ii as u32,
                    },
                    alo,
                    ahi,
                ));
            }
        }
    }
}

/// Sweep-line connected components of interval overlap: sites whose
/// intervals can never intersect land in different partitions, so no memory
/// dependence can ever connect them.
fn partition_intervals(mut intervals: Vec<(InstrRef, i64, i64)>) -> (BTreeMap<InstrRef, u32>, u32) {
    intervals.sort_by_key(|&(_, lo, hi)| (lo, hi));
    let mut parts = BTreeMap::new();
    let mut next_part = 0u32;
    let mut cur_hi = i64::MIN;
    for (site, lo, hi) in intervals {
        if parts.is_empty() || lo > cur_hi {
            next_part += 1;
        }
        parts.insert(site, next_part - 1);
        cur_hi = cur_hi.max(hi);
    }
    (parts, next_part)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyir::build::ProgramBuilder;

    /// `main { for i in 0..8 { store a[i] = i; load a[i] } }`
    fn simple_kernel() -> Program {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(16);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 8i64, 1, |f, i| {
            let v = f.add(i, 0i64);
            f.store(a as i64, i, v);
            f.load(a as i64, i);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        pb.finish()
    }

    #[test]
    fn dom_tree_basics() {
        let p = simple_kernel();
        let f = p.func(FuncId(0));
        let dom = DomTree::build(f);
        let entry = f.entry();
        for b in 0..f.blocks.len() as u32 {
            assert!(dom.dominates(entry, LocalBlockId(b)), "entry dominates {b}");
        }
        // The loop header dominates body and latch but not vice versa.
        let forest = LoopForest::from_function(f);
        let l = &forest.loops[0];
        let body = *l
            .blocks
            .iter()
            .find(|b| **b != l.header)
            .expect("loop has a body");
        assert!(dom.dominates(l.header, body));
        assert!(!dom.dominates(body, l.header));
    }

    #[test]
    fn counted_loop_recognized_with_widened_range() {
        let p = simple_kernel();
        let s = StaticSummary::analyze(&p);
        let fd = &s.funcs[0];
        assert!(fd.runs_once);
        assert_eq!(fd.counted.len(), 1, "one counted loop");
        let cl = fd.counted.values().next().unwrap();
        assert_eq!(cl.step, 1);
        // 0..8 stepping 1, Lt: values 0..=7 in-loop plus the final 8.
        assert_eq!(cl.range, Some((0, 8)));
    }

    #[test]
    fn scev_categories_cover_loop_bookkeeping() {
        let p = simple_kernel();
        let s = StaticSummary::analyze(&p);
        let fd = &s.funcs[0];
        let kinds: Vec<ScevKind> = fd.scev.values().copied().collect();
        assert!(kinds.contains(&ScevKind::Cmp), "header compare proven");
        assert!(
            kinds.contains(&ScevKind::SelfIncrement),
            "latch increment proven"
        );
        assert!(
            kinds.contains(&ScevKind::Affine),
            "affine body value proven: {:?}",
            fd.scev
        );
        assert_eq!(s.n_scev(), fd.scev.len());
    }

    #[test]
    fn must_flow_found_for_same_operands_only() {
        let p = simple_kernel();
        let s = StaticSummary::analyze(&p);
        assert_eq!(s.must_flow.len(), 1, "store a[i] → load a[i]");
        let mf = s.must_flow[0];
        assert_eq!(mf.store.block, mf.load.block);
        assert!(mf.store.idx < mf.load.idx);
    }

    #[test]
    fn disjoint_arrays_get_distinct_partitions() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(16);
        let b = pb.alloc(16);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 8i64, 1, |f, i| {
            let v = f.load(a as i64, i);
            f.store(b as i64, i, v);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let s = StaticSummary::analyze(&p);
        assert_eq!(s.n_partitions, 2, "{:?}", s.partitions);
        let parts: BTreeSet<u32> = s.partitions.values().copied().collect();
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn call_in_loop_blocks_runs_once_and_category3() {
        let mut pb = ProgramBuilder::new("t");
        let mut g = pb.func("g", 0);
        let c = g.const_i(7);
        g.ret(Some(Operand::Reg(c)));
        let gid = g.finish();
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 4i64, 1, |f, _| {
            f.call(gid, &[]);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let s = StaticSummary::analyze(&p);
        let g_idx = p.func_by_name("g").unwrap().0 as usize;
        assert!(
            !s.funcs[g_idx].runs_once,
            "callee inside a loop runs many times"
        );
        // g's Const is not provable (not runs-once), but main's loop
        // bookkeeping still is.
        assert!(!s.funcs[g_idx].scev.values().any(|k| *k == ScevKind::Affine));
        assert!(s.funcs[fid.0 as usize]
            .scev
            .values()
            .any(|k| *k == ScevKind::SelfIncrement));
    }

    #[test]
    fn data_dependent_bound_is_not_counted() {
        let mut pb = ProgramBuilder::new("t");
        let nb = pb.array_i64(&[8]);
        let mut f = pb.func("main", 0);
        let n = f.load(nb as i64, 0i64);
        f.for_loop("L", 0i64, n, 1, |f, i| {
            f.add(i, 1i64);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let s = StaticSummary::analyze(&p);
        assert!(
            s.funcs[0].counted.is_empty(),
            "loaded bound rejects counting"
        );
        // Compares/self-increments are still proven (they are unconditional
        // dynamically), and straight-line constants outside the loop are too
        // — but nothing *inside* the non-counted loop can be proven Affine.
        for (iref, kind) in &s.funcs[0].scev {
            if *kind == ScevKind::Affine {
                assert!(
                    s.funcs[0].forest.innermost(iref.block.block).is_none(),
                    "Affine proof {iref:?} inside a non-counted loop"
                );
            }
        }
    }
}
